/**
 * @file
 * Combined bench driver: every bench_* source under bench/ is
 * compiled into this binary (with NETCHAR_BENCH_COMBINED, so their
 * standalone mains vanish) and self-registers into the harness
 * registry. The CLI lists, filters, runs and reports the suite, and
 * --ci-check gates a fresh run against a committed baseline — see
 * docs/BENCHMARKS.md for the gate table and docs/CLI.md for the
 * flag reference.
 */

#include "harness.hh"

int
main(int argc, char **argv)
{
    return netchar::bench::driverMain(argc, argv);
}
