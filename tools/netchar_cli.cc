/**
 * @file
 * `netchar` — command-line driver for the characterization toolkit.
 *
 *   netchar list [dotnet|aspnet|spec]
 *   netchar characterize <benchmark> [options]
 *   netchar topdown <benchmark> [options]
 *   netchar trace <benchmark> [options]            (timeline export)
 *   netchar suite <dotnet|aspnet|spec> [options]   (CSV/JSON export)
 *   netchar subset <dotnet|aspnet|spec> [--size K] [options]
 *   netchar serve <LISTEN> [options]               (daemon)
 *   netchar query <ADDR[,ADDR...]> [options]       (daemon client)
 *
 * docs/CLI.md documents every subcommand, option, exit code and an
 * example transcript per command; keep it in sync with usage().
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/characterize.hh"
#include "core/export.hh"
#include "core/report.hh"
#include "core/subset.hh"
#include "core/topdown.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/shard.hh"
#include "trace/analyzer.hh"
#include "trace/export_trace.hh"
#include "workloads/registry.hh"

using namespace netchar;

namespace
{

struct CliOptions
{
    std::string machine = "i9";
    std::string format = "text";
    RunOptions run;
    Parallelism par;
    bool stats = false;
    std::size_t subsetSize = 8;
    /** trace: re-slice summary interval in simulated ms. */
    double intervalMs = 1.0;
    /** trace / suite --trace-out: event ring capacity. */
    std::size_t bufferEvents = 65'536;
    /** suite: directory for per-benchmark chrome traces. */
    std::string traceOut;
    /** suite/subset: chaos spec ("rate=...,kinds=...,seed=..."). */
    std::string chaosSpec;
    /** suite/subset: failure-ledger output file (.json = JSON). */
    std::string ledgerFile;
};

/** Exit code for a sweep that lost some (not all) runs. */
constexpr int kExitPartialFailure = 2;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: netchar <command> [args]\n"
        "  list [dotnet|aspnet|spec]        list benchmarks\n"
        "  machines                         list machine models\n"
        "  characterize <benchmark>         Table I metrics\n"
        "  topdown <benchmark>              Top-Down profile\n"
        "  trace <benchmark>                timeline trace export\n"
        "  suite <dotnet|aspnet|spec>       whole-suite export\n"
        "  subset <dotnet|aspnet|spec>      representative subset\n"
        "  serve <LISTEN>                   characterization daemon\n"
        "                                   (host:port or socket\n"
        "                                   path; see --shard)\n"
        "  query <ADDR[,ADDR...]>           query serve daemon(s)\n"
        "run options (characterize/topdown/trace/suite/subset):\n"
        "  --machine i9|xeon|arm   machine model (default i9)\n"
        "  --cores N               active cores (default 1)\n"
        "  --warmup N              warmup instructions\n"
        "  --measure N             measured instructions\n"
        "  --seed N                run seed (default 1)\n"
        "command-specific options:\n"
        "  --format text|csv|json  characterize/topdown/suite only\n"
        "  --format chrome|csv     trace: export format (default\n"
        "                          chrome, a chrome://tracing JSON)\n"
        "  --interval MS           trace: re-slice summary interval\n"
        "                          in simulated ms (default 1)\n"
        "  --buffer-events N       trace: event ring capacity\n"
        "                          (default 65536, drop-oldest)\n"
        "  --trace-out DIR         suite: also capture and write one\n"
        "                          chrome trace per benchmark to DIR\n"
        "  --jobs N                suite/subset: parallel runs\n"
        "                          (0 = one per hardware thread)\n"
        "  --stats                 suite: run ledger on stderr\n"
        "  --size K                subset: subset size (default 8)\n"
        "failure handling (suite/subset):\n"
        "  --chaos SPEC            inject deterministic faults, e.g.\n"
        "                          rate=0.1,kinds=throw+stall,seed=7\n"
        "  --keep-going            sweep past failed runs (default)\n"
        "  --fail-fast             abort the sweep on first failure\n"
        "  --max-attempts N        attempts per run (default 2)\n"
        "  --quarantine-after N    stop retrying a run after N\n"
        "                          consecutive failures (default off)\n"
        "  --run-budget CYCLES     per-run simulated-cycle watchdog\n"
        "  --backoff-us N          retry backoff base, microseconds\n"
        "  --ledger FILE           write the failure ledger (CSV, or\n"
        "                          JSON when FILE ends in .json)\n"
        "serve options:\n"
        "  --jobs N                run/sweep concurrency (0 = auto)\n"
        "  --shard I/N             answer sweeps for round-robin\n"
        "                          slice I of N (default 0/1)\n"
        "  --max-attempts N        attempts per sweep run\n"
        "  --cache-entries N       result-cache entries (def. 256)\n"
        "  --cache-bytes N         result-cache byte budget\n"
        "  --cache-persist FILE    load/save the cache on start/stop\n"
        "                          (insert journal at FILE.journal)\n"
        "  --max-pending N         requests admitted per poll round;\n"
        "                          excess shed with `overloaded`\n"
        "  --max-pending-bytes N   request bytes admitted per round\n"
        "  --max-line-bytes N      longest accepted request line\n"
        "  --retry-after-ms N      overloaded retry hint (def. 25)\n"
        "  --idle-timeout-ms N     evict silent peers (def. 30000)\n"
        "  --checkpoint-bytes N    journal bytes before compaction\n"
        "  --chaos-wire SPEC       seeded wire faults, e.g. rate=\n"
        "                          0.25,kinds=split+reset,seed=9\n"
        "query options:\n"
        "  --verb V                ping|run|sweep|subset|stats|\n"
        "                          shutdown (default ping)\n"
        "  --benchmark NAME        run: benchmark to characterize\n"
        "  --suite S               sweep/subset: dotnet|aspnet|spec\n"
        "  --merge                 sweep: merge the shard partials\n"
        "                          of all ADDRs into the bytes\n"
        "                          `netchar suite` would print\n"
        "  --retries N             attempts per request (default 5)\n"
        "  --backoff-us N          retry backoff base, microseconds\n"
        "  --deadline-ms N         overall budget across retries;\n"
        "                          also sent as the request deadline\n"
        "  --io-timeout-ms N       per-send/recv timeout\n"
        "  (plus --machine/--format/--size and run options above)\n"
        "exit codes: 0 clean, 1 usage/total failure, 2 partial\n"
        "see docs/CLI.md for details and example transcripts\n");
    return EXIT_FAILURE;
}

sim::MachineConfig
machineFor(const std::string &name)
{
    if (name == "i9")
        return sim::MachineConfig::intelCoreI99980Xe();
    if (name == "xeon")
        return sim::MachineConfig::intelXeonE52620V4();
    if (name == "arm")
        return sim::MachineConfig::armServer();
    std::fprintf(stderr, "unknown machine '%s'\n", name.c_str());
    std::exit(EXIT_FAILURE);
}

bool
parseSuite(const std::string &name, wl::Suite &suite)
{
    if (name == "dotnet")
        suite = wl::Suite::DotNet;
    else if (name == "aspnet")
        suite = wl::Suite::AspNet;
    else if (name == "spec")
        suite = wl::Suite::SpecCpu17;
    else
        return false;
    return true;
}

CliOptions
parseOptions(int argc, char **argv, int first)
{
    CliOptions opts;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(EXIT_FAILURE);
            }
            return argv[++i];
        };
        auto nextNumber = [&]() -> std::uint64_t {
            const std::string value = next();
            try {
                std::size_t used = 0;
                const std::uint64_t n = std::stoull(value, &used);
                if (used == value.size())
                    return n;
            } catch (const std::exception &) {
            }
            std::fprintf(stderr,
                         "netchar: %s expects a number, got '%s'\n",
                         arg.c_str(), value.c_str());
            std::exit(EXIT_FAILURE);
        };
        auto nextPositiveDouble = [&]() -> double {
            const std::string value = next();
            try {
                std::size_t used = 0;
                const double d = std::stod(value, &used);
                if (used == value.size() && d > 0.0)
                    return d;
            } catch (const std::exception &) {
            }
            std::fprintf(
                stderr,
                "netchar: %s expects a positive number, got '%s'\n",
                arg.c_str(), value.c_str());
            std::exit(EXIT_FAILURE);
        };
        if (arg == "--machine")
            opts.machine = next();
        else if (arg == "--cores")
            opts.run.cores = static_cast<unsigned>(nextNumber());
        else if (arg == "--warmup")
            opts.run.warmupInstructions = nextNumber();
        else if (arg == "--measure")
            opts.run.measuredInstructions = nextNumber();
        else if (arg == "--seed")
            opts.run.seed = nextNumber();
        else if (arg == "--size")
            opts.subsetSize = nextNumber();
        else if (arg == "--format")
            opts.format = next();
        else if (arg == "--jobs")
            opts.par.jobs = static_cast<unsigned>(nextNumber());
        else if (arg == "--stats")
            opts.stats = true;
        else if (arg == "--interval")
            opts.intervalMs = nextPositiveDouble();
        else if (arg == "--buffer-events")
            opts.bufferEvents =
                static_cast<std::size_t>(nextNumber());
        else if (arg == "--trace-out")
            opts.traceOut = next();
        else if (arg == "--chaos") {
            opts.chaosSpec = next();
            try {
                FaultPlan::parse(opts.chaosSpec); // validate early
            } catch (const std::exception &ex) {
                std::fprintf(stderr, "netchar: %s\n", ex.what());
                std::exit(EXIT_FAILURE);
            }
        } else if (arg == "--keep-going")
            opts.par.resilience.keepGoing = true;
        else if (arg == "--fail-fast")
            opts.par.resilience.keepGoing = false;
        else if (arg == "--max-attempts") {
            opts.par.maxAttempts =
                static_cast<unsigned>(nextNumber());
            if (opts.par.maxAttempts == 0) {
                std::fprintf(
                    stderr,
                    "netchar: --max-attempts must be >= 1\n");
                std::exit(EXIT_FAILURE);
            }
        } else if (arg == "--quarantine-after")
            opts.par.resilience.quarantineAfter =
                static_cast<unsigned>(nextNumber());
        else if (arg == "--run-budget")
            opts.run.runBudgetCycles = nextNumber();
        else if (arg == "--backoff-us")
            opts.par.resilience.backoffBaseMicros = nextNumber();
        else if (arg == "--ledger")
            opts.ledgerFile = next();
        else {
            // Name the offending flag first, then the usage block,
            // so the error survives a scrolled-off screen.
            std::fprintf(stderr, "netchar: unknown option '%s'\n\n",
                         arg.c_str());
            std::exit(usage());
        }
    }
    return opts;
}

/** Render the run ledger to stderr (text table, CSV or JSON). */
void
printStats(const SuiteRunStats &stats, const std::string &format)
{
    if (format == "csv") {
        std::fprintf(stderr, "%s", suiteStatsCsv(stats).c_str());
        return;
    }
    if (format == "json") {
        std::fprintf(stderr, "%s\n", suiteStatsJson(stats).c_str());
        return;
    }
    TextTable table(
        {"#", "Benchmark", "Attempts", "Ok", "Wall s", "Worker"});
    for (const auto &r : stats.runs) {
        table.addRow({std::to_string(r.index), r.benchmark,
                      std::to_string(r.attempts),
                      r.succeeded ? "yes" : "NO",
                      fmtFixed(r.wallSeconds, 3),
                      std::to_string(r.worker)});
    }
    std::fprintf(stderr, "%s", table.render().c_str());
    std::fprintf(
        stderr,
        "jobs %u  wall %ss  busy %ss  utilization %s  steals %llu  "
        "retried %u  failed %u\n",
        stats.jobs, fmtFixed(stats.wallSeconds, 3).c_str(),
        fmtFixed(stats.busySeconds, 3).c_str(),
        fmtPercent(stats.utilization()).c_str(),
        static_cast<unsigned long long>(stats.steals),
        stats.retriedRuns(), stats.failedRuns());
}

/** Write the failure ledger to `file` (.json = JSON, else CSV). */
bool
writeLedger(const SuiteRunStats &stats, const std::string &file)
{
    if (file.empty())
        return true;
    std::ofstream out(file, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", file.c_str());
        return false;
    }
    const bool json = file.size() >= 5 &&
                      file.compare(file.size() - 5, 5, ".json") == 0;
    if (json)
        out << failureLedgerJson(stats) << '\n';
    else
        out << failureLedgerCsv(stats);
    return true;
}

/** Warn about lost runs; clean / partial / total-failure exit code. */
int
sweepExitCode(const SuiteRunStats &stats)
{
    for (const auto &r : stats.runs) {
        if (r.skipped)
            std::fprintf(stderr,
                         "warning: %s skipped (fail-fast abort)\n",
                         r.benchmark.c_str());
        else if (!r.succeeded)
            std::fprintf(
                stderr,
                "warning: %s failed after %u attempts%s: %s\n",
                r.benchmark.c_str(), r.attempts,
                r.quarantined ? " (quarantined)" : "",
                r.error.c_str());
    }
    const unsigned failed = stats.failedRuns();
    if (failed == 0)
        return EXIT_SUCCESS;
    return failed >= stats.runs.size() ? EXIT_FAILURE
                                       : kExitPartialFailure;
}

int
cmdMachines()
{
    TextTable table({"Key", "Name", "Cores", "L2", "LLC", "Slices",
                     "Max GHz"});
    const struct
    {
        const char *key;
        sim::MachineConfig cfg;
    } machines[] = {
        {"i9", sim::MachineConfig::intelCoreI99980Xe()},
        {"xeon", sim::MachineConfig::intelXeonE52620V4()},
        {"arm", sim::MachineConfig::armServer()},
    };
    for (const auto &m : machines) {
        table.addRow(
            {m.key, m.cfg.name,
             std::to_string(m.cfg.physicalCores) + "/" +
                 std::to_string(m.cfg.logicalCores),
             std::to_string(m.cfg.l2.sizeBytes / 1024) + "KiB",
             std::to_string(m.cfg.llc.sizeBytes / (1024 * 1024)) +
                 "MiB",
             std::to_string(m.cfg.llcSlices),
             fmtFixed(m.cfg.maxGhz, 1)});
    }
    std::printf("%s", table.render().c_str());
    return EXIT_SUCCESS;
}

int
cmdList(const std::string &filter)
{
    std::vector<wl::WorkloadProfile> profiles;
    wl::Suite suite;
    if (filter.empty()) {
        profiles = wl::allProfiles();
    } else if (parseSuite(filter, suite)) {
        profiles = wl::suiteProfiles(suite);
    } else {
        return usage();
    }
    for (const auto &p : profiles)
        std::printf("%-38s %-11s %s\n", p.name.c_str(),
                    wl::suiteName(p.suite).c_str(),
                    p.description.c_str());
    return EXIT_SUCCESS;
}

int
cmdCharacterize(const std::string &name, const CliOptions &opts,
                bool topdown_view)
{
    const auto profile = wl::findProfile(name);
    if (!profile) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
        return EXIT_FAILURE;
    }
    Characterizer ch(machineFor(opts.machine));
    const auto result = ch.run(*profile, opts.run);

    if (opts.format == "json") {
        std::printf("%s\n", runResultJson(name, result).c_str());
        return EXIT_SUCCESS;
    }
    if (opts.format == "csv") {
        std::printf("%s", topdown_view
                              ? topdownCsv({name}, {result}).c_str()
                              : metricsCsv({name}, {result}).c_str());
        return EXIT_SUCCESS;
    }
    if (topdown_view) {
        const auto td = TopDownProfile::fromSlots(result.slots);
        std::printf(
            "%s",
            barChart(name + " Top-Down level 1",
                     {{"Retiring", td.level1.retiring},
                      {"Bad_Speculation", td.level1.badSpeculation},
                      {"Frontend_Bound", td.level1.frontendBound},
                      {"Backend_Bound", td.level1.backendBound}},
                     40, 1.0)
                .c_str());
        std::vector<Bar> fe, be;
        for (const auto &row : frontendRows(td))
            fe.push_back({row.label, row.value});
        for (const auto &row : backendRows(td))
            be.push_back({row.label, row.value});
        std::printf("%s", barChart("Frontend shares", fe, 40, 1.0)
                              .c_str());
        std::printf("%s",
                    barChart("Backend shares", be, 40, 1.0).c_str());
    } else {
        TextTable table({"Metric", "Value", "Unit"});
        for (const auto &info : metricTable()) {
            table.addRow(
                {std::string(info.name),
                 fmtFixed(result.metrics[static_cast<std::size_t>(
                              info.id)],
                          3),
                 std::string(info.unit)});
        }
        std::printf("%s", table.render().c_str());
    }
    return EXIT_SUCCESS;
}

/** Benchmark name -> filesystem-safe file stem. */
std::string
fileStem(const std::string &name)
{
    std::string stem = name;
    for (char &c : stem) {
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '-' && c != '_' && c != '.')
            c = '_';
    }
    return stem;
}

int
cmdTrace(const std::string &name, const CliOptions &opts)
{
    const auto profile = wl::findProfile(name);
    if (!profile) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
        return EXIT_FAILURE;
    }
    if (opts.format != "text" && opts.format != "chrome" &&
        opts.format != "csv") {
        std::fprintf(stderr,
                     "netchar trace: --format must be chrome or "
                     "csv, got '%s'\n",
                     opts.format.c_str());
        return EXIT_FAILURE;
    }
    Characterizer ch(machineFor(opts.machine));
    TraceOptions topts;
    topts.bufferEvents = opts.bufferEvents;
    const auto cap = ch.capture(*profile, opts.run, topts);

    if (opts.format == "csv")
        std::printf("%s", trace::traceCsv(cap.trace).c_str());
    else
        std::printf("%s\n",
                    trace::chromeTraceJson(cap.trace).c_str());

    // Capture summary on stderr, including a re-slice at --interval
    // to show the trace's analysis-time sampling.
    const trace::TraceAnalyzer analyzer(cap.trace);
    const auto summary = analyzer.summary();
    const auto slices = analyzer.resliceMillis(opts.intervalMs);
    std::uint64_t retained = 0;
    for (const auto count : summary.eventCounts)
        retained += count;
    std::fprintf(
        stderr,
        "  %llu runtime events retained (%llu dropped), "
        "%zu counter records (%llu dropped)\n"
        "  span %s simulated ms; %zu samples at %s ms\n",
        static_cast<unsigned long long>(retained),
        static_cast<unsigned long long>(summary.droppedEvents),
        summary.counterSamples,
        static_cast<unsigned long long>(summary.droppedSamples),
        fmtFixed(cap.trace.micros(summary.spanCycles) / 1e3, 3)
            .c_str(),
        slices.size(), fmtFixed(opts.intervalMs, 3).c_str());
    return EXIT_SUCCESS;
}

int
cmdSuite(const std::string &suite_name, const CliOptions &opts)
{
    wl::Suite suite;
    if (!parseSuite(suite_name, suite))
        return usage();
    const auto profiles = wl::suiteProfiles(suite);
    Characterizer ch(machineFor(opts.machine));

    // The plan must outlive the sweep; par holds a pointer to it.
    FaultPlan chaos;
    Parallelism par = opts.par;
    if (!opts.chaosSpec.empty()) {
        chaos = FaultPlan::parse(opts.chaosSpec);
        par.resilience.chaos = &chaos;
        std::fprintf(stderr, "  chaos: %s\n",
                     chaos.describe().c_str());
    }

    std::vector<std::string> names;
    for (const auto &p : profiles)
        names.push_back(p.name);
    if (par.jobs)
        std::fprintf(stderr, "  %zu benchmarks, %u job(s) ...\n",
                     profiles.size(), par.jobs);
    else
        std::fprintf(stderr, "  %zu benchmarks, auto jobs ...\n",
                     profiles.size());
    if (!opts.traceOut.empty()) {
        // Capture path: every benchmark runs with tracing on and its
        // chrome trace lands in --trace-out; metrics come from the
        // same runs (capture derives RunResult like run() does).
        TraceOptions topts;
        topts.bufferEvents = opts.bufferEvents;
        SuiteRunStats stats;
        const auto captures =
            ch.captureAll(profiles, opts.run, topts, par, &stats);
        std::error_code ec;
        std::filesystem::create_directories(opts.traceOut, ec);
        if (ec) {
            std::fprintf(stderr, "cannot create '%s': %s\n",
                         opts.traceOut.c_str(),
                         ec.message().c_str());
            return EXIT_FAILURE;
        }
        std::vector<RunResult> results;
        results.reserve(captures.size());
        for (const auto &cap : captures) {
            results.push_back(cap.result);
            const auto path = std::filesystem::path(opts.traceOut) /
                (fileStem(cap.trace.benchmark) + ".trace.json");
            std::ofstream file(path, std::ios::binary);
            if (!file) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             path.string().c_str());
                return EXIT_FAILURE;
            }
            file << trace::chromeTraceJson(cap.trace) << '\n';
        }
        if (opts.format == "json")
            std::printf("%s\n", suiteJson(names, results).c_str());
        else
            std::printf("%s", metricsCsv(names, results).c_str());
        std::fprintf(stderr, "  wrote %zu trace(s) to %s\n",
                     captures.size(), opts.traceOut.c_str());
        if (opts.stats)
            printStats(stats, opts.format);
        if (!writeLedger(stats, opts.ledgerFile))
            return EXIT_FAILURE;
        return sweepExitCode(stats);
    }
    SuiteRunStats stats;
    const auto results = ch.runAll(profiles, opts.run, par, &stats);
    if (opts.format == "json")
        std::printf("%s\n", suiteJson(names, results).c_str());
    else
        std::printf("%s", metricsCsv(names, results).c_str());
    if (opts.stats)
        printStats(stats, opts.format);
    if (!writeLedger(stats, opts.ledgerFile))
        return EXIT_FAILURE;
    return sweepExitCode(stats);
}

int
cmdSubset(const std::string &suite_name, const CliOptions &opts)
{
    wl::Suite suite;
    if (!parseSuite(suite_name, suite))
        return usage();
    const auto profiles = wl::suiteProfiles(suite);
    Characterizer ch(machineFor(opts.machine));

    FaultPlan chaos;
    Parallelism par = opts.par;
    if (!opts.chaosSpec.empty()) {
        chaos = FaultPlan::parse(opts.chaosSpec);
        par.resilience.chaos = &chaos;
        std::fprintf(stderr, "  chaos: %s\n",
                     chaos.describe().c_str());
    }

    if (par.jobs)
        std::fprintf(stderr, "  %zu benchmarks, %u job(s) ...\n",
                     profiles.size(), par.jobs);
    else
        std::fprintf(stderr, "  %zu benchmarks, auto jobs ...\n",
                     profiles.size());
    SuiteRunStats stats;
    const auto results = ch.runAll(profiles, opts.run, par, &stats);
    if (!writeLedger(stats, opts.ledgerFile))
        return EXIT_FAILURE;

    // Keep-going semantics: build the subset over surviving rows,
    // keeping the original benchmark names attached.
    std::vector<MetricVector> rows;
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (stats.runs[i].succeeded) {
            rows.push_back(results[i].metrics);
            survivors.push_back(i);
        }
    }
    const int sweep_code = sweepExitCode(stats);
    if (sweep_code == EXIT_FAILURE)
        return EXIT_FAILURE;

    SubsetOptions sopts;
    sopts.subsetSize = opts.subsetSize;
    SubsetResult subset;
    try {
        subset = buildSubset(rows, sopts);
    } catch (const std::exception &ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return EXIT_FAILURE;
    }
    std::printf("# representative subset (%zu of %zu surviving, "
                "%zu total), PRCO variance %s\n",
                subset.representatives.size(), rows.size(),
                profiles.size(),
                fmtPercent(subset.pca.cumulativeExplained()).c_str());
    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        const std::size_t rep = survivors[subset.representatives[c]];
        std::printf("%s  (cluster of %zu)\n",
                    profiles[rep].name.c_str(),
                    subset.clusters[c].size());
    }
    return sweep_code;
}

int
cmdServe(int argc, char **argv)
{
    serve::ServerOptions sopts;
    sopts.listen = argv[2];
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(EXIT_FAILURE);
            }
            return argv[++i];
        };
        auto nextNumber = [&]() -> std::uint64_t {
            const std::string value = next();
            try {
                std::size_t used = 0;
                const std::uint64_t n = std::stoull(value, &used);
                if (used == value.size())
                    return n;
            } catch (const std::exception &) {
            }
            std::fprintf(stderr,
                         "netchar: %s expects a number, got '%s'\n",
                         arg.c_str(), value.c_str());
            std::exit(EXIT_FAILURE);
        };
        if (arg == "--jobs")
            sopts.jobs = static_cast<unsigned>(nextNumber());
        else if (arg == "--max-attempts")
            sopts.maxAttempts = static_cast<unsigned>(nextNumber());
        else if (arg == "--shard") {
            std::string error;
            if (!serve::parseShardSpec(next(), sopts.shard,
                                       sopts.shards, error)) {
                std::fprintf(stderr, "netchar serve: %s\n",
                             error.c_str());
                return EXIT_FAILURE;
            }
        } else if (arg == "--cache-entries")
            sopts.cache.maxEntries =
                static_cast<std::size_t>(nextNumber());
        else if (arg == "--cache-bytes")
            sopts.cache.maxBytes = nextNumber();
        else if (arg == "--cache-persist")
            sopts.persistPath = next();
        else if (arg == "--max-pending")
            sopts.maxBatchRequests =
                static_cast<std::size_t>(nextNumber());
        else if (arg == "--max-pending-bytes")
            sopts.maxBatchBytes = nextNumber();
        else if (arg == "--max-line-bytes")
            sopts.maxLineBytes =
                static_cast<std::size_t>(nextNumber());
        else if (arg == "--retry-after-ms")
            sopts.retryAfterMs = nextNumber();
        else if (arg == "--idle-timeout-ms")
            sopts.idleTimeoutMs = nextNumber();
        else if (arg == "--checkpoint-bytes")
            sopts.checkpointBytes = nextNumber();
        else if (arg == "--chaos-wire") {
            try {
                sopts.chaosWire = WireFaultPlan::parse(next());
            } catch (const std::exception &ex) {
                std::fprintf(stderr, "netchar serve: %s\n",
                             ex.what());
                return EXIT_FAILURE;
            }
        } else {
            std::fprintf(stderr, "netchar: unknown option '%s'\n\n",
                         arg.c_str());
            return usage();
        }
    }
    if (sopts.maxAttempts == 0) {
        std::fprintf(stderr,
                     "netchar: --max-attempts must be >= 1\n");
        return EXIT_FAILURE;
    }

    serve::Server server(sopts);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "netchar serve: %s\n", error.c_str());
        return EXIT_FAILURE;
    }
    // SIGTERM/SIGINT drain gracefully: in-flight work finishes, new
    // work is refused with `draining`, the cache is checkpointed,
    // and serve() returns 0.
    serve::Server::installDrainSignalHandlers();
    // Scripts scrape this line for the bound address (port 0 picks
    // a free port); keep it the first thing on stdout.
    std::printf("LISTENING %s\n", server.address().c_str());
    std::fflush(stdout);
    std::fprintf(stderr,
                 "  serving on %s  shard %u/%u  %u job(s)\n",
                 server.address().c_str(), sopts.shard, sopts.shards,
                 sopts.jobs);
    return server.serve();
}

/** Raw body text of a response line (the bytes after `,"body":` up
 *  to the closing brace — re-rendering via the JSON model could
 *  disturb byte-identity, so the substring is spliced out). */
bool
extractBody(const std::string &response, std::string &body)
{
    const auto pos = response.find(",\"body\":");
    if (pos == std::string::npos || response.empty() ||
        response.back() != '}')
        return false;
    const auto start = pos + 8;
    body = response.substr(start, response.size() - start - 1);
    return true;
}

int
cmdQuery(int argc, char **argv)
{
    std::vector<std::string> addresses;
    {
        const std::string spec = argv[2];
        std::size_t start = 0;
        while (start <= spec.size()) {
            const auto comma = spec.find(',', start);
            if (comma == std::string::npos) {
                addresses.push_back(spec.substr(start));
                break;
            }
            addresses.push_back(spec.substr(start, comma - start));
            start = comma + 1;
        }
    }

    serve::Request req;
    std::string verb = "ping";
    bool merge = false;
    std::string ledger_file;
    serve::ClientOptions copts;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(EXIT_FAILURE);
            }
            return argv[++i];
        };
        auto nextNumber = [&]() -> std::uint64_t {
            const std::string value = next();
            try {
                std::size_t used = 0;
                const std::uint64_t n = std::stoull(value, &used);
                if (used == value.size())
                    return n;
            } catch (const std::exception &) {
            }
            std::fprintf(stderr,
                         "netchar: %s expects a number, got '%s'\n",
                         arg.c_str(), value.c_str());
            std::exit(EXIT_FAILURE);
        };
        if (arg == "--verb")
            verb = next();
        else if (arg == "--benchmark")
            req.benchmark = next();
        else if (arg == "--suite")
            req.suite = next();
        else if (arg == "--machine")
            req.machine = next();
        else if (arg == "--format")
            req.format = next();
        else if (arg == "--size")
            req.subsetSize =
                static_cast<std::size_t>(nextNumber());
        else if (arg == "--cores")
            req.options.cores =
                static_cast<unsigned>(nextNumber());
        else if (arg == "--warmup")
            req.options.warmupInstructions = nextNumber();
        else if (arg == "--measure")
            req.options.measuredInstructions = nextNumber();
        else if (arg == "--seed")
            req.options.seed = nextNumber();
        else if (arg == "--merge")
            merge = true;
        else if (arg == "--ledger")
            ledger_file = next();
        else if (arg == "--retries")
            copts.maxAttempts =
                static_cast<unsigned>(nextNumber());
        else if (arg == "--backoff-us")
            copts.backoffBaseMicros = nextNumber();
        else if (arg == "--deadline-ms") {
            // One budget, both ends: the client stops retrying and
            // the server sheds the request once it expires in queue.
            copts.deadlineMs = nextNumber();
            req.deadlineMs = copts.deadlineMs;
        } else if (arg == "--io-timeout-ms")
            copts.ioTimeoutMs = nextNumber();
        else {
            std::fprintf(stderr, "netchar: unknown option '%s'\n\n",
                         arg.c_str());
            return usage();
        }
    }

    if (verb == "ping")
        req.verb = serve::Verb::Ping;
    else if (verb == "run")
        req.verb = serve::Verb::Run;
    else if (verb == "sweep")
        req.verb = serve::Verb::Sweep;
    else if (verb == "subset")
        req.verb = serve::Verb::Subset;
    else if (verb == "stats")
        req.verb = serve::Verb::Stats;
    else if (verb == "shutdown")
        req.verb = serve::Verb::Shutdown;
    else {
        std::fprintf(stderr, "netchar query: unknown verb '%s'\n",
                     verb.c_str());
        return EXIT_FAILURE;
    }
    if (merge && req.verb != serve::Verb::Sweep) {
        std::fprintf(stderr,
                     "netchar query: --merge needs --verb sweep\n");
        return EXIT_FAILURE;
    }
    if (!merge && addresses.size() != 1) {
        std::fprintf(stderr, "netchar query: multiple addresses "
                             "need --merge\n");
        return EXIT_FAILURE;
    }

    std::string line;
    try {
        line = serve::requestLine(req);
    } catch (const std::exception &ex) {
        std::fprintf(stderr, "netchar query: %s\n", ex.what());
        return EXIT_FAILURE;
    }

    std::vector<std::string> responses;
    for (const std::string &address : addresses) {
        serve::ClientOptions one = copts;
        one.address = address;
        serve::Client client(one);
        std::string response, error;
        if (!client.request(line, response, error)) {
            std::fprintf(stderr, "netchar query: %s: %s\n",
                         address.c_str(), error.c_str());
            return EXIT_FAILURE;
        }
        serve::JsonValue doc;
        std::string jerr;
        if (!serve::parseJson(response, doc, jerr)) {
            std::fprintf(stderr,
                         "netchar query: %s: bad response: %s\n",
                         address.c_str(), jerr.c_str());
            return EXIT_FAILURE;
        }
        const serve::JsonValue *ok = doc.find("ok");
        if (ok == nullptr ||
            ok->kind != serve::JsonValue::Kind::Bool) {
            std::fprintf(stderr,
                         "netchar query: %s: response without ok\n",
                         address.c_str());
            return EXIT_FAILURE;
        }
        if (!ok->boolean) {
            const serve::JsonValue *err = doc.find("error");
            std::fprintf(stderr,
                         "netchar query: %s: server error: %s\n",
                         address.c_str(),
                         err != nullptr && err->isString()
                             ? err->string.c_str()
                             : "(no message)");
            return EXIT_FAILURE;
        }
        const serve::JsonValue *cache = doc.find("cache");
        const serve::JsonValue *key = doc.find("key");
        if (cache != nullptr && cache->isString() && key != nullptr &&
            key->isString())
            std::fprintf(stderr, "  %s: cache %s (key %s)\n",
                         address.c_str(), cache->string.c_str(),
                         key->string.c_str());
        responses.push_back(std::move(response));
    }

    if (!merge) {
        std::string body;
        if (!extractBody(responses.front(), body)) {
            std::fprintf(stderr,
                         "netchar query: response without body\n");
            return EXIT_FAILURE;
        }
        std::printf("%s\n", body.c_str());
        return EXIT_SUCCESS;
    }

    std::vector<serve::SweepPartial> partials;
    for (std::size_t i = 0; i < responses.size(); ++i) {
        serve::JsonValue doc;
        std::string jerr;
        // Parsed once above; re-parse here to keep ownership simple.
        if (!serve::parseJson(responses[i], doc, jerr)) {
            std::fprintf(stderr, "netchar query: %s\n",
                         jerr.c_str());
            return EXIT_FAILURE;
        }
        const serve::JsonValue *body = doc.find("body");
        serve::SweepPartial partial;
        std::string perr;
        if (body == nullptr ||
            !serve::parseSweepBody(*body, partial, perr)) {
            std::fprintf(stderr, "netchar query: %s: %s\n",
                         addresses[i].c_str(), perr.c_str());
            return EXIT_FAILURE;
        }
        partials.push_back(std::move(partial));
    }
    std::string merged, merr;
    if (!serve::mergeSweep(partials, merged, merr)) {
        std::fprintf(stderr, "netchar query: %s\n", merr.c_str());
        return EXIT_FAILURE;
    }
    if (req.format == "json")
        std::printf("%s\n", merged.c_str());
    else
        std::printf("%s", merged.c_str());
    const SuiteRunStats stats = serve::mergeLedgers(partials);
    if (!writeLedger(stats, ledger_file))
        return EXIT_FAILURE;
    if (!stats.failures.empty()) {
        for (const auto &f : stats.failures)
            std::fprintf(stderr,
                         "warning: %s attempt %u failed: %s\n",
                         f.benchmark.c_str(), f.attempt,
                         f.error.c_str());
        return kExitPartialFailure;
    }
    return EXIT_SUCCESS;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "list")
        return cmdList(argc > 2 ? argv[2] : "");
    if (cmd == "machines")
        return cmdMachines();
    if (argc < 3)
        return usage();
    if (cmd == "serve")
        return cmdServe(argc, argv);
    if (cmd == "query")
        return cmdQuery(argc, argv);
    const std::string target = argv[2];
    const auto opts = parseOptions(argc, argv, 3);

    if (cmd == "characterize")
        return cmdCharacterize(target, opts, false);
    if (cmd == "topdown")
        return cmdCharacterize(target, opts, true);
    if (cmd == "trace")
        return cmdTrace(target, opts);
    if (cmd == "suite")
        return cmdSuite(target, opts);
    if (cmd == "subset")
        return cmdSubset(target, opts);
    return usage();
}
