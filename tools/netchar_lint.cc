/**
 * @file
 * `netchar_lint` — the repo's determinism & concurrency static
 * analyzer (see src/lint/rules.hh for the token rule set and
 * src/lint/taint.hh for the flow-aware taint pass).
 *
 *   netchar_lint --check <path>... [--json] [--sarif FILE]
 *                [--jobs N] [--cache DIR] [--stats]
 *                [--taint|--no-taint]
 *                [--concurrency|--no-concurrency]
 *   netchar_lint --list-rules
 *
 * Exit codes: 0 clean tree, 1 unsuppressed findings, 2 usage or I/O
 * error. The report is deterministic: sorted findings, byte-identical
 * across repeated runs, independent of directory enumeration order,
 * of --jobs, and of whether the --cache was cold or warm. (--stats
 * adds wall-clock timings, which are inherently nondeterministic —
 * leave it off when comparing report bytes.)
 *
 * docs/CLI.md documents the tool; keep it in sync with usage().
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "lint/driver.hh"
#include "lint/lint.hh"
#include "lint/sarif.hh"

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: netchar_lint --check <path>... [--json] "
        "[--sarif FILE] [--jobs N] [--cache DIR]\n"
        "                    [--stats] [--taint|--no-taint] "
        "[--concurrency|--no-concurrency]\n"
        "       netchar_lint --list-rules\n"
        "  --check <path>...  lint files/directories (recursive)\n"
        "  --json             machine-readable report on stdout\n"
        "  --sarif FILE       also write a SARIF 2.1.0 report\n"
        "  --jobs N           analyze files on N threads (0 = one\n"
        "                     per hardware thread; default 1);\n"
        "                     never changes report bytes\n"
        "  --cache DIR        incremental analysis cache: warm runs\n"
        "                     re-analyze only changed files\n"
        "  --stats            append per-phase timings and cache\n"
        "                     counters to the report\n"
        "  --taint            run the taint pass (default)\n"
        "  --no-taint         skip the taint pass\n"
        "  --concurrency      run the CFG/lockset pass (default)\n"
        "  --no-concurrency   skip the CFG/lockset pass\n"
        "  --list-rules       print the rule set and exit\n"
        "exit codes: 0 clean, 1 findings, 2 usage/I-O error\n"
        "suppression: // netchar-lint: allow(<rule>) -- <reason>\n"
        "             // netchar-lint: allow-flow(<rule>) -- "
        "<reason>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    bool json = false;
    bool stats = false;
    std::string sarifPath;
    netchar::lint::DriverOptions opts;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check")
            check = true;
        else if (arg == "--json")
            json = true;
        else if (arg == "--stats")
            stats = true;
        else if (arg == "--taint")
            opts.lint.taint = true;
        else if (arg == "--no-taint")
            opts.lint.taint = false;
        else if (arg == "--concurrency")
            opts.lint.concurrency = true;
        else if (arg == "--no-concurrency")
            opts.lint.concurrency = false;
        else if (arg == "--jobs") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "netchar_lint: --jobs needs a count\n");
                return usage();
            }
            char *rest = nullptr;
            const long n = std::strtol(argv[++i], &rest, 10);
            if (rest == nullptr || *rest != '\0' || n < 0) {
                std::fprintf(
                    stderr,
                    "netchar_lint: --jobs needs a non-negative "
                    "integer, got '%s'\n",
                    argv[i]);
                return usage();
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--cache") {
            if (i + 1 >= argc) {
                std::fprintf(
                    stderr,
                    "netchar_lint: --cache needs a directory\n");
                return usage();
            }
            opts.cacheDir = argv[++i];
        } else if (arg == "--sarif") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "netchar_lint: --sarif needs a file\n");
                return usage();
            }
            sarifPath = argv[++i];
        } else if (arg == "--list-rules") {
            std::fputs(netchar::lint::listRulesText().c_str(),
                       stdout);
            return 0;
        } else if (!arg.empty() && arg.front() == '-') {
            std::fprintf(stderr, "netchar_lint: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else
            paths.push_back(arg);
    }

    if (!check || paths.empty())
        return usage();

    std::vector<std::string> errors;
    netchar::lint::LintStats lintStats;
    const netchar::lint::LintResult result =
        netchar::lint::runLint(paths, errors, opts, &lintStats);
    for (const std::string &e : errors)
        std::fprintf(stderr, "netchar_lint: %s\n", e.c_str());
    if (!errors.empty())
        return 2;

    if (!sarifPath.empty()) {
        std::ofstream out(sarifPath, std::ios::binary);
        out << netchar::lint::renderSarif(result);
        if (!out) {
            std::fprintf(stderr,
                         "netchar_lint: cannot write '%s'\n",
                         sarifPath.c_str());
            return 2;
        }
    }

    if (json) {
        std::fputs(netchar::lint::renderJson(
                       result, stats ? &lintStats : nullptr)
                       .c_str(),
                   stdout);
    } else {
        std::fputs(netchar::lint::renderText(result).c_str(),
                   stdout);
        if (stats)
            std::fputs(
                netchar::lint::renderStatsText(lintStats).c_str(),
                stdout);
    }
    return result.findings.empty() ? 0 : 1;
}
