# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.usage "/root/repo/build/tools/netchar")
set_tests_properties(cli.usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.list "/root/repo/build/tools/netchar" "list" "spec")
set_tests_properties(cli.list PROPERTIES  PASS_REGULAR_EXPRESSION "mcf" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.characterize "/root/repo/build/tools/netchar" "characterize" "SeekUnroll" "--warmup" "100000" "--measure" "100000")
set_tests_properties(cli.characterize PROPERTIES  PASS_REGULAR_EXPRESSION "LLC misses" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.json "/root/repo/build/tools/netchar" "characterize" "SeekUnroll" "--warmup" "100000" "--measure" "100000" "--format" "json")
set_tests_properties(cli.json PROPERTIES  PASS_REGULAR_EXPRESSION "\"topdown\"" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
