# Empty compiler generated dependencies file for netchar.
# This may be replaced when dependencies are built.
