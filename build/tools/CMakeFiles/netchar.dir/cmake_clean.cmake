file(REMOVE_RECURSE
  "CMakeFiles/netchar.dir/netchar_cli.cc.o"
  "CMakeFiles/netchar.dir/netchar_cli.cc.o.d"
  "netchar"
  "netchar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
