file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/characterize_test.cc.o"
  "CMakeFiles/test_core.dir/core/characterize_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/export_test.cc.o"
  "CMakeFiles/test_core.dir/core/export_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cc.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/report_test.cc.o"
  "CMakeFiles/test_core.dir/core/report_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/subset_topdown_test.cc.o"
  "CMakeFiles/test_core.dir/core/subset_topdown_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
