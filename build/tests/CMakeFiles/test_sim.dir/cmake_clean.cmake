file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/branch_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/branch_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/cache_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/cache_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/core_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/core_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/counters_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/counters_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/frontend_backend_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/frontend_backend_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/machine_sweep_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/machine_sweep_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/memory_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/memory_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/noc_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/noc_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/prefetch_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/prefetch_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/tlb_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/tlb_test.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
