
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/branch_test.cc" "tests/CMakeFiles/test_sim.dir/sim/branch_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/branch_test.cc.o.d"
  "/root/repo/tests/sim/cache_test.cc" "tests/CMakeFiles/test_sim.dir/sim/cache_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/cache_test.cc.o.d"
  "/root/repo/tests/sim/core_test.cc" "tests/CMakeFiles/test_sim.dir/sim/core_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/core_test.cc.o.d"
  "/root/repo/tests/sim/counters_test.cc" "tests/CMakeFiles/test_sim.dir/sim/counters_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/counters_test.cc.o.d"
  "/root/repo/tests/sim/frontend_backend_test.cc" "tests/CMakeFiles/test_sim.dir/sim/frontend_backend_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/frontend_backend_test.cc.o.d"
  "/root/repo/tests/sim/machine_sweep_test.cc" "tests/CMakeFiles/test_sim.dir/sim/machine_sweep_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/machine_sweep_test.cc.o.d"
  "/root/repo/tests/sim/memory_test.cc" "tests/CMakeFiles/test_sim.dir/sim/memory_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/memory_test.cc.o.d"
  "/root/repo/tests/sim/noc_test.cc" "tests/CMakeFiles/test_sim.dir/sim/noc_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/noc_test.cc.o.d"
  "/root/repo/tests/sim/prefetch_test.cc" "tests/CMakeFiles/test_sim.dir/sim/prefetch_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/prefetch_test.cc.o.d"
  "/root/repo/tests/sim/tlb_test.cc" "tests/CMakeFiles/test_sim.dir/sim/tlb_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/tlb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netchar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/netchar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/netchar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netchar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netchar_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
