# Empty dependencies file for netchar_workloads.
# This may be replaced when dependencies are built.
