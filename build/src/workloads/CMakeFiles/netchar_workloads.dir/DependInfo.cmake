
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/aspnet.cc" "src/workloads/CMakeFiles/netchar_workloads.dir/aspnet.cc.o" "gcc" "src/workloads/CMakeFiles/netchar_workloads.dir/aspnet.cc.o.d"
  "/root/repo/src/workloads/dotnet.cc" "src/workloads/CMakeFiles/netchar_workloads.dir/dotnet.cc.o" "gcc" "src/workloads/CMakeFiles/netchar_workloads.dir/dotnet.cc.o.d"
  "/root/repo/src/workloads/profile.cc" "src/workloads/CMakeFiles/netchar_workloads.dir/profile.cc.o" "gcc" "src/workloads/CMakeFiles/netchar_workloads.dir/profile.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/netchar_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/netchar_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/spec.cc" "src/workloads/CMakeFiles/netchar_workloads.dir/spec.cc.o" "gcc" "src/workloads/CMakeFiles/netchar_workloads.dir/spec.cc.o.d"
  "/root/repo/src/workloads/synth.cc" "src/workloads/CMakeFiles/netchar_workloads.dir/synth.cc.o" "gcc" "src/workloads/CMakeFiles/netchar_workloads.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/netchar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netchar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/netchar_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
