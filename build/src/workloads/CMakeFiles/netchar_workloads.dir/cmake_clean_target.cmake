file(REMOVE_RECURSE
  "libnetchar_workloads.a"
)
