file(REMOVE_RECURSE
  "CMakeFiles/netchar_workloads.dir/aspnet.cc.o"
  "CMakeFiles/netchar_workloads.dir/aspnet.cc.o.d"
  "CMakeFiles/netchar_workloads.dir/dotnet.cc.o"
  "CMakeFiles/netchar_workloads.dir/dotnet.cc.o.d"
  "CMakeFiles/netchar_workloads.dir/profile.cc.o"
  "CMakeFiles/netchar_workloads.dir/profile.cc.o.d"
  "CMakeFiles/netchar_workloads.dir/registry.cc.o"
  "CMakeFiles/netchar_workloads.dir/registry.cc.o.d"
  "CMakeFiles/netchar_workloads.dir/spec.cc.o"
  "CMakeFiles/netchar_workloads.dir/spec.cc.o.d"
  "CMakeFiles/netchar_workloads.dir/synth.cc.o"
  "CMakeFiles/netchar_workloads.dir/synth.cc.o.d"
  "libnetchar_workloads.a"
  "libnetchar_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netchar_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
