# Empty compiler generated dependencies file for netchar_stats.
# This may be replaced when dependencies are built.
