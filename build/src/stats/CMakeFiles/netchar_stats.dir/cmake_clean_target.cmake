file(REMOVE_RECURSE
  "libnetchar_stats.a"
)
