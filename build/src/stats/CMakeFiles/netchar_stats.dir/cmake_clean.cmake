file(REMOVE_RECURSE
  "CMakeFiles/netchar_stats.dir/cluster.cc.o"
  "CMakeFiles/netchar_stats.dir/cluster.cc.o.d"
  "CMakeFiles/netchar_stats.dir/matrix.cc.o"
  "CMakeFiles/netchar_stats.dir/matrix.cc.o.d"
  "CMakeFiles/netchar_stats.dir/pca.cc.o"
  "CMakeFiles/netchar_stats.dir/pca.cc.o.d"
  "CMakeFiles/netchar_stats.dir/summary.cc.o"
  "CMakeFiles/netchar_stats.dir/summary.cc.o.d"
  "libnetchar_stats.a"
  "libnetchar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netchar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
