file(REMOVE_RECURSE
  "libnetchar_core.a"
)
