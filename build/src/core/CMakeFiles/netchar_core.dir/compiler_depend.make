# Empty compiler generated dependencies file for netchar_core.
# This may be replaced when dependencies are built.
