
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterize.cc" "src/core/CMakeFiles/netchar_core.dir/characterize.cc.o" "gcc" "src/core/CMakeFiles/netchar_core.dir/characterize.cc.o.d"
  "/root/repo/src/core/correlation.cc" "src/core/CMakeFiles/netchar_core.dir/correlation.cc.o" "gcc" "src/core/CMakeFiles/netchar_core.dir/correlation.cc.o.d"
  "/root/repo/src/core/export.cc" "src/core/CMakeFiles/netchar_core.dir/export.cc.o" "gcc" "src/core/CMakeFiles/netchar_core.dir/export.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/netchar_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/netchar_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/netchar_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/netchar_core.dir/report.cc.o.d"
  "/root/repo/src/core/subset.cc" "src/core/CMakeFiles/netchar_core.dir/subset.cc.o" "gcc" "src/core/CMakeFiles/netchar_core.dir/subset.cc.o.d"
  "/root/repo/src/core/topdown.cc" "src/core/CMakeFiles/netchar_core.dir/topdown.cc.o" "gcc" "src/core/CMakeFiles/netchar_core.dir/topdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/netchar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netchar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/netchar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/netchar_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
