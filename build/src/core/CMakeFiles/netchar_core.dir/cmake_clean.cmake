file(REMOVE_RECURSE
  "CMakeFiles/netchar_core.dir/characterize.cc.o"
  "CMakeFiles/netchar_core.dir/characterize.cc.o.d"
  "CMakeFiles/netchar_core.dir/correlation.cc.o"
  "CMakeFiles/netchar_core.dir/correlation.cc.o.d"
  "CMakeFiles/netchar_core.dir/export.cc.o"
  "CMakeFiles/netchar_core.dir/export.cc.o.d"
  "CMakeFiles/netchar_core.dir/metrics.cc.o"
  "CMakeFiles/netchar_core.dir/metrics.cc.o.d"
  "CMakeFiles/netchar_core.dir/report.cc.o"
  "CMakeFiles/netchar_core.dir/report.cc.o.d"
  "CMakeFiles/netchar_core.dir/subset.cc.o"
  "CMakeFiles/netchar_core.dir/subset.cc.o.d"
  "CMakeFiles/netchar_core.dir/topdown.cc.o"
  "CMakeFiles/netchar_core.dir/topdown.cc.o.d"
  "libnetchar_core.a"
  "libnetchar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netchar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
