file(REMOVE_RECURSE
  "libnetchar_runtime.a"
)
