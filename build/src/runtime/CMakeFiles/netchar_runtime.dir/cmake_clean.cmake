file(REMOVE_RECURSE
  "CMakeFiles/netchar_runtime.dir/clr.cc.o"
  "CMakeFiles/netchar_runtime.dir/clr.cc.o.d"
  "CMakeFiles/netchar_runtime.dir/events.cc.o"
  "CMakeFiles/netchar_runtime.dir/events.cc.o.d"
  "CMakeFiles/netchar_runtime.dir/gc.cc.o"
  "CMakeFiles/netchar_runtime.dir/gc.cc.o.d"
  "CMakeFiles/netchar_runtime.dir/heap.cc.o"
  "CMakeFiles/netchar_runtime.dir/heap.cc.o.d"
  "CMakeFiles/netchar_runtime.dir/jit.cc.o"
  "CMakeFiles/netchar_runtime.dir/jit.cc.o.d"
  "libnetchar_runtime.a"
  "libnetchar_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netchar_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
