
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/clr.cc" "src/runtime/CMakeFiles/netchar_runtime.dir/clr.cc.o" "gcc" "src/runtime/CMakeFiles/netchar_runtime.dir/clr.cc.o.d"
  "/root/repo/src/runtime/events.cc" "src/runtime/CMakeFiles/netchar_runtime.dir/events.cc.o" "gcc" "src/runtime/CMakeFiles/netchar_runtime.dir/events.cc.o.d"
  "/root/repo/src/runtime/gc.cc" "src/runtime/CMakeFiles/netchar_runtime.dir/gc.cc.o" "gcc" "src/runtime/CMakeFiles/netchar_runtime.dir/gc.cc.o.d"
  "/root/repo/src/runtime/heap.cc" "src/runtime/CMakeFiles/netchar_runtime.dir/heap.cc.o" "gcc" "src/runtime/CMakeFiles/netchar_runtime.dir/heap.cc.o.d"
  "/root/repo/src/runtime/jit.cc" "src/runtime/CMakeFiles/netchar_runtime.dir/jit.cc.o" "gcc" "src/runtime/CMakeFiles/netchar_runtime.dir/jit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/netchar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netchar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
