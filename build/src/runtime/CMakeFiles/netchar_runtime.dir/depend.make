# Empty dependencies file for netchar_runtime.
# This may be replaced when dependencies are built.
