# Empty compiler generated dependencies file for netchar_sim.
# This may be replaced when dependencies are built.
