file(REMOVE_RECURSE
  "CMakeFiles/netchar_sim.dir/backend.cc.o"
  "CMakeFiles/netchar_sim.dir/backend.cc.o.d"
  "CMakeFiles/netchar_sim.dir/branch.cc.o"
  "CMakeFiles/netchar_sim.dir/branch.cc.o.d"
  "CMakeFiles/netchar_sim.dir/cache.cc.o"
  "CMakeFiles/netchar_sim.dir/cache.cc.o.d"
  "CMakeFiles/netchar_sim.dir/config.cc.o"
  "CMakeFiles/netchar_sim.dir/config.cc.o.d"
  "CMakeFiles/netchar_sim.dir/core.cc.o"
  "CMakeFiles/netchar_sim.dir/core.cc.o.d"
  "CMakeFiles/netchar_sim.dir/counters.cc.o"
  "CMakeFiles/netchar_sim.dir/counters.cc.o.d"
  "CMakeFiles/netchar_sim.dir/frontend.cc.o"
  "CMakeFiles/netchar_sim.dir/frontend.cc.o.d"
  "CMakeFiles/netchar_sim.dir/machine.cc.o"
  "CMakeFiles/netchar_sim.dir/machine.cc.o.d"
  "CMakeFiles/netchar_sim.dir/memory.cc.o"
  "CMakeFiles/netchar_sim.dir/memory.cc.o.d"
  "CMakeFiles/netchar_sim.dir/noc.cc.o"
  "CMakeFiles/netchar_sim.dir/noc.cc.o.d"
  "CMakeFiles/netchar_sim.dir/prefetch.cc.o"
  "CMakeFiles/netchar_sim.dir/prefetch.cc.o.d"
  "CMakeFiles/netchar_sim.dir/tlb.cc.o"
  "CMakeFiles/netchar_sim.dir/tlb.cc.o.d"
  "libnetchar_sim.a"
  "libnetchar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netchar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
