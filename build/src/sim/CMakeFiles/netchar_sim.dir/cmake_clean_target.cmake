file(REMOVE_RECURSE
  "libnetchar_sim.a"
)
