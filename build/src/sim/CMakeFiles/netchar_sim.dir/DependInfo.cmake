
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backend.cc" "src/sim/CMakeFiles/netchar_sim.dir/backend.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/backend.cc.o.d"
  "/root/repo/src/sim/branch.cc" "src/sim/CMakeFiles/netchar_sim.dir/branch.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/branch.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/netchar_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/netchar_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/netchar_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/counters.cc" "src/sim/CMakeFiles/netchar_sim.dir/counters.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/counters.cc.o.d"
  "/root/repo/src/sim/frontend.cc" "src/sim/CMakeFiles/netchar_sim.dir/frontend.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/frontend.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/netchar_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/netchar_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/noc.cc" "src/sim/CMakeFiles/netchar_sim.dir/noc.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/noc.cc.o.d"
  "/root/repo/src/sim/prefetch.cc" "src/sim/CMakeFiles/netchar_sim.dir/prefetch.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/prefetch.cc.o.d"
  "/root/repo/src/sim/tlb.cc" "src/sim/CMakeFiles/netchar_sim.dir/tlb.cc.o" "gcc" "src/sim/CMakeFiles/netchar_sim.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/netchar_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
