file(REMOVE_RECURSE
  "CMakeFiles/bench_metric_redundancy.dir/bench_metric_redundancy.cc.o"
  "CMakeFiles/bench_metric_redundancy.dir/bench_metric_redundancy.cc.o.d"
  "bench_metric_redundancy"
  "bench_metric_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metric_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
