# Empty dependencies file for bench_metric_redundancy.
# This may be replaced when dependencies are built.
