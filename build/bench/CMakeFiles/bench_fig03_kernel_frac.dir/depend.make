# Empty dependencies file for bench_fig03_kernel_frac.
# This may be replaced when dependencies are built.
