file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_kernel_frac.dir/bench_fig03_kernel_frac.cc.o"
  "CMakeFiles/bench_fig03_kernel_frac.dir/bench_fig03_kernel_frac.cc.o.d"
  "bench_fig03_kernel_frac"
  "bench_fig03_kernel_frac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_kernel_frac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
