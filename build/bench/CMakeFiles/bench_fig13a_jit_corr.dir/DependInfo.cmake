
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13a_jit_corr.cc" "bench/CMakeFiles/bench_fig13a_jit_corr.dir/bench_fig13a_jit_corr.cc.o" "gcc" "bench/CMakeFiles/bench_fig13a_jit_corr.dir/bench_fig13a_jit_corr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/netchar_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/netchar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/netchar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/netchar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netchar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netchar_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
