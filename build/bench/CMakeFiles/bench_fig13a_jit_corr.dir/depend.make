# Empty dependencies file for bench_fig13a_jit_corr.
# This may be replaced when dependencies are built.
