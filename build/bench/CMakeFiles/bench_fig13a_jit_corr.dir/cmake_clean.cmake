file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13a_jit_corr.dir/bench_fig13a_jit_corr.cc.o"
  "CMakeFiles/bench_fig13a_jit_corr.dir/bench_fig13a_jit_corr.cc.o.d"
  "bench_fig13a_jit_corr"
  "bench_fig13a_jit_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13a_jit_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
