file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_subsets.dir/bench_table4_subsets.cc.o"
  "CMakeFiles/bench_table4_subsets.dir/bench_table4_subsets.cc.o.d"
  "bench_table4_subsets"
  "bench_table4_subsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
