# Empty compiler generated dependencies file for bench_fig10_topdown_detail.
# This may be replaced when dependencies are built.
