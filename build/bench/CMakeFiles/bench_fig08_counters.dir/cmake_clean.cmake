file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_counters.dir/bench_fig08_counters.cc.o"
  "CMakeFiles/bench_fig08_counters.dir/bench_fig08_counters.cc.o.d"
  "bench_fig08_counters"
  "bench_fig08_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
