file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_mem_pca.dir/bench_fig06_mem_pca.cc.o"
  "CMakeFiles/bench_fig06_mem_pca.dir/bench_fig06_mem_pca.cc.o.d"
  "bench_fig06_mem_pca"
  "bench_fig06_mem_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_mem_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
