# Empty compiler generated dependencies file for bench_fig06_mem_pca.
# This may be replaced when dependencies are built.
