# Empty compiler generated dependencies file for bench_table3_pca_loadings.
# This may be replaced when dependencies are built.
