file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pca_loadings.dir/bench_table3_pca_loadings.cc.o"
  "CMakeFiles/bench_table3_pca_loadings.dir/bench_table3_pca_loadings.cc.o.d"
  "bench_table3_pca_loadings"
  "bench_table3_pca_loadings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pca_loadings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
