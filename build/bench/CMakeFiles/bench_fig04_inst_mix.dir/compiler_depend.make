# Empty compiler generated dependencies file for bench_fig04_inst_mix.
# This may be replaced when dependencies are built.
