# Empty dependencies file for bench_fig12_l3_bound.
# This may be replaced when dependencies are built.
