# Empty compiler generated dependencies file for bench_fig05_ctrl_pca.
# This may be replaced when dependencies are built.
