file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mlp.dir/bench_ablation_mlp.cc.o"
  "CMakeFiles/bench_ablation_mlp.dir/bench_ablation_mlp.cc.o.d"
  "bench_ablation_mlp"
  "bench_ablation_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
