# Empty compiler generated dependencies file for bench_ablation_mlp.
# This may be replaced when dependencies are built.
