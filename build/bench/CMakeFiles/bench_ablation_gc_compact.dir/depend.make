# Empty dependencies file for bench_ablation_gc_compact.
# This may be replaced when dependencies are built.
