file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_dendrogram.dir/bench_fig01_dendrogram.cc.o"
  "CMakeFiles/bench_fig01_dendrogram.dir/bench_fig01_dendrogram.cc.o.d"
  "bench_fig01_dendrogram"
  "bench_fig01_dendrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_dendrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
