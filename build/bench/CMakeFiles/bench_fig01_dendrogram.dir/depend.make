# Empty dependencies file for bench_fig01_dendrogram.
# This may be replaced when dependencies are built.
