# Empty dependencies file for bench_fig13b_gc_corr.
# This may be replaced when dependencies are built.
