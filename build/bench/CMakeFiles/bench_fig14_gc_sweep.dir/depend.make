# Empty dependencies file for bench_fig14_gc_sweep.
# This may be replaced when dependencies are built.
