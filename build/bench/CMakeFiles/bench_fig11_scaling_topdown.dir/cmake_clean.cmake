file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scaling_topdown.dir/bench_fig11_scaling_topdown.cc.o"
  "CMakeFiles/bench_fig11_scaling_topdown.dir/bench_fig11_scaling_topdown.cc.o.d"
  "bench_fig11_scaling_topdown"
  "bench_fig11_scaling_topdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scaling_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
