# Empty compiler generated dependencies file for bench_fig09_topdown_basic.
# This may be replaced when dependencies are built.
