file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_topdown_basic.dir/bench_fig09_topdown_basic.cc.o"
  "CMakeFiles/bench_fig09_topdown_basic.dir/bench_fig09_topdown_basic.cc.o.d"
  "bench_fig09_topdown_basic"
  "bench_fig09_topdown_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_topdown_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
