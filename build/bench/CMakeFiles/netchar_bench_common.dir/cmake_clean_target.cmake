file(REMOVE_RECURSE
  "libnetchar_bench_common.a"
)
