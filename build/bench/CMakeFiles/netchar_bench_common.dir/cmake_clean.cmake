file(REMOVE_RECURSE
  "CMakeFiles/netchar_bench_common.dir/common.cc.o"
  "CMakeFiles/netchar_bench_common.dir/common.cc.o.d"
  "libnetchar_bench_common.a"
  "libnetchar_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netchar_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
