# Empty dependencies file for netchar_bench_common.
# This may be replaced when dependencies are built.
