# Empty dependencies file for bench_fig07_x86_vs_arm.
# This may be replaced when dependencies are built.
