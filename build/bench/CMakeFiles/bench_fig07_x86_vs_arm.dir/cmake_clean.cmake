file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_x86_vs_arm.dir/bench_fig07_x86_vs_arm.cc.o"
  "CMakeFiles/bench_fig07_x86_vs_arm.dir/bench_fig07_x86_vs_arm.cc.o.d"
  "bench_fig07_x86_vs_arm"
  "bench_fig07_x86_vs_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_x86_vs_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
