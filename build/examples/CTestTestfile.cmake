# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart" "SeekUnroll")
set_tests_properties(example.quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "Top-Down level 1" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
