file(REMOVE_RECURSE
  "CMakeFiles/server_scaling.dir/server_scaling.cpp.o"
  "CMakeFiles/server_scaling.dir/server_scaling.cpp.o.d"
  "server_scaling"
  "server_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
