# Empty dependencies file for server_scaling.
# This may be replaced when dependencies are built.
