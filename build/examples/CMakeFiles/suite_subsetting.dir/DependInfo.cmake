
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/suite_subsetting.cpp" "examples/CMakeFiles/suite_subsetting.dir/suite_subsetting.cpp.o" "gcc" "examples/CMakeFiles/suite_subsetting.dir/suite_subsetting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netchar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/netchar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/netchar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netchar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netchar_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
