# Empty compiler generated dependencies file for suite_subsetting.
# This may be replaced when dependencies are built.
