file(REMOVE_RECURSE
  "CMakeFiles/suite_subsetting.dir/suite_subsetting.cpp.o"
  "CMakeFiles/suite_subsetting.dir/suite_subsetting.cpp.o.d"
  "suite_subsetting"
  "suite_subsetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_subsetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
