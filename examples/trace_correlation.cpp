/**
 * @file
 * Timeline tracing walkthrough: capture ONE trace of a managed
 * benchmark, then re-slice it at several sampling intervals to
 * reproduce the paper's event/counter correlation study (§VII-A,
 * Figure 13) without re-running the benchmark per interval.
 *
 *   ./trace_correlation [benchmark-name]
 *
 * Steps: capture (run + timestamped event stream + periodic counter
 * records), summarize the trace, correlate at 0.1 / 1 / 10 simulated
 * ms, and export a chrome://tracing JSON you can load in Perfetto.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/characterize.hh"
#include "core/correlation.hh"
#include "core/report.hh"
#include "trace/analyzer.hh"
#include "trace/export_trace.hh"
#include "workloads/registry.hh"

using namespace netchar;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "System.Linq";
    const auto found = wl::findProfile(name);
    if (!found) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", name);
        return EXIT_FAILURE;
    }

    // 1. Capture one traced run. The capture advances on a fixed
    //    instruction chunk grid, emitting a cumulative counter record
    //    per chunk and a timestamped event per CLR occurrence; both
    //    streams live in bounded drop-oldest rings.
    auto profile = *found;
    profile.tierUpCallThreshold = 32; // keep re-JITs flowing
    Characterizer ch(sim::MachineConfig::intelCoreI99980Xe());
    RunOptions options;
    TraceOptions topts;
    // Enough simulated time for the 10 ms windows below, and a counter
    // ring sized so the whole span is retained (one record per ~1250
    // instruction chunk; undersizing would drop the oldest records).
    topts.measuredCycles = ch.config().maxGhz * 1e6 * 50.0;
    topts.bufferSamples = 1u << 18;
    const CaptureResult cap = ch.capture(profile, options, topts);

    // 2. Summarize. Loss (dropped events/records) is observable, so
    //    an undersized ring can never silently skew the analysis.
    const trace::TraceAnalyzer analyzer(cap.trace);
    const auto summary = analyzer.summary();
    std::printf("=== trace of %s on %s ===\n",
                cap.trace.benchmark.c_str(),
                cap.trace.machine.c_str());
    std::printf(
        "counter records: %zu (%llu dropped)   span: %.2f ms\n",
        summary.counterSamples,
        static_cast<unsigned long long>(summary.droppedSamples),
        cap.trace.micros(summary.spanCycles) / 1e3);
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(trace::TraceEventKind::NumKinds);
         ++k) {
        std::printf(
            "  %-22s %llu\n",
            std::string(traceEventKindName(
                            static_cast<trace::TraceEventKind>(k)))
                .c_str(),
            static_cast<unsigned long long>(summary.eventCounts[k]));
    }
    std::printf("  dropped                %llu\n\n",
                static_cast<unsigned long long>(
                    summary.droppedEvents));

    // 3. The paper's interval-sensitivity question — does the 1 ms
    //    choice matter? — from the SAME capture: re-slice at 0.1, 1
    //    and 10 simulated ms and correlate JIT starts per width.
    for (const double ms : {0.1, 1.0, 10.0}) {
        const auto series = analyzer.resliceMillis(ms);
        std::printf("interval %.1f ms -> %zu samples\n", ms,
                    series.size());
        if (series.size() < 3)
            continue;
        for (const auto &row : correlateEvents(
                 series, rt::RuntimeEventType::JitStarted)) {
            if (row.name == "branch MPKI" ||
                row.name == "LLC MPKI" || row.name == "IPC")
                std::printf("  JIT starts vs %-12s r = %+.3f\n",
                            row.name.c_str(), row.r);
        }
    }

    // 4. Export for Perfetto (chrome://tracing JSON). Deterministic:
    //    rerunning this example writes byte-identical bytes.
    const char *out = "trace_correlation.trace.json";
    std::ofstream file(out, std::ios::binary);
    file << trace::chromeTraceJson(cap.trace) << '\n';
    std::printf("\nwrote %s (load it at https://ui.perfetto.dev)\n",
                out);
    return EXIT_SUCCESS;
}
