/**
 * @file
 * Scenario: choosing a GC configuration for a .NET service — the
 * §VII-B study turned into a tuning tool. Sweeps workstation vs
 * server GC across heap limits for one service profile and reports
 * throughput, GC rate and cache behavior so the best configuration
 * can be picked per deployment size.
 */

#include <cstdio>

#include "core/characterize.hh"
#include "core/report.hh"
#include "workloads/registry.hh"

using namespace netchar;

int
main()
{
    constexpr std::uint64_t MiB = 1024 * 1024;
    // The service under study: JSON serialization under allocation
    // pressure (swap in your own profile here).
    auto service = *wl::findProfile("Json");
    service.instructions = 1'200'000;

    Characterizer ch(sim::MachineConfig::intelCoreI99980Xe());

    std::printf("GC tuning study for '%s'\n\n", service.name.c_str());
    TextTable table({"Config", "GC/Triggered PKI", "LLC MPKI",
                     "CPI", "Relative throughput"});

    double baseline_ips = 0.0;
    for (const auto mode :
         {rt::GcMode::Workstation, rt::GcMode::Server}) {
        for (const std::uint64_t heap :
             {24 * MiB, 96 * MiB, 384 * MiB}) {
            RunOptions opts;
            opts.warmupInstructions = 500'000;
            opts.gcMode = mode;
            opts.maxHeapBytes = heap;
            opts.allocScale = 6.0; // service under allocation load
            const auto r = ch.run(service, opts);
            if (baseline_ips == 0.0)
                baseline_ips = r.instructionsPerSecond;
            const std::string label =
                std::string(mode == rt::GcMode::Server
                                ? "server"
                                : "workstation") +
                " @ " + std::to_string(heap / MiB) + " MiB";
            table.addRow(
                {label,
                 fmtFixed(r.metrics[static_cast<std::size_t>(
                              MetricId::GcTriggeredPki)],
                          4),
                 fmtFixed(r.metrics[static_cast<std::size_t>(
                              MetricId::LlcMpki)],
                          3),
                 fmtFixed(r.counters.cpi(), 3),
                 fmtFixed(r.instructionsPerSecond / baseline_ips,
                          3)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Reading the table: server GC collects more often "
                "but keeps the heap compact (lower LLC MPKI); for "
                "allocation-heavy services that usually wins unless "
                "the working set barely touches the caches "
                "(§VII-B).\n");
    return 0;
}
