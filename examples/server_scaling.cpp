/**
 * @file
 * Scenario: capacity planning for an ASP.NET-style server — the
 * §VI-B2 scaling analysis as a tool. Sweeps core counts for a web
 * workload, reports per-core throughput, the L3-bound stall share
 * and LLC latency inflation, and flags the knee where adding cores
 * stops paying (LLC slice/NoC contention).
 */

#include <cstdio>

#include "core/characterize.hh"
#include "core/report.hh"
#include "core/topdown.hh"
#include "workloads/registry.hh"

using namespace netchar;

int
main()
{
    auto server = *wl::findProfile("DbFortunesRaw");
    server.instructions = 700'000;

    Characterizer ch(sim::MachineConfig::intelCoreI99980Xe());

    std::printf("Core-scaling study for '%s' on %s\n\n",
                server.name.c_str(), ch.config().name.c_str());
    TextTable table({"Cores", "Aggregate M-inst/s", "Per-core IPC",
                     "L3-bound share", "LLC MPKI/core"});

    double prev_throughput = 0.0;
    unsigned knee = 0;
    for (unsigned cores : {1u, 2u, 4u, 8u, 12u, 16u}) {
        RunOptions opts;
        opts.warmupInstructions = 400'000;
        opts.cores = cores;
        const auto r = ch.run(server, opts);
        const auto td = TopDownProfile::fromSlots(r.slots);
        const double mips = r.instructionsPerSecond / 1e6;
        table.addRow(
            {std::to_string(cores), fmtFixed(mips, 0),
             fmtFixed(r.counters.ipc(), 2),
             fmtPercent(td.backend.l3Bound),
             fmtFixed(r.metrics[static_cast<std::size_t>(
                          MetricId::LlcMpki)],
                      3)});
        // Knee: the first doubling that fails to add >=60% throughput.
        if (prev_throughput > 0.0 && knee == 0 &&
            mips < 1.6 * prev_throughput)
            knee = cores;
        prev_throughput = mips;
    }
    std::printf("%s\n", table.render().c_str());
    if (knee != 0)
        std::printf("Scaling knee around %u cores: L3-bound stalls "
                    "(slice-port/NoC contention) eat the added "
                    "cores, matching the paper's Fig 11/12 "
                    "analysis.\n",
                    knee);
    else
        std::printf("No scaling knee up to 16 cores in this "
                    "configuration.\n");
    return 0;
}
