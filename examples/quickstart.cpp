/**
 * @file
 * Quickstart: characterize one benchmark on one machine and print
 * its Table I metrics and Top-Down profile.
 *
 *   ./quickstart [benchmark-name]
 *
 * Walks the three netchar steps: pick a workload profile from the
 * registry, run it through a Characterizer, and inspect the result.
 */

#include <cstdio>
#include <cstdlib>

#include "core/characterize.hh"
#include "core/report.hh"
#include "core/topdown.hh"
#include "workloads/registry.hh"

using namespace netchar;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "System.Linq";
    const auto profile = wl::findProfile(name);
    if (!profile) {
        std::fprintf(stderr,
                     "unknown benchmark '%s'; try one of:\n", name);
        for (const auto &p : wl::allProfiles())
            std::fprintf(stderr, "  %s\n", p.name.c_str());
        return EXIT_FAILURE;
    }

    // 1. Pick a machine (Table II factories or your own config).
    Characterizer ch(sim::MachineConfig::intelCoreI99980Xe());

    // 2. Run the paper's methodology: warm up, then measure.
    RunOptions options;
    options.warmupInstructions = 600'000;
    const RunResult result = ch.run(*profile, options);

    // 3. Inspect.
    std::printf("=== %s (%s) on %s ===\n", profile->name.c_str(),
                wl::suiteName(profile->suite).c_str(),
                ch.config().name.c_str());
    std::printf("%s\n\n", profile->description.c_str());

    TextTable table({"Metric", "Value", "Unit"});
    for (const auto &info : metricTable()) {
        table.addRow({std::string(info.name),
                      fmtFixed(result.metrics[static_cast<std::size_t>(
                                   info.id)],
                               3),
                      std::string(info.unit)});
    }
    std::printf("%s\n", table.render().c_str());

    const auto td = TopDownProfile::fromSlots(result.slots);
    std::printf("%s\n",
                barChart("Top-Down level 1 (fraction of slots)",
                         {{"Retiring", td.level1.retiring},
                          {"Bad_Speculation", td.level1.badSpeculation},
                          {"Frontend_Bound", td.level1.frontendBound},
                          {"Backend_Bound", td.level1.backendBound}},
                         40, 1.0)
                    .c_str());

    std::printf("Measured %llu instructions in %.3f ms simulated "
                "time (IPC %.2f)\n",
                static_cast<unsigned long long>(
                    result.counters.instructions),
                result.seconds * 1e3, result.counters.ipc());
    return EXIT_SUCCESS;
}
