/**
 * @file
 * Scenario: you maintain a large internal benchmark suite and want a
 * small representative subset for nightly architecture studies —
 * exactly the paper's §IV use case, on your own workloads.
 *
 * This example builds a 60-benchmark "internal suite" by mixing
 * variants of three service archetypes, runs the full PCA +
 * clustering pipeline, validates the chosen subset with composite
 * scores across two machines, and prints everything a team would
 * archive: the dendrogram, the subset, and the validation accuracy.
 */

#include <cstdio>

#include "core/characterize.hh"
#include "core/report.hh"
#include "core/subset.hh"
#include "workloads/registry.hh"

using namespace netchar;

int
main()
{
    // An "internal suite": 60 jittered variants of three archetypes.
    std::vector<wl::WorkloadProfile> suite;
    for (const char *base :
         {"Json", "System.Collections", "DbMultiQueryRaw"}) {
        const auto archetype = *wl::findProfile(base);
        for (unsigned v = 0; v < 20; ++v) {
            auto variant = archetype.makeVariant(v, 0.35);
            variant.instructions = 400'000;
            suite.push_back(std::move(variant));
        }
    }
    std::printf("Internal suite: %zu benchmarks from 3 archetypes\n\n",
                suite.size());

    // Characterize everything on the primary machine.
    Characterizer primary(sim::MachineConfig::intelCoreI99980Xe());
    RunOptions opts;
    opts.warmupInstructions = 300'000;
    std::vector<MetricVector> rows;
    std::vector<double> primary_seconds;
    for (const auto &p : suite) {
        const auto r = primary.run(p, opts);
        rows.push_back(r.metrics);
        primary_seconds.push_back(r.seconds);
    }

    // Build a 6-element representative subset.
    SubsetOptions sopts;
    sopts.subsetSize = 6;
    const auto subset = buildSubset(rows, sopts);

    std::printf("Representative subset (6 of %zu):\n", suite.size());
    for (std::size_t idx : subset.representatives)
        std::printf("  %s\n", suite[idx].name.c_str());
    std::printf("\nPRCO variance explained: %s\n\n",
                fmtPercent(subset.pca.cumulativeExplained()).c_str());

    // Validate: does the subset predict a second machine's speedup?
    Characterizer baseline(sim::MachineConfig::intelXeonE52620V4());
    std::vector<double> baseline_seconds;
    for (const auto &p : suite)
        baseline_seconds.push_back(baseline.run(p, opts).seconds);

    const auto scores =
        benchmarkScores(baseline_seconds, primary_seconds);
    const double full = compositeScore(scores);
    const double picked =
        compositeScore(scores, subset.representatives);
    std::printf("Composite speedup (Xeon -> i9): full suite %s, "
                "subset %s -> accuracy %s\n",
                fmtFixed(full, 3).c_str(), fmtFixed(picked, 3).c_str(),
                (fmtFixed(subsetAccuracyPct(full, picked), 1) + "%")
                    .c_str());

    std::printf("\nCluster sizes:");
    for (const auto &cluster : subset.clusters)
        std::printf(" %zu", cluster.size());
    std::printf("\nArchetypes should largely separate into their own "
                "clusters; inspect any cluster that mixes them.\n");
    return 0;
}
