#include "stats/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace netchar::stats
{

double
euclidean(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("euclidean: length mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc);
}

namespace
{

/**
 * Lance-Williams update of the distance between merged cluster (i+j)
 * and cluster k.
 */
double
lanceWilliams(Linkage linkage, double dik, double djk,
              std::size_t ni, std::size_t nj)
{
    switch (linkage) {
      case Linkage::Single:
        return std::min(dik, djk);
      case Linkage::Complete:
        return std::max(dik, djk);
      case Linkage::Average:
      default: {
        const double wi = static_cast<double>(ni) /
            static_cast<double>(ni + nj);
        return wi * dik + (1.0 - wi) * djk;
      }
    }
}

} // namespace

Dendrogram
hierarchicalCluster(const Matrix &scores, Linkage linkage)
{
    const std::size_t n = scores.rows();
    if (n == 0)
        throw std::invalid_argument("hierarchicalCluster: empty input");

    Dendrogram dg;
    dg.leafCount = n;
    dg.nodes.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        dg.nodes[i].observation = static_cast<int>(i);
    if (n == 1)
        return dg;

    // Position-recycled active-cluster state. Positions 0..n_active-1
    // hold active clusters; the distance matrix is dense over
    // positions (float keeps it ~n^2*4 bytes so the 2,906-benchmark
    // clustering stays in tens of MB). nn[] caches each position's
    // nearest neighbor, giving amortized ~O(n^2) total work.
    std::size_t n_active = n;
    std::vector<int> node_at(n);          // position -> node id
    for (std::size_t i = 0; i < n; ++i)
        node_at[i] = static_cast<int>(i);
    std::vector<float> dist(n * n, 0.0f); // position-indexed
    auto d = [&](std::size_t a, std::size_t b) -> float & {
        return dist[a * n + b];
    };

    {
        std::vector<std::vector<double>> rows(n);
        for (std::size_t i = 0; i < n; ++i)
            rows[i] = scores.row(i);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                const auto dd =
                    static_cast<float>(euclidean(rows[i], rows[j]));
                d(i, j) = dd;
                d(j, i) = dd;
            }
        }
    }

    std::vector<std::size_t> nn(n);   // position -> nearest position
    std::vector<float> nn_dist(n);
    auto rescan_nn = [&](std::size_t p) {
        float best = std::numeric_limits<float>::infinity();
        std::size_t arg = p == 0 ? 1 : 0;
        for (std::size_t q = 0; q < n_active; ++q) {
            if (q == p)
                continue;
            const float dd = d(p, q);
            // Deterministic tie-break: smaller node id wins.
            if (dd < best ||
                (dd == best && node_at[q] < node_at[arg])) {
                best = dd;
                arg = q;
            }
        }
        nn[p] = arg;
        nn_dist[p] = best;
    };
    for (std::size_t p = 0; p < n_active; ++p)
        rescan_nn(p);

    while (n_active > 1) {
        // Closest pair via the nearest-neighbor cache.
        std::size_t pa = 0;
        for (std::size_t p = 1; p < n_active; ++p) {
            if (nn_dist[p] < nn_dist[pa] ||
                (nn_dist[p] == nn_dist[pa] &&
                 node_at[p] < node_at[pa]))
                pa = p;
        }
        std::size_t pb = nn[pa];
        if (pa > pb)
            std::swap(pa, pb);

        const int a = node_at[pa];
        const int b = node_at[pb];
        const double height = d(pa, pb);
        DendrogramNode merged;
        merged.left = std::min(a, b);
        merged.right = std::max(a, b);
        merged.height = height;
        merged.size = dg.nodes[static_cast<std::size_t>(a)].size +
                      dg.nodes[static_cast<std::size_t>(b)].size;
        const int id = static_cast<int>(dg.nodes.size());
        dg.nodes.push_back(merged);

        // Lance-Williams distances from the merged cluster (stored at
        // position pa) to every other active cluster.
        const std::size_t na =
            dg.nodes[static_cast<std::size_t>(a)].size;
        const std::size_t nb =
            dg.nodes[static_cast<std::size_t>(b)].size;
        for (std::size_t q = 0; q < n_active; ++q) {
            if (q == pa || q == pb)
                continue;
            const auto dd = static_cast<float>(lanceWilliams(
                linkage, d(pa, q), d(pb, q), na, nb));
            d(pa, q) = dd;
            d(q, pa) = dd;
        }
        node_at[pa] = id;

        // Retire position pb by moving the last active position in.
        const std::size_t last = n_active - 1;
        if (pb != last) {
            node_at[pb] = node_at[last];
            for (std::size_t q = 0; q < n_active; ++q) {
                d(pb, q) = d(last, q);
                d(q, pb) = d(q, last);
            }
            d(pb, pb) = 0.0f;
            nn[pb] = nn[last];
            nn_dist[pb] = nn_dist[last];
        }
        --n_active;
        if (n_active == 1)
            break;

        // Refresh nearest-neighbor caches invalidated by the merge:
        // the merged position itself, anything that pointed at the
        // old pa/pb/last positions, and anything now closer to pa.
        rescan_nn(pa);
        for (std::size_t p = 0; p < n_active; ++p) {
            if (p == pa)
                continue;
            const bool pointed_at_moved =
                nn[p] == pa || nn[p] == pb || nn[p] >= n_active;
            if (pointed_at_moved) {
                rescan_nn(p);
            } else if (d(p, pa) < nn_dist[p]) {
                nn[p] = pa;
                nn_dist[p] = d(p, pa);
            }
        }
    }
    return dg;
}

std::vector<std::size_t>
Dendrogram::leavesUnder(int node) const
{
    std::vector<std::size_t> out;
    std::vector<int> stack{node};
    while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        const auto &nd = nodes[static_cast<std::size_t>(cur)];
        if (nd.isLeaf()) {
            out.push_back(static_cast<std::size_t>(nd.observation));
        } else {
            // Push right first so left is visited first.
            stack.push_back(nd.right);
            stack.push_back(nd.left);
        }
    }
    return out;
}

std::vector<std::vector<std::size_t>>
Dendrogram::cut(std::size_t k) const
{
    if (k == 0 || k > leafCount)
        throw std::invalid_argument("Dendrogram::cut: bad k");

    // Undo the k-1 highest merges: start from the root and repeatedly
    // split the frontier node with the greatest height.
    std::vector<int> frontier{root()};
    while (frontier.size() < k) {
        std::size_t best = 0;
        double best_height = -1.0;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            const auto &nd = nodes[static_cast<std::size_t>(frontier[i])];
            if (!nd.isLeaf() && nd.height > best_height) {
                best_height = nd.height;
                best = i;
            }
        }
        const auto &nd = nodes[static_cast<std::size_t>(frontier[best])];
        if (nd.isLeaf())
            break; // all leaves; cannot split further
        const int left = nd.left;
        const int right = nd.right;
        frontier.erase(frontier.begin() +
                       static_cast<std::ptrdiff_t>(best));
        frontier.push_back(left);
        frontier.push_back(right);
    }

    std::vector<std::vector<std::size_t>> clusters;
    clusters.reserve(frontier.size());
    for (int node : frontier) {
        auto leaves = leavesUnder(node);
        std::sort(leaves.begin(), leaves.end());
        clusters.push_back(std::move(leaves));
    }
    std::sort(clusters.begin(), clusters.end(),
              [](const auto &a, const auto &b) {
                  return a.front() < b.front();
              });
    return clusters;
}

std::string
Dendrogram::renderAscii(const std::vector<std::string> &labels) const
{
    if (labels.size() != leafCount)
        throw std::invalid_argument("renderAscii: label count mismatch");

    std::ostringstream os;
    // Depth-first render: internal nodes show the merge height; leaves
    // show their label. Indentation encodes depth.
    struct Frame { int node; int depth; };
    std::vector<Frame> stack{{root(), 0}};
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        const auto &nd = nodes[static_cast<std::size_t>(f.node)];
        for (int i = 0; i < f.depth; ++i)
            os << "  ";
        if (nd.isLeaf()) {
            os << "- "
               << labels[static_cast<std::size_t>(nd.observation)]
               << '\n';
        } else {
            os << "+ h=";
            os.precision(3);
            os << std::fixed << nd.height << '\n';
            stack.push_back({nd.right, f.depth + 1});
            stack.push_back({nd.left, f.depth + 1});
        }
    }
    return os.str();
}

std::vector<std::size_t>
pickRepresentatives(const Matrix &scores,
                    const std::vector<std::vector<std::size_t>> &clusters)
{
    std::vector<std::size_t> reps;
    reps.reserve(clusters.size());
    for (const auto &members : clusters) {
        if (members.empty())
            throw std::invalid_argument(
                "pickRepresentatives: empty cluster");
        std::vector<double> centroid(scores.cols(), 0.0);
        for (std::size_t m : members)
            for (std::size_t c = 0; c < scores.cols(); ++c)
                centroid[c] += scores(m, c);
        for (double &x : centroid)
            x /= static_cast<double>(members.size());

        std::size_t best = members.front();
        double best_dist = std::numeric_limits<double>::infinity();
        for (std::size_t m : members) {
            const double dd = euclidean(scores.row(m), centroid);
            if (dd < best_dist) {
                best_dist = dd;
                best = m;
            }
        }
        reps.push_back(best);
    }
    return reps;
}

} // namespace netchar::stats
