#include "stats/summary.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace netchar::stats
{

namespace
{

std::string
renderValue(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0.0 ? "inf" : "-inf";
    return std::to_string(v);
}

} // namespace

std::string
SanitizeReport::describe(std::size_t total_rows) const
{
    if (clean())
        return "clean";
    std::ostringstream os;
    os << "dropped " << droppedRows.size() << " of " << total_rows
       << " rows: non-finite at ";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << '(' << cells[i].row << ',' << cells[i].col
           << ")=" << cells[i].value;
    }
    return os.str();
}

Matrix
sanitizeMatrix(const Matrix &data, SanitizeReport &report)
{
    report = SanitizeReport{};
    for (std::size_t r = 0; r < data.rows(); ++r) {
        bool bad = false;
        for (std::size_t c = 0; c < data.cols(); ++c) {
            const double v = data(r, c);
            if (!std::isfinite(v)) {
                report.cells.push_back({r, c, renderValue(v)});
                bad = true;
            }
        }
        if (bad)
            report.droppedRows.push_back(r);
    }
    if (report.clean())
        return data;
    return dropRows(data, report.droppedRows);
}

Matrix
dropRows(const Matrix &data, std::span<const std::size_t> rows)
{
    std::vector<bool> drop(data.rows(), false);
    std::size_t dropped = 0;
    for (const std::size_t r : rows) {
        if (r < data.rows() && !drop[r]) {
            drop[r] = true;
            ++dropped;
        }
    }
    Matrix out(data.rows() - dropped, data.cols());
    std::size_t w = 0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        if (drop[r])
            continue;
        for (std::size_t c = 0; c < data.cols(); ++c)
            out(w, c) = data(r, c);
        ++w;
    }
    return out;
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
populationVariance(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            throw std::invalid_argument("geomean: non-positive input");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        throw std::invalid_argument("pearson: length mismatch");
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
fractionalRanks(std::span<const double> xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return xs[a] < xs[b];
              });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]])
            ++j;
        // Average rank for the tie group [i, j].
        const double avg =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
            1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

double
spearman(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        throw std::invalid_argument("spearman: length mismatch");
    const auto rx = fractionalRanks(xs);
    const auto ry = fractionalRanks(ys);
    return pearson(rx, ry);
}

Summary
summarize(std::span<const double> xs)
{
    Summary s;
    if (xs.empty())
        return s;
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());
    s.mean = mean(xs);
    s.stddev = stddev(xs);
    return s;
}

std::vector<double>
columnMeans(const Matrix &data)
{
    std::vector<double> means(data.cols(), 0.0);
    if (data.rows() == 0)
        return means;
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t c = 0; c < data.cols(); ++c)
            means[c] += data(r, c);
    for (double &m : means)
        m /= static_cast<double>(data.rows());
    return means;
}

std::vector<double>
columnStddevs(const Matrix &data)
{
    std::vector<double> devs(data.cols(), 0.0);
    if (data.rows() < 2)
        return devs;
    const auto means = columnMeans(data);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            const double d = data(r, c) - means[c];
            devs[c] += d * d;
        }
    }
    for (double &v : devs)
        v = std::sqrt(v / static_cast<double>(data.rows() - 1));
    return devs;
}

Matrix
correlationMatrix(const Matrix &data)
{
    const std::size_t m = data.cols();
    Matrix corr(m, m);
    std::vector<std::vector<double>> columns(m);
    for (std::size_t c = 0; c < m; ++c)
        columns[c] = data.col(c);
    for (std::size_t i = 0; i < m; ++i) {
        corr(i, i) = 1.0;
        for (std::size_t j = i + 1; j < m; ++j) {
            const double r = pearson(columns[i], columns[j]);
            corr(i, j) = r;
            corr(j, i) = r;
        }
    }
    return corr;
}

Matrix
standardizeColumns(const Matrix &data)
{
    Matrix out(data.rows(), data.cols());
    const auto means = columnMeans(data);
    const auto devs = columnStddevs(data);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            out(r, c) = devs[c] > 0.0
                ? (data(r, c) - means[c]) / devs[c]
                : 0.0;
        }
    }
    return out;
}

} // namespace netchar::stats
