/**
 * @file
 * Shared deterministic hash helpers: FNV-1a string hashing and the
 * splitmix64 finalizer.
 *
 * These lived as file-local helpers in core/faults.cc until the serve
 * layer's content-addressed result cache needed the identical
 * functions for cache keys; they sit in the base stats library (like
 * textio) so the fault-injection hash and the cache-key hash cannot
 * drift apart. Everything here is a pure function of its inputs —
 * stable across platforms, hosts and build modes, which is what makes
 * fault ledgers replayable and cache keys content-addressed.
 */

#ifndef NETCHAR_STATS_HASH_HH
#define NETCHAR_STATS_HASH_HH

#include <cstdint>
#include <string_view>

namespace netchar
{

/** FNV-1a over a byte string: stable, platform-independent. */
std::uint64_t fnv1a(std::string_view s);

/** FNV-1a continuation: fold more bytes into an existing hash. */
std::uint64_t fnv1a(std::string_view s, std::uint64_t h);

/** splitmix64 finalizer: full-avalanche integer mix. */
std::uint64_t splitmix64(std::uint64_t x);

/** Uniform double in [0, 1) from a mixed hash. */
double unitInterval(std::uint64_t h);

/**
 * 128-bit content hash of a byte string, rendered as 32 lowercase
 * hex characters. Two independent FNV-1a/splitmix64 passes (the
 * second over the reversed byte order) make accidental collisions
 * across cache keys vanishingly unlikely while keeping the function
 * dependency-free and bit-stable everywhere.
 */
std::string contentHashHex(std::string_view s);

} // namespace netchar

#endif // NETCHAR_STATS_HASH_HH
