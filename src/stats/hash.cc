#include "stats/hash.hh"

#include <string>

namespace netchar
{

std::uint64_t
fnv1a(std::string_view s)
{
    return fnv1a(s, 1469598103934665603ULL);
}

std::uint64_t
fnv1a(std::string_view s, std::uint64_t h)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

double
unitInterval(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string
contentHashHex(std::string_view s)
{
    const std::uint64_t lo = splitmix64(fnv1a(s));
    std::string reversed(s.rbegin(), s.rend());
    const std::uint64_t hi = splitmix64(fnv1a(reversed) ^ lo);
    static const char digits[] = "0123456789abcdef";
    std::string hex(32, '0');
    for (int i = 0; i < 16; ++i) {
        hex[15 - i] = digits[(hi >> (4 * i)) & 0xF];
        hex[31 - i] = digits[(lo >> (4 * i)) & 0xF];
    }
    return hex;
}

} // namespace netchar
