#include "stats/pca.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/summary.hh"

namespace netchar::stats
{

Matrix
covarianceMatrix(const Matrix &data)
{
    if (data.rows() < 2)
        throw std::invalid_argument("covarianceMatrix: need >= 2 rows");
    const std::size_t n = data.rows();
    const std::size_t m = data.cols();
    const auto means = columnMeans(data);
    Matrix cov(m, m);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < m; ++i) {
            const double di = data(r, i) - means[i];
            if (di == 0.0)
                continue;
            for (std::size_t j = i; j < m; ++j)
                cov(i, j) += di * (data(r, j) - means[j]);
        }
    }
    const double denom = static_cast<double>(n - 1);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = i; j < m; ++j) {
            cov(i, j) /= denom;
            cov(j, i) = cov(i, j);
        }
    }
    return cov;
}

std::vector<EigenPair>
jacobiEigenSymmetric(const Matrix &symmetric, int max_sweeps)
{
    const std::size_t n = symmetric.rows();
    if (n != symmetric.cols())
        throw std::invalid_argument("jacobiEigenSymmetric: not square");
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (std::fabs(symmetric(i, j) - symmetric(j, i)) > 1e-9)
                throw std::invalid_argument(
                    "jacobiEigenSymmetric: not symmetric");

    Matrix a = symmetric;
    Matrix v = Matrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j)
                off += a(i, j) * a(i, j);
        if (off < 1e-20)
            break;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::fabs(apq) < 1e-15)
                    continue;
                const double app = a(p, p);
                const double aqq = a(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<EigenPair> pairs(n);
    for (std::size_t i = 0; i < n; ++i) {
        pairs[i].value = a(i, i);
        pairs[i].vector = v.col(i);
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const EigenPair &x, const EigenPair &y) {
                  return x.value > y.value;
              });
    return pairs;
}

double
PcaResult::cumulativeExplained() const
{
    return std::accumulate(explainedVariance.begin(),
                           explainedVariance.end(), 0.0);
}

PcaResult
runPca(const Matrix &data, const PcaOptions &options)
{
    if (data.rows() < 2 || data.cols() < 1)
        throw std::invalid_argument("runPca: need >= 2 rows, >= 1 col");
    // A single NaN would silently poison every eigenvector; require
    // callers to sanitizeMatrix() (drop-and-report) first.
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t c = 0; c < data.cols(); ++c)
            if (!std::isfinite(data(r, c)))
                throw std::invalid_argument(
                    "runPca: non-finite input at (" +
                    std::to_string(r) + "," + std::to_string(c) +
                    "); sanitizeMatrix() the data first");

    const Matrix prepared =
        options.standardize ? standardizeColumns(data) : data;
    const Matrix cov = covarianceMatrix(prepared);
    auto pairs = jacobiEigenSymmetric(cov);

    double trace = 0.0;
    for (const auto &p : pairs)
        trace += std::max(p.value, 0.0);

    const std::size_t k = std::min(options.components, data.cols());

    PcaResult result;
    result.loadings = Matrix(k, data.cols());
    result.eigenvalues.resize(k);
    result.explainedVariance.resize(k);

    for (std::size_t comp = 0; comp < k; ++comp) {
        auto vec = pairs[comp].vector;
        // Deterministic sign: largest-|entry| coordinate positive.
        std::size_t arg_max = 0;
        for (std::size_t i = 1; i < vec.size(); ++i)
            if (std::fabs(vec[i]) > std::fabs(vec[arg_max]))
                arg_max = i;
        if (vec[arg_max] < 0.0)
            for (double &x : vec)
                x = -x;
        for (std::size_t i = 0; i < vec.size(); ++i)
            result.loadings(comp, i) = vec[i];
        result.eigenvalues[comp] = pairs[comp].value;
        result.explainedVariance[comp] =
            trace > 0.0 ? std::max(pairs[comp].value, 0.0) / trace : 0.0;
    }

    // Scores: project centered (standardized) data onto loadings.
    const auto means = columnMeans(prepared);
    result.scores = Matrix(prepared.rows(), k);
    for (std::size_t r = 0; r < prepared.rows(); ++r) {
        for (std::size_t comp = 0; comp < k; ++comp) {
            double dot = 0.0;
            for (std::size_t c = 0; c < prepared.cols(); ++c)
                dot += (prepared(r, c) - means[c]) *
                       result.loadings(comp, c);
            result.scores(r, comp) = dot;
        }
    }
    return result;
}

std::vector<std::size_t>
topLoadings(const PcaResult &pca, std::size_t component, std::size_t k)
{
    if (component >= pca.loadings.rows())
        throw std::out_of_range("topLoadings: component out of range");
    std::vector<std::size_t> idx(pca.loadings.cols());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) {
                  return std::fabs(pca.loadings(component, a)) >
                         std::fabs(pca.loadings(component, b));
              });
    idx.resize(std::min(k, idx.size()));
    return idx;
}

} // namespace netchar::stats
