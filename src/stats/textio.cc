#include "stats/textio.hh"

#include <cstdio>

namespace netchar
{

std::string
csvField(const std::string &raw)
{
    if (raw.find_first_of(",\"\n") == std::string::npos)
        return raw;
    std::string out = "\"";
    for (char c : raw) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace netchar
