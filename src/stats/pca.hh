/**
 * @file
 * Principal Component Analysis, as used in §IV-A of the paper to reduce
 * the 24 characterization metrics of Table I to 4 principal components
 * (PRCOs) before clustering, and again in §V-C/§V-D for per-category
 * (control-flow / memory / runtime-event) comparisons.
 *
 * The implementation computes the covariance matrix of the (typically
 * pre-standardized) data and diagonalizes it with the cyclic Jacobi
 * rotation method — exact enough for the <= 24x24 symmetric matrices
 * this library ever sees, with no external dependency.
 */

#ifndef NETCHAR_STATS_PCA_HH
#define NETCHAR_STATS_PCA_HH

#include <cstddef>
#include <vector>

#include "stats/matrix.hh"

namespace netchar::stats
{

/** One eigenpair of a symmetric matrix. */
struct EigenPair
{
    double value = 0.0;
    std::vector<double> vector;
};

/**
 * Diagonalize a symmetric matrix with cyclic Jacobi rotations.
 *
 * @param symmetric Square symmetric input (asymmetry beyond 1e-9 throws
 *                  std::invalid_argument).
 * @param max_sweeps Upper bound on full Jacobi sweeps.
 * @return Eigenpairs sorted by descending eigenvalue; eigenvectors are
 *         unit length and mutually orthogonal.
 */
std::vector<EigenPair> jacobiEigenSymmetric(const Matrix &symmetric,
                                            int max_sweeps = 64);

/**
 * Sample covariance matrix (n-1 denominator) of row-observations.
 * Returns a cols x cols matrix; requires at least 2 rows.
 */
Matrix covarianceMatrix(const Matrix &data);

/** Result of a PCA decomposition. */
struct PcaResult
{
    /**
     * Loading factors: components x metrics matrix W of Equation 1.
     * Row k holds the weights of principal component k over the input
     * metrics. Sign convention: each row is flipped so that its
     * largest-magnitude entry is positive, giving deterministic output.
     */
    Matrix loadings;

    /** Eigenvalues, descending, one per retained component. */
    std::vector<double> eigenvalues;

    /**
     * Fraction of total variance explained by each retained component
     * (eigenvalue / trace). Table III reports these per PRCO.
     */
    std::vector<double> explainedVariance;

    /**
     * Scores: observations x components projection of the (centered)
     * input onto the loadings. These are the PRCO coordinates used for
     * clustering and the scatter plots of Figures 5-7.
     */
    Matrix scores;

    /** Cumulative explained variance of the retained components. */
    double cumulativeExplained() const;
};

/** Options controlling a PCA run. */
struct PcaOptions
{
    /** Number of components to retain (clamped to the metric count). */
    std::size_t components = 4;

    /**
     * Standardize columns to z-scores first (the paper does; loading
     * factors can then be negative, as Table III notes).
     */
    bool standardize = true;
};

/**
 * Run PCA on a data matrix with one row per benchmark and one column
 * per metric.
 *
 * @param data Observations x metrics. Needs >= 2 rows and >= 1 column.
 * @param options Component count and standardization flag.
 * @return Loadings, eigenvalues, explained variance and scores.
 */
PcaResult runPca(const Matrix &data, const PcaOptions &options = {});

/**
 * Indices of the top-k magnitude loadings of one component, descending
 * by |loading| — the layout of Table III's per-PRCO metric lists.
 */
std::vector<std::size_t> topLoadings(const PcaResult &pca,
                                     std::size_t component,
                                     std::size_t k);

} // namespace netchar::stats

#endif // NETCHAR_STATS_PCA_HH
