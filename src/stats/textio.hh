/**
 * @file
 * Shared text-serialization helpers: JSON string escaping and RFC
 * 4180 CSV field quoting.
 *
 * These lived in core/export until the trace exporters needed them
 * too; they sit in the base stats library so every layer (core
 * exports, trace exports) can share one definition. They stay in
 * namespace netchar — they are repo-wide vocabulary, not statistics.
 */

#ifndef NETCHAR_STATS_TEXTIO_HH
#define NETCHAR_STATS_TEXTIO_HH

#include <string>

namespace netchar
{

/**
 * Escape a string for embedding in a JSON document. Control
 * characters become \uXXXX escapes; non-ASCII UTF-8 bytes pass
 * through unchanged (JSON is UTF-8).
 */
std::string jsonEscape(const std::string &raw);

/** Quote a CSV field when needed (RFC 4180). */
std::string csvField(const std::string &raw);

} // namespace netchar

#endif // NETCHAR_STATS_TEXTIO_HH
