#include "stats/matrix.hh"

#include <cmath>
#include <stdexcept>

namespace netchar::stats
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        if (row.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    Matrix m;
    m.rows_ = rows.size();
    m.cols_ = rows.empty() ? 0 : rows.front().size();
    m.data_.reserve(m.rows_ * m.cols_);
    for (const auto &row : rows) {
        if (row.size() != m.cols_)
            throw std::invalid_argument("Matrix::fromRows: ragged rows");
        m.data_.insert(m.data_.end(), row.begin(), row.end());
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    if (r >= rows_ || c >= cols_)
        throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    if (r >= rows_ || c >= cols_)
        throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    if (r >= rows_)
        throw std::out_of_range("Matrix::row");
    return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::vector<double>
Matrix::col(std::size_t c) const
{
    if (c >= cols_)
        throw std::out_of_range("Matrix::col");
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = (*this)(r, c);
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    if (cols_ != rhs.rows_)
        throw std::invalid_argument("Matrix::multiply: shape mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

bool
Matrix::approxEquals(const Matrix &other, double tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i)
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    return true;
}

} // namespace netchar::stats
