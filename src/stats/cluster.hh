/**
 * @file
 * Agglomerative hierarchical clustering over PRCO score vectors, the
 * §IV-B machinery behind Figure 1 and the representative-subset
 * construction of Table IV.
 *
 * Benchmarks start as singleton clusters; the two clusters with the
 * smallest linkage distance merge repeatedly until one root remains.
 * Cutting the resulting dendrogram at k clusters and picking one leaf
 * per cluster yields a k-element representative subset.
 */

#ifndef NETCHAR_STATS_CLUSTER_HH
#define NETCHAR_STATS_CLUSTER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "stats/matrix.hh"

namespace netchar::stats
{

/** Linkage criterion for inter-cluster distance. */
enum class Linkage
{
    Single,   ///< min pairwise distance
    Complete, ///< max pairwise distance
    Average,  ///< unweighted average pairwise distance (UPGMA)
};

/**
 * One node of the dendrogram. Leaves represent input observations;
 * internal nodes record the merge distance. Nodes are stored in a flat
 * vector: entries [0, n) are the leaves, each later entry merges two
 * earlier ones.
 */
struct DendrogramNode
{
    /** Children indices into Dendrogram::nodes; -1/-1 for leaves. */
    int left = -1;
    int right = -1;

    /** Leaf: observation index; internal: -1. */
    int observation = -1;

    /** Linkage distance at which this merge happened (0 for leaves). */
    double height = 0.0;

    /** Number of leaves under this node. */
    std::size_t size = 1;

    bool isLeaf() const { return observation >= 0; }
};

/** Full merge tree produced by hierarchicalCluster(). */
struct Dendrogram
{
    /** 2n-1 nodes; the last one is the root (for n >= 1). */
    std::vector<DendrogramNode> nodes;

    /** Number of observations (leaves). */
    std::size_t leafCount = 0;

    /** Index of the root node. */
    int root() const { return static_cast<int>(nodes.size()) - 1; }

    /**
     * Cut the tree into exactly k clusters (1 <= k <= leafCount) by
     * undoing the k-1 highest merges. Returns, per cluster, the member
     * observation indices in ascending order; clusters are ordered by
     * their smallest member.
     */
    std::vector<std::vector<std::size_t>> cut(std::size_t k) const;

    /** Leaf observation indices under node (in left-to-right order). */
    std::vector<std::size_t> leavesUnder(int node) const;

    /**
     * Render an ASCII tree (Figure 1 style), one leaf per line with
     * merge heights annotated on internal nodes.
     *
     * @param labels One label per observation.
     */
    std::string renderAscii(const std::vector<std::string> &labels) const;
};

/**
 * Cluster row-observations of a score matrix.
 *
 * @param scores Observations x features (typically the top-4 PRCOs).
 * @param linkage Inter-cluster distance criterion; the paper's linkage
 *                tables correspond to Average.
 * @return Dendrogram over scores.rows() leaves.
 */
Dendrogram hierarchicalCluster(const Matrix &scores,
                               Linkage linkage = Linkage::Average);

/** Euclidean distance between two equal-length vectors. */
double euclidean(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Pick one representative observation per cluster: the member closest
 * to its cluster centroid (deterministic stand-in for the paper's
 * "picked one randomly").
 *
 * @param scores The feature matrix that was clustered.
 * @param clusters Output of Dendrogram::cut().
 * @return One observation index per cluster, cluster order preserved.
 */
std::vector<std::size_t>
pickRepresentatives(const Matrix &scores,
                    const std::vector<std::vector<std::size_t>> &clusters);

} // namespace netchar::stats

#endif // NETCHAR_STATS_CLUSTER_HH
