/**
 * @file
 * Minimal dense row-major matrix used by the PCA and clustering code.
 *
 * Deliberately small: the characterization data sets are at most a few
 * thousand rows by a few dozen columns, so no BLAS, no expression
 * templates — just bounds-checked storage plus the handful of
 * operations the analysis pipeline needs.
 */

#ifndef NETCHAR_STATS_MATRIX_HH
#define NETCHAR_STATS_MATRIX_HH

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace netchar::stats
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /**
     * Build from nested initializer lists; all inner lists must have
     * the same length. Throws std::invalid_argument otherwise.
     */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** Build from a vector of equal-length rows. */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    /** Element access, bounds-checked (throws std::out_of_range). */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Unchecked element access for hot loops. */
    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Copy of row r as a vector. */
    std::vector<double> row(std::size_t r) const;

    /** Copy of column c as a vector. */
    std::vector<double> col(std::size_t c) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Matrix product this * rhs; dimensions must agree. */
    Matrix multiply(const Matrix &rhs) const;

    /** Elementwise approximate equality within tol. */
    bool approxEquals(const Matrix &other, double tol = 1e-9) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace netchar::stats

#endif // NETCHAR_STATS_MATRIX_HH
