/**
 * @file
 * Summary statistics used throughout the characterization pipeline:
 * means, standard deviations, geometric means (SPECspeed-style
 * composite scores), Pearson correlation (for the §VII runtime-event
 * studies), and column standardization (z-scores) required before PCA.
 */

#ifndef NETCHAR_STATS_SUMMARY_HH
#define NETCHAR_STATS_SUMMARY_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stats/matrix.hh"

namespace netchar::stats
{

/** One non-finite value found while screening a data matrix. */
struct NonFiniteCell
{
    std::size_t row = 0;
    std::size_t col = 0;
    /** The offending value, rendered ("nan", "inf", "-inf"). */
    std::string value;
};

/** What sanitizeMatrix() found and did. */
struct SanitizeReport
{
    /** Every non-finite cell, in (row, col) order. */
    std::vector<NonFiniteCell> cells;
    /** Rows removed (each held at least one non-finite cell), in
     *  ascending order of original row index. */
    std::vector<std::size_t> droppedRows;

    /** True when the input was already clean. */
    bool clean() const { return cells.empty(); }
    /** Human-readable one-liner, e.g.
     *  "dropped 2 of 40 rows: non-finite at (3,5)=nan, (17,0)=inf". */
    std::string describe(std::size_t total_rows) const;
};

/**
 * Screen a data matrix for non-finite values and drop every affected
 * row, reporting each offending (row, column) — never silently impute.
 * The returned matrix keeps surviving rows in their original order.
 */
Matrix sanitizeMatrix(const Matrix &data, SanitizeReport &report);

/** Copy `data` without the given rows (ascending, deduplicated). */
Matrix dropRows(const Matrix &data, std::span<const std::size_t> rows);

/** Arithmetic mean; 0 for an empty input. */
double mean(std::span<const double> xs);

/**
 * Sample standard deviation (n-1 denominator); 0 for fewer than two
 * samples.
 */
double stddev(std::span<const double> xs);

/** Population variance (n denominator); 0 for an empty input. */
double populationVariance(std::span<const double> xs);

/**
 * Geometric mean. All inputs must be > 0 (throws std::invalid_argument
 * otherwise); 0 for an empty input. Used for composite benchmark
 * scores, mirroring SPECspeed.
 */
double geomean(std::span<const double> xs);

/**
 * Pearson correlation coefficient of two equal-length series.
 * Returns 0 when either series is constant (correlation undefined).
 * Throws std::invalid_argument on length mismatch.
 */
double pearson(std::span<const double> xs, std::span<const double> ys);

/**
 * Spearman rank correlation: Pearson over fractional ranks (ties get
 * the average rank). Robust to outliers and monotone-nonlinear
 * couplings; used as a cross-check in the §VII correlation studies.
 */
double spearman(std::span<const double> xs, std::span<const double> ys);

/**
 * Fractional ranks of a series (1-based; ties share the average of
 * the ranks they span).
 */
std::vector<double> fractionalRanks(std::span<const double> xs);

/** Min/max/mean/stddev bundle for reporting. */
struct Summary
{
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

/** Compute a Summary over a series; zeroes for an empty input. */
Summary summarize(std::span<const double> xs);

/**
 * Column standardization: subtract each column's mean and divide by its
 * sample standard deviation. Constant columns (stddev == 0) are mapped
 * to all-zero columns rather than NaN, matching common PCA practice for
 * degenerate metrics.
 *
 * @param data One row per observation, one column per metric.
 * @return Matrix of the same shape with z-scored columns.
 */
Matrix standardizeColumns(const Matrix &data);

/** Per-column means of a matrix. */
std::vector<double> columnMeans(const Matrix &data);

/** Per-column sample standard deviations of a matrix. */
std::vector<double> columnStddevs(const Matrix &data);

/**
 * Pearson correlation matrix of the columns of a data matrix
 * (observations x metrics). Constant columns yield zero correlation
 * against everything (and 1 on the diagonal).
 */
Matrix correlationMatrix(const Matrix &data);

} // namespace netchar::stats

#endif // NETCHAR_STATS_SUMMARY_HH
