/**
 * @file
 * Deterministic random number generation for the simulator and the
 * synthetic workload generators.
 *
 * Every stochastic component in netchar draws from an explicitly seeded
 * Rng so that a given (workload, machine, options) triple reproduces
 * byte-identical results. std::mt19937 is avoided because its state is
 * large and its distributions are not guaranteed to be identical across
 * standard library implementations.
 */

#ifndef NETCHAR_STATS_RNG_HH
#define NETCHAR_STATS_RNG_HH

#include <cmath>
#include <cstdint>

namespace netchar::stats
{

/**
 * SplitMix64 step. Used to derive independent seeds from a master seed.
 *
 * @param state In/out 64-bit state; advanced by one step.
 * @return A well-mixed 64-bit value.
 */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * Small (32 bytes of state), fast, and with a guaranteed cross-platform
 * output sequence. Distribution helpers are hand-rolled for the same
 * reproducibility reason.
 */
class Rng
{
  public:
    /** Construct from a master seed; substreams via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Derive an independent generator for a named substream. */
    Rng
    fork(std::uint64_t stream_id) const
    {
        std::uint64_t mix = state_[0] ^ (stream_id * 0x9E3779B97F4A7C15ULL);
        return Rng(splitMix64(mix));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound). Returns 0 when bound == 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound
        // which is negligible for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponential variate with the given mean (> 0). */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(1.0 - u);
    }

    /** Standard normal variate (Box-Muller, one value per call). */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(6.28318530717958647692 * u2);
    }

    /** Normal variate with the given mean and standard deviation. */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /**
     * Log-normally perturb a base value: base * exp(sigma * N(0,1)).
     * Used to expand benchmark category profiles into per-benchmark
     * variants.
     */
    double
    jitter(double base, double sigma)
    {
        return base * std::exp(sigma * normal());
    }

    /**
     * Zipf-like rank selection over [0, n): rank r is drawn with weight
     * proportional to 1 / (r + 1)^s. Uses inverse-CDF over a harmonic
     * approximation; exact normalization is irrelevant for the
     * reuse-distance modeling it supports.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        if (n <= 1)
            return 0;
        // Inverse of the continuous CDF of x^-s on [1, n+1).
        const double u = uniform();
        double value;
        if (std::fabs(s - 1.0) < 1e-9) {
            value = std::pow(static_cast<double>(n) + 1.0, u);
        } else {
            const double one_minus_s = 1.0 - s;
            const double top =
                std::pow(static_cast<double>(n) + 1.0, one_minus_s);
            value = std::pow(u * (top - 1.0) + 1.0, 1.0 / one_minus_s);
        }
        auto rank = static_cast<std::uint64_t>(value) - 1;
        return rank >= n ? n - 1 : rank;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace netchar::stats

#endif // NETCHAR_STATS_RNG_HH
