#include "workloads/registry.hh"

namespace netchar::wl
{

std::vector<WorkloadProfile>
suiteProfiles(Suite suite)
{
    switch (suite) {
      case Suite::DotNet: return dotnetCategories();
      case Suite::AspNet: return aspnetBenchmarks();
      case Suite::SpecCpu17: return specBenchmarks();
      default: return {};
    }
}

std::vector<WorkloadProfile>
allProfiles()
{
    std::vector<WorkloadProfile> out = dotnetCategories();
    const auto asp = aspnetBenchmarks();
    out.insert(out.end(), asp.begin(), asp.end());
    const auto spec = specBenchmarks();
    out.insert(out.end(), spec.begin(), spec.end());
    return out;
}

std::optional<WorkloadProfile>
findProfile(std::string_view name)
{
    for (auto &p : allProfiles())
        if (p.name == name)
            return p;
    return std::nullopt;
}

} // namespace netchar::wl
