#include "workloads/profile.hh"

#include <algorithm>
#include <stdexcept>

#include "stats/rng.hh"

namespace netchar::wl
{

std::string
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::DotNet: return ".NET";
      case Suite::AspNet: return "ASP.NET";
      case Suite::SpecCpu17: return "SPEC CPU17";
      default: return "unknown";
    }
}

namespace
{

void
requireFraction(double value, const char *what)
{
    if (value < 0.0 || value > 1.0)
        throw std::invalid_argument(
            std::string("WorkloadProfile: ") + what + " out of [0,1]");
}

} // namespace

void
WorkloadProfile::validate() const
{
    if (name.empty())
        throw std::invalid_argument("WorkloadProfile: empty name");
    if (instructions == 0)
        throw std::invalid_argument("WorkloadProfile: zero instructions");
    requireFraction(branchFrac, "branchFrac");
    requireFraction(loadFrac, "loadFrac");
    requireFraction(storeFrac, "storeFrac");
    requireFraction(mulFrac, "mulFrac");
    requireFraction(divFrac, "divFrac");
    requireFraction(microcodedFrac, "microcodedFrac");
    requireFraction(kernelFrac, "kernelFrac");
    requireFraction(callFrac, "callFrac");
    requireFraction(takenFrac, "takenFrac");
    requireFraction(streamFrac, "streamFrac");
    requireFraction(stackFrac, "stackFrac");
    requireFraction(warmFrac, "warmFrac");
    requireFraction(coolFrac, "coolFrac");
    if (stackFrac + streamFrac + warmFrac + coolFrac > 1.0)
        throw std::invalid_argument(
            "WorkloadProfile: access tiers exceed 1");
    if (branchBias < 0.5 || branchBias > 1.0)
        throw std::invalid_argument(
            "WorkloadProfile: branchBias out of [0.5,1]");
    if (branchFrac + loadFrac + storeFrac + mulFrac + divFrac > 1.0)
        throw std::invalid_argument(
            "WorkloadProfile: instruction mix exceeds 1");
    if (ilp <= 0.0 || mlp < 1.0)
        throw std::invalid_argument("WorkloadProfile: bad ilp/mlp");
    if (cpuUtil <= 0.0 || cpuUtil > 1.0)
        throw std::invalid_argument("WorkloadProfile: bad cpuUtil");
    if (methods == 0 || meanMethodBytes == 0)
        throw std::invalid_argument("WorkloadProfile: empty code side");
    if (dataFootprint == 0)
        throw std::invalid_argument("WorkloadProfile: empty data side");
    if (managed) {
        if (maxHeapBytes < dataFootprint)
            throw std::invalid_argument(
                "WorkloadProfile: heap smaller than live set");
        if (allocBytesPerInst < 0.0 || meanObjectBytes <= 0.0)
            throw std::invalid_argument(
                "WorkloadProfile: bad allocation behaviour");
    }
    if (exceptionPki < 0.0 || contentionPki < 0.0)
        throw std::invalid_argument("WorkloadProfile: negative PKI");
}

WorkloadProfile
WorkloadProfile::makeVariant(unsigned variant_index, double sigma) const
{
    stats::Rng rng =
        stats::Rng(seed).fork(0xBE4C4E00ULL + variant_index);
    WorkloadProfile v = *this;
    v.name = name + "/" + std::to_string(variant_index);
    v.seed = seed ^ (0x9E3779B97F4A7C15ULL * (variant_index + 1));

    auto jitter_frac = [&](double base, double cap) {
        return std::clamp(rng.jitter(base, sigma), 0.0, cap);
    };
    v.branchFrac = jitter_frac(branchFrac, 0.35);
    v.loadFrac = jitter_frac(loadFrac, 0.45);
    v.storeFrac = jitter_frac(storeFrac, 0.30);
    // Keep the mix feasible after jitter.
    const double mix =
        v.branchFrac + v.loadFrac + v.storeFrac + v.mulFrac + v.divFrac;
    if (mix > 0.95) {
        const double scale = 0.95 / mix;
        v.branchFrac *= scale;
        v.loadFrac *= scale;
        v.storeFrac *= scale;
        v.mulFrac *= scale;
        v.divFrac *= scale;
    }
    v.kernelFrac = jitter_frac(kernelFrac, 0.8);
    v.ilp = std::clamp(rng.jitter(ilp, sigma), 0.5, 6.0);
    v.mlp = std::clamp(rng.jitter(mlp, sigma), 1.0, 12.0);
    v.methods = std::max(8u, static_cast<unsigned>(
        rng.jitter(static_cast<double>(methods), sigma)));
    v.meanMethodBytes = std::max<std::uint64_t>(
        128, static_cast<std::uint64_t>(rng.jitter(
                 static_cast<double>(meanMethodBytes), sigma)));
    v.dataFootprint = std::max<std::uint64_t>(
        64 * 1024, static_cast<std::uint64_t>(rng.jitter(
                       static_cast<double>(dataFootprint), sigma)));
    if (v.managed && v.maxHeapBytes < v.dataFootprint)
        v.maxHeapBytes = v.dataFootprint * 2;
    v.dataZipf = std::clamp(rng.jitter(dataZipf, sigma), 0.2, 1.6);
    v.branchBias =
        std::clamp(rng.jitter(branchBias, sigma * 0.3), 0.55, 0.99);
    v.streamFrac = jitter_frac(streamFrac, 0.9);
    v.stackFrac = jitter_frac(stackFrac, 0.6);
    v.warmFrac = jitter_frac(warmFrac, 0.3);
    v.coolFrac = jitter_frac(coolFrac, 0.2);
    const double tiers =
        v.stackFrac + v.streamFrac + v.warmFrac + v.coolFrac;
    if (tiers > 0.98) {
        const double scale = 0.98 / tiers;
        v.stackFrac *= scale;
        v.streamFrac *= scale;
        v.warmFrac *= scale;
        v.coolFrac *= scale;
    }
    v.allocBytesPerInst =
        std::max(0.0, rng.jitter(allocBytesPerInst, sigma));
    v.validate();
    return v;
}

} // namespace netchar::wl
