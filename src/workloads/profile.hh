/**
 * @file
 * Statistical workload profiles.
 *
 * A WorkloadProfile is the complete behavioral description of one
 * benchmark: instruction mix, code/data footprints and localities,
 * branch predictability, kernel share, and managed-runtime behavior
 * (allocation rate, heap sizes, GC mode, JIT tiering). SynthWorkload
 * turns a profile into a deterministic instruction stream.
 *
 * Memory sizes use the repository's 1:100 simulation scale: simulated
 * runs cover ~10^6 instructions instead of the paper's ~10^10, so
 * heaps/footprints are scaled by the same factor to keep event *rates*
 * (GCs per kilo-instruction, MPKI regimes relative to cache sizes)
 * in the regimes the paper reports. DESIGN.md documents this.
 */

#ifndef NETCHAR_WORKLOADS_PROFILE_HH
#define NETCHAR_WORKLOADS_PROFILE_HH

#include <cstdint>
#include <string>

#include "runtime/gc.hh"

namespace netchar::wl
{

/** Benchmark suite a profile belongs to. */
enum class Suite { DotNet, AspNet, SpecCpu17 };

/** Human-readable suite label (matches the paper's figures). */
std::string suiteName(Suite suite);

/** Complete behavioral description of one benchmark. */
struct WorkloadProfile
{
    std::string name;
    Suite suite = Suite::DotNet;
    std::string description;

    /** Default measured instructions for one run. */
    std::uint64_t instructions = 2'000'000;

    // ---- Instruction mix (fractions of the dynamic stream) ----
    double branchFrac = 0.17;
    double loadFrac = 0.29;
    double storeFrac = 0.16;
    double mulFrac = 0.03;
    double divFrac = 0.002;
    /** Fraction of instructions decoding through the MS ROM. */
    double microcodedFrac = 0.01;

    /** Fraction of instructions executed in kernel mode. */
    double kernelFrac = 0.08;
    /** Mean kernel-burst length in instructions (syscall service). */
    double kernelBurstLen = 150.0;

    /** Intrinsic instruction-level parallelism. */
    double ilp = 2.2;
    /** Memory-level parallelism (overlapping misses). */
    double mlp = 2.0;
    /** CPU utilization (Table I metric 6; load-dependent for servers). */
    double cpuUtil = 1.0;

    // ---- Code side ----
    /** Number of hot methods/functions. */
    unsigned methods = 256;
    /** Mean machine-code bytes per method. */
    std::uint64_t meanMethodBytes = 1024;
    /** Zipf skew of method popularity (higher = hotter hot set). */
    double methodZipf = 0.9;
    /** Fraction of taken branches that call into another method. */
    double callFrac = 0.15;
    /** Overall taken fraction target for branches. */
    double takenFrac = 0.60;
    /** Per-site branch determinism (predictability knob, 0.5-1). */
    double branchBias = 0.88;

    // ---- Data side ----
    /**
     * Main data working set: live heap bytes for managed workloads,
     * static footprint for native ones (simulation scale).
     */
    std::uint64_t dataFootprint = 8ULL * 1024 * 1024;
    /** Zipf skew of the cool tier's reuse (higher = tighter). */
    double dataZipf = 0.9;
    /** Fraction of accesses that stream sequentially (8 B stride). */
    double streamFrac = 0.10;
    /** Fraction of accesses hitting the hot stack/frame region. */
    double stackFrac = 0.35;
    /**
     * Reuse-distance tiers (fractions of all data accesses): `warm`
     * touches an L2-scale slice of the footprint, `cool` ranges over
     * the whole footprint. Whatever remains after stack/stream/warm/
     * cool goes to the L1-resident hot tier. Real programs keep the
     * overwhelming majority of accesses L1-resident; these two knobs
     * set each benchmark's L1/L2/LLC miss regime directly.
     */
    double warmFrac = 0.035;
    double coolFrac = 0.010;

    // ---- Managed runtime ----
    /** False for native (SPEC-style) workloads: no CLR at all. */
    bool managed = true;
    /** Mean allocated bytes per instruction. */
    double allocBytesPerInst = 0.40;
    /** Mean allocation (object) size in bytes. */
    double meanObjectBytes = 192.0;
    /** Max heap (simulation scale; the Fig 14 sweep overrides it). */
    std::uint64_t maxHeapBytes = 32ULL * 1024 * 1024;
    rt::GcMode gcMode = rt::GcMode::Workstation;
    rt::GcAssist gcAssist = rt::GcAssist::Software;
    /** Calls before tier-1 re-JIT (0 disables tiering). */
    unsigned tierUpCallThreshold = 128;

    /** Exception/Start events per kilo-instruction. */
    double exceptionPki = 0.005;
    /** Contention/Start events per kilo-instruction. */
    double contentionPki = 0.005;

    /** Master seed for this benchmark's streams. */
    std::uint64_t seed = 1;

    /**
     * Validate invariants (fractions within [0,1], mix sums <= 1,
     * non-zero footprints). Throws std::invalid_argument on violation.
     */
    void validate() const;

    /**
     * Derive a perturbed variant (for expanding a category profile
     * into its individual microbenchmarks). Deterministic in
     * (profile.seed, variant_index).
     *
     * @param variant_index Index of the microbenchmark in the category.
     * @param sigma Log-normal jitter strength.
     */
    WorkloadProfile makeVariant(unsigned variant_index,
                                double sigma = 0.25) const;
};

} // namespace netchar::wl

#endif // NETCHAR_WORKLOADS_PROFILE_HH
