/**
 * @file
 * SynthWorkload: turns a WorkloadProfile into a deterministic
 * instruction stream executed on a sim::Core.
 *
 * The generator is a small state machine. In User mode it walks the
 * benchmark's method bodies (sequential PCs punctuated by biased
 * branches and zipf-distributed method calls) and issues data accesses
 * from a frontier-hot reuse-distance model over the heap/static data
 * region. Events switch it into burst modes:
 *
 *  - Kernel  : syscall/networking-stack service bursts (kernel PCs);
 *  - Jit     : the CLR compiles a method (branchy compiler code, IR
 *              reads, code-page stores), after which the method lives
 *              at a NEW address -> natural cold starts downstream;
 *  - Gc      : a collection sweeps the live heap (streaming loads and
 *              stores), then the heap spread snaps tight -> natural
 *              locality improvement downstream;
 *  - Except  : exception dispatch/unwind burst;
 *  - Contend : lock-contention spin burst.
 *
 * Everything is seeded; identical (profile, seed, machine) tuples
 * replay identical streams.
 */

#ifndef NETCHAR_WORKLOADS_SYNTH_HH
#define NETCHAR_WORKLOADS_SYNTH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/clr.hh"
#include "sim/core.hh"
#include "sim/inst.hh"
#include "stats/rng.hh"
#include "workloads/profile.hh"

namespace netchar::wl
{

/** Address-layout maturity factors (from sim::MachineConfig). */
struct SpreadFactors
{
    double code = 1.0;
    double data = 1.0;
};

/**
 * A running instance of one benchmark. One instance per core; server
 * workloads (ASP.NET) share a single Clr across instances to model
 * one multi-threaded process.
 */
class SynthWorkload
{
  public:
    /**
     * @param profile Validated behavioral profile.
     * @param run_seed Seed for this run (vary per repetition).
     * @param shared_clr Optional pre-built runtime shared across
     *        cores; when null and the profile is managed, a private
     *        Clr is created.
     * @param spread Code/data layout spread (Arm software-stack
     *        maturity modeling; 1.0/1.0 for the Intel stack).
     */
    SynthWorkload(const WorkloadProfile &profile, std::uint64_t run_seed,
                  std::shared_ptr<rt::Clr> shared_clr = nullptr,
                  SpreadFactors spread = {});

    /**
     * Execute `count` instructions on `core`. May be called repeatedly
     * (interval sampling, multi-core round-robin interleaving); state
     * carries across calls.
     */
    void run(sim::Core &core, std::uint64_t count);

    /** Profile in use. */
    const WorkloadProfile &profile() const { return profile_; }

    /** Managed runtime, or nullptr for native workloads. */
    rt::Clr *clr() { return clr_.get(); }
    const rt::Clr *clr() const { return clr_.get(); }

    /** Instructions generated so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Build the shared Clr for a multi-core run of a managed profile
     * (one process, many server threads).
     */
    static std::shared_ptr<rt::Clr>
    makeClr(const WorkloadProfile &profile, std::uint64_t seed,
            SpreadFactors spread = {});

  private:
    enum class Mode { User, Kernel, Jit, Gc, Exception, Contention };

    void step(sim::Core &core);
    sim::Inst userInst();
    sim::Inst kernelInst();
    sim::Inst jitInst();
    sim::Inst gcInst();
    sim::Inst exceptionInst();
    sim::Inst contentionInst();

    /** Data address from the frontier-hot reuse model. */
    std::uint64_t dataAddress();
    /** Pick an instruction kind from mix fractions. */
    sim::InstKind pickKind(double branch, double load, double store,
                           double mul, double div);
    /** Handle a user-mode branch at the current PC; returns the inst. */
    sim::Inst userBranch(std::uint64_t pc);
    /** Switch to method `index` (JIT-compiling it if managed). */
    void enterMethod(unsigned index, sim::Core &core);
    /** Per-user-instruction runtime bookkeeping (allocation, events). */
    void userTick(sim::Core &core);
    /** Spread-adjusted heap/data region width in bytes. */
    std::uint64_t dataRegionBytes() const;

    WorkloadProfile profile_;
    SpreadFactors spread_;
    stats::Rng rng_;
    std::shared_ptr<rt::Clr> clr_;

    // Native code layout (unused when managed).
    std::vector<std::uint64_t> nativeBase_;
    std::vector<std::uint64_t> nativeBytes_;

    // Execution state.
    Mode mode_ = Mode::User;
    std::uint64_t burstRemaining_ = 0;
    unsigned currentMethod_ = 0;
    std::uint64_t methodBase_ = 0;
    std::uint64_t methodBytes_ = 0;
    std::uint64_t pcOffset_ = 0;

    std::uint64_t kernelPc_ = 0;
    std::uint64_t jitPc_ = 0;
    std::uint64_t gcPc_ = 0;
    std::uint64_t gcScanOffset_ = 0;
    std::uint64_t jitEmitAddr_ = 0;
    std::uint64_t streamOffset_ = 0;

    /**
     * Per-worker displacement of the hot/warm data windows inside the
     * shared heap: server threads work on their own in-flight
     * requests, so each core's near-term working set is private even
     * though the heap, code and cool data are shared.
     */
    std::uint64_t workerOffset_ = 0;

    double allocAccum_ = 0.0;
    std::uint64_t executed_ = 0;
    sim::Core *activeCore_ = nullptr;
};

} // namespace netchar::wl

#endif // NETCHAR_WORKLOADS_SYNTH_HH
