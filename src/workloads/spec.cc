#include "workloads/spec.hh"

#include <stdexcept>

namespace netchar::wl
{

namespace
{

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

/**
 * Baseline native SPEC benchmark. Relative to managed suites (§V):
 * no CLR/kernel time, denser and smaller code, more loads and fewer
 * stores, far more diverse branch behavior, and much larger data
 * footprints (1:100 simulation scale of the up-to-16 GB real sets).
 */
WorkloadProfile
specBase(const char *name, const char *description, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.suite = Suite::SpecCpu17;
    p.description = description;
    p.seed = seed;
    p.instructions = 2'000'000;
    p.branchFrac = 0.15;
    p.loadFrac = 0.36;
    p.storeFrac = 0.11;
    p.mulFrac = 0.04;
    p.divFrac = 0.002;
    p.microcodedFrac = 0.002;
    p.kernelFrac = 0.005;
    p.kernelBurstLen = 80.0;
    p.ilp = 2.4;
    p.mlp = 3.0;
    p.methods = 220;
    p.meanMethodBytes = 1000;
    p.methodZipf = 1.50;
    p.callFrac = 0.10;
    p.takenFrac = 0.62;
    p.branchBias = 0.93;
    p.dataFootprint = 32 * MiB;
    p.dataZipf = 0.70;
    p.streamFrac = 0.20;
    p.stackFrac = 0.30;
    // SPEC exercises all levels of the hierarchy (Fig 8: L1d ~29,
    // L2 ~11, LLC ~0.98 MPKI geomeans, with wide spread).
    p.warmFrac = 0.040;
    p.coolFrac = 0.014;
    p.managed = false; // no CLR: the defining difference
    p.exceptionPki = 0.0;
    p.contentionPki = 0.0;
    return p;
}

std::vector<WorkloadProfile>
buildSpec()
{
    std::vector<WorkloadProfile> out;
    out.reserve(kSpecBenchmarks);
    std::uint64_t seed = 0x53EC'0000'0000'0000ULL;
    auto add = [&](WorkloadProfile p) {
        p.validate();
        out.push_back(std::move(p));
    };

    // ---- SPECint ----
    {
        auto p = specBase("perlbench", "Perl interpreter", ++seed);
        p.branchFrac = 0.21;
        p.branchBias = 0.90;
        p.methods = 700;
        p.meanMethodBytes = 1400;
        p.dataFootprint = 12 * MiB;
        p.dataZipf = 0.95;
        p.ilp = 1.9;
        p.methodZipf = 1.25;
        add(p);
    }
    {
        auto p = specBase("gcc", "GNU C compiler", ++seed);
        p.branchFrac = 0.22;
        p.branchBias = 0.89;
        p.methods = 1800;
        p.meanMethodBytes = 1600;
        p.dataFootprint = 24 * MiB;
        p.dataZipf = 0.85;
        p.ilp = 1.8;
        p.mlp = 2.0;
        p.warmFrac = 0.05;
        p.coolFrac = 0.02;
        p.methodZipf = 1.15;
        add(p);
    }
    {
        // Pointer-chasing graph optimizer: the memory-bound extreme.
        auto p = specBase("mcf", "Vehicle scheduling (MCF)", ++seed);
        p.branchFrac = 0.19;
        p.branchBias = 0.91;
        p.methods = 40;
        p.meanMethodBytes = 700;
        p.dataFootprint = 160 * MiB;
        p.dataZipf = 0.35;
        p.streamFrac = 0.05;
        p.stackFrac = 0.10;
        p.loadFrac = 0.40;
        p.ilp = 1.2;
        p.mlp = 1.6;
        p.warmFrac = 0.06;
        p.coolFrac = 0.10;
        add(p);
    }
    {
        auto p = specBase("omnetpp", "Discrete event simulation",
                          ++seed);
        p.branchFrac = 0.20;
        p.branchBias = 0.90;
        p.methods = 900;
        p.dataFootprint = 64 * MiB;
        p.dataZipf = 0.55;
        p.stackFrac = 0.20;
        p.ilp = 1.6;
        p.mlp = 1.8;
        p.warmFrac = 0.05;
        p.coolFrac = 0.04;
        p.methodZipf = 1.30;
        add(p);
    }
    {
        // The branchiest SPEC program (§V-B).
        auto p = specBase("xalancbmk", "XSLT processor", ++seed);
        p.branchFrac = 0.26;
        p.branchBias = 0.87;
        p.methods = 1200;
        p.meanMethodBytes = 1100;
        p.dataFootprint = 16 * MiB;
        p.dataZipf = 0.80;
        p.ilp = 1.7;
        p.warmFrac = 0.05;
        p.coolFrac = 0.02;
        p.methodZipf = 1.20;
        add(p);
    }
    {
        auto p = specBase("x264", "Video encoder", ++seed);
        p.branchFrac = 0.09;
        p.branchBias = 0.92;
        p.streamFrac = 0.55;
        p.mulFrac = 0.08;
        p.dataFootprint = 20 * MiB;
        p.ilp = 3.4;
        p.mlp = 4.5;
        add(p);
    }
    {
        auto p = specBase("deepsjeng", "Chess search", ++seed);
        p.branchFrac = 0.17;
        p.branchBias = 0.91;
        p.methods = 120;
        p.dataFootprint = 7 * MiB;
        p.dataZipf = 0.9;
        p.ilp = 2.0;
        p.warmFrac = 0.03;
        p.coolFrac = 0.008;
        add(p);
    }
    {
        auto p = specBase("leela", "Go engine (MCTS)", ++seed);
        p.branchFrac = 0.18;
        p.branchBias = 0.90;
        p.methods = 260;
        p.dataFootprint = 4 * MiB;
        p.dataZipf = 0.85;
        p.ilp = 1.9;
        p.warmFrac = 0.025;
        p.coolFrac = 0.006;
        add(p);
    }
    {
        // Tiny footprint, very high retiring fraction.
        auto p = specBase("exchange2", "Recursive sudoku solver",
                          ++seed);
        p.branchFrac = 0.20;
        p.branchBias = 0.95;
        p.methods = 30;
        p.meanMethodBytes = 2400;
        p.dataFootprint = 640 * KiB;
        p.dataZipf = 1.2;
        p.stackFrac = 0.50;
        p.ilp = 2.8;
        p.warmFrac = 0.008;
        p.coolFrac = 0.001;
        add(p);
    }
    {
        auto p = specBase("xz", "LZMA compression", ++seed);
        p.branchFrac = 0.16;
        p.branchBias = 0.90;
        p.streamFrac = 0.35;
        p.dataFootprint = 64 * MiB;
        p.dataZipf = 0.6;
        p.ilp = 2.0;
        p.mlp = 2.4;
        p.warmFrac = 0.04;
        p.coolFrac = 0.03;
        add(p);
    }

    // ---- SPECfp ----
    {
        // Streaming-dominated CFD solver with a huge grid.
        auto p = specBase("bwaves", "Blast-wave CFD solver", ++seed);
        p.branchFrac = 0.03;
        p.branchBias = 0.99;
        p.loadFrac = 0.44;
        p.storeFrac = 0.12;
        p.mulFrac = 0.10;
        p.streamFrac = 0.85;
        p.methods = 25;
        p.meanMethodBytes = 3200;
        p.dataFootprint = 160 * MiB;
        p.dataZipf = 0.3;
        p.stackFrac = 0.06;
        p.ilp = 3.2;
        p.mlp = 6.0;
        p.warmFrac = 0.02;
        p.coolFrac = 0.02;
        add(p);
    }
    {
        auto p = specBase("cactuBSSN", "Numerical relativity stencil",
                          ++seed);
        p.branchFrac = 0.04;
        p.branchBias = 0.985;
        p.loadFrac = 0.42;
        p.mulFrac = 0.12;
        p.streamFrac = 0.70;
        p.methods = 60;
        p.meanMethodBytes = 5200;
        p.dataFootprint = 96 * MiB;
        p.dataZipf = 0.4;
        p.ilp = 2.8;
        p.mlp = 5.0;
        p.stackFrac = 0.10;
        add(p);
    }
    {
        auto p = specBase("lbm", "Lattice Boltzmann method", ++seed);
        p.branchFrac = 0.02;
        p.branchBias = 0.995;
        p.loadFrac = 0.42;
        p.storeFrac = 0.16;
        p.streamFrac = 0.90;
        p.methods = 15;
        p.dataFootprint = 128 * MiB;
        p.dataZipf = 0.25;
        p.stackFrac = 0.04;
        p.ilp = 3.0;
        p.mlp = 7.0;
        p.warmFrac = 0.015;
        p.coolFrac = 0.015;
        add(p);
    }
    {
        // Weather model: the big-code FP program.
        auto p = specBase("wrf", "Weather research & forecasting",
                          ++seed);
        p.branchFrac = 0.08;
        p.branchBias = 0.95;
        p.mulFrac = 0.09;
        p.streamFrac = 0.45;
        p.methods = 1500;
        p.meanMethodBytes = 2600;
        p.dataFootprint = 48 * MiB;
        p.dataZipf = 0.55;
        p.ilp = 2.6;
        p.mlp = 3.5;
        p.methodZipf = 1.25;
        add(p);
    }
    {
        auto p = specBase("cam4", "Community atmosphere model",
                          ++seed);
        p.branchFrac = 0.10;
        p.branchBias = 0.93;
        p.methods = 1200;
        p.meanMethodBytes = 2200;
        p.streamFrac = 0.40;
        p.dataFootprint = 40 * MiB;
        p.dataZipf = 0.6;
        p.ilp = 2.4;
        p.mlp = 3.0;
        p.methodZipf = 1.25;
        add(p);
    }
    {
        auto p = specBase("pop2", "Ocean circulation model", ++seed);
        p.branchFrac = 0.07;
        p.branchBias = 0.95;
        p.streamFrac = 0.55;
        p.methods = 800;
        p.meanMethodBytes = 2000;
        p.dataFootprint = 56 * MiB;
        p.dataZipf = 0.45;
        p.ilp = 2.6;
        p.mlp = 4.0;
        add(p);
    }
    {
        auto p = specBase("imagick", "Image manipulation", ++seed);
        p.branchFrac = 0.06;
        p.branchBias = 0.97;
        p.mulFrac = 0.14;
        p.streamFrac = 0.60;
        p.methods = 300;
        p.dataFootprint = 16 * MiB;
        p.dataZipf = 0.7;
        p.ilp = 3.5;
        p.mlp = 4.0;
        add(p);
    }
    {
        auto p = specBase("nab", "Molecular dynamics", ++seed);
        p.branchFrac = 0.07;
        p.branchBias = 0.96;
        p.mulFrac = 0.13;
        p.dataFootprint = 8 * MiB;
        p.dataZipf = 0.8;
        p.streamFrac = 0.30;
        p.ilp = 3.0;
        p.mlp = 3.0;
        add(p);
    }
    {
        auto p = specBase("fotonik3d", "Electromagnetics FDTD",
                          ++seed);
        p.branchFrac = 0.03;
        p.branchBias = 0.99;
        p.loadFrac = 0.45;
        p.streamFrac = 0.85;
        p.methods = 40;
        p.dataFootprint = 112 * MiB;
        p.dataZipf = 0.3;
        p.stackFrac = 0.05;
        p.ilp = 2.9;
        p.mlp = 6.5;
        p.warmFrac = 0.02;
        p.coolFrac = 0.02;
        add(p);
    }
    {
        auto p = specBase("roms", "Regional ocean modeling", ++seed);
        p.branchFrac = 0.05;
        p.branchBias = 0.97;
        p.streamFrac = 0.70;
        p.methods = 500;
        p.meanMethodBytes = 1800;
        p.dataFootprint = 80 * MiB;
        p.dataZipf = 0.4;
        p.ilp = 2.8;
        p.mlp = 5.0;
        p.stackFrac = 0.12;
        add(p);
    }

    if (out.size() != kSpecBenchmarks)
        throw std::logic_error("spec: benchmark count drifted");
    return out;
}

} // namespace

std::vector<WorkloadProfile>
specBenchmarks()
{
    static const std::vector<WorkloadProfile> profiles = buildSpec();
    return profiles;
}

} // namespace netchar::wl
