/**
 * @file
 * SPEC CPU17 comparison-suite model: 20 native benchmark profiles
 * (10 SPECrate-int + 10 SPECrate-fp programs), the baseline the paper
 * compares .NET/ASP.NET against in §V.
 */

#ifndef NETCHAR_WORKLOADS_SPEC_HH
#define NETCHAR_WORKLOADS_SPEC_HH

#include <cstddef>
#include <vector>

#include "workloads/profile.hh"

namespace netchar::wl
{

/** Number of SPEC CPU17 benchmarks modeled. */
constexpr std::size_t kSpecBenchmarks = 20;

/** The 20 SPEC CPU17 profiles, canonical order (int then fp). */
std::vector<WorkloadProfile> specBenchmarks();

} // namespace netchar::wl

#endif // NETCHAR_WORKLOADS_SPEC_HH
