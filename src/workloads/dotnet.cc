#include "workloads/dotnet.hh"

#include <array>
#include <cassert>
#include <stdexcept>

namespace netchar::wl
{

namespace
{

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

/** Baseline managed microbenchmark: small, CLR-flavored. */
WorkloadProfile
dotnetBase(const char *name, const char *description,
           std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.suite = Suite::DotNet;
    p.description = description;
    p.seed = seed;
    p.instructions = 1'500'000;
    // Managed common case: CLR code gives uniform-ish mixes (§V-B).
    p.branchFrac = 0.17;
    p.loadFrac = 0.29;
    p.storeFrac = 0.16;
    p.mulFrac = 0.02;
    p.divFrac = 0.001;
    p.microcodedFrac = 0.015;
    p.kernelFrac = 0.05;
    p.ilp = 2.2;
    p.mlp = 2.0;
    p.methods = 380;
    p.meanMethodBytes = 900;
    p.methodZipf = 1.70;
    p.branchBias = 0.94;
    p.dataFootprint = 1 * MiB;
    p.dataZipf = 1.05;
    p.streamFrac = 0.05;
    p.stackFrac = 0.40;
    // Microbenchmarks are tiny: nearly everything stays L1-resident
    // (suite L1d MPKI geomean ~2.3 in Fig 8).
    p.warmFrac = 0.004;
    p.coolFrac = 0.0012;
    p.managed = true;
    p.allocBytesPerInst = 0.10;
    p.maxHeapBytes = 16 * MiB;
    p.tierUpCallThreshold = 24;
    p.exceptionPki = 0.003;
    p.contentionPki = 0.003;
    return p;
}

struct CategorySpec
{
    WorkloadProfile profile;
    std::size_t microCount;
};

/** Build all 44 categories with their microbenchmark counts. */
std::vector<CategorySpec>
buildCategories()
{
    std::vector<CategorySpec> out;
    out.reserve(kDotNetCategories);
    std::uint64_t seed = 0x0D07'4E37'0000'0000ULL;
    auto add = [&](WorkloadProfile p, std::size_t micros) {
        p.validate();
        out.push_back({std::move(p), micros});
    };

    {
        // File and stream IO: syscall heavy, buffer streaming.
        auto p = dotnetBase("System.IO",
                            "File/stream IO microbenchmarks", ++seed);
        p.kernelFrac = 0.22;
        p.streamFrac = 0.35;
        p.dataFootprint = 2 * MiB;
        p.allocBytesPerInst = 0.25;
        p.methodZipf = 1.25;
        add(p, 110);
    }
    {
        // Basic scalar and array tests (Table IV).
        auto p = dotnetBase("System.Runtime",
                            "Basic scalar and array tests", ++seed);
        p.dataFootprint = 512 * KiB;
        p.branchBias = 0.93;
        p.ilp = 2.8;
        add(p, 90);
    }
    {
        // Thread kernel functions (Table IV).
        auto p = dotnetBase("System.Threading",
                            "Thread kernel functions", ++seed);
        p.kernelFrac = 0.30;
        p.contentionPki = 0.25;
        p.microcodedFrac = 0.03;
        p.dataFootprint = 768 * KiB;
        p.ilp = 1.8;
        p.methodZipf = 1.20;
        add(p, 40);
    }
    {
        // Type converters (Table IV).
        auto p = dotnetBase("System.ComponentModel",
                            "Type converters", ++seed);
        p.methods = 520;
        p.allocBytesPerInst = 0.55;
        p.branchBias = 0.92;
        add(p, 12);
    }
    {
        // LINQ: delegate-heavy, allocation-heavy iterator chains.
        auto p = dotnetBase("System.Linq",
                            "Language integrated query tests", ++seed);
        p.methods = 650;
        p.allocBytesPerInst = 0.80;
        p.branchFrac = 0.19;
        p.branchBias = 0.92;
        p.dataFootprint = 2 * MiB;
        add(p, 60);
    }
    {
        // Network kernel functions (Table IV) - ASP.NET-like (§V-E).
        auto p = dotnetBase("System.Net",
                            "Network kernel functions", ++seed);
        p.kernelFrac = 0.38;
        p.methods = 900;
        p.meanMethodBytes = 1100;
        p.streamFrac = 0.25;
        p.dataFootprint = 3 * MiB;
        p.ilp = 1.7;
        p.mlp = 1.8;
        p.warmFrac = 0.012;
        p.coolFrac = 0.004;
        p.methodZipf = 1.00;
        add(p, 35);
    }
    {
        // Math libraries: tight FP loops, heavy divider usage.
        auto p = dotnetBase("System.MathBenchmarks",
                            "Math libraries", ++seed);
        p.methods = 90;
        p.meanMethodBytes = 450;
        p.divFrac = 0.03;
        p.mulFrac = 0.10;
        p.branchFrac = 0.10;
        p.loadFrac = 0.22;
        p.storeFrac = 0.08;
        p.branchBias = 0.97;
        p.dataFootprint = 128 * KiB;
        p.allocBytesPerInst = 0.02;
        p.ilp = 3.0;
        add(p, 45);
    }
    {
        // Kernel functions (Table IV) - ASP.NET-like (§V-E).
        auto p = dotnetBase("System.Diagnostics",
                            "Kernel functions and tracing", ++seed);
        p.kernelFrac = 0.33;
        p.storeFrac = 0.22; // data-structure initialization (§V-B)
        p.methods = 700;
        p.dataFootprint = 2 * MiB;
        p.allocBytesPerInst = 0.6;
        p.ilp = 1.8;
        p.warmFrac = 0.012;
        p.coolFrac = 0.004;
        p.methodZipf = 1.00;
        add(p, 15);
    }
    {
        // Roslyn C# compiler benchmark: huge managed code footprint.
        auto p = dotnetBase("CscBench",
                            "Compiler and dataflow tests", ++seed);
        p.methods = 2200;
        p.meanMethodBytes = 1400;
        p.dataFootprint = 8 * MiB;
        p.maxHeapBytes = 48 * MiB;
        p.allocBytesPerInst = 0.9;
        p.branchFrac = 0.20;
        p.branchBias = 0.89;
        p.kernelFrac = 0.08;
        p.ilp = 1.7;
        p.mlp = 1.7;
        p.warmFrac = 0.018;
        p.coolFrac = 0.006;
        p.methodZipf = 0.85;
        add(p, 8);
    }
    {
        // Single tight unrolled loop: the most trivial category.
        auto p = dotnetBase("SeekUnroll",
                            "Unrolled seek loop kernel", ++seed);
        p.methods = 12;
        p.meanMethodBytes = 700;
        p.branchFrac = 0.08;
        p.branchBias = 0.99;
        p.loadFrac = 0.34;
        p.storeFrac = 0.05;
        p.dataFootprint = 96 * KiB;
        p.allocBytesPerInst = 0.01;
        p.ilp = 3.4;
        add(p, 3);
    }
    {
        auto p = dotnetBase("System.Collections",
                            "List/dictionary/set operations", ++seed);
        p.dataFootprint = 6 * MiB;
        p.maxHeapBytes = 32 * MiB;
        p.allocBytesPerInst = 0.7;
        p.dataZipf = 0.8;
        p.mlp = 2.6;
        p.warmFrac = 0.015;
        p.coolFrac = 0.008;
        add(p, 300);
    }
    {
        auto p = dotnetBase("System.Text",
                            "String and encoding operations", ++seed);
        p.dataFootprint = 2 * MiB;
        p.allocBytesPerInst = 0.85;
        p.streamFrac = 0.30;
        p.storeFrac = 0.20;
        add(p, 180);
    }
    {
        auto p = dotnetBase("System.Tests",
                            "Core primitive-type tests", ++seed);
        p.dataFootprint = 1 * MiB;
        p.allocBytesPerInst = 0.5;
        p.methods = 800;
        p.methodZipf = 1.30;
        add(p, 170);
    }
    {
        auto p = dotnetBase("System.Memory",
                            "Span/Memory slicing and copying", ++seed);
        p.streamFrac = 0.45;
        p.dataFootprint = 3 * MiB;
        p.branchFrac = 0.12;
        p.loadFrac = 0.33;
        p.storeFrac = 0.21;
        p.ilp = 2.9;
        p.mlp = 3.2;
        add(p, 200);
    }
    {
        auto p = dotnetBase("System.Numerics",
                            "Vector and BigInteger math", ++seed);
        p.mulFrac = 0.12;
        p.branchFrac = 0.09;
        p.branchBias = 0.96;
        p.dataFootprint = 512 * KiB;
        p.ilp = 3.2;
        add(p, 150);
    }
    {
        auto p = dotnetBase("System.Reflection",
                            "Reflection invoke and metadata", ++seed);
        p.methods = 1100;
        p.microcodedFrac = 0.04;
        p.allocBytesPerInst = 0.6;
        p.branchBias = 0.91;
        p.methodZipf = 1.15;
        add(p, 60);
    }
    {
        auto p = dotnetBase("System.Globalization",
                            "Culture-aware formatting", ++seed);
        p.methods = 600;
        p.dataFootprint = 1536 * KiB;
        p.branchBias = 0.92;
        add(p, 80);
    }
    {
        auto p = dotnetBase("System.Buffers",
                            "ArrayPool and buffer management", ++seed);
        p.streamFrac = 0.40;
        p.dataFootprint = 4 * MiB;
        p.allocBytesPerInst = 0.15;
        p.mlp = 3.0;
        p.warmFrac = 0.010;
        p.coolFrac = 0.003;
        add(p, 90);
    }
    {
        auto p = dotnetBase("System.IO.Compression",
                            "Deflate/gzip/brotli kernels", ++seed);
        p.streamFrac = 0.35;
        p.dataFootprint = 4 * MiB;
        p.branchFrac = 0.21;
        p.branchBias = 0.88;
        p.loadFrac = 0.32;
        p.ilp = 2.0;
        p.warmFrac = 0.010;
        p.coolFrac = 0.003;
        add(p, 55);
    }
    {
        auto p = dotnetBase("System.Security.Cryptography",
                            "Hashing and cipher kernels", ++seed);
        p.streamFrac = 0.50;
        p.branchFrac = 0.07;
        p.branchBias = 0.985;
        p.mulFrac = 0.08;
        p.dataFootprint = 768 * KiB;
        p.ilp = 3.0;
        p.kernelFrac = 0.10;
        add(p, 90);
    }
    {
        auto p = dotnetBase("System.Xml",
                            "XML parse and serialize", ++seed);
        p.methods = 900;
        p.allocBytesPerInst = 0.9;
        p.branchFrac = 0.20;
        p.branchBias = 0.90;
        p.dataFootprint = 3 * MiB;
        add(p, 85);
    }
    {
        auto p = dotnetBase("System.Text.Json",
                            "JSON reader/writer/serializer", ++seed);
        p.allocBytesPerInst = 0.8;
        p.streamFrac = 0.25;
        p.branchFrac = 0.19;
        p.dataFootprint = 2 * MiB;
        add(p, 120);
    }
    {
        auto p = dotnetBase("System.Text.RegularExpressions",
                            "Regex match and replace", ++seed);
        p.branchFrac = 0.24;
        p.branchBias = 0.86;
        p.methods = 500;
        p.dataFootprint = 1 * MiB;
        p.ilp = 1.8;
        add(p, 70);
    }
    {
        auto p = dotnetBase("System.Collections.Concurrent",
                            "Concurrent dictionaries and queues",
                            ++seed);
        p.contentionPki = 0.4;
        p.kernelFrac = 0.12;
        p.microcodedFrac = 0.03;
        p.dataFootprint = 4 * MiB;
        p.allocBytesPerInst = 0.5;
        add(p, 75);
    }
    {
        auto p = dotnetBase("System.Drawing",
                            "Graphics primitives", ++seed);
        p.streamFrac = 0.30;
        p.mulFrac = 0.08;
        p.dataFootprint = 3 * MiB;
        add(p, 25);
    }
    {
        auto p = dotnetBase("Microsoft.Extensions.DependencyInjection",
                            "Service resolution graphs", ++seed);
        p.methods = 1000;
        p.allocBytesPerInst = 0.7;
        p.branchBias = 0.86;
        add(p, 30);
    }
    {
        auto p = dotnetBase("Microsoft.Extensions.Logging",
                            "Structured logging pipeline", ++seed);
        p.allocBytesPerInst = 0.75;
        p.storeFrac = 0.20;
        p.methods = 650;
        add(p, 25);
    }
    {
        auto p = dotnetBase("Microsoft.Extensions.Configuration",
                            "Configuration binding", ++seed);
        p.methods = 550;
        p.allocBytesPerInst = 0.6;
        add(p, 20);
    }
    {
        auto p = dotnetBase("System.Console",
                            "Console formatting and writes", ++seed);
        p.kernelFrac = 0.25;
        p.dataFootprint = 256 * KiB;
        add(p, 15);
    }
    {
        auto p = dotnetBase("System.Threading.Channels",
                            "Producer/consumer channels", ++seed);
        p.kernelFrac = 0.18;
        p.contentionPki = 0.2;
        p.allocBytesPerInst = 0.45;
        add(p, 35);
    }
    {
        auto p = dotnetBase("System.Threading.Tasks",
                            "Task scheduling and awaits", ++seed);
        p.kernelFrac = 0.20;
        p.methods = 900;
        p.allocBytesPerInst = 0.65;
        p.contentionPki = 0.15;
        add(p, 55);
    }
    {
        auto p = dotnetBase("System.Runtime.Intrinsics",
                            "Hardware intrinsics kernels", ++seed);
        p.branchFrac = 0.06;
        p.branchBias = 0.99;
        p.streamFrac = 0.45;
        p.mulFrac = 0.10;
        p.ilp = 3.6;
        p.dataFootprint = 512 * KiB;
        p.allocBytesPerInst = 0.02;
        add(p, 120);
    }
    {
        // Application-level: PDE solver over a grid.
        auto p = dotnetBase("Burgers",
                            "Burgers-equation PDE solver", ++seed);
        p.branchFrac = 0.07;
        p.branchBias = 0.98;
        p.streamFrac = 0.65;
        p.dataFootprint = 6 * MiB;
        p.allocBytesPerInst = 0.05;
        p.methods = 40;
        p.ilp = 3.0;
        p.mlp = 4.0;
        p.stackFrac = 0.15;
        add(p, 4);
    }
    {
        auto p = dotnetBase("ByteMark",
                            "Classic BYTEmark ports", ++seed);
        p.dataFootprint = 2 * MiB;
        p.branchFrac = 0.18;
        p.branchBias = 0.91;
        p.methods = 160;
        p.allocBytesPerInst = 0.1;
        add(p, 20);
    }
    {
        auto p = dotnetBase("V8.Crypto",
                            "V8 crypto benchmark port", ++seed);
        p.mulFrac = 0.12;
        p.branchFrac = 0.12;
        p.branchBias = 0.93;
        p.dataFootprint = 512 * KiB;
        p.methods = 120;
        add(p, 12);
    }
    {
        auto p = dotnetBase("V8.Richards",
                            "V8 Richards scheduler port", ++seed);
        p.methods = 90;
        p.branchFrac = 0.21;
        p.branchBias = 0.91;
        p.branchBias = 0.85;
        p.dataFootprint = 256 * KiB;
        p.allocBytesPerInst = 0.3;
        add(p, 6);
    }
    {
        auto p = dotnetBase("V8.DeltaBlue",
                            "V8 DeltaBlue constraint solver", ++seed);
        p.methods = 140;
        p.branchFrac = 0.20;
        p.branchBias = 0.90;
        p.branchBias = 0.84;
        p.allocBytesPerInst = 0.5;
        p.dataFootprint = 384 * KiB;
        add(p, 6);
    }
    {
        auto p = dotnetBase("SciMark",
                            "SciMark FFT/SOR/MonteCarlo/LU", ++seed);
        p.branchFrac = 0.09;
        p.branchBias = 0.96;
        p.streamFrac = 0.40;
        p.mulFrac = 0.12;
        p.dataFootprint = 4 * MiB;
        p.allocBytesPerInst = 0.03;
        p.methods = 60;
        p.ilp = 3.0;
        add(p, 18);
    }
    {
        auto p = dotnetBase("Benchstone.BenchI",
                            "Integer kernels (Benchstone)", ++seed);
        p.dataFootprint = 1 * MiB;
        p.branchFrac = 0.19;
        p.methods = 110;
        p.allocBytesPerInst = 0.05;
        add(p, 25);
    }
    {
        auto p = dotnetBase("Benchstone.BenchF",
                            "FP kernels (Benchstone)", ++seed);
        p.branchFrac = 0.08;
        p.branchBias = 0.97;
        p.mulFrac = 0.14;
        p.streamFrac = 0.35;
        p.dataFootprint = 2 * MiB;
        p.allocBytesPerInst = 0.03;
        p.methods = 90;
        p.ilp = 3.1;
        add(p, 25);
    }
    {
        auto p = dotnetBase("Devirtualization",
                            "Virtual-call inlining stressors", ++seed);
        p.methods = 1300;
        p.branchFrac = 0.22;
        p.branchBias = 0.88;
        p.callFrac = 0.30;
        p.dataFootprint = 512 * KiB;
        add(p, 30);
    }
    {
        auto p = dotnetBase("Span",
                            "Span<T> indexing and slicing", ++seed);
        p.streamFrac = 0.40;
        p.branchFrac = 0.11;
        p.loadFrac = 0.34;
        p.dataFootprint = 1 * MiB;
        p.allocBytesPerInst = 0.05;
        p.ilp = 3.0;
        add(p, 130);
    }
    {
        auto p = dotnetBase("Exceptions.Handling",
                            "Throw/catch/filter paths", ++seed);
        p.exceptionPki = 1.2;
        p.kernelFrac = 0.10;
        p.methods = 420;
        p.allocBytesPerInst = 0.4;
        add(p, 40);
    }

    // The last category absorbs whatever count remains so the corpus
    // total matches the paper's 2,906 exactly.
    std::size_t used = 0;
    for (const auto &spec : out)
        used += spec.microCount;
    if (out.size() != kDotNetCategories - 1)
        throw std::logic_error("dotnet: category count drifted");
    if (used >= kDotNetMicrobenchmarks)
        throw std::logic_error("dotnet: micro counts overflow corpus");
    {
        auto p = dotnetBase("Serializers.Json",
                            "Json.NET/Protobuf serializer suite",
                            ++seed);
        p.allocBytesPerInst = 0.85;
        p.streamFrac = 0.20;
        p.methods = 800;
        p.dataFootprint = 2 * MiB;
        add(p, kDotNetMicrobenchmarks - used);
    }
    return out;
}

const std::vector<CategorySpec> &
categorySpecs()
{
    static const std::vector<CategorySpec> specs = buildCategories();
    return specs;
}

} // namespace

std::vector<WorkloadProfile>
dotnetCategories()
{
    std::vector<WorkloadProfile> out;
    out.reserve(kDotNetCategories);
    for (const auto &spec : categorySpecs())
        out.push_back(spec.profile);
    return out;
}

std::size_t
dotnetMicroCount(std::size_t index)
{
    if (index >= categorySpecs().size())
        throw std::out_of_range("dotnetMicroCount");
    return categorySpecs()[index].microCount;
}

std::vector<WorkloadProfile>
dotnetMicrobenchmarks(std::uint64_t instructions_per_micro)
{
    std::vector<WorkloadProfile> out;
    out.reserve(kDotNetMicrobenchmarks);
    for (const auto &spec : categorySpecs()) {
        for (std::size_t i = 0; i < spec.microCount; ++i) {
            auto v = spec.profile.makeVariant(
                static_cast<unsigned>(i));
            v.instructions = instructions_per_micro;
            out.push_back(std::move(v));
        }
    }
    return out;
}

} // namespace netchar::wl
