/**
 * @file
 * The ASP.NET benchmark suite model: 53 client/server web-framework
 * benchmarks (§II-B), including the TechEmpower scenarios the paper's
 * Table IV draws from. Profiles describe the *server side*, which is
 * where the paper takes all measurements.
 */

#ifndef NETCHAR_WORKLOADS_ASPNET_HH
#define NETCHAR_WORKLOADS_ASPNET_HH

#include <cstddef>
#include <vector>

#include "workloads/profile.hh"

namespace netchar::wl
{

/** Number of ASP.NET benchmarks. */
constexpr std::size_t kAspNetBenchmarks = 53;

/** The 53 benchmark profiles, canonical order. */
std::vector<WorkloadProfile> aspnetBenchmarks();

} // namespace netchar::wl

#endif // NETCHAR_WORKLOADS_ASPNET_HH
