/**
 * @file
 * Registry: uniform access to every modeled benchmark suite, with
 * lookup by name and suite filtering — the entry point bench binaries
 * and examples use.
 */

#ifndef NETCHAR_WORKLOADS_REGISTRY_HH
#define NETCHAR_WORKLOADS_REGISTRY_HH

#include <optional>
#include <string_view>
#include <vector>

#include "workloads/aspnet.hh"
#include "workloads/dotnet.hh"
#include "workloads/profile.hh"
#include "workloads/spec.hh"

namespace netchar::wl
{

/** All profiles of one suite (category level for .NET). */
std::vector<WorkloadProfile> suiteProfiles(Suite suite);

/** Every suite concatenated: .NET categories + ASP.NET + SPEC. */
std::vector<WorkloadProfile> allProfiles();

/** Find a profile by exact name across all suites. */
std::optional<WorkloadProfile> findProfile(std::string_view name);

} // namespace netchar::wl

#endif // NETCHAR_WORKLOADS_REGISTRY_HH
