#include "workloads/synth.hh"

#include <algorithm>
#include <cmath>

namespace netchar::wl
{

namespace
{

// Virtual-address map of the simulated process (all below 2^47).
constexpr std::uint64_t kNativeCodeBase = 0x0000'4000'0000'0000ULL;
constexpr std::uint64_t kNativeDataBase = 0x0000'6000'0000'0000ULL;
constexpr std::uint64_t kRuntimeCodeBase = 0x0000'7E00'0000'0000ULL;
constexpr std::uint64_t kJitCompilerCode = 0x0000'7E10'0000'0000ULL;
constexpr std::uint64_t kGcCode = 0x0000'7E20'0000'0000ULL;
constexpr std::uint64_t kIrBufferBase = 0x0000'7E30'0000'0000ULL;
constexpr std::uint64_t kStackBase = 0x0000'7FFE'0000'0000ULL;
constexpr std::uint64_t kKernelCodeBase = 0x0000'7FF0'0000'0000ULL;
constexpr std::uint64_t kKernelDataBase = 0x0000'7FF8'0000'0000ULL;
constexpr std::uint64_t kSharedLockLine = 0x0000'7FFC'0000'0000ULL;

// Kernel image: the networking stack and syscall surface are large.
constexpr std::uint64_t kKernelCodeBytes = 1536 * 1024;
constexpr std::uint64_t kKernelDataBytes = 2 * 1024 * 1024;
constexpr std::uint64_t kJitCompilerBytes = 256 * 1024;
constexpr std::uint64_t kGcCodeBytes = 24 * 1024;
constexpr std::uint64_t kIrBufferBytes = 256 * 1024;
constexpr std::uint64_t kStackBytes = 8 * 1024;

/** Cheap deterministic hash for per-branch-site defaults. */
std::uint64_t
siteHash(std::uint64_t pc)
{
    std::uint64_t z = pc * 0x9E3779B97F4A7C15ULL;
    z ^= z >> 29;
    z *= 0xBF58476D1CE4E5B9ULL;
    z ^= z >> 32;
    return z;
}

} // namespace

std::shared_ptr<rt::Clr>
SynthWorkload::makeClr(const WorkloadProfile &profile, std::uint64_t seed,
                       SpreadFactors spread)
{
    rt::ClrConfig cfg;
    cfg.heap.liveBytes = profile.dataFootprint;
    cfg.heap.maxBytes =
        std::max(profile.maxHeapBytes, profile.dataFootprint);
    cfg.gc.mode = profile.gcMode;
    cfg.gc.assist = profile.gcAssist;
    cfg.jit.methods = profile.methods;
    cfg.jit.meanMethodBytes = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                static_cast<double>(profile.meanMethodBytes) *
                spread.code));
    // Scaled-simulation compile cost: startup jitting of the whole
    // method table must fit inside a warmup run while still emitting
    // visible compile bursts (Fig 13a's JIT events).
    cfg.jit.compileInstPerByte = 0.30;
    cfg.jit.tierUpCallThreshold = profile.tierUpCallThreshold;
    if (spread.code > 1.0 && cfg.jit.tierUpCallThreshold > 0) {
        // Immature stacks (§V-D) re-tier sooner and churn more code,
        // one of the drivers of the Arm LLC/I-side gap.
        cfg.jit.tierUpCallThreshold = std::max(
            8u, cfg.jit.tierUpCallThreshold / 3);
    }
    return std::make_shared<rt::Clr>(cfg, seed);
}

SynthWorkload::SynthWorkload(const WorkloadProfile &profile,
                             std::uint64_t run_seed,
                             std::shared_ptr<rt::Clr> shared_clr,
                             SpreadFactors spread)
    : profile_(profile),
      spread_(spread),
      rng_(stats::Rng(profile.seed).fork(run_seed))
{
    profile_.validate();
    if (profile_.managed) {
        clr_ = shared_clr
            ? std::move(shared_clr)
            : makeClr(profile_, profile_.seed ^ run_seed, spread_);
    } else {
        // Static native code layout, sizes jittered per method.
        nativeBase_.reserve(profile_.methods);
        nativeBytes_.reserve(profile_.methods);
        std::uint64_t cursor = kNativeCodeBase;
        stats::Rng layout = stats::Rng(profile_.seed).fork(0xC0DE);
        for (unsigned i = 0; i < profile_.methods; ++i) {
            const auto bytes = std::max<std::uint64_t>(
                64, static_cast<std::uint64_t>(
                        layout.jitter(
                            static_cast<double>(
                                profile_.meanMethodBytes) *
                                spread_.code,
                            0.6)));
            nativeBase_.push_back(cursor);
            nativeBytes_.push_back(bytes);
            // Native functions pack densely (the linker lays them
            // out back to back), unlike 4 KiB-granular JIT pages.
            cursor += (bytes + 63) & ~std::uint64_t{63};
        }
    }
    methodBase_ = kNativeCodeBase; // replaced by enterMethod()
    methodBytes_ = 256;
    workerOffset_ = (run_seed % 31) * 448 * 1024;
}

std::uint64_t
SynthWorkload::dataRegionBytes() const
{
    const std::uint64_t base_bytes = profile_.managed
        ? clr_->heap().spreadBytes()
        : profile_.dataFootprint;
    return std::max<std::uint64_t>(4096, base_bytes);
}

std::uint64_t
SynthWorkload::dataAddress()
{
    const double roll = rng_.uniform();
    if (roll < profile_.stackFrac) {
        // Hot stack frame: permanently L1-resident.
        return kStackBase + rng_.below(kStackBytes);
    }

    const std::uint64_t region = dataRegionBytes();
    const std::uint64_t base = profile_.managed
        ? clr_->heap().base()
        : kNativeDataBase;
    double edge = profile_.stackFrac + profile_.streamFrac;
    std::uint64_t offset;
    if (roll < edge) {
        // Streaming walk, 8 B stride (one line per 8 accesses).
        streamOffset_ = (streamOffset_ + 8) % region;
        offset = streamOffset_;
    } else if (roll < (edge += profile_.warmFrac)) {
        // Warm tier: an L2-scale slice of the footprint behind the
        // allocation frontier, displaced per worker.
        const std::uint64_t warm_bytes =
            std::min<std::uint64_t>(region, 384 * 1024);
        const std::uint64_t displace =
            std::min(workerOffset_, region - warm_bytes);
        offset = region - 1 - displace - rng_.below(warm_bytes);
    } else if (roll < edge + profile_.coolFrac) {
        // Cool tier: frontier-hot zipf over the whole footprint.
        // Compaction shrinks `region`, and heap fragmentation
        // (garbage diluting live data between GCs) inflates the
        // reuse distance of older data.
        const std::uint64_t lines =
            std::max<std::uint64_t>(1, region / 64);
        std::uint64_t rank = rng_.zipf(lines, profile_.dataZipf);
        if (profile_.managed) {
            const double frag = clr_->heap().fragmentation();
            rank = std::min<std::uint64_t>(
                lines - 1, static_cast<std::uint64_t>(
                               static_cast<double>(rank) * frag));
        }
        offset = (lines - 1 - rank) * 64 + rng_.below(64);
    } else {
        // Hot tier: a small L1-resident slice at this worker's
        // frontier.
        const std::uint64_t hot_bytes =
            std::min<std::uint64_t>(region, 12 * 1024);
        const std::uint64_t displace =
            std::min(workerOffset_, region - hot_bytes);
        offset = region - 1 - displace - rng_.below(hot_bytes);
    }
    // Immature stacks (Arm) pack data sparsely: stretch offsets.
    if (spread_.data > 1.0) {
        offset = static_cast<std::uint64_t>(
            static_cast<double>(offset) * spread_.data);
    }
    return base + offset;
}

sim::InstKind
SynthWorkload::pickKind(double branch, double load, double store,
                        double mul, double div)
{
    const double roll = rng_.uniform();
    if (roll < branch)
        return sim::InstKind::Branch;
    if (roll < branch + load)
        return sim::InstKind::Load;
    if (roll < branch + load + store)
        return sim::InstKind::Store;
    if (roll < branch + load + store + mul)
        return sim::InstKind::Mul;
    if (roll < branch + load + store + mul + div)
        return sim::InstKind::Div;
    return sim::InstKind::Alu;
}

void
SynthWorkload::enterMethod(unsigned index, sim::Core &core)
{
    currentMethod_ = index;
    if (profile_.managed) {
        const auto out = clr_->invokeMethod(index);
        methodBase_ = out.address;
        methodBytes_ = clr_->jit().method(index).bytes;
        if (out.jitted) {
            // Compiler runs before the method body does.
            mode_ = Mode::Jit;
            burstRemaining_ = std::max<std::uint64_t>(
                64, out.compileInstructions);
            jitEmitAddr_ = out.address;
            core.onJitPage(out.newPageAddress, out.newPageBytes);
            if (out.oldAddress != 0)
                core.onJitBranchMoved(out.oldAddress, out.address);
        }
    } else {
        methodBase_ = nativeBase_[index];
        methodBytes_ = nativeBytes_[index];
    }
    pcOffset_ = 0;
}

sim::Inst
SynthWorkload::userBranch(std::uint64_t pc)
{
    sim::Inst inst;
    inst.kind = sim::InstKind::Branch;
    inst.pc = pc;

    const bool site_default =
        (siteHash(pc) % 1000) <
        static_cast<std::uint64_t>(profile_.takenFrac * 1000.0);
    const bool taken = rng_.chance(profile_.branchBias)
        ? site_default
        : rng_.chance(0.5);
    inst.taken = taken;

    if (taken) {
        if (rng_.chance(profile_.callFrac)) {
            const auto callee = static_cast<unsigned>(
                rng_.zipf(profile_.methods, profile_.methodZipf));
            enterMethod(callee, *activeCore_);
        } else {
            // Intra-method jump: each branch site has a FIXED target
            // (a property of the code), so control flow follows
            // stable paths and predictor/BTB/I-cache working sets
            // converge instead of spraying across the method.
            pcOffset_ = (siteHash(pc ^ 0x7A12) %
                         std::max<std::uint64_t>(1,
                                                 methodBytes_ / 16)) *
                16;
        }
    } else {
        pcOffset_ += 4;
    }
    return inst;
}

void
SynthWorkload::userTick(sim::Core &core)
{
    if (!profile_.managed)
        return;

    // Allocation accounting.
    allocAccum_ += profile_.allocBytesPerInst;
    if (allocAccum_ >= profile_.meanObjectBytes) {
        allocAccum_ -= profile_.meanObjectBytes;
        const auto result = clr_->allocate(
            static_cast<std::uint64_t>(profile_.meanObjectBytes));
        if (result.gcTriggered && result.gcWork.instructions > 0) {
            mode_ = Mode::Gc;
            burstRemaining_ = result.gcWork.instructions;
            // The sweep ends at the live-region frontier, so the
            // data the application touches next (its hot/warm
            // windows) leaves the collection cache-warm — compaction
            // moves exactly that data last.
            const auto &gc_cfg = clr_->gc().config();
            const auto coverage = static_cast<std::uint64_t>(
                static_cast<double>(burstRemaining_) *
                (gc_cfg.gcLoadFraction + gc_cfg.gcStoreFraction) *
                64.0);
            const std::uint64_t live = clr_->heap().liveBytes();
            const std::uint64_t end_gap = workerOffset_ + coverage;
            gcScanOffset_ = live > end_gap ? live - end_gap : 0;
        }
    }

    // Rare runtime events.
    if (rng_.chance(profile_.exceptionPki / 1000.0)) {
        clr_->throwException();
        mode_ = Mode::Exception;
        burstRemaining_ = 200 + rng_.below(200);
    } else if (rng_.chance(profile_.contentionPki / 1000.0)) {
        clr_->contend();
        mode_ = Mode::Contention;
        burstRemaining_ = 100 + rng_.below(150);
    }
    (void)core;
}

sim::Inst
SynthWorkload::userInst()
{
    if (pcOffset_ >= methodBytes_) {
        // Fell off the end: return to a caller (model as a fresh
        // zipf-selected method).
        const auto next = static_cast<unsigned>(
            rng_.zipf(profile_.methods, profile_.methodZipf));
        enterMethod(next, *activeCore_);
        if (mode_ != Mode::User) {
            // enterMethod kicked off a JIT burst; emit its first inst.
            return jitInst();
        }
    }
    const std::uint64_t pc = methodBase_ + pcOffset_;

    // Branch sites are a fixed property of the code (hash of the PC),
    // not a per-visit coin flip: revisiting the same PC must replay
    // the same branch so predictors can train, exactly as in real
    // machine code.
    const bool is_branch_site =
        (siteHash(pc ^ 0x5EED) % 10000) <
        static_cast<std::uint64_t>(profile_.branchFrac * 10000.0);
    if (is_branch_site)
        return userBranch(pc);

    const double non_branch = 1.0 - profile_.branchFrac;
    const auto kind =
        pickKind(0.0, profile_.loadFrac / non_branch,
                 profile_.storeFrac / non_branch,
                 profile_.mulFrac / non_branch,
                 profile_.divFrac / non_branch);

    sim::Inst inst;
    inst.kind = kind;
    inst.pc = pc;
    inst.microcoded = rng_.chance(profile_.microcodedFrac);
    if (kind == sim::InstKind::Load || kind == sim::InstKind::Store)
        inst.addr = dataAddress();
    pcOffset_ += 4;
    return inst;
}

sim::Inst
SynthWorkload::kernelInst()
{
    sim::Inst inst;
    inst.kernel = true;
    // Kernel code is a large footprint, but execution follows hot
    // syscall/softirq paths: long sequential runs with occasional
    // jumps, biased strongly toward the hot paths.
    if (rng_.chance(0.04) || kernelPc_ == 0) {
        const std::uint64_t lines = kKernelCodeBytes / 64;
        const std::uint64_t line = rng_.zipf(lines, 1.1);
        kernelPc_ = kKernelCodeBase + line * 64;
    } else {
        kernelPc_ += 4;
    }
    inst.pc = kernelPc_;
    inst.microcoded = rng_.chance(0.04); // privileged ops are MS-heavy
    const bool is_branch_site =
        (siteHash(inst.pc ^ 0x5EED) % 10000) < 1800;
    const auto kind = is_branch_site
        ? sim::InstKind::Branch
        : pickKind(0.0, 0.36, 0.22, 0.01, 0.001);
    inst.kind = kind;
    if (kind == sim::InstKind::Branch) {
        const bool site_default = (siteHash(inst.pc) & 1) != 0;
        inst.taken = rng_.chance(0.85) ? site_default : rng_.chance(0.5);
    } else if (kind == sim::InstKind::Load ||
               kind == sim::InstKind::Store) {
        const double roll = rng_.uniform();
        if (roll < 0.13) {
            // Packet/buffer copies stream (8 B granules).
            streamOffset_ = (streamOffset_ + 8) % kKernelDataBytes;
            inst.addr = kKernelDataBase + streamOffset_;
        } else if (roll < 0.15) {
            // Cold socket/connection state.
            inst.addr = kKernelDataBase +
                rng_.zipf(kKernelDataBytes / 64, 0.8) * 64;
        } else {
            // Hot per-CPU structures, sk_buff headers, stacks.
            inst.addr = kKernelDataBase + rng_.below(4096);
        }
    }
    return inst;
}

sim::Inst
SynthWorkload::jitInst()
{
    sim::Inst inst;
    // Compiler code is big and branchy.
    if (rng_.chance(0.15) || jitPc_ == 0) {
        const std::uint64_t line =
            rng_.zipf(kJitCompilerBytes / 64, 0.8);
        jitPc_ = kJitCompilerCode + line * 64;
    } else {
        jitPc_ += 4;
    }
    inst.pc = jitPc_;
    const bool is_branch_site =
        (siteHash(inst.pc ^ 0x5EED) % 10000) < 2400;
    const auto kind = is_branch_site
        ? sim::InstKind::Branch
        : pickKind(0.0, 0.42, 0.24, 0.025, 0.001);
    inst.kind = kind;
    inst.microcoded = rng_.chance(0.02);
    if (kind == sim::InstKind::Branch) {
        const bool site_default = (siteHash(inst.pc) & 1) != 0;
        inst.taken = rng_.chance(0.80) ? site_default : rng_.chance(0.5);
    } else if (kind == sim::InstKind::Load) {
        // IR reads: the node under compilation is hot; occasional
        // excursions into the wider IR graph.
        inst.addr = rng_.chance(0.75)
            ? kIrBufferBase + rng_.below(8 * 1024)
            : kIrBufferBase +
                rng_.zipf(kIrBufferBytes / 64, 0.9) * 64;
    } else if (kind == sim::InstKind::Store) {
        if (rng_.chance(0.4) && jitEmitAddr_ != 0) {
            // Emitting machine code into the fresh page.
            inst.addr = jitEmitAddr_;
            jitEmitAddr_ += 16;
        } else {
            inst.addr = kIrBufferBase + rng_.below(8 * 1024);
        }
    }
    return inst;
}

sim::Inst
SynthWorkload::gcInst()
{
    sim::Inst inst;
    // Collector code is small and hot (tight mark/compact loops).
    if (rng_.chance(0.05) || gcPc_ == 0) {
        gcPc_ = kGcCode + rng_.below(kGcCodeBytes / 64) * 64;
    } else {
        gcPc_ += 4;
    }
    inst.pc = gcPc_;
    const auto &gc_cfg = clr_->gc().config();
    const auto kind = pickKind(0.10, gc_cfg.gcLoadFraction,
                               gc_cfg.gcStoreFraction, 0.0, 0.0);
    inst.kind = kind;
    if (kind == sim::InstKind::Branch) {
        inst.taken = rng_.chance(0.9);
    } else if (kind == sim::InstKind::Load ||
               kind == sim::InstKind::Store) {
        // Sweep the live set sequentially (mark + compact movement).
        const std::uint64_t live =
            std::max<std::uint64_t>(4096, clr_->heap().liveBytes());
        gcScanOffset_ = (gcScanOffset_ + 64) % live;
        inst.addr = clr_->heap().base() + gcScanOffset_;
    }
    return inst;
}

sim::Inst
SynthWorkload::exceptionInst()
{
    sim::Inst inst;
    // Unwinder: runtime code, mixed with kernel-mode dispatch.
    inst.kernel = rng_.chance(0.3);
    inst.pc = kRuntimeCodeBase +
        rng_.zipf(64 * 1024 / 64, 0.7) * 64;
    const auto kind = pickKind(0.22, 0.35, 0.10, 0.0, 0.0);
    inst.kind = kind;
    if (kind == sim::InstKind::Branch) {
        inst.taken = rng_.chance(0.75) ? ((siteHash(inst.pc) & 1) != 0)
                                       : rng_.chance(0.5);
    } else if (kind == sim::InstKind::Load ||
               kind == sim::InstKind::Store) {
        inst.addr = kStackBase + rng_.below(kStackBytes);
    }
    return inst;
}

sim::Inst
SynthWorkload::contentionInst()
{
    sim::Inst inst;
    // Spin loop: tiny hot code, hammering one shared line.
    inst.pc = kRuntimeCodeBase + 0x10000 + (burstRemaining_ % 8) * 4;
    const auto kind = pickKind(0.30, 0.40, 0.02, 0.0, 0.0);
    inst.kind = kind;
    if (kind == sim::InstKind::Branch) {
        inst.taken = true;
    } else if (kind == sim::InstKind::Load ||
               kind == sim::InstKind::Store) {
        inst.addr = kSharedLockLine;
    }
    return inst;
}

void
SynthWorkload::step(sim::Core &core)
{
    sim::Inst inst;
    switch (mode_) {
      case Mode::User: {
        // Possible kernel entry (syscall / interrupt service).
        if (profile_.kernelFrac > 0.0 && profile_.kernelFrac < 1.0) {
            const double entry_rate = profile_.kernelFrac /
                ((1.0 - profile_.kernelFrac) * profile_.kernelBurstLen);
            if (rng_.chance(entry_rate)) {
                mode_ = Mode::Kernel;
                burstRemaining_ = std::max<std::uint64_t>(
                    8, static_cast<std::uint64_t>(rng_.exponential(
                           profile_.kernelBurstLen)));
                inst = kernelInst();
                inst.microcoded = true; // syscall entry
                break;
            }
        }
        inst = userInst();
        if (mode_ == Mode::User)
            userTick(core);
        break;
      }
      case Mode::Kernel:
        inst = kernelInst();
        break;
      case Mode::Jit:
        inst = jitInst();
        break;
      case Mode::Gc:
        inst = gcInst();
        break;
      case Mode::Exception:
        inst = exceptionInst();
        break;
      case Mode::Contention:
        inst = contentionInst();
        break;
    }

    if (mode_ != Mode::User) {
        if (burstRemaining_ > 0)
            --burstRemaining_;
        if (burstRemaining_ == 0)
            mode_ = Mode::User;
    }

    core.execute(inst);
    ++executed_;
}

void
SynthWorkload::run(sim::Core &core, std::uint64_t count)
{
    activeCore_ = &core;
    core.setIlp(profile_.ilp);
    core.setMlp(profile_.mlp);
    if (methodBase_ == kNativeCodeBase && pcOffset_ == 0 &&
        executed_ == 0) {
        // First run: the program image, statics, initial heap, stack
        // and the resident kernel were all faulted in before the
        // measured region begins (program load + init).
        core.prefaultRegion(kStackBase, kStackBytes);
        core.prefaultRegion(kKernelCodeBase, kKernelCodeBytes);
        core.prefaultRegion(kKernelDataBase, kKernelDataBytes);
        core.prefaultRegion(kRuntimeCodeBase, 128 * 1024);
        core.prefaultRegion(kSharedLockLine, 64);
        if (profile_.managed) {
            core.prefaultRegion(kJitCompilerCode, kJitCompilerBytes);
            core.prefaultRegion(kGcCode, kGcCodeBytes);
            core.prefaultRegion(kIrBufferBase, kIrBufferBytes);
            // Age the heap to steady state: on average, half a GC
            // budget of floating garbage has accumulated since the
            // last collection. Without this, short measurement
            // windows would start from an unrealistically compact
            // heap and underestimate workstation-GC locality loss.
            const auto budget = clr_->gc().budgetBytes(clr_->heap());
            while (clr_->heap().allocatedSinceGc() < budget / 2)
                clr_->allocate(16 * 1024);
            const std::uint64_t aged_spread =
                static_cast<std::uint64_t>(
                    static_cast<double>(clr_->heap().spreadBytes()) *
                    std::max(1.0, spread_.data));
            core.prefaultRegion(clr_->heap().base(), aged_spread);
            // The steady-state working set of a long-running process
            // is LLC resident by the time measurement starts.
            core.preloadLlc(clr_->heap().base(), aged_spread);
            core.preloadLlc(kKernelCodeBase, kKernelCodeBytes);
            core.preloadLlc(kKernelDataBase, kKernelDataBytes);
            // Application startup: every reachable method gets its
            // tier-0 compile before steady state begins (the paper
            // discards the first run / uses long warmups, so startup
            // jitting is never inside the measured window). Tier-1
            // re-JITs still fire during execution.
            for (unsigned i = 0; i < profile_.methods; ++i) {
                clr_->invokeMethod(i);
                const auto &m = clr_->jit().method(i);
                core.prefaultRegion(m.address & ~std::uint64_t{4095},
                                    ((m.bytes + 4095) / 4096) * 4096);
                core.preloadLlc(m.address, m.bytes);
            }
        } else {
            std::uint64_t code_bytes = 0;
            for (std::uint64_t b : nativeBytes_)
                code_bytes += (b + 63) & ~std::uint64_t{63};
            core.prefaultRegion(kNativeCodeBase, code_bytes);
            core.preloadLlc(kNativeCodeBase, code_bytes);
            core.preloadLlc(kKernelCodeBase, kKernelCodeBytes);
            const std::uint64_t data = static_cast<std::uint64_t>(
                static_cast<double>(profile_.dataFootprint) *
                std::max(1.0, spread_.data));
            core.prefaultRegion(kNativeDataBase, data);
            // A long-running program's LLC holds whatever suffix of
            // the footprint fits; LRU naturally keeps the tail.
            core.preloadLlc(kNativeDataBase, data);
        }
        enterMethod(0, core);
    }
    for (std::uint64_t i = 0; i < count; ++i)
        step(core);
    activeCore_ = nullptr;
}

} // namespace netchar::wl
