/**
 * @file
 * The .NET microbenchmark suite model: 44 category profiles matching
 * the dotnet/performance snapshot the paper uses (§II-A), expandable
 * to the full 2,906 individual microbenchmarks.
 */

#ifndef NETCHAR_WORKLOADS_DOTNET_HH
#define NETCHAR_WORKLOADS_DOTNET_HH

#include <cstddef>
#include <vector>

#include "workloads/profile.hh"

namespace netchar::wl
{

/** Number of .NET benchmark categories. */
constexpr std::size_t kDotNetCategories = 44;

/** Total individual .NET microbenchmarks across all categories. */
constexpr std::size_t kDotNetMicrobenchmarks = 2906;

/**
 * The 44 category profiles, in the fixed canonical order used across
 * all figures. Each category is modeled as the aggregate behavior of
 * its microbenchmarks run back to back in one process.
 */
std::vector<WorkloadProfile> dotnetCategories();

/**
 * Number of individual microbenchmarks in category `index`.
 * Sums to kDotNetMicrobenchmarks over all categories.
 */
std::size_t dotnetMicroCount(std::size_t index);

/**
 * Expand every category into its individual microbenchmarks
 * (deterministic jittered variants): kDotNetMicrobenchmarks profiles.
 *
 * @param instructions_per_micro Override the per-benchmark instruction
 *        budget (individual microbenchmarks are short; the default
 *        keeps full-corpus experiments tractable).
 */
std::vector<WorkloadProfile>
dotnetMicrobenchmarks(std::uint64_t instructions_per_micro = 150'000);

} // namespace netchar::wl

#endif // NETCHAR_WORKLOADS_DOTNET_HH
