#include "workloads/aspnet.hh"

#include <stdexcept>

namespace netchar::wl
{

namespace
{

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

/**
 * Baseline ASP.NET server benchmark: request/response processing on a
 * big managed code base over the kernel networking stack. Relative to
 * the .NET microbenchmarks: much more kernel time, much bigger code
 * footprint (Kestrel + middleware + MVC), moderate heaps, lower ILP.
 */
WorkloadProfile
aspnetBase(const char *name, const char *description,
           std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.suite = Suite::AspNet;
    p.description = description;
    p.seed = seed;
    p.instructions = 2'000'000;
    p.branchFrac = 0.18;
    p.loadFrac = 0.29;
    p.storeFrac = 0.16;
    p.mulFrac = 0.015;
    p.divFrac = 0.0005;
    p.microcodedFrac = 0.02;
    p.kernelFrac = 0.38; // networking stack dominates (§V-A)
    p.kernelBurstLen = 220.0;
    p.ilp = 1.6;
    p.mlp = 1.8;
    p.cpuUtil = 0.92;
    p.methods = 1600;      // Kestrel + middleware + app code
    p.meanMethodBytes = 1200;
    p.methodZipf = 1.00;
    p.callFrac = 0.18;
    p.takenFrac = 0.60;
    p.branchBias = 0.94;
    p.dataFootprint = 4 * MiB; // scaled working set (< 500 MiB real)
    p.dataZipf = 0.85;
    p.streamFrac = 0.15;
    p.stackFrac = 0.32;
    // Request churn touches L2-scale state but stays LLC-resident
    // (Fig 8: L1d ~15.9, L2 ~20.4, LLC ~0.16 MPKI).
    p.warmFrac = 0.006;
    p.coolFrac = 0.025;
    p.managed = true;
    p.allocBytesPerInst = 0.55; // per-request object churn
    p.maxHeapBytes = 32 * MiB;
    p.tierUpCallThreshold = 48;
    p.exceptionPki = 0.01;
    p.contentionPki = 0.05;
    return p;
}

std::vector<WorkloadProfile>
buildAspnet()
{
    std::vector<WorkloadProfile> out;
    out.reserve(kAspNetBenchmarks);
    std::uint64_t seed = 0xA59'4E37'0000'0000ULL;
    auto add = [&](WorkloadProfile p) {
        p.validate();
        out.push_back(std::move(p));
    };

    // ---- Table IV's eight representative scenarios ----
    {
        // Renders sorted DB query results to HTML.
        auto p = aspnetBase("DbFortunesRaw",
                            "Renders sorted DB query results to HTML",
                            ++seed);
        p.kernelFrac = 0.42;
        p.allocBytesPerInst = 0.70;
        p.dataFootprint = 5 * MiB;
        add(p);
    }
    {
        auto p = aspnetBase("MvcDbFortunesRaw",
                            "Fortunes rendering via the MVC backend",
                            ++seed);
        p.methods = 2100; // MVC adds a routing/view layer
        p.kernelFrac = 0.40;
        p.allocBytesPerInst = 0.80;
        p.dataFootprint = 6 * MiB;
        add(p);
    }
    {
        auto p = aspnetBase("MvcDbMultiUpdateRaw",
                            "Serializes multiple DB updates as JSON",
                            ++seed);
        p.methods = 2100;
        p.storeFrac = 0.20;
        p.allocBytesPerInst = 0.90;
        p.dataFootprint = 7 * MiB;
        add(p);
    }
    {
        // Plaintext: pipelined tiny responses; kernel-bound.
        auto p = aspnetBase("Plaintext",
                            "Plaintext strings from pipelined queries",
                            ++seed);
        p.kernelFrac = 0.52;
        p.methods = 900;
        p.allocBytesPerInst = 0.15;
        p.dataFootprint = 1536 * KiB;
        p.cpuUtil = 0.98;
        add(p);
    }
    {
        auto p = aspnetBase("Json",
                            "Serializes a simple JSON document", ++seed);
        p.kernelFrac = 0.45;
        p.allocBytesPerInst = 0.40;
        p.dataFootprint = 2 * MiB;
        add(p);
    }
    {
        auto p = aspnetBase("CopyToAsync",
                            "Reads POST body, returns plaintext",
                            ++seed);
        p.kernelFrac = 0.48;
        p.streamFrac = 0.40;
        p.dataFootprint = 3 * MiB;
        p.allocBytesPerInst = 0.25;
        add(p);
    }
    {
        auto p = aspnetBase("MvcJsonNetOutput2M",
                            "Sends a 2 MB JSON document (MVC)", ++seed);
        p.methods = 2100;
        p.streamFrac = 0.45;
        p.storeFrac = 0.20;
        p.dataFootprint = 8 * MiB;
        p.allocBytesPerInst = 1.0;
        p.mlp = 2.6;
        add(p);
    }
    {
        auto p = aspnetBase("MvcJsonNetInput2M",
                            "Receives a 2 MB JSON document (MVC)",
                            ++seed);
        p.methods = 2100;
        p.streamFrac = 0.40;
        p.loadFrac = 0.33;
        p.dataFootprint = 8 * MiB;
        p.allocBytesPerInst = 1.1;
        p.mlp = 2.4;
        add(p);
    }

    // ---- The remaining TechEmpower/ASP.NET scenarios ----
    struct Tweak
    {
        const char *name;
        const char *description;
        double kernel;
        double alloc;
        std::uint64_t data_mib;
        unsigned methods;
        double stream;
    };
    const Tweak tweaks[] = {
        {"PlaintextNonPipelined", "Plaintext, one request per conn",
         0.55, 0.12, 1, 900, 0.12},
        {"PlaintextMvc", "Plaintext through MVC routing",
         0.45, 0.30, 2, 2100, 0.12},
        {"JsonPlatform", "JSON on the bare platform layer",
         0.47, 0.30, 2, 700, 0.15},
        {"JsonMvc", "JSON through MVC", 0.40, 0.55, 3, 2100, 0.15},
        {"JsonHttpListener", "JSON on HttpListener",
         0.50, 0.40, 2, 800, 0.15},
        {"DbSingleQueryRaw", "Single DB row, raw ADO.NET",
         0.42, 0.55, 4, 1500, 0.14},
        {"DbSingleQueryDapper", "Single DB row via Dapper",
         0.40, 0.65, 4, 1700, 0.14},
        {"DbSingleQueryEf", "Single DB row via EF Core",
         0.36, 0.85, 6, 2300, 0.13},
        {"DbMultiQueryRaw", "20 DB rows, raw ADO.NET",
         0.40, 0.70, 6, 1500, 0.16},
        {"DbMultiQueryDapper", "20 DB rows via Dapper",
         0.38, 0.80, 6, 1700, 0.16},
        {"DbMultiQueryEf", "20 DB rows via EF Core",
         0.34, 0.95, 8, 2300, 0.14},
        {"DbMultiUpdateRaw", "20 DB updates, raw ADO.NET",
         0.38, 0.85, 7, 1500, 0.16},
        {"DbMultiUpdateDapper", "20 DB updates via Dapper",
         0.36, 0.90, 7, 1700, 0.16},
        {"DbMultiUpdateEf", "20 DB updates via EF Core",
         0.33, 1.05, 8, 2300, 0.14},
        {"DbFortunesDapper", "Fortunes via Dapper",
         0.40, 0.80, 5, 1700, 0.15},
        {"DbFortunesEf", "Fortunes via EF Core",
         0.35, 0.95, 7, 2300, 0.14},
        {"MvcDbSingleQueryRaw", "Single DB row, MVC",
         0.38, 0.65, 5, 2100, 0.14},
        {"MvcDbMultiQueryRaw", "20 DB rows, MVC",
         0.37, 0.80, 6, 2100, 0.15},
        {"MvcJson", "JSON through full MVC stack",
         0.38, 0.60, 3, 2100, 0.15},
        {"MvcPlaintext", "Plaintext through full MVC stack",
         0.42, 0.35, 2, 2100, 0.12},
        {"MvcJsonNetInput60K", "Receives 60 KB JSON (MVC)",
         0.40, 0.75, 4, 2100, 0.30},
        {"MvcJsonNetOutput60K", "Sends 60 KB JSON (MVC)",
         0.41, 0.70, 4, 2100, 0.32},
        {"MvcJsonInput2M", "Receives 2 MB JSON, S.T.Json (MVC)",
         0.40, 0.95, 8, 2100, 0.40},
        {"MvcJsonOutput2M", "Sends 2 MB JSON, S.T.Json (MVC)",
         0.41, 0.90, 8, 2100, 0.42},
        {"StaticFiles", "Serves static file content",
         0.50, 0.20, 3, 1100, 0.35},
        {"Websockets", "Echo over persistent websockets",
         0.48, 0.30, 2, 1300, 0.25},
        {"SignalRBroadcast", "SignalR hub broadcast",
         0.42, 0.55, 4, 1900, 0.20},
        {"SignalREcho", "SignalR echo", 0.44, 0.45, 3, 1900, 0.20},
        {"GrpcUnary", "gRPC unary calls", 0.43, 0.50, 3, 1600, 0.20},
        {"GrpcServerStreaming", "gRPC server streaming",
         0.45, 0.55, 4, 1600, 0.30},
        {"GrpcClientStreaming", "gRPC client streaming",
         0.45, 0.55, 4, 1600, 0.28},
        {"HttpsJson", "JSON over TLS", 0.46, 0.45, 3, 1800, 0.22},
        {"HttpsPlaintext", "Plaintext over TLS",
         0.50, 0.25, 2, 1500, 0.22},
        {"Http2Json", "JSON over HTTP/2", 0.45, 0.50, 3, 1800, 0.20},
        {"Http2Plaintext", "Plaintext over HTTP/2",
         0.49, 0.30, 2, 1500, 0.18},
        {"ResponseCaching", "In-memory response cache hits",
         0.40, 0.30, 5, 1400, 0.18},
        {"MemoryCachePlaintext", "MemoryCache-backed plaintext",
         0.40, 0.35, 5, 1400, 0.16},
        {"Mvc2kQueries", "2000-row query burst (MVC)",
         0.34, 1.10, 10, 2100, 0.18},
        {"ConnectionClose", "Connection-per-request stress",
         0.55, 0.30, 2, 1100, 0.12},
        {"ConnectionKeepAlive", "Keep-alive connection reuse",
         0.46, 0.25, 2, 1100, 0.12},
        {"UrlRouting", "Endpoint-routing micro paths",
         0.38, 0.45, 2, 1900, 0.12},
        {"AuthJwt", "JWT bearer authentication",
         0.40, 0.55, 3, 2000, 0.15},
        {"RequestLogging", "Request logging middleware on",
         0.42, 0.65, 4, 1900, 0.15},
        {"Orchard", "Orchard CMS page render",
         0.33, 1.00, 12, 2600, 0.14},
        {"BlazorServer", "Blazor server circuit updates",
         0.36, 0.90, 8, 2400, 0.16},
    };
    for (const auto &t : tweaks) {
        auto p = aspnetBase(t.name, t.description, ++seed);
        p.kernelFrac = t.kernel;
        p.allocBytesPerInst = t.alloc;
        p.dataFootprint = t.data_mib * MiB;
        p.maxHeapBytes = std::max<std::uint64_t>(
            p.maxHeapBytes, 4 * p.dataFootprint);
        p.methods = t.methods;
        p.streamFrac = t.stream;
        add(p);
    }

    if (out.size() != kAspNetBenchmarks)
        throw std::logic_error("aspnet: benchmark count drifted");
    return out;
}

} // namespace

std::vector<WorkloadProfile>
aspnetBenchmarks()
{
    static const std::vector<WorkloadProfile> profiles = buildAspnet();
    return profiles;
}

} // namespace netchar::wl
