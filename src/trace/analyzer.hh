/**
 * @file
 * TraceAnalyzer: re-slices one captured trace into IntervalSample
 * series at ANY sampling interval.
 *
 * The legacy path re-ran a benchmark per interval width; a trace
 * makes the interval an analysis-time choice, so Figure 13 can be
 * reproduced at 0.1 / 1 / 10 ms from a single run. Slicing follows
 * exactly the live-sampling rule (Characterizer::sampleCycles): from
 * the previous boundary, the next boundary is the first counter
 * record whose cycle count reaches prev + interval. Because capture
 * emits a counter record at every advance chunk — the same chunk grid
 * live sampling advances on — a re-slice at the legacy interval is
 * bit-identical to the legacy series.
 *
 * Runtime events per interval are reconstructed from the event stream
 * via the records' eventSeq watermarks, which equals the aggregate
 * snapshot deltas as long as the event ring did not spill; intervals
 * whose events were dropped undercount (loss is observable through
 * Trace::events.dropped()).
 */

#ifndef NETCHAR_TRACE_ANALYZER_HH
#define NETCHAR_TRACE_ANALYZER_HH

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "trace/sample.hh"
#include "trace/trace.hh"

namespace netchar::trace
{

/** Aggregate view of one trace (events by kind, loss, span). */
struct TraceSummary
{
    /** Retained events per kind. */
    std::array<std::uint64_t,
               static_cast<std::size_t>(TraceEventKind::NumKinds)>
        eventCounts{};
    /** Events lost to the ring's spill policy. */
    std::uint64_t droppedEvents = 0;
    /** Counter records lost to the ring's spill policy. */
    std::uint64_t droppedSamples = 0;
    /** Counter records retained. */
    std::size_t counterSamples = 0;
    /** Cycle span covered by the retained counter records. */
    double spanCycles = 0.0;
};

/** Read-side analysis over one captured Trace. */
class TraceAnalyzer
{
  public:
    static constexpr std::size_t kNoLimit =
        std::numeric_limits<std::size_t>::max();

    /** @param trace Captured trace (not owned; must outlive this). */
    explicit TraceAnalyzer(const Trace &trace);

    /**
     * Slice the trace into fixed cycle windows (the paper's wall-time
     * sampling, in simulated cycles).
     *
     * @param interval_cycles Aggregate-cycle width of each sample.
     * @param max_samples Stop after this many samples.
     * @return One IntervalSample per complete window; the trailing
     *         partial window is discarded, exactly like live
     *         sampling which never returns one.
     */
    std::vector<IntervalSample>
    reslice(double interval_cycles,
            std::size_t max_samples = kNoLimit) const;

    /** As reslice(), with the interval in simulated milliseconds. */
    std::vector<IntervalSample>
    resliceMillis(double interval_ms,
                  std::size_t max_samples = kNoLimit) const;

    /** Event totals, loss counters and span of the trace. */
    TraceSummary summary() const;

    /**
     * Cumulative counts of the whole retained event stream as the
     * aggregate RuntimeEventCounts view (what rt::EventTrace keeps).
     */
    rt::RuntimeEventCounts eventTotals() const;

    const Trace &trace() const { return trace_; }

  private:
    /** Retained events with sequence number <= seq, by kind. */
    std::array<std::uint64_t,
               static_cast<std::size_t>(TraceEventKind::NumKinds)>
    countsUpTo(std::uint64_t seq) const;

    const Trace &trace_;
    /**
     * prefix_[i][k]: events of kind k among the first i retained
     * events; prefix_.size() == events.size() + 1. Built once so each
     * re-slice is O(samples), not O(events x samples).
     */
    std::vector<std::array<
        std::uint64_t,
        static_cast<std::size_t>(TraceEventKind::NumKinds)>>
        prefix_;
};

} // namespace netchar::trace

#endif // NETCHAR_TRACE_ANALYZER_HH
