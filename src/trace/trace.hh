/**
 * @file
 * Trace: one captured timeline — a runtime-event ring, a periodic
 * counter-record ring, and the metadata needed to interpret them
 * (clock rate for cycle->wall mapping, sampling cadence, identity).
 *
 * A Trace is plain data: capture fills it, TraceAnalyzer re-slices
 * it, export_trace serializes it. Both rings are bounded (see
 * TraceBuffer), so a Trace's resident size is O(bufferEvents +
 * bufferSamples) no matter how long the run was, with loss visible
 * through the dropped() counters.
 */

#ifndef NETCHAR_TRACE_TRACE_HH
#define NETCHAR_TRACE_TRACE_HH

#include <cstdint>
#include <string>

#include "trace/buffer.hh"
#include "trace/counter_record.hh"
#include "trace/event.hh"

namespace netchar::trace
{

/** One captured run: event stream + counter samples + metadata. */
struct Trace
{
    /** Benchmark the trace was captured from. */
    std::string benchmark;
    /** Machine model name. */
    std::string machine;
    /** Max turbo GHz: cycles / (ghz * 1e3) = microseconds. */
    double ghz = 1.0;
    /** Run seed (traces are deterministic per (profile,machine,seed)). */
    std::uint64_t seed = 0;
    /** Instructions between counter records (the sampling cadence). */
    std::uint64_t chunkInstructions = 0;

    /** Timestamped runtime events (bounded, drop-oldest). */
    TraceBuffer<TraceEvent> events;
    /** Periodic cumulative counter snapshots (bounded, drop-oldest). */
    TraceBuffer<CounterRecord> samples;

    /** Simulated microseconds for a cycle timestamp. */
    double micros(double cycles) const
    {
        return cycles / (ghz * 1e3);
    }

    /** First retained counter timestamp (0 when empty). */
    double beginCycles() const
    {
        return samples.size() > 0 ? samples.at(0).counters.cycles
                                  : 0.0;
    }

    /** Last retained counter timestamp (0 when empty). */
    double endCycles() const
    {
        return samples.size() > 0
            ? samples.at(samples.size() - 1).counters.cycles
            : 0.0;
    }
};

} // namespace netchar::trace

#endif // NETCHAR_TRACE_TRACE_HH
