/**
 * @file
 * TraceClock: the simulated-time source events are stamped with.
 *
 * Timestamps must come from simulated time (cycles, retired
 * instructions), never from the host clock: that is what makes traces
 * deterministic — byte-identical for a given (profile, machine, seed)
 * regardless of host load or `--jobs`. sim::Machine implements this
 * interface by summing its cores' counters.
 */

#ifndef NETCHAR_TRACE_CLOCK_HH
#define NETCHAR_TRACE_CLOCK_HH

#include <cstdint>

namespace netchar::trace
{

/** Simulated-time source for event timestamps. */
class TraceClock
{
  public:
    virtual ~TraceClock() = default;

    /** Aggregate core cycles elapsed. */
    virtual double cycles() const = 0;

    /** Aggregate instructions retired. */
    virtual std::uint64_t instructions() const = 0;
};

} // namespace netchar::trace

#endif // NETCHAR_TRACE_CLOCK_HH
