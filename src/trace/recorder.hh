/**
 * @file
 * TraceRecorder: stamps events with the simulated clock and pushes
 * them into a ring buffer.
 *
 * The recorder is the single write path of a capture: the CLR model
 * (via rt::EventTrace) emits runtime events through it, and
 * sim::Machine reads its totalPushed() watermark when snapshotting
 * counters so trace re-slicing can reproduce aggregate event counts
 * exactly. Header-only so the runtime and sim layers can emit without
 * linking the trace library.
 */

#ifndef NETCHAR_TRACE_RECORDER_HH
#define NETCHAR_TRACE_RECORDER_HH

#include <cstdint>

#include "trace/buffer.hh"
#include "trace/clock.hh"
#include "trace/event.hh"

namespace netchar::trace
{

/** Write handle binding an event ring to a simulated clock. */
class TraceRecorder
{
  public:
    /**
     * @param events Destination ring (not owned; must outlive this).
     * @param clock Simulated-time source (not owned).
     */
    TraceRecorder(TraceBuffer<TraceEvent> *events,
                  const TraceClock *clock)
        : events_(events), clock_(clock)
    {
    }

    /** Record one event stamped with the current simulated time. */
    void
    emit(TraceEventKind kind, std::uint64_t arg0 = 0,
         std::uint64_t arg1 = 0)
    {
        TraceEvent event;
        event.cycles = clock_->cycles();
        event.instructions = clock_->instructions();
        event.kind = kind;
        event.arg0 = arg0;
        event.arg1 = arg1;
        events_->push(event);
    }

    /**
     * Events emitted so far (the sequence watermark counter samples
     * store so re-slices bucket events exactly as live sampling did).
     */
    std::uint64_t eventsPushed() const
    {
        return events_->totalPushed();
    }

    const TraceBuffer<TraceEvent> &events() const { return *events_; }

  private:
    TraceBuffer<TraceEvent> *events_;
    const TraceClock *clock_;
};

} // namespace netchar::trace

#endif // NETCHAR_TRACE_RECORDER_HH
