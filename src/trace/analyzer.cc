#include "trace/analyzer.hh"

#include <algorithm>

namespace netchar::trace
{

namespace
{

constexpr std::size_t kKinds =
    static_cast<std::size_t>(TraceEventKind::NumKinds);

rt::RuntimeEventCounts
toCounts(const std::array<std::uint64_t, kKinds> &by_kind)
{
    rt::RuntimeEventCounts counts;
    counts.gcTriggered = by_kind[static_cast<std::size_t>(
        TraceEventKind::GcTriggered)];
    counts.gcAllocationTick = by_kind[static_cast<std::size_t>(
        TraceEventKind::GcAllocationTick)];
    counts.jitStarted = by_kind[static_cast<std::size_t>(
        TraceEventKind::JitStarted)];
    counts.exceptionStart = by_kind[static_cast<std::size_t>(
        TraceEventKind::ExceptionStart)];
    counts.contentionStart = by_kind[static_cast<std::size_t>(
        TraceEventKind::ContentionStart)];
    return counts;
}

std::array<std::uint64_t, kKinds>
sub(const std::array<std::uint64_t, kKinds> &a,
    const std::array<std::uint64_t, kKinds> &b)
{
    std::array<std::uint64_t, kKinds> d{};
    for (std::size_t k = 0; k < kKinds; ++k)
        d[k] = a[k] - b[k];
    return d;
}

} // namespace

TraceAnalyzer::TraceAnalyzer(const Trace &trace) : trace_(trace)
{
    const auto &events = trace_.events;
    prefix_.resize(events.size() + 1);
    for (std::size_t i = 0; i < events.size(); ++i) {
        prefix_[i + 1] = prefix_[i];
        const auto kind =
            static_cast<std::size_t>(events.at(i).kind);
        if (kind < kKinds)
            ++prefix_[i + 1][kind];
    }
}

std::array<std::uint64_t, kKinds>
TraceAnalyzer::countsUpTo(std::uint64_t seq) const
{
    // Retained event i (0-based) has sequence dropped + i + 1, so
    // "sequence <= seq" selects the first (seq - dropped) of them.
    const std::uint64_t dropped = trace_.events.dropped();
    const std::uint64_t within = seq > dropped ? seq - dropped : 0;
    const std::size_t p = static_cast<std::size_t>(
        std::min<std::uint64_t>(within, trace_.events.size()));
    return prefix_[p];
}

std::vector<IntervalSample>
TraceAnalyzer::reslice(double interval_cycles,
                       std::size_t max_samples) const
{
    std::vector<IntervalSample> out;
    const auto &records = trace_.samples;
    if (records.size() == 0 || interval_cycles <= 0.0)
        return out;

    // Mirror of Characterizer::sampleCycles: from the previous
    // boundary, advance to the first record whose cycle count reaches
    // prev + interval (possibly the previous record itself when the
    // interval is below the chunk granularity — live sampling then
    // takes a zero-width sample too).
    std::size_t prev = 0;
    while (out.size() < max_samples) {
        const double target =
            records.at(prev).counters.cycles + interval_cycles;
        std::size_t next = prev;
        while (next < records.size() &&
               records.at(next).counters.cycles < target)
            ++next;
        if (next == records.size())
            break; // trailing partial window: discard
        IntervalSample sample;
        sample.counters = records.at(next).counters.delta(
            records.at(prev).counters);
        sample.slots =
            records.at(next).slots.delta(records.at(prev).slots);
        sample.events =
            toCounts(sub(countsUpTo(records.at(next).eventSeq),
                         countsUpTo(records.at(prev).eventSeq)));
        out.push_back(sample);
        prev = next;
    }
    return out;
}

std::vector<IntervalSample>
TraceAnalyzer::resliceMillis(double interval_ms,
                             std::size_t max_samples) const
{
    return reslice(interval_ms * trace_.ghz * 1e6, max_samples);
}

TraceSummary
TraceAnalyzer::summary() const
{
    TraceSummary s;
    s.eventCounts = prefix_.back();
    s.droppedEvents = trace_.events.dropped();
    s.droppedSamples = trace_.samples.dropped();
    s.counterSamples = trace_.samples.size();
    s.spanCycles = trace_.endCycles() - trace_.beginCycles();
    return s;
}

rt::RuntimeEventCounts
TraceAnalyzer::eventTotals() const
{
    return toCounts(prefix_.back());
}

} // namespace netchar::trace
