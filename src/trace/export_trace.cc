#include "trace/export_trace.hh"

#include <cstdio>
#include <sstream>

#include "stats/textio.hh"

namespace netchar::trace
{

namespace
{

/** Deterministic double formatting (shortest %g at 12 digits). */
std::string
num(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

void
appendInstantEvent(std::ostringstream &os, const Trace &trace,
                   const TraceEvent &event, std::uint64_t seq)
{
    const auto names = traceEventArgNames(event.kind);
    os << "{\"name\":\""
       << jsonEscape(std::string(traceEventKindName(event.kind)))
       << "\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":1,\"ts\":"
       << num(trace.micros(event.cycles)) << ",\"args\":{\"seq\":"
       << seq << ",\"instructions\":" << event.instructions << ",\""
       << names.first << "\":" << event.arg0 << ",\"" << names.second
       << "\":" << event.arg1 << "}}";
}

void
appendCounter(std::ostringstream &os, const Trace &trace, double ts,
              const char *name, const char *key, double value)
{
    os << "{\"name\":\"" << name
       << "\",\"ph\":\"C\",\"pid\":1,\"ts\":"
       << num(trace.micros(ts)) << ",\"args\":{\"" << key
       << "\":" << num(value) << "}}";
}

} // namespace

std::string
chromeTraceJson(const Trace &trace)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"benchmark\":\"" << jsonEscape(trace.benchmark)
       << "\",\"machine\":\"" << jsonEscape(trace.machine)
       << "\",\"ghz\":" << num(trace.ghz) << ",\"seed\":"
       << trace.seed << ",\"chunkInstructions\":"
       << trace.chunkInstructions << ",\"droppedEvents\":"
       << trace.events.dropped() << ",\"droppedSamples\":"
       << trace.samples.dropped() << "},\"traceEvents\":[";

    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ',';
        first = false;
    };

    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"tid\":1,\"args\":{\"name\":\"netchar "
       << jsonEscape(trace.benchmark) << " on "
       << jsonEscape(trace.machine) << "\"}}";
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
          "\"tid\":1,\"args\":{\"name\":\"CLR runtime events\"}}";

    // Runtime events and counter records are each time-ordered;
    // merge the two streams so the document is globally ordered.
    std::size_t e = 0, s = 0;
    const std::size_t n_events = trace.events.size();
    const std::size_t n_samples = trace.samples.size();
    while (e < n_events || s < n_samples) {
        const bool take_event = e < n_events &&
            (s >= n_samples ||
             trace.events.at(e).cycles <=
                 trace.samples.at(s).counters.cycles);
        if (take_event) {
            sep();
            appendInstantEvent(os, trace, trace.events.at(e),
                               trace.events.seqOf(e));
            ++e;
            continue;
        }
        // Counter tracks carry per-interval values: delta against the
        // previous record (the first record seeds the series at 0).
        const auto &record = trace.samples.at(s);
        const double ts = record.counters.cycles;
        sim::PerfCounters delta = record.counters;
        if (s > 0)
            delta = record.counters.delta(
                trace.samples.at(s - 1).counters);
        const bool seed_point = s == 0;
        sep();
        appendCounter(os, trace, ts, "IPC", "ipc",
                      seed_point ? 0.0 : delta.ipc());
        sep();
        appendCounter(os, trace, ts, "branch MPKI", "mpki",
                      seed_point ? 0.0
                                 : delta.mpki(delta.branchMisses));
        sep();
        appendCounter(os, trace, ts, "L1D MPKI", "mpki",
                      seed_point ? 0.0
                                 : delta.mpki(delta.l1dMisses));
        sep();
        appendCounter(os, trace, ts, "LLC MPKI", "mpki",
                      seed_point ? 0.0
                                 : delta.mpki(delta.llcMisses));
        ++s;
    }
    os << "]}";
    return os.str();
}

std::string
traceCsv(const Trace &trace)
{
    std::ostringstream os;
    os << "seq,cycles,us,instructions,event,arg0,arg1\n";
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        const auto &event = trace.events.at(i);
        os << trace.events.seqOf(i) << ',' << num(event.cycles)
           << ',' << num(trace.micros(event.cycles)) << ','
           << event.instructions << ','
           << csvField(std::string(traceEventKindName(event.kind)))
           << ',' << event.arg0 << ',' << event.arg1 << '\n';
    }
    return os.str();
}

} // namespace netchar::trace
