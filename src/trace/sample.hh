/**
 * @file
 * IntervalSample: per-interval deltas of counters, Top-Down slots and
 * runtime events — the §VII correlation studies' unit of analysis.
 *
 * Historically defined by core/characterize.hh; it lives here so the
 * trace layer (which re-slices traces into IntervalSample series) can
 * produce it without depending on the measurement harness. It stays
 * in namespace netchar because it is shared vocabulary between the
 * trace and core layers, not a trace-internal type.
 */

#ifndef NETCHAR_TRACE_SAMPLE_HH
#define NETCHAR_TRACE_SAMPLE_HH

#include "runtime/events.hh"
#include "sim/counters.hh"

namespace netchar
{

/** One interval sample of a run (the §VII correlation studies). */
struct IntervalSample
{
    sim::PerfCounters counters;
    sim::SlotAccount slots;
    rt::RuntimeEventCounts events;
};

} // namespace netchar

#endif // NETCHAR_TRACE_SAMPLE_HH
