/**
 * @file
 * CounterRecord: one periodic counter snapshot on the trace timeline.
 *
 * Records are cumulative (full PerfCounters + Top-Down slots since
 * machine construction); consumers delta adjacent records to get
 * per-interval values, exactly like live interval sampling does. The
 * eventSeq watermark pins the runtime-event stream position at the
 * snapshot instant, so TraceAnalyzer re-slices bucket events
 * identically to how Characterizer::sampleCycles snapshots aggregate
 * counts — the basis of the Figure 13 parity guarantee.
 *
 * Only sim-layer types appear here so sim::Machine can emit records
 * without depending on higher layers.
 */

#ifndef NETCHAR_TRACE_COUNTER_RECORD_HH
#define NETCHAR_TRACE_COUNTER_RECORD_HH

#include <cstdint>

#include "sim/counters.hh"

namespace netchar::trace
{

/** Cumulative counter snapshot with an event-stream watermark. */
struct CounterRecord
{
    /** All core counters summed (counters.cycles is the timestamp). */
    sim::PerfCounters counters;
    /** All core Top-Down slot accounts summed. */
    sim::SlotAccount slots;
    /** Runtime events recorded up to this snapshot (TraceRecorder
     *  totalPushed at emission). */
    std::uint64_t eventSeq = 0;
};

} // namespace netchar::trace

#endif // NETCHAR_TRACE_COUNTER_RECORD_HH
