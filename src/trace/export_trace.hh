/**
 * @file
 * Trace serialization: chrome://tracing JSON (loads directly in
 * Perfetto / chrome's about:tracing) and a per-event CSV.
 *
 * Both formats are deterministic: timestamps are simulated time and
 * every number is printed with fixed formatting, so the bytes are
 * identical for a given (profile, machine, seed) across repeated
 * runs and any `--jobs` fan-out.
 *
 * Chrome JSON layout: runtime events become instant ("i") events with
 * per-kind args; counter records become counter ("C") tracks (IPC and
 * the headline MPKI series, computed per record delta) that Perfetto
 * renders as timeline graphs next to the event marks.
 */

#ifndef NETCHAR_TRACE_EXPORT_TRACE_HH
#define NETCHAR_TRACE_EXPORT_TRACE_HH

#include <string>

#include "trace/trace.hh"

namespace netchar::trace
{

/** chrome://tracing JSON document for one trace. */
std::string chromeTraceJson(const Trace &trace);

/**
 * Per-event CSV: `seq,cycles,us,instructions,event,arg0,arg1`, one
 * row per retained runtime event, oldest first.
 */
std::string traceCsv(const Trace &trace);

} // namespace netchar::trace

#endif // NETCHAR_TRACE_EXPORT_TRACE_HH
