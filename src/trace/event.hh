/**
 * @file
 * TraceEvent: one timestamped runtime event on the simulated timeline.
 *
 * The paper's measurement substrate pairs perf counters with LTTng
 * runtime traces — timestamped CLR event streams later sliced into
 * 1 ms samples (§VII). TraceEvent is the stream element of that
 * reproduction: a fixed-size POD stamped with the machine's simulated
 * clock (aggregate core cycles + retired instructions) plus a small
 * per-kind payload. Fixed size keeps the ring buffer bound exact and
 * the capture overhead flat.
 *
 * This header is dependency-free on purpose: the runtime and sim
 * layers emit events through header-only trace types without linking
 * the trace library (which sits above both).
 */

#ifndef NETCHAR_TRACE_EVENT_HH
#define NETCHAR_TRACE_EVENT_HH

#include <cstdint>
#include <string_view>
#include <utility>

namespace netchar::trace
{

/** Kinds of timeline events (mirrors rt::RuntimeEventType). */
enum class TraceEventKind : std::uint8_t
{
    GcTriggered = 0,
    GcAllocationTick,
    JitStarted,
    ExceptionStart,
    ContentionStart,
    NumKinds,
};

/** LTTng-style display name of an event kind. */
constexpr std::string_view
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::GcTriggered: return "GC/Triggered";
      case TraceEventKind::GcAllocationTick:
        return "GC/AllocationTick";
      case TraceEventKind::JitStarted:
        return "Method/JittingStarted";
      case TraceEventKind::ExceptionStart: return "Exception/Start";
      case TraceEventKind::ContentionStart:
        return "Contention/Start";
      default: return "Unknown";
    }
}

/** Names of the two payload arguments of an event kind. */
constexpr std::pair<std::string_view, std::string_view>
traceEventArgNames(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::GcTriggered:
        return {"gcInstructions", "bytesScanned"};
      case TraceEventKind::GcAllocationTick:
        return {"tickBytes", "allocatedSinceGc"};
      case TraceEventKind::JitStarted:
        return {"method", "compileInstructions"};
      default:
        return {"arg0", "arg1"};
    }
}

/**
 * One timestamped event. Timestamps are simulated, not host, time:
 * traces are therefore byte-identical for a given (profile, machine,
 * seed) no matter where or how parallel the capture ran.
 */
struct TraceEvent
{
    /** Aggregate core cycles at emission (the machine clock). */
    double cycles = 0.0;
    /** Aggregate retired instructions at emission. */
    std::uint64_t instructions = 0;
    /** Per-kind payload (see traceEventArgNames). */
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    TraceEventKind kind = TraceEventKind::GcTriggered;
};

} // namespace netchar::trace

#endif // NETCHAR_TRACE_EVENT_HH
