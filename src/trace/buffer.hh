/**
 * @file
 * TraceBuffer: fixed-capacity ring buffer with a drop-oldest spill
 * policy and an observable loss counter.
 *
 * Low-overhead, bounded-memory event capture is what makes trace data
 * trustworthy (cf. nanoBench): a trace must never grow without bound
 * mid-run, and any loss must be visible to the analysis instead of
 * silently skewing it. The buffer therefore:
 *
 *  - never holds more than `capacity()` entries (memory is O(N));
 *  - drops the OLDEST entry on overflow (the most recent window is
 *    the one analyses usually want);
 *  - counts every drop, and numbers entries with a global sequence
 *    so consumers can tell exactly which prefix was lost.
 *
 * Entries are numbered 1..totalPushed(); the retained suffix is
 * (dropped(), totalPushed()], with at(i) holding sequence number
 * dropped() + i + 1. Internal storage grows lazily but its reserve is
 * clamped to the capacity, so memoryBytes() <= capacity * sizeof(T).
 */

#ifndef NETCHAR_TRACE_BUFFER_HH
#define NETCHAR_TRACE_BUFFER_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace netchar::trace
{

/** Bounded ring of trace records (drop-oldest on overflow). */
template <typename T>
class TraceBuffer
{
  public:
    TraceBuffer() = default;

    /** @param capacity Maximum retained entries (0 = retain none). */
    explicit TraceBuffer(std::size_t capacity) : capacity_(capacity) {}

    /** Maximum retained entries. */
    std::size_t capacity() const { return capacity_; }

    /** Entries currently retained (<= capacity). */
    std::size_t size() const { return ring_.size(); }

    /** Entries ever pushed (retained + dropped). */
    std::uint64_t totalPushed() const { return totalPushed_; }

    /** Entries lost to the spill policy. */
    std::uint64_t dropped() const
    {
        return totalPushed_ - ring_.size();
    }

    /** Bytes of backing storage (bounded by capacity * sizeof(T)). */
    std::size_t memoryBytes() const
    {
        return ring_.capacity() * sizeof(T);
    }

    /** Append one entry, evicting the oldest when full. */
    void
    push(const T &value)
    {
        ++totalPushed_;
        if (capacity_ == 0)
            return;
        if (ring_.size() < capacity_) {
            // Grow lazily but never reserve past the capacity, so
            // the memory bound holds even mid-growth.
            if (ring_.size() == ring_.capacity()) {
                const std::size_t want =
                    ring_.capacity() == 0 ? 64 : ring_.capacity() * 2;
                ring_.reserve(want < capacity_ ? want : capacity_);
            }
            ring_.push_back(value);
            return;
        }
        ring_[head_] = value;
        head_ = (head_ + 1) % capacity_;
    }

    /** i-th oldest retained entry (0 = oldest; throws out of range). */
    const T &
    at(std::size_t i) const
    {
        if (i >= ring_.size())
            throw std::out_of_range("TraceBuffer::at");
        return ring_[(head_ + i) % ring_.size()];
    }

    /** Global sequence number of at(i) (1-based over all pushes). */
    std::uint64_t seqOf(std::size_t i) const
    {
        return dropped() + i + 1;
    }

    /** Drop every entry and reset the counters. */
    void
    clear()
    {
        ring_.clear();
        head_ = 0;
        totalPushed_ = 0;
    }

  private:
    std::size_t capacity_ = 0;
    std::vector<T> ring_;
    /** Index of the oldest entry once the ring has wrapped. */
    std::size_t head_ = 0;
    std::uint64_t totalPushed_ = 0;
};

} // namespace netchar::trace

#endif // NETCHAR_TRACE_BUFFER_HH
