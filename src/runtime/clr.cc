#include "runtime/clr.hh"

namespace netchar::rt
{

Clr::Clr(const ClrConfig &config, std::uint64_t seed)
    : config_(config),
      heap_(config.heap),
      gc_(config.gc),
      jit_(config.jit, stats::Rng(seed).fork(0x4A49545FULL))
{
}

AllocResult
Clr::allocate(std::uint64_t bytes)
{
    AllocResult result;
    if (gc_.shouldCollect(heap_)) {
        result.gcTriggered = true;
        result.gcWork = gc_.collect(heap_);
        trace_.record(RuntimeEventType::GcTriggered,
                      result.gcWork.instructions,
                      result.gcWork.bytesScanned);
    }
    result.address = heap_.allocate(bytes);
    allocTickAccum_ += bytes;
    while (allocTickAccum_ >= config_.allocTickBytes) {
        allocTickAccum_ -= config_.allocTickBytes;
        trace_.record(RuntimeEventType::GcAllocationTick,
                      config_.allocTickBytes,
                      heap_.allocatedSinceGc());
    }
    return result;
}

JitOutcome
Clr::invokeMethod(unsigned index)
{
    JitOutcome out = jit_.invoke(index);
    if (out.jitted)
        trace_.record(RuntimeEventType::JitStarted, index,
                      out.compileInstructions);
    return out;
}

void
Clr::reset()
{
    heap_.reset();
    jit_.reset();
    trace_.reset();
    allocTickAccum_ = 0;
}

} // namespace netchar::rt
