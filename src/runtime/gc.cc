#include "runtime/gc.hh"

#include <algorithm>
#include <stdexcept>

namespace netchar::rt
{

Gc::Gc(const GcConfig &config) : config_(config)
{
    if (config_.workstationBudgetFraction <= 0.0 ||
        config_.workstationBudgetFraction > 1.0)
        throw std::invalid_argument("Gc: bad budget fraction");
    if (config_.serverAggression < 1.0)
        throw std::invalid_argument("Gc: server aggression < 1");
}

std::uint64_t
Gc::budgetBytes(const Heap &heap) const
{
    double fraction = config_.workstationBudgetFraction;
    if (config_.mode == GcMode::Server)
        fraction /= config_.serverAggression;
    const double budget =
        fraction * static_cast<double>(heap.maxBytes());
    // Never let the budget collapse below a minimal gen0 nursery.
    return std::max<std::uint64_t>(
        static_cast<std::uint64_t>(budget), 32 * 1024);
}

bool
Gc::shouldCollect(const Heap &heap) const
{
    return heap.full() || heap.allocatedSinceGc() >= budgetBytes(heap);
}

GcWork
Gc::collect(Heap &heap)
{
    GcWork work;
    // Generational collection: trace and move the survivors of the
    // allocation since the last GC, plus a card-table sweep over a
    // sliver of the old generation.
    const auto survivors = static_cast<std::uint64_t>(
        heap.survivorFraction() *
        static_cast<double>(heap.allocatedSinceGc()));
    work.bytesScanned = survivors + heap.liveBytes() / 256;
    if (config_.assist == GcAssist::Software) {
        work.instructions = static_cast<std::uint64_t>(
            config_.instructionsPerLiveByte *
            static_cast<double>(work.bytesScanned));
    }
    heap.compact();
    ++collections_;
    return work;
}

} // namespace netchar::rt
