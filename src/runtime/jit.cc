#include "runtime/jit.hh"

#include <algorithm>
#include <stdexcept>

namespace netchar::rt
{

Jit::Jit(const JitConfig &config, stats::Rng rng)
    : config_(config), rng_(rng), allocPtr_(config.codeBaseAddress)
{
    if (config_.methods == 0)
        throw std::invalid_argument("Jit: zero methods");
    if (config_.meanMethodBytes == 0)
        throw std::invalid_argument("Jit: zero method size");
    methods_.resize(config_.methods);
    for (auto &m : methods_) {
        m.bytes = std::max<std::uint64_t>(
            64, static_cast<std::uint64_t>(
                    rng_.jitter(static_cast<double>(
                                    config_.meanMethodBytes),
                                0.6)));
    }
}

std::uint64_t
Jit::allocateCode(std::uint64_t bytes)
{
    // Code pages are 4 KiB granular: each method lands on a fresh
    // page start so the cold-start unit matches the OS mapping unit.
    const std::uint64_t addr = allocPtr_;
    const std::uint64_t pages = (bytes + 4095) / 4096;
    allocPtr_ += pages * 4096;
    return addr;
}

JitOutcome
Jit::invoke(unsigned index)
{
    if (index >= methods_.size())
        throw std::out_of_range("Jit::invoke");
    JitMethod &m = methods_[index];
    JitOutcome out;
    ++m.calls;

    const bool needs_tier0 = !m.jitted;
    const bool needs_tier1 = m.jitted && m.tier == 0 &&
        config_.tierUpCallThreshold > 0 &&
        m.calls >= config_.tierUpCallThreshold;

    if (needs_tier0 || needs_tier1) {
        out.oldAddress = m.jitted ? m.address : 0;
        m.address = allocateCode(m.bytes);
        m.jitted = true;
        m.tier = needs_tier1 ? 1 : 0;
        double cost = config_.compileInstPerByte *
            static_cast<double>(m.bytes);
        if (needs_tier1)
            cost *= config_.tierUpCostFactor;
        out.compileInstructions = static_cast<std::uint64_t>(cost);
        out.jitted = true;
        out.newPageAddress = m.address & ~std::uint64_t{4095};
        out.newPageBytes = ((m.bytes + 4095) / 4096) * 4096;
        ++compilations_;
    }
    out.address = m.address;
    return out;
}

const JitMethod &
Jit::method(unsigned index) const
{
    if (index >= methods_.size())
        throw std::out_of_range("Jit::method");
    return methods_[index];
}

void
Jit::reset()
{
    allocPtr_ = config_.codeBaseAddress;
    compilations_ = 0;
    for (auto &m : methods_) {
        m.address = 0;
        m.tier = 0;
        m.calls = 0;
        m.jitted = false;
    }
}

} // namespace netchar::rt
