/**
 * @file
 * Managed heap model.
 *
 * The model captures exactly the property §VII-A2 rests on: between
 * collections, live objects are interleaved with garbage, so the
 * address range the application touches (the "spread") keeps growing
 * as allocation proceeds; a compacting GC squeezes the live set back
 * into a dense prefix, which shortens reuse distances and improves
 * cache locality. Workload generators draw data addresses from
 * [base(), base() + spreadBytes()), so compaction directly tightens
 * their access patterns.
 */

#ifndef NETCHAR_RUNTIME_HEAP_HH
#define NETCHAR_RUNTIME_HEAP_HH

#include <cstdint>

namespace netchar::rt
{

/** Static heap parameters. */
struct HeapConfig
{
    /** Virtual base address of the managed heap. */
    std::uint64_t baseAddress = 0x0000'7000'0000'0000ULL;
    /** Maximum heap size (the paper sweeps 200 MiB - 20,000 MiB). */
    std::uint64_t maxBytes = 2000ULL * 1024 * 1024;
    /** Steady-state live set of the application. */
    std::uint64_t liveBytes = 64ULL * 1024 * 1024;
    /**
     * Gen0 nursery window at the allocation frontier. Allocations
     * cycle through it, so fresh objects land on cache-warm lines —
     * the defining cache benefit of generational allocation.
     */
    std::uint64_t nurseryBytes = 512ULL * 1024;
    /**
     * Fraction of allocated bytes that survive long enough to extend
     * the heap spread (floating garbage + promotions) until the next
     * compaction.
     */
    double survivorFraction = 0.12;
};

/**
 * Bump-allocating generational heap with compaction.
 *
 * Only the geometry is modeled (no object graph): allocatedBytes grows
 * with allocation and snaps back to liveBytes on compact().
 */
class Heap
{
  public:
    explicit Heap(const HeapConfig &config);

    /**
     * Allocate: grows the spread. Returns the address of the new
     * object (bump pointer).
     *
     * @param bytes Object size.
     * @return Address of the allocation.
     */
    std::uint64_t allocate(std::uint64_t bytes);

    /**
     * Compact: garbage vanishes, survivors are densely repacked.
     * Allocated bytes drop to the live set; the bump pointer restarts
     * right after it.
     */
    void compact();

    /** Base virtual address of the heap. */
    std::uint64_t base() const { return config_.baseAddress; }

    /**
     * Current address-range width the application's data accesses
     * span (live set plus floating garbage), capped at maxBytes.
     */
    std::uint64_t spreadBytes() const;

    /** Bytes allocated since the last compaction (gen0 pressure). */
    std::uint64_t allocatedSinceGc() const { return sinceGc_; }

    /**
     * Fragmentation factor (>= 1): dead objects interleave with live
     * data between collections, diluting cache lines and inflating
     * the reuse distances of older data in proportion to the garbage
     * accumulated. Compaction restores 1.0 — the §VII-A2 mechanism
     * by which GC *improves* cache behavior.
     */
    double fragmentation() const;

    /** Total bytes ever allocated (telemetry). */
    std::uint64_t totalAllocated() const { return totalAllocated_; }

    /** Live set size. */
    std::uint64_t liveBytes() const { return config_.liveBytes; }

    /** Configured max heap. */
    std::uint64_t maxBytes() const { return config_.maxBytes; }

    /** Configured survivor fraction. */
    double survivorFraction() const { return config_.survivorFraction; }

    /**
     * True when allocation pressure has exhausted the heap budget and
     * a collection can no longer be deferred.
     */
    bool full() const;

    /** Reset to the post-construction state. */
    void reset();

  private:
    HeapConfig config_;
    std::uint64_t allocated_;      ///< current spread (live + garbage)
    std::uint64_t sinceGc_ = 0;
    std::uint64_t totalAllocated_ = 0;
    std::uint64_t nurseryCursor_ = 0;
    double survivorAccum_ = 0.0;
};

} // namespace netchar::rt

#endif // NETCHAR_RUNTIME_HEAP_HH
