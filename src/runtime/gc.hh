/**
 * @file
 * Garbage collector model: workstation vs server GC, heap-size sweeps,
 * and the paper's proposed hardware-assisted mode.
 *
 * §VII-B: the .NET runtime offers workstation GC (user-thread, lower
 * overhead, less aggressive) and server GC (dedicated high-priority
 * threads, more aggressive — triggered 6.18x more often in the paper,
 * cutting LLC MPKI 0.59x and speeding runs 1.14x despite the extra GC
 * instructions). The trigger model here reproduces that: server GC
 * collects at a much smaller allocation budget, so compaction happens
 * frequently and the heap spread stays tight.
 */

#ifndef NETCHAR_RUNTIME_GC_HH
#define NETCHAR_RUNTIME_GC_HH

#include <cstdint>

#include "runtime/heap.hh"

namespace netchar::rt
{

/** .NET GC flavor. */
enum class GcMode { Workstation, Server };

/** Who executes the collection work (§VII-A2's hardware proposal). */
enum class GcAssist
{
    Software, ///< GC instructions run on the application core
    Hardware, ///< offloaded: compaction benefit without the inst cost
};

/** GC policy parameters. */
struct GcConfig
{
    GcMode mode = GcMode::Workstation;
    GcAssist assist = GcAssist::Software;

    /**
     * Gen0 allocation budget as a fraction of max heap for workstation
     * GC; server GC uses workstationBudgetFraction / serverAggression.
     */
    double workstationBudgetFraction = 0.25;

    /**
     * How much more eagerly server GC collects. The paper's observed
     * trigger ratio is 6.18x.
     */
    double serverAggression = 6.18;

    /**
     * GC instructions executed per byte scanned/moved. Generational
     * collections scan survivors plus a card-table sweep, not the
     * whole live set, so the per-byte cost applies to a small volume.
     */
    double instructionsPerLiveByte = 0.04;

    /** Fraction of GC instructions that are memory loads. */
    double gcLoadFraction = 0.38;

    /** Fraction of GC instructions that are memory stores. */
    double gcStoreFraction = 0.30;
};

/** Work one collection generates for the workload to execute. */
struct GcWork
{
    /** Instructions of collector code to run (0 in Hardware mode). */
    std::uint64_t instructions = 0;
    /**
     * Bytes traversed: survivors of the collected generation plus a
     * card-table sweep over the old generation.
     */
    std::uint64_t bytesScanned = 0;
};

/**
 * Trigger-and-collect policy over a Heap. The collector does not track
 * objects; it converts heap geometry into trigger decisions and
 * instruction budgets.
 */
class Gc
{
  public:
    explicit Gc(const GcConfig &config);

    /** Allocation budget (bytes between collections) for this mode. */
    std::uint64_t budgetBytes(const Heap &heap) const;

    /** Should a collection run now? */
    bool shouldCollect(const Heap &heap) const;

    /**
     * Run a collection: compacts the heap and returns the work the
     * application core must execute (empty in Hardware-assist mode).
     */
    GcWork collect(Heap &heap);

    /** Number of collections so far. */
    std::uint64_t collections() const { return collections_; }

    const GcConfig &config() const { return config_; }

  private:
    GcConfig config_;
    std::uint64_t collections_ = 0;
};

} // namespace netchar::rt

#endif // NETCHAR_RUNTIME_GC_HH
