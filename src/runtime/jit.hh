/**
 * @file
 * JIT compiler model: tiered method compilation onto fresh code pages.
 *
 * The §VII-A1 mechanism in full: every (re)compilation places the
 * method at a *new* address range, so I-cache lines, I-TLB entries,
 * BTB entries and branch-predictor history keyed to the old addresses
 * become useless — cold starts that the workload generator then
 * experiences naturally because it fetches from the new addresses.
 * Compilation itself also costs compiler instructions, which the
 * workload executes inline (the runtime intercedes execution).
 */

#ifndef NETCHAR_RUNTIME_JIT_HH
#define NETCHAR_RUNTIME_JIT_HH

#include <cstdint>
#include <vector>

#include "stats/rng.hh"

namespace netchar::rt
{

/** JIT policy parameters. */
struct JitConfig
{
    /** Virtual base of the JIT code arena. */
    std::uint64_t codeBaseAddress = 0x0000'7F00'0000'0000ULL;
    /** Number of methods the workload's code footprint comprises. */
    unsigned methods = 256;
    /** Mean machine-code bytes per method. */
    std::uint64_t meanMethodBytes = 1024;
    /** Compiler instructions per emitted code byte (tier 0). */
    double compileInstPerByte = 40.0;
    /** Extra cost multiplier for an optimizing (tier 1) recompile. */
    double tierUpCostFactor = 3.0;
    /**
     * Calls before a hot method is recompiled at tier 1 (0 disables
     * tiering).
     */
    unsigned tierUpCallThreshold = 64;
};

/** One method's code placement. */
struct JitMethod
{
    std::uint64_t address = 0; ///< current entry point (0 = unjitted)
    std::uint64_t bytes = 0;
    unsigned tier = 0;
    std::uint64_t calls = 0;
    bool jitted = false;
};

/** Result of invoking a method through the JIT. */
struct JitOutcome
{
    /** Address to fetch the method body from. */
    std::uint64_t address = 0;
    /** Compiler instructions that ran first (0 on a plain call). */
    std::uint64_t compileInstructions = 0;
    /** The method was (re)compiled: a JittingStarted event. */
    bool jitted = false;
    /** Fresh code page(s) the compiler just mapped. */
    std::uint64_t newPageAddress = 0;
    std::uint64_t newPageBytes = 0;
    /** Previous entry point when this was a re-JIT (else 0). */
    std::uint64_t oldAddress = 0;
};

/**
 * Tiered JIT over a bump-allocated code arena. Methods compile on
 * first call (tier 0) and recompile at a hot-call threshold (tier 1),
 * each time at fresh addresses.
 */
class Jit
{
  public:
    /**
     * @param config Policy parameters.
     * @param rng Substream for method-size jitter.
     */
    Jit(const JitConfig &config, stats::Rng rng);

    /**
     * Invoke method `index`: compiles it if needed (tier 0 on first
     * call, tier 1 at the hot threshold) and returns the entry point
     * plus any compile work.
     */
    JitOutcome invoke(unsigned index);

    /** Method table introspection. */
    const JitMethod &method(unsigned index) const;

    /** Methods configured. */
    unsigned methodCount() const
    {
        return static_cast<unsigned>(methods_.size());
    }

    /** Total (re)compilations so far. */
    std::uint64_t compilations() const { return compilations_; }

    /** Bytes of machine code emitted so far. */
    std::uint64_t codeBytesEmitted() const
    {
        return allocPtr_ - config_.codeBaseAddress;
    }

    /** Drop all jitted code (fresh process). */
    void reset();

  private:
    std::uint64_t allocateCode(std::uint64_t bytes);

    JitConfig config_;
    stats::Rng rng_;
    std::vector<JitMethod> methods_;
    std::uint64_t allocPtr_;
    std::uint64_t compilations_ = 0;
};

} // namespace netchar::rt

#endif // NETCHAR_RUNTIME_JIT_HH
