/**
 * @file
 * CLR facade: heap + GC + JIT + event trace behind one interface, the
 * runtime object a managed workload instantiates per process.
 */

#ifndef NETCHAR_RUNTIME_CLR_HH
#define NETCHAR_RUNTIME_CLR_HH

#include <cstdint>

#include "runtime/events.hh"
#include "runtime/gc.hh"
#include "runtime/heap.hh"
#include "runtime/jit.hh"
#include "stats/rng.hh"

namespace netchar::rt
{

/** Full runtime configuration. */
struct ClrConfig
{
    HeapConfig heap;
    GcConfig gc;
    JitConfig jit;
    /** Bytes between GC/AllocationTick events (ETW default 100 KiB). */
    std::uint64_t allocTickBytes = 100 * 1024;
};

/** Result of one allocation through the runtime. */
struct AllocResult
{
    /** Address of the new object. */
    std::uint64_t address = 0;
    /** A GC ran as part of this allocation. */
    bool gcTriggered = false;
    /** Collector work the application core must execute. */
    GcWork gcWork;
};

/**
 * One managed runtime instance. All event bookkeeping (Table I
 * metrics 19-23) happens here; workloads call allocate() and
 * invokeMethod() and execute whatever work comes back.
 */
class Clr
{
  public:
    /**
     * @param config Runtime parameters.
     * @param seed Substream seed for method-size jitter.
     */
    Clr(const ClrConfig &config, std::uint64_t seed);

    /**
     * Allocate managed memory; may trigger a collection first, per
     * the GC policy. Records AllocationTick events (payload: tick
     * size, bytes allocated since the last GC) and GC/Triggered
     * events (payload: collector instructions, bytes scanned).
     */
    AllocResult allocate(std::uint64_t bytes);

    /**
     * Invoke a method through the JIT; compiles on demand and records
     * Method/JittingStarted events (payload: method index, compiler
     * instructions).
     */
    JitOutcome invokeMethod(unsigned index);

    /** Record an Exception/Start event. */
    void throwException() { trace_.record(RuntimeEventType::ExceptionStart); }

    /** Record a Contention/Start event. */
    void contend() { trace_.record(RuntimeEventType::ContentionStart); }

    Heap &heap() { return heap_; }
    const Heap &heap() const { return heap_; }
    Gc &gc() { return gc_; }
    const Gc &gc() const { return gc_; }
    Jit &jit() { return jit_; }
    const Jit &jit() const { return jit_; }
    EventTrace &trace() { return trace_; }
    const EventTrace &trace() const { return trace_; }

    /** Restore the runtime to a fresh-process state. */
    void reset();

  private:
    ClrConfig config_;
    Heap heap_;
    Gc gc_;
    Jit jit_;
    EventTrace trace_;
    std::uint64_t allocTickAccum_ = 0;
};

} // namespace netchar::rt

#endif // NETCHAR_RUNTIME_CLR_HH
