#include "runtime/heap.hh"

#include <algorithm>
#include <stdexcept>

namespace netchar::rt
{

Heap::Heap(const HeapConfig &config) : config_(config)
{
    if (config_.maxBytes == 0)
        throw std::invalid_argument("Heap: zero max size");
    if (config_.liveBytes > config_.maxBytes)
        throw std::invalid_argument("Heap: live set exceeds max heap");
    allocated_ = config_.liveBytes;
}

std::uint64_t
Heap::allocate(std::uint64_t bytes)
{
    // Objects are bump-allocated inside the nursery window just past
    // the current spread; the window recycles, so allocation stays
    // cache-warm while survivors grow the spread.
    nurseryCursor_ = (nurseryCursor_ + bytes) % config_.nurseryBytes;
    const std::uint64_t addr =
        config_.baseAddress + allocated_ + nurseryCursor_;
    survivorAccum_ +=
        config_.survivorFraction * static_cast<double>(bytes);
    if (survivorAccum_ >= 1.0) {
        const auto grow = static_cast<std::uint64_t>(survivorAccum_);
        survivorAccum_ -= static_cast<double>(grow);
        allocated_ = std::min(allocated_ + grow, config_.maxBytes);
    }
    sinceGc_ += bytes;
    totalAllocated_ += bytes;
    return addr;
}

void
Heap::compact()
{
    allocated_ = config_.liveBytes;
    sinceGc_ = 0;
    survivorAccum_ = 0.0;
}

std::uint64_t
Heap::spreadBytes() const
{
    return std::max(allocated_, config_.liveBytes);
}

double
Heap::fragmentation() const
{
    const double dilution = static_cast<double>(sinceGc_) /
        static_cast<double>(config_.liveBytes);
    return 1.0 + std::min(1.0, dilution);
}

bool
Heap::full() const
{
    return allocated_ >= config_.maxBytes;
}

void
Heap::reset()
{
    allocated_ = config_.liveBytes;
    sinceGc_ = 0;
    totalAllocated_ = 0;
    survivorAccum_ = 0.0;
    nurseryCursor_ = 0;
}

} // namespace netchar::rt
