#include "runtime/events.hh"

#include "trace/recorder.hh"

namespace netchar::rt
{

namespace
{

/** a - b, saturating at 0 (snapshot deltas must never wrap). */
std::uint64_t
satSub(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : 0;
}

} // namespace

std::string_view
runtimeEventName(RuntimeEventType type)
{
    switch (type) {
      case RuntimeEventType::GcTriggered: return "GC/Triggered";
      case RuntimeEventType::GcAllocationTick: return "GC/AllocationTick";
      case RuntimeEventType::JitStarted: return "Method/JittingStarted";
      case RuntimeEventType::ExceptionStart: return "Exception/Start";
      case RuntimeEventType::ContentionStart: return "Contention/Start";
      default: return "Unknown";
    }
}

void
RuntimeEventCounts::add(const RuntimeEventCounts &other)
{
    gcTriggered += other.gcTriggered;
    gcAllocationTick += other.gcAllocationTick;
    jitStarted += other.jitStarted;
    exceptionStart += other.exceptionStart;
    contentionStart += other.contentionStart;
}

RuntimeEventCounts
RuntimeEventCounts::delta(const RuntimeEventCounts &since) const
{
    RuntimeEventCounts d;
    d.gcTriggered = satSub(gcTriggered, since.gcTriggered);
    d.gcAllocationTick =
        satSub(gcAllocationTick, since.gcAllocationTick);
    d.jitStarted = satSub(jitStarted, since.jitStarted);
    d.exceptionStart = satSub(exceptionStart, since.exceptionStart);
    d.contentionStart =
        satSub(contentionStart, since.contentionStart);
    return d;
}

std::uint64_t
RuntimeEventCounts::count(RuntimeEventType type) const
{
    switch (type) {
      case RuntimeEventType::GcTriggered: return gcTriggered;
      case RuntimeEventType::GcAllocationTick: return gcAllocationTick;
      case RuntimeEventType::JitStarted: return jitStarted;
      case RuntimeEventType::ExceptionStart: return exceptionStart;
      case RuntimeEventType::ContentionStart: return contentionStart;
      default: return 0;
    }
}

double
RuntimeEventCounts::pki(RuntimeEventType type,
                        std::uint64_t instructions) const
{
    return instructions > 0
        ? 1000.0 * static_cast<double>(count(type)) /
              static_cast<double>(instructions)
        : 0.0;
}

void
EventTrace::record(RuntimeEventType type, std::uint64_t arg0,
                   std::uint64_t arg1)
{
    switch (type) {
      case RuntimeEventType::GcTriggered:
        ++counts_.gcTriggered;
        break;
      case RuntimeEventType::GcAllocationTick:
        ++counts_.gcAllocationTick;
        break;
      case RuntimeEventType::JitStarted:
        ++counts_.jitStarted;
        break;
      case RuntimeEventType::ExceptionStart:
        ++counts_.exceptionStart;
        break;
      case RuntimeEventType::ContentionStart:
        ++counts_.contentionStart;
        break;
      default:
        return; // NumTypes misuse guard: no count, no emission
    }
    if (recorder_)
        recorder_->emit(toTraceEventKind(type), arg0, arg1);
}

} // namespace netchar::rt
