/**
 * @file
 * Runtime event tracing, the LTTng stand-in of the reproduction.
 *
 * Table I's run-time metrics (19-23) are counts of CLR events per kilo
 * instruction: GC/Triggered, GC/AllocationTick, Method/JittingStarted,
 * Exception/Start and Contention/Start. EventTrace accumulates them
 * and supports snapshot/delta, which the §VII correlation study uses
 * to build 1 ms sample series.
 *
 * When a trace::TraceRecorder is attached, every record() call also
 * emits a timestamped TraceEvent into the capture's ring buffer; the
 * aggregate counts here are then exactly the cheap derived view of
 * that stream (asserted by tests/runtime/events_test.cc).
 */

#ifndef NETCHAR_RUNTIME_EVENTS_HH
#define NETCHAR_RUNTIME_EVENTS_HH

#include <cstdint>
#include <string_view>

#include "trace/event.hh"

namespace netchar::trace
{
class TraceRecorder;
}

namespace netchar::rt
{

/** CLR event kinds traced by the study. */
enum class RuntimeEventType : std::size_t
{
    GcTriggered = 0,
    GcAllocationTick,
    JitStarted,
    ExceptionStart,
    ContentionStart,
    NumTypes,
};

/** Short LTTng-style name of an event type. */
std::string_view runtimeEventName(RuntimeEventType type);

/** Timeline event kind of a runtime event type (1:1 by value). */
constexpr trace::TraceEventKind
toTraceEventKind(RuntimeEventType type)
{
    return static_cast<trace::TraceEventKind>(
        static_cast<std::size_t>(type));
}

/** Plain aggregate of event counts, with add/delta for sampling. */
struct RuntimeEventCounts
{
    std::uint64_t gcTriggered = 0;
    std::uint64_t gcAllocationTick = 0;
    std::uint64_t jitStarted = 0;
    std::uint64_t exceptionStart = 0;
    std::uint64_t contentionStart = 0;

    void add(const RuntimeEventCounts &other);

    /**
     * Elementwise difference for interval sampling. Saturates at 0
     * per field when `since` is ahead (a stale or mismatched
     * snapshot) instead of underflow-wrapping to huge counts.
     */
    RuntimeEventCounts delta(const RuntimeEventCounts &since) const;

    /** Count for one event type. */
    std::uint64_t count(RuntimeEventType type) const;

    /** Events per kilo-instruction. */
    double pki(RuntimeEventType type, std::uint64_t instructions) const;
};

/**
 * Cumulative event trace for one benchmark run. record() is called by
 * the CLR model as events fire; counts() is snapshotted per sampling
 * interval by the correlation study.
 */
class EventTrace
{
  public:
    /**
     * Record one occurrence of an event, bumping the aggregate count
     * and, when a recorder is attached, emitting a timestamped
     * TraceEvent with the given payload. RuntimeEventType::NumTypes
     * is a misuse guard: it is silently ignored.
     */
    void record(RuntimeEventType type, std::uint64_t arg0 = 0,
                std::uint64_t arg1 = 0);

    /** Cumulative counts since construction or reset. */
    const RuntimeEventCounts &counts() const { return counts_; }

    /** Zero all counts (keeps any attached recorder). */
    void reset() { counts_ = RuntimeEventCounts{}; }

    /**
     * Attach (or detach with nullptr) the timeline recorder events
     * are mirrored into. Not owned; must outlive the attachment.
     */
    void setRecorder(trace::TraceRecorder *recorder)
    {
        recorder_ = recorder;
    }

    trace::TraceRecorder *recorder() const { return recorder_; }

  private:
    RuntimeEventCounts counts_;
    trace::TraceRecorder *recorder_ = nullptr;
};

} // namespace netchar::rt

#endif // NETCHAR_RUNTIME_EVENTS_HH
