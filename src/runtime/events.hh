/**
 * @file
 * Runtime event tracing, the LTTng stand-in of the reproduction.
 *
 * Table I's run-time metrics (19-23) are counts of CLR events per kilo
 * instruction: GC/Triggered, GC/AllocationTick, Method/JittingStarted,
 * Exception/Start and Contention/Start. EventTrace accumulates them
 * and supports snapshot/delta, which the §VII correlation study uses
 * to build 1 ms sample series.
 */

#ifndef NETCHAR_RUNTIME_EVENTS_HH
#define NETCHAR_RUNTIME_EVENTS_HH

#include <cstdint>
#include <string_view>

namespace netchar::rt
{

/** CLR event kinds traced by the study. */
enum class RuntimeEventType : std::size_t
{
    GcTriggered = 0,
    GcAllocationTick,
    JitStarted,
    ExceptionStart,
    ContentionStart,
    NumTypes,
};

/** Short LTTng-style name of an event type. */
std::string_view runtimeEventName(RuntimeEventType type);

/** Plain aggregate of event counts, with add/delta for sampling. */
struct RuntimeEventCounts
{
    std::uint64_t gcTriggered = 0;
    std::uint64_t gcAllocationTick = 0;
    std::uint64_t jitStarted = 0;
    std::uint64_t exceptionStart = 0;
    std::uint64_t contentionStart = 0;

    void add(const RuntimeEventCounts &other);
    RuntimeEventCounts delta(const RuntimeEventCounts &since) const;

    /** Count for one event type. */
    std::uint64_t count(RuntimeEventType type) const;

    /** Events per kilo-instruction. */
    double pki(RuntimeEventType type, std::uint64_t instructions) const;
};

/**
 * Cumulative event trace for one benchmark run. record() is called by
 * the CLR model as events fire; counts() is snapshotted per sampling
 * interval by the correlation study.
 */
class EventTrace
{
  public:
    /** Record one occurrence of an event. */
    void record(RuntimeEventType type);

    /** Cumulative counts since construction or reset. */
    const RuntimeEventCounts &counts() const { return counts_; }

    /** Zero all counts. */
    void reset() { counts_ = RuntimeEventCounts{}; }

  private:
    RuntimeEventCounts counts_;
};

} // namespace netchar::rt

#endif // NETCHAR_RUNTIME_EVENTS_HH
