#include "lint/concurrency.hh"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string>

#include "lint/cfg.hh"
#include "lint/summary.hh"

namespace netchar::lint
{

namespace
{

// ---------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------

struct ConcurrencyRule
{
    std::string_view name;
    Severity severity;
    std::string_view summary;
};

constexpr std::array<ConcurrencyRule, 5> kRules = {{
    {"race-shared-write", Severity::Error,
     "write to a mutable static or by-reference-captured object "
     "reachable from executor tasks with an empty lockset"},
    {"lock-leak", Severity::Error,
     "raw .lock() with no .unlock() on some path to the function "
     "exit (use lock_guard/scoped_lock/unique_lock)"},
    {"guard-discipline", Severity::Error,
     "double-lock or unlock-without-lock along some path"},
    {"atomic-mixed-access", Severity::Warning,
     "object accessed both atomically (.load/.store/atomic_ref) "
     "and through plain reads/writes"},
    {"flow-unchecked-error", Severity::Warning,
     "error-carrying bool return discarded in serve/journal code"},
}};

/** RAII guard types that sanction lock/unlock discipline. */
constexpr std::array<std::string_view, 3> kGuardTypes = {
    "lock_guard",
    "scoped_lock",
    "unique_lock",
};

/** Executor task submission entry points (escape-set seeds). */
constexpr std::array<std::string_view, 2> kSubmitNames = {
    "forEach",
    "forEachCollect",
};

/** Member calls that read/write an object atomically. */
constexpr std::array<std::string_view, 10> kAtomicOps = {
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
};

/** Statement-leading keywords that are never a discarded call. */
constexpr std::array<std::string_view, 13> kStmtKeywords = {
    "return", "if",    "while",    "for",   "switch",
    "do",     "case",  "default",  "break", "continue",
    "throw",  "delete", "co_return",
};

bool
contains(const auto &table, std::string_view text)
{
    for (const std::string_view t : table)
        if (t == text)
            return true;
    return false;
}

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

/** Index of the `)` matching the `(` at `open`, or `limit`. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open,
           std::size_t limit)
{
    int depth = 0;
    for (std::size_t j = open; j < limit; ++j) {
        if (isPunct(toks[j], "("))
            ++depth;
        else if (isPunct(toks[j], ")")) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return limit;
}

/** Index of the `]`/`}` matching the bracket at `open`, or
 *  `limit`. */
std::size_t
matchClose(const std::vector<Token> &toks, std::size_t open,
           std::size_t limit, std::string_view openText,
           std::string_view closeText)
{
    int depth = 0;
    for (std::size_t j = open; j < limit; ++j) {
        if (isPunct(toks[j], openText))
            ++depth;
        else if (isPunct(toks[j], closeText)) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return limit;
}

/** Skip a balanced template argument list starting at `<`, or
 *  return `open` unchanged when it does not look like one. `>>`
 *  closes two levels. */
std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t open,
           std::size_t limit)
{
    int depth = 0;
    for (std::size_t j = open; j < limit; ++j) {
        const Token &t = toks[j];
        if (isPunct(t, "<"))
            ++depth;
        else if (isPunct(t, ">")) {
            if (--depth == 0)
                return j + 1;
        } else if (isPunct(t, ">>")) {
            depth -= 2;
            if (depth <= 0)
                return j + 1;
        } else if (isPunct(t, ";") || isPunct(t, "{") ||
                   t.kind == TokenKind::String)
            break; // not a template argument list after all
    }
    return open;
}

/** The dotted receiver spelling whose last token sits just before
 *  the `.`/`->` at `dot` (`state.mu` for `state . mu . lock`), or
 *  "" when the receiver is not a plain identifier chain. */
std::string
receiverChain(const std::vector<Token> &toks, std::size_t dot)
{
    std::vector<std::string> parts;
    std::size_t j = dot;
    while (j > 0) {
        if (toks[j - 1].kind != TokenKind::Identifier)
            return ""; // subscript / call result receiver
        parts.push_back(toks[j - 1].text);
        if (j < 2 || (!isPunct(toks[j - 2], ".") &&
                      !isPunct(toks[j - 2], "->") &&
                      !isPunct(toks[j - 2], "::")))
            break;
        j -= 2;
    }
    std::string out;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        if (!out.empty())
            out += '.';
        out += *it;
    }
    return out;
}

std::string
lastComponent(const std::string &chain)
{
    const std::size_t dot = chain.rfind('.');
    return dot == std::string::npos ? chain : chain.substr(dot + 1);
}

// ---------------------------------------------------------------
// Lock events and the (must, may) state
// ---------------------------------------------------------------

struct LockEvent
{
    enum class Kind
    {
        GuardAcquire, ///< RAII guard declaration
        GuardRelease, ///< guard receiver `.unlock()`
        GuardRelock,  ///< guard receiver `.lock()`
        RawLock,
        RawUnlock,
        CallEffect, ///< callee with a net lock effect (summary.hh)
    };
    Kind kind = Kind::RawLock;
    std::vector<std::string> resources;
    std::size_t token = 0; ///< ordering within the statement
    int line = 0;
    int column = 0;
    /** CallEffect only: the callee's net effects and spelling. */
    const LockEffects *effects = nullptr;
    std::string callee;
};

struct WriteSite
{
    std::string name;
    std::size_t token = 0;
    int line = 0;
    int column = 0;
};

/** Per-block dataflow facts. The lattice element is a pair of
 *  resource sets: `must` (∩ at joins) and `may` (∪ at joins), plus
 *  the raw subset of `may` that feeds the leak check. */
struct LockState
{
    bool reached = false;
    std::set<std::string> must;
    std::set<std::string> may;
    std::set<std::string> rawMay;

    bool meet(const LockState &pred)
    {
        if (!pred.reached)
            return false;
        if (!reached) {
            *this = pred;
            return true;
        }
        bool changed = false;
        for (auto it = must.begin(); it != must.end();)
            if (pred.must.count(*it) == 0) {
                it = must.erase(it);
                changed = true;
            } else
                ++it;
        for (const std::string &r : pred.may)
            changed |= may.insert(r).second;
        for (const std::string &r : pred.rawMay)
            changed |= rawMay.insert(r).second;
        return changed;
    }

    void apply(const LockEvent &ev)
    {
        switch (ev.kind) {
        case LockEvent::Kind::GuardAcquire:
        case LockEvent::Kind::GuardRelock:
            for (const std::string &r : ev.resources) {
                must.insert(r);
                may.insert(r);
            }
            break;
        case LockEvent::Kind::GuardRelease:
            for (const std::string &r : ev.resources) {
                must.erase(r);
                may.erase(r);
            }
            break;
        case LockEvent::Kind::RawLock:
            for (const std::string &r : ev.resources) {
                must.insert(r);
                may.insert(r);
                rawMay.insert(r);
            }
            break;
        case LockEvent::Kind::RawUnlock:
            for (const std::string &r : ev.resources) {
                must.erase(r);
                may.erase(r);
                rawMay.erase(r);
            }
            break;
        case LockEvent::Kind::CallEffect:
            // A callee with a net lock effect acts like an inlined
            // raw lock/unlock sequence: releases first (a wrapper
            // that swaps locks releases before re-acquiring), then
            // acquisitions — which join the raw-may set so a lock
            // leaked through a helper is still caught at this
            // function's exit.
            for (const std::string &r : ev.effects->mustRelease) {
                must.erase(r);
                may.erase(r);
                rawMay.erase(r);
            }
            for (const std::string &r : ev.effects->mayRelease)
                if (ev.effects->mustRelease.count(r) == 0)
                    must.erase(r);
            for (const std::string &r : ev.effects->mustAcquire) {
                must.insert(r);
                may.insert(r);
                rawMay.insert(r);
            }
            for (const std::string &r : ev.effects->mayAcquire)
                if (ev.effects->mustAcquire.count(r) == 0) {
                    may.insert(r);
                    rawMay.insert(r);
                }
            break;
        }
    }
};

struct SharedStatic
{
    int line = 0;
    int column = 0;
};

struct Site
{
    int line = 0;
    int column = 0;
};

// ---------------------------------------------------------------
// The engine
// ---------------------------------------------------------------

class Engine
{
  public:
    Engine(const std::vector<FileModel> &files,
           const CallGraph &graph, const SummarySet *sums)
        : files_(files), graph_(graph), sums_(sums)
    {
    }

    ConcurrencyAnalysis run()
    {
        collectDeclTypes();
        collectStatics();
        computeEscapeSet();
        collectLockPairing();
        for (std::size_t fi = 0; fi < files_.size(); ++fi)
            for (std::size_t gi = 0;
                 gi < files_[fi].functions.size(); ++gi)
                analyzeFunction({fi, gi});
        reportMixedAccess();
        out_.escapedFunctions = escaped_.size();
        return std::move(out_);
    }

  private:
    const std::vector<FileModel> &files_;
    const CallGraph &graph_;
    const SummarySet *sums_;
    ConcurrencyAnalysis out_;
    std::set<std::string> emitted_;
    /** Per resource: functions that syntactically raw-lock /
     *  raw-unlock it (from the interprocedural summaries) — the
     *  basis for pairing wrapper acquire()/release() helpers. */
    std::map<std::string, std::set<FunctionRef>> rawLockers_;
    std::map<std::string, std::set<FunctionRef>> rawUnlockers_;

    /** name → last type-word of its declaration, over all files
     *  (later files win; files arrive sorted, so this is
     *  deterministic). Used to spot guard/atomic/mutex objects and
     *  to type member-call receivers. */
    std::map<std::string, std::string> declType_;
    /** Per file: mutable, non-atomic statics by name. */
    std::vector<std::map<std::string, SharedStatic>> statics_;
    /** Per file: object name → atomic access sites. */
    std::vector<std::map<std::string, std::vector<Site>>>
        atomicSites_;
    /** Per file: object name → plain single-identifier writes. */
    std::vector<std::map<std::string, std::vector<Site>>>
        plainWrites_;
    std::set<FunctionRef> escaped_;
    std::map<FunctionRef, FlowHop> escapeHop_;
    std::set<FunctionRef> seeds_;

    const FunctionModel &fnOf(FunctionRef r) const
    {
        return files_[r.file].functions[r.fn];
    }

    // -- finding plumbing ---------------------------------------

    bool suppressedAt(const FileModel &file, int line,
                      std::string_view rule) const
    {
        for (const Pragma &p : file.lexed.pragmas) {
            if (p.flow || p.malformed)
                continue;
            if (line < p.line || line > p.endLine + 1)
                continue;
            for (const std::string &r : p.rules)
                if (r == rule)
                    return true;
        }
        return false;
    }

    void emit(std::string_view rule, const FileModel &file,
              int line, int column, std::string message,
              std::vector<FlowHop> hops,
              const std::string &function,
              const std::set<std::string> &held)
    {
        std::string key = std::string(rule) + '|' + file.path +
                          '|' + std::to_string(line) + '|' +
                          std::to_string(column) + '|' + message;
        if (!emitted_.insert(std::move(key)).second)
            return;
        if (suppressedAt(file, line, rule)) {
            ++out_.suppressed;
            return;
        }
        Finding f;
        f.file = file.path;
        f.line = line;
        f.column = column;
        f.rule = std::string(rule);
        f.severity = concurrencyRuleSeverity(rule);
        f.message = std::move(message);
        f.path = std::move(hops);
        f.function = function;
        f.lockset.assign(held.begin(), held.end());
        out_.findings.push_back(std::move(f));
    }

    // -- vocabulary collection ----------------------------------

    /** Record `Type name` declaration pairs: identifier (last of a
     *  `::` chain), optional `<...>`, identifier, then one of
     *  `; = { ( ,`. Heuristic but deterministic; collisions keep
     *  the last writer in sorted file order. */
    void collectDeclTypes()
    {
        for (const FileModel &file : files_) {
            const auto &toks = file.lexed.tokens;
            for (std::size_t j = 0; j + 1 < toks.size(); ++j) {
                if (toks[j].kind != TokenKind::Identifier)
                    continue;
                if (j > 0 && (isPunct(toks[j - 1], ".") ||
                              isPunct(toks[j - 1], "->")))
                    continue; // member access, not a declaration
                std::size_t k = j + 1;
                if (isPunct(toks[k], "<")) {
                    const std::size_t past =
                        skipAngles(toks, k, toks.size());
                    if (past == k)
                        continue;
                    k = past;
                }
                if (k >= toks.size() ||
                    toks[k].kind != TokenKind::Identifier)
                    continue;
                if (k + 1 >= toks.size())
                    continue;
                const Token &after = toks[k + 1];
                if (!isPunct(after, ";") && !isPunct(after, "=") &&
                    !isPunct(after, "{") && !isPunct(after, "(") &&
                    !isPunct(after, ","))
                    continue;
                declType_[toks[k].text] = toks[j].text;
            }
        }
    }

    /** Mutable, non-atomic `static` objects per file — the shared
     *  state the race rule protects. Const/constexpr/thread_local/
     *  mutex/atomic declarations and function declarations are not
     *  race targets. */
    void collectStatics()
    {
        statics_.resize(files_.size());
        atomicSites_.resize(files_.size());
        plainWrites_.resize(files_.size());
        for (std::size_t fi = 0; fi < files_.size(); ++fi) {
            const auto &toks = files_[fi].lexed.tokens;
            for (std::size_t j = 0; j < toks.size(); ++j) {
                if (toks[j].kind != TokenKind::Identifier ||
                    toks[j].text != "static")
                    continue;
                bool guarded = false;
                std::string name;
                int line = 0;
                int column = 0;
                bool isCall = false;
                for (std::size_t k = j + 1; k < toks.size(); ++k) {
                    const Token &t = toks[k];
                    if (t.kind == TokenKind::Identifier) {
                        if (t.text == "const" ||
                            t.text == "constexpr" ||
                            t.text == "constinit" ||
                            t.text == "thread_local" ||
                            t.text == "mutex" ||
                            t.text == "operator" ||
                            t.text.find("atomic") !=
                                std::string::npos) {
                            guarded = true;
                            break;
                        }
                        name = t.text;
                        line = t.line;
                        column = t.column;
                        continue;
                    }
                    if (isPunct(t, "<")) {
                        const std::size_t past =
                            skipAngles(toks, k, toks.size());
                        if (past == k)
                            break;
                        k = past - 1;
                        continue;
                    }
                    if (isPunct(t, "(")) {
                        isCall = true; // function or ctor-style
                        break;
                    }
                    if (isPunct(t, ";") || isPunct(t, "=") ||
                        isPunct(t, "{"))
                        break;
                    if (isPunct(t, "::") || isPunct(t, "&") ||
                        isPunct(t, "*") || isPunct(t, "["))
                        continue;
                    if (isPunct(t, "]"))
                        continue;
                    break;
                }
                if (!guarded && !isCall && !name.empty())
                    statics_[fi][name] = {line, column};
            }
        }
    }

    // -- escape set ---------------------------------------------

    bool isExecutorImplFile(const std::string &path) const
    {
        if (!pathInDir(path, "src/core"))
            return false;
        const std::size_t slash = path.rfind('/');
        const std::string base = slash == std::string::npos
                                     ? path
                                     : path.substr(slash + 1);
        return base.rfind("executor.", 0) == 0;
    }

    void computeEscapeSet()
    {
        std::vector<FunctionRef> work;
        for (std::size_t fi = 0; fi < files_.size(); ++fi) {
            const FileModel &file = files_[fi];
            const bool implFile = isExecutorImplFile(file.path);
            for (std::size_t gi = 0; gi < file.functions.size();
                 ++gi) {
                const FunctionRef ref{fi, gi};
                const FunctionModel &fn = file.functions[gi];
                if (implFile) {
                    escaped_.insert(ref);
                    escapeHop_[ref] = {file.path, fn.line,
                                       fn.column,
                                       "defined in the executor "
                                       "implementation (worker-"
                                       "thread entry universe)"};
                    work.push_back(ref);
                }
                for (const Statement &st : fn.stmts)
                    for (const CallSite &call : st.calls)
                        if (contains(kSubmitNames, call.callee)) {
                            seeds_.insert(ref);
                            if (escapeHop_.count(ref) == 0)
                                escapeHop_[ref] = {
                                    file.path, call.line,
                                    call.column,
                                    "task submitted to the "
                                    "executor here"};
                            work.push_back(ref);
                        }
            }
        }
        // BFS over the call graph: everything a task body can call
        // runs on a worker thread. A submitting function itself is
        // not escaped (its straight-line code runs on the caller);
        // its lambdas are scanned separately.
        while (!work.empty()) {
            const FunctionRef ref = work.back();
            work.pop_back();
            const FlowHop &hop = escapeHop_[ref];
            for (const Statement &st : fnOf(ref).stmts)
                for (const CallSite &call : st.calls)
                    for (const FunctionRef &target :
                         graph_.resolve(call))
                        if (escaped_.insert(target).second) {
                            escapeHop_[target] = hop;
                            work.push_back(target);
                        }
        }
    }

    // -- interprocedural pairing (summary-backed) ---------------

    void collectLockPairing()
    {
        if (sums_ == nullptr)
            return;
        for (std::size_t fi = 0; fi < files_.size(); ++fi)
            for (std::size_t gi = 0;
                 gi < files_[fi].functions.size(); ++gi) {
                const FunctionRef ref{fi, gi};
                const LockEffects &e = sums_->of(ref).locks;
                for (const std::string &r : e.localLocks)
                    rawLockers_[r].insert(ref);
                for (const std::string &r : e.localUnlocks)
                    rawUnlockers_[r].insert(ref);
            }
    }

    /** True when `ref` looks like one half of a cross-function
     *  lock protocol for `r`: some *other* function supplies the
     *  counterpart operation, and `ref` has callers that can pair
     *  them. Local-looking imbalances in such helpers are reported
     *  at the (root) callers instead, via the call effects. */
    bool pairedElsewhere(
        const std::map<std::string, std::set<FunctionRef>> &table,
        const std::string &r, FunctionRef ref) const
    {
        if (sums_ == nullptr)
            return false;
        const auto it = table.find(r);
        if (it == table.end())
            return false;
        bool other = false;
        for (const FunctionRef &cand : it->second)
            other |= !(cand == ref);
        if (!other)
            return false;
        return !graph_.callersOf(fnOf(ref).name).empty();
    }

    // -- per-function lockset analysis --------------------------

    /** Extract lock events and plain writes from the statement
     *  token range [b, e). `guardVars` maps guard variables to the
     *  resources they hold and accumulates across the function. */
    void extractFromStmt(
        const std::vector<Token> &toks, std::size_t b,
        std::size_t e,
        std::map<std::string, std::vector<std::string>> &guardVars,
        std::vector<LockEvent> &events,
        std::vector<WriteSite> &writes, std::size_t fi)
    {
        // Plain single-identifier write: `x = ...`, `x += ...`,
        // `x++`, `++x` as the whole left-hand side.
        if (e > b + 1 && toks[b].kind == TokenKind::Identifier &&
            !contains(kStmtKeywords, toks[b].text)) {
            static constexpr std::array<std::string_view, 11> kOps =
                {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=",
                 "^=", "<<=", ">>="};
            const Token &op = toks[b + 1];
            if ((op.kind == TokenKind::Punct &&
                 contains(kOps, op.text)) ||
                isPunct(op, "++") || isPunct(op, "--"))
                writes.push_back({toks[b].text, b, toks[b].line,
                                  toks[b].column});
        }
        if (e > b + 1 && (isPunct(toks[b], "++") ||
                          isPunct(toks[b], "--")) &&
            toks[b + 1].kind == TokenKind::Identifier)
            writes.push_back({toks[b + 1].text, b,
                              toks[b + 1].line,
                              toks[b + 1].column});

        for (std::size_t j = b; j < e; ++j) {
            const Token &t = toks[j];
            // RAII guard declaration.
            if (t.kind == TokenKind::Identifier &&
                contains(kGuardTypes, t.text)) {
                std::size_t k = j + 1;
                if (k < e && isPunct(toks[k], "<")) {
                    const std::size_t past = skipAngles(toks, k, e);
                    if (past == k)
                        continue;
                    k = past;
                }
                if (k >= e ||
                    toks[k].kind != TokenKind::Identifier)
                    continue;
                const std::string var = toks[k].text;
                if (k + 1 >= e || (!isPunct(toks[k + 1], "(") &&
                                   !isPunct(toks[k + 1], "{")))
                    continue;
                const bool paren = isPunct(toks[k + 1], "(");
                const std::size_t close =
                    paren ? matchParen(toks, k + 1, e)
                          : matchClose(toks, k + 1, e, "{", "}");
                std::vector<std::string> resources;
                std::size_t argStart = k + 2;
                for (std::size_t a = argStart; a <= close; ++a) {
                    if (a == close || (isPunct(toks[a], ",") &&
                                       a > argStart)) {
                        // Resource spelling: the identifier chain
                        // at the start of the argument.
                        std::size_t s = argStart;
                        while (s < a && (isPunct(toks[s], "*") ||
                                         isPunct(toks[s], "&")))
                            ++s;
                        std::string res;
                        while (s < a) {
                            if (toks[s].kind ==
                                TokenKind::Identifier) {
                                if (!res.empty())
                                    res += '.';
                                res += toks[s].text;
                                if (s + 2 < a &&
                                    (isPunct(toks[s + 1], ".") ||
                                     isPunct(toks[s + 1], "->") ||
                                     isPunct(toks[s + 1], "::"))) {
                                    s += 2;
                                    continue;
                                }
                            }
                            break;
                        }
                        if (!res.empty() &&
                            res.find("defer_lock") ==
                                std::string::npos)
                            resources.push_back(res);
                        argStart = a + 1;
                    }
                }
                guardVars[var] = resources;
                if (!resources.empty()) {
                    LockEvent ev;
                    ev.kind = LockEvent::Kind::GuardAcquire;
                    ev.resources = resources;
                    ev.token = j;
                    ev.line = t.line;
                    ev.column = t.column;
                    events.push_back(std::move(ev));
                }
                j = close;
                continue;
            }
            // Member calls: lock/unlock discipline and atomic ops.
            if ((isPunct(t, ".") || isPunct(t, "->")) &&
                j + 2 < e &&
                toks[j + 1].kind == TokenKind::Identifier &&
                isPunct(toks[j + 2], "(")) {
                const std::string &method = toks[j + 1].text;
                if (method == "lock" || method == "unlock") {
                    const std::string recv =
                        receiverChain(toks, j);
                    if (recv.empty())
                        continue;
                    LockEvent ev;
                    ev.token = j + 1;
                    ev.line = toks[j + 1].line;
                    ev.column = toks[j + 1].column;
                    const auto guard = guardVars.find(recv);
                    const auto type =
                        declType_.find(lastComponent(recv));
                    const bool isGuardVar =
                        guard != guardVars.end() ||
                        (type != declType_.end() &&
                         contains(kGuardTypes, type->second));
                    if (isGuardVar) {
                        if (guard == guardVars.end() ||
                            guard->second.empty())
                            continue; // resources unknown
                        ev.resources = guard->second;
                        ev.kind = method == "lock"
                                      ? LockEvent::Kind::GuardRelock
                                      : LockEvent::Kind::
                                            GuardRelease;
                    } else {
                        ev.resources = {recv};
                        ev.kind = method == "lock"
                                      ? LockEvent::Kind::RawLock
                                      : LockEvent::Kind::RawUnlock;
                    }
                    events.push_back(std::move(ev));
                    continue;
                }
                if (contains(kAtomicOps, method)) {
                    const std::string recv =
                        receiverChain(toks, j);
                    if (!recv.empty())
                        atomicSites_[fi][lastComponent(recv)]
                            .push_back({toks[j + 1].line,
                                        toks[j + 1].column});
                    continue;
                }
            }
            // std::atomic_ref<T>(x) wraps x for atomic access.
            if (t.kind == TokenKind::Identifier &&
                t.text == "atomic_ref") {
                std::size_t k = j + 1;
                if (k < e && isPunct(toks[k], "<"))
                    k = skipAngles(toks, k, e);
                if (k < e && isPunct(toks[k], "(") && k + 1 < e &&
                    toks[k + 1].kind == TokenKind::Identifier)
                    atomicSites_[fi][toks[k + 1].text].push_back(
                        {toks[k + 1].line, toks[k + 1].column});
            }
        }
    }

    void analyzeFunction(FunctionRef ref)
    {
        const FileModel &file = files_[ref.file];
        const FunctionModel &fn = fnOf(ref);
        if (fn.bodyEnd <= fn.bodyBegin)
            return;
        const auto &toks = file.lexed.tokens;
        const Cfg cfg = buildCfg(file, fn);

        // Events and writes per block, in statement order.
        std::map<std::string, std::vector<std::string>> guardVars;
        std::vector<std::vector<LockEvent>> events(
            cfg.blocks.size());
        std::vector<std::vector<WriteSite>> writes(
            cfg.blocks.size());
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
            for (const CfgStmt &st : cfg.blocks[b].stmts)
                extractFromStmt(toks, st.begin, st.end, guardVars,
                                events[b], writes[b], ref.file);

        // Calls whose callee has a net lock effect (per the
        // interprocedural summaries) become events too, so a mutex
        // locked in acquire() and released in release() is tracked
        // through the function that pairs them.
        if (sums_ != nullptr) {
            for (const Statement &stmt : fn.stmts)
                for (const CallSite &call : stmt.calls) {
                    const LockEffects *eff = nullptr;
                    for (const FunctionRef def :
                         graph_.resolve(call)) {
                        const LockEffects &e =
                            sums_->of(def).locks;
                        if (e.hasNetEffect()) {
                            eff = &e;
                            break;
                        }
                    }
                    if (eff == nullptr)
                        continue;
                    for (std::size_t b = 0;
                         b < cfg.blocks.size(); ++b)
                        for (const CfgStmt &st :
                             cfg.blocks[b].stmts)
                            if (call.begin >= st.begin &&
                                call.begin < st.end) {
                                LockEvent ev;
                                ev.kind =
                                    LockEvent::Kind::CallEffect;
                                ev.token = call.begin;
                                ev.line = call.line;
                                ev.column = call.column;
                                ev.effects = eff;
                                ev.callee = call.callee;
                                events[b].push_back(
                                    std::move(ev));
                                b = cfg.blocks.size() - 1;
                                break;
                            }
                }
            for (auto &evs : events)
                std::stable_sort(
                    evs.begin(), evs.end(),
                    [](const LockEvent &a, const LockEvent &b) {
                        return a.token < b.token;
                    });
        }

        // Forward fixpoint over (must, may).
        std::vector<std::vector<std::size_t>> preds(
            cfg.blocks.size());
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
            for (const std::size_t s : cfg.blocks[b].succs)
                preds[s].push_back(b);
        std::vector<LockState> in(cfg.blocks.size());
        std::vector<LockState> outState(cfg.blocks.size());
        in[Cfg::kEntry].reached = true;
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
                for (const std::size_t p : preds[b])
                    changed |= in[b].meet(outState[p]);
                if (!in[b].reached)
                    continue;
                LockState s = in[b];
                for (const LockEvent &ev : events[b])
                    s.apply(ev);
                if (!(s.must == outState[b].must &&
                      s.may == outState[b].may &&
                      s.rawMay == outState[b].rawMay &&
                      s.reached == outState[b].reached)) {
                    outState[b] = std::move(s);
                    changed = true;
                }
            }
        }

        // Reporting pass over the converged states, in block and
        // statement order (deterministic by construction).
        const bool isEscaped = escaped_.count(ref) != 0;
        const FlowHop *escHop = nullptr;
        if (const auto it = escapeHop_.find(ref);
            it != escapeHop_.end())
            escHop = &it->second;
        std::map<std::string, Site> firstRawLock;
        std::map<std::string, Site> firstHeldAt;
        struct CallIntro
        {
            Site site;
            std::string callee;
            const LockEffects *effects = nullptr;
        };
        std::map<std::string, CallIntro> callIntro;
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
            if (!in[b].reached || !cfg.blocks[b].reachable)
                continue;
            LockState s = in[b];
            for (const CfgStmt &st : cfg.blocks[b].stmts) {
                // Writes are checked against the lockset at the
                // statement entry; the statement's own lock events
                // apply afterwards.
                for (const WriteSite &w : writes[b]) {
                    if (w.token < st.begin || w.token >= st.end)
                        continue;
                    plainWrites_[ref.file][w.name].push_back(
                        {w.line, w.column});
                    if (!isEscaped || !s.must.empty())
                        continue;
                    const auto shared =
                        statics_[ref.file].find(w.name);
                    if (shared == statics_[ref.file].end())
                        continue;
                    std::vector<FlowHop> hops;
                    hops.push_back({file.path,
                                    shared->second.line,
                                    shared->second.column,
                                    "mutable static shared state "
                                    "declared here"});
                    if (escHop != nullptr)
                        hops.push_back(*escHop);
                    hops.push_back({file.path, w.line, w.column,
                                    "written with an empty "
                                    "lockset"});
                    emit("race-shared-write", file, w.line,
                         w.column,
                         "write to shared static '" + w.name +
                             "' reachable from executor tasks "
                             "with an empty lockset",
                         std::move(hops), fn.qualified, s.must);
                }
                for (const LockEvent &ev : events[b]) {
                    if (ev.token < st.begin || ev.token >= st.end)
                        continue;
                    checkDiscipline(ref, file, fn, s, ev,
                                    firstHeldAt);
                    s.apply(ev);
                    if (ev.kind == LockEvent::Kind::RawLock)
                        for (const std::string &r : ev.resources)
                            firstRawLock.try_emplace(
                                r, Site{ev.line, ev.column});
                    if (ev.kind == LockEvent::Kind::RawLock ||
                        ev.kind == LockEvent::Kind::GuardAcquire ||
                        ev.kind == LockEvent::Kind::GuardRelock)
                        for (const std::string &r : ev.resources)
                            firstHeldAt.try_emplace(
                                r, Site{ev.line, ev.column});
                    if (ev.kind == LockEvent::Kind::CallEffect) {
                        for (const std::string &r :
                             ev.effects->mayAcquire) {
                            callIntro.try_emplace(
                                r, CallIntro{Site{ev.line,
                                                  ev.column},
                                             ev.callee,
                                             ev.effects});
                            firstHeldAt.try_emplace(
                                r, Site{ev.line, ev.column});
                        }
                        for (const std::string &r :
                             ev.effects->mustAcquire) {
                            callIntro.try_emplace(
                                r, CallIntro{Site{ev.line,
                                                  ev.column},
                                             ev.callee,
                                             ev.effects});
                            firstHeldAt.try_emplace(
                                r, Site{ev.line, ev.column});
                        }
                    }
                }
            }
        }

        // Leak: a raw lock still (possibly) held at the exit —
        // acquired here, or left behind by a callee with a net
        // acquire effect.
        const LockState &exitIn = in[Cfg::kExit];
        if (exitIn.reached)
            for (const std::string &r : exitIn.rawMay) {
                const auto site = firstRawLock.find(r);
                if (site != firstRawLock.end()) {
                    // A helper whose unlock half lives in another
                    // function is not a local leak: the callers
                    // that fail to pair it are reported instead.
                    if (pairedElsewhere(rawUnlockers_, r, ref))
                        continue;
                    std::vector<FlowHop> hops;
                    hops.push_back({file.path, site->second.line,
                                    site->second.column,
                                    "raw lock acquired here"});
                    hops.push_back(
                        {file.path,
                         toks[fn.bodyEnd].line,
                         toks[fn.bodyEnd].column,
                         "a path reaches the function exit without "
                         "unlocking"});
                    emit("lock-leak", file, site->second.line,
                         site->second.column,
                         "'" + r +
                             ".lock()' is not matched by an unlock "
                             "on every path (use lock_guard/"
                             "scoped_lock/unique_lock)",
                         std::move(hops), fn.qualified,
                         exitIn.must);
                    continue;
                }
                // Cross-function: a callee left the lock held and
                // no path here releases it. Reported only at root
                // callers, so a leak surfaces once, not at every
                // wrapper along the chain.
                const auto intro = callIntro.find(r);
                if (intro == callIntro.end())
                    continue;
                if (!graph_.callersOf(fn.name).empty())
                    continue;
                std::vector<FlowHop> hops;
                if (const auto chain =
                        intro->second.effects->acquireChain.find(
                            r);
                    chain !=
                    intro->second.effects->acquireChain.end())
                    hops = chain->second;
                hops.push_back({file.path, intro->second.site.line,
                                intro->second.site.column,
                                "call to '" +
                                    intro->second.callee +
                                    "()' leaves '" + r +
                                    "' locked"});
                hops.push_back(
                    {file.path,
                     toks[fn.bodyEnd].line,
                     toks[fn.bodyEnd].column,
                     "a path reaches the function exit without "
                     "unlocking"});
                emit("lock-leak", file, intro->second.site.line,
                     intro->second.site.column,
                     "'" + r + ".lock()' acquired by call to '" +
                         intro->second.callee +
                         "()' is not matched by an unlock on "
                         "every path (use lock_guard/scoped_lock/"
                         "unique_lock)",
                     std::move(hops), fn.qualified, exitIn.must);
            }

        if (seeds_.count(ref) != 0)
            scanTaskLambdas(ref, guardVars);
        if (pathInDir(file.path, "src/serve") ||
            file.path.rfind("serve/", 0) == 0)
            scanDiscardedErrors(ref, cfg);
    }

    void checkDiscipline(FunctionRef ref, const FileModel &file,
                         const FunctionModel &fn,
                         const LockState &s, const LockEvent &ev,
                         const std::map<std::string, Site> &held)
    {
        // A callee that acquires a lock already (possibly) held is
        // a double-lock, same as a raw .lock() here.
        if (ev.kind == LockEvent::Kind::CallEffect) {
            for (const std::string &r : ev.effects->mustAcquire)
                if (s.may.count(r) != 0) {
                    std::vector<FlowHop> hops;
                    if (const auto it = held.find(r);
                        it != held.end())
                        hops.push_back({file.path,
                                        it->second.line,
                                        it->second.column,
                                        "'" + r +
                                            "' first locked here"});
                    hops.push_back({file.path, ev.line, ev.column,
                                    "call to '" + ev.callee +
                                        "()' locks it again"});
                    emit("guard-discipline", file, ev.line,
                         ev.column,
                         "double-lock of '" + r + "': call to '" +
                             ev.callee +
                             "()' acquires a lock already held "
                             "on some path",
                         std::move(hops), fn.qualified, s.must);
                }
            return;
        }
        // `lk.lock()` on a unique_lock that may already hold the
        // mutex throws std::system_error at runtime, so the guard
        // receiver form is a double-lock exactly like a raw one.
        if (ev.kind == LockEvent::Kind::RawLock ||
            ev.kind == LockEvent::Kind::GuardRelock) {
            for (const std::string &r : ev.resources)
                if (s.may.count(r) != 0) {
                    std::vector<FlowHop> hops;
                    if (const auto it = held.find(r);
                        it != held.end())
                        hops.push_back({file.path,
                                        it->second.line,
                                        it->second.column,
                                        "'" + r +
                                            "' first locked here"});
                    hops.push_back({file.path, ev.line, ev.column,
                                    "locked again on a path where "
                                    "it may already be held"});
                    emit("guard-discipline", file, ev.line,
                         ev.column,
                         "double-lock of '" + r +
                             "': already held on some path "
                             "reaching this lock()",
                         std::move(hops), fn.qualified, s.must);
                }
            return;
        }
        if (ev.kind == LockEvent::Kind::RawUnlock)
            for (const std::string &r : ev.resources)
                if (s.must.count(r) == 0) {
                    // The release half of a cross-function lock
                    // protocol: the lock half lives elsewhere and
                    // the callers pair them.
                    if (pairedElsewhere(rawLockers_, r, ref))
                        continue;
                    std::vector<FlowHop> hops;
                    hops.push_back({file.path, ev.line, ev.column,
                                    "unlocked on a path where it "
                                    "is not held"});
                    emit("guard-discipline", file, ev.line,
                         ev.column,
                         "unlock of '" + r +
                             "' on a path where it is not held",
                         std::move(hops), fn.qualified, s.must);
                }
    }

    // -- race scan inside executor task lambdas -----------------

    /** Scan every lambda in a submitting function: writes to
     *  by-reference captures (or file statics) without a lock held
     *  inside the task body race across workers. */
    void scanTaskLambdas(
        FunctionRef ref,
        const std::map<std::string, std::vector<std::string>>
            &guardVars)
    {
        const FileModel &file = files_[ref.file];
        const FunctionModel &fn = fnOf(ref);
        const auto &toks = file.lexed.tokens;
        for (std::size_t j = fn.bodyBegin + 1; j < fn.bodyEnd;
             ++j) {
            if (!isPunct(toks[j], "["))
                continue;
            if (j > 0 &&
                (toks[j - 1].kind == TokenKind::Identifier ||
                 isPunct(toks[j - 1], "]") ||
                 isPunct(toks[j - 1], ")")))
                continue; // subscript, not a capture list
            const std::size_t rb =
                matchClose(toks, j, fn.bodyEnd, "[", "]");
            if (rb >= fn.bodyEnd)
                continue;
            // Captures.
            bool refAll = false;
            std::set<std::string> byRef;
            std::set<std::string> locals;
            for (std::size_t k = j + 1; k < rb; ++k) {
                if (isPunct(toks[k], "&")) {
                    if (k + 1 < rb &&
                        toks[k + 1].kind == TokenKind::Identifier) {
                        byRef.insert(toks[k + 1].text);
                        ++k;
                    } else
                        refAll = true;
                } else if (toks[k].kind == TokenKind::Identifier &&
                           k + 1 < rb && isPunct(toks[k + 1], "=")) {
                    locals.insert(toks[k].text); // init capture
                    ++k;
                }
            }
            // Parameters.
            std::size_t k = rb + 1;
            if (k < fn.bodyEnd && isPunct(toks[k], "(")) {
                const std::size_t close =
                    matchParen(toks, k, fn.bodyEnd);
                std::string last;
                for (std::size_t p = k + 1; p < close; ++p) {
                    if (toks[p].kind == TokenKind::Identifier)
                        last = toks[p].text;
                    if (isPunct(toks[p], ",") ||
                        isPunct(toks[p], "=")) {
                        if (!last.empty())
                            locals.insert(last);
                        last.clear();
                        if (isPunct(toks[p], "="))
                            while (p < close &&
                                   !isPunct(toks[p], ","))
                                ++p;
                    }
                }
                if (!last.empty())
                    locals.insert(last);
                k = close + 1;
            }
            // Body.
            while (k < fn.bodyEnd && !isPunct(toks[k], "{") &&
                   !isPunct(toks[k], ";") && !isPunct(toks[k], ")"))
                ++k;
            if (k >= fn.bodyEnd || !isPunct(toks[k], "{"))
                continue;
            const std::size_t ob = k;
            const std::size_t cb =
                matchClose(toks, ob, fn.bodyEnd, "{", "}");
            scanLambdaBody(ref, j, ob, cb, refAll, byRef, locals,
                           guardVars);
            j = cb;
        }
    }

    void scanLambdaBody(
        FunctionRef ref, std::size_t captureTok, std::size_t ob,
        std::size_t cb, bool refAll,
        const std::set<std::string> &byRef,
        std::set<std::string> locals,
        const std::map<std::string, std::vector<std::string>>
            &guardVars)
    {
        const FileModel &file = files_[ref.file];
        const FunctionModel &fn = fnOf(ref);
        const auto &toks = file.lexed.tokens;

        // First pass: local declarations anywhere in the body
        // (statement ranges with >= 2 identifiers before the first
        // assignment operator register every identifier — type
        // words included, which is harmless for exclusion).
        int depth = 0;
        std::size_t start = ob + 1;
        const auto collectDecl = [&](std::size_t s,
                                     std::size_t e2) {
            // `else x = ...` must not read as `Type name = ...`.
            if (s < e2 && toks[s].kind == TokenKind::Identifier &&
                (contains(kStmtKeywords, toks[s].text) ||
                 toks[s].text == "else" || toks[s].text == "goto"))
                return;
            std::size_t limit = e2;
            std::size_t idents = 0;
            for (std::size_t p = s; p < e2; ++p) {
                if (isPunct(toks[p], "=")) {
                    limit = p;
                    break;
                }
                if (toks[p].kind == TokenKind::Identifier)
                    ++idents;
                else if (!isPunct(toks[p], "::") &&
                         !isPunct(toks[p], "<") &&
                         !isPunct(toks[p], ">") &&
                         !isPunct(toks[p], "&") &&
                         !isPunct(toks[p], "*") &&
                         !isPunct(toks[p], ",") &&
                         !isPunct(toks[p], "("))
                    return; // not a plain declaration shape
            }
            if (idents < 2)
                return;
            for (std::size_t p = s; p < limit; ++p)
                if (toks[p].kind == TokenKind::Identifier)
                    locals.insert(toks[p].text);
        };
        for (std::size_t p = ob + 1; p < cb; ++p) {
            const Token &t = toks[p];
            if (isPunct(t, "(") || isPunct(t, "["))
                ++depth;
            else if (isPunct(t, ")") || isPunct(t, "]"))
                --depth;
            else if (depth == 0 &&
                     (isPunct(t, ";") || isPunct(t, "{") ||
                      isPunct(t, "}"))) {
                collectDecl(start, p);
                start = p + 1;
            }
        }

        // Second pass: a linear lock counter (branching inside a
        // task body is approximated; guards hold to the lambda
        // end) and statement-leading writes.
        int held = 0;
        for (std::size_t p = ob + 1; p < cb; ++p) {
            const Token &t = toks[p];
            if (t.kind == TokenKind::Identifier &&
                contains(kGuardTypes, t.text)) {
                ++held;
                continue;
            }
            if ((isPunct(t, ".") || isPunct(t, "->")) &&
                p + 2 < cb &&
                toks[p + 1].kind == TokenKind::Identifier &&
                isPunct(toks[p + 2], "(")) {
                const std::string &m = toks[p + 1].text;
                if (m != "lock" && m != "unlock")
                    continue;
                const std::string recv = receiverChain(toks, p);
                const auto type =
                    declType_.find(lastComponent(recv));
                const bool guardRecv =
                    guardVars.count(recv) != 0 ||
                    (type != declType_.end() &&
                     contains(kGuardTypes, type->second));
                if (guardRecv)
                    continue;
                held += m == "lock" ? 1 : -1;
                continue;
            }
            // Statement-leading single-identifier write.
            const bool atStart =
                isPunct(toks[p - 1], ";") ||
                isPunct(toks[p - 1], "{") ||
                isPunct(toks[p - 1], "}") ||
                isPunct(toks[p - 1], ")") ||
                isPunct(toks[p - 1], ":") ||
                (toks[p - 1].kind == TokenKind::Identifier &&
                 (toks[p - 1].text == "else" ||
                  toks[p - 1].text == "do"));
            if (!atStart || t.kind != TokenKind::Identifier ||
                contains(kStmtKeywords, t.text) || p + 1 >= cb)
                continue;
            static constexpr std::array<std::string_view, 11> kOps =
                {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=",
                 "^=", "<<=", ">>="};
            const Token &op = toks[p + 1];
            const bool isWrite =
                (op.kind == TokenKind::Punct &&
                 (contains(kOps, op.text) || op.text == "++" ||
                  op.text == "--"));
            if (!isWrite)
                continue;
            const std::string &name = t.text;
            if (locals.count(name) != 0)
                continue;
            const bool isStatic =
                statics_[ref.file].count(name) != 0;
            if (!isStatic && !refAll && byRef.count(name) == 0)
                continue;
            if (const auto ty = declType_.find(name);
                ty != declType_.end() &&
                (ty->second.find("atomic") != std::string::npos ||
                 ty->second == "mutex" ||
                 contains(kGuardTypes, ty->second)))
                continue;
            if (held > 0)
                continue;
            std::vector<FlowHop> hops;
            hops.push_back({file.path, toks[captureTok].line,
                            toks[captureTok].column,
                            isStatic
                                ? "executor task lambda begins "
                                  "here"
                                : "captured by reference by an "
                                  "executor task lambda"});
            hops.push_back({file.path, t.line, t.column,
                            "written inside the task with an "
                            "empty lockset"});
            emit("race-shared-write", file, t.line, t.column,
                 "write to '" + name +
                     "' shared across executor tasks with an "
                     "empty lockset",
                 std::move(hops), fn.qualified, {});
        }
    }

    // -- discarded error-carrying returns in serve code ---------

    void scanDiscardedErrors(FunctionRef ref, const Cfg &cfg)
    {
        const FileModel &file = files_[ref.file];
        const FunctionModel &fn = fnOf(ref);
        const auto &toks = file.lexed.tokens;
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
            if (!cfg.blocks[b].reachable)
                continue;
            for (const CfgStmt &st : cfg.blocks[b].stmts) {
                if (st.end <= st.begin + 1)
                    continue;
                const Token &lead = toks[st.begin];
                if (lead.kind != TokenKind::Identifier ||
                    contains(kStmtKeywords, lead.text))
                    continue;
                // The whole statement must be one call: an
                // identifier chain, `(`, and a `)` as the last
                // token.
                std::size_t p = st.begin;
                bool member = false;
                while (p + 1 < st.end &&
                       toks[p].kind == TokenKind::Identifier &&
                       (isPunct(toks[p + 1], ".") ||
                        isPunct(toks[p + 1], "->") ||
                        isPunct(toks[p + 1], "::"))) {
                    member |= !isPunct(toks[p + 1], "::");
                    p += 2;
                }
                if (p + 1 >= st.end ||
                    toks[p].kind != TokenKind::Identifier ||
                    !isPunct(toks[p + 1], "("))
                    continue;
                if (matchParen(toks, p + 1, st.end) != st.end - 1)
                    continue;
                const std::string &callee = toks[p].text;
                const FunctionModel *target = nullptr;
                if (member) {
                    const std::string recv =
                        p >= 2 ? toks[p - 2].text : "";
                    const auto ty = declType_.find(recv);
                    if (ty == declType_.end())
                        continue;
                    const std::string want =
                        ty->second + "::" + callee;
                    for (const FunctionRef &d :
                         graph_.definitionsOf(callee)) {
                        const FunctionModel &def = fnOf(d);
                        if (qualifiedSuffixMatches(def.qualified,
                                                   want)) {
                            target = &def;
                            break;
                        }
                    }
                } else {
                    const auto &defs =
                        graph_.definitionsOf(callee);
                    if (defs.empty())
                        continue;
                    bool allBool = true;
                    for (const FunctionRef &d : defs)
                        allBool &= fnOf(d).retType == "bool";
                    if (allBool)
                        target = &fnOf(defs.front());
                }
                if (target == nullptr ||
                    target->retType != "bool")
                    continue;
                std::vector<FlowHop> hops;
                hops.push_back({file.path, lead.line, lead.column,
                                "error-carrying result discarded "
                                "here"});
                emit("flow-unchecked-error", file, lead.line,
                     lead.column,
                     "return value of '" + callee +
                         "' carries an error and is discarded",
                     std::move(hops), fn.qualified, {});
            }
        }
    }

    // -- atomic vs plain access ---------------------------------

    void reportMixedAccess()
    {
        for (std::size_t fi = 0; fi < files_.size(); ++fi) {
            const FileModel &file = files_[fi];
            for (const auto &[name, sites] : atomicSites_[fi]) {
                const auto ty = declType_.find(name);
                if (ty == declType_.end() ||
                    ty->second.find("atomic") != std::string::npos)
                    continue; // unknown or properly atomic
                const auto writes = plainWrites_[fi].find(name);
                if (writes == plainWrites_[fi].end() ||
                    writes->second.empty())
                    continue;
                const Site &atomicSite = sites.front();
                const Site &plainSite = writes->second.front();
                std::vector<FlowHop> hops;
                hops.push_back({file.path, atomicSite.line,
                                atomicSite.column,
                                "accessed atomically here"});
                hops.push_back({file.path, plainSite.line,
                                plainSite.column,
                                "written plainly here"});
                emit("atomic-mixed-access", file, plainSite.line,
                     plainSite.column,
                     "'" + name +
                         "' is accessed both atomically and "
                         "through plain writes",
                     std::move(hops), "", {});
            }
        }
    }
};

} // namespace

const std::vector<std::string_view> &
concurrencyRuleNames()
{
    static const std::vector<std::string_view> names = [] {
        std::vector<std::string_view> v;
        for (const ConcurrencyRule &r : kRules)
            v.push_back(r.name);
        return v;
    }();
    return names;
}

bool
isConcurrencyRuleName(std::string_view name)
{
    for (const ConcurrencyRule &r : kRules)
        if (r.name == name)
            return true;
    return false;
}

std::string_view
concurrencyRuleSummary(std::string_view rule)
{
    for (const ConcurrencyRule &r : kRules)
        if (r.name == rule)
            return r.summary;
    return "";
}

Severity
concurrencyRuleSeverity(std::string_view rule)
{
    for (const ConcurrencyRule &r : kRules)
        if (r.name == rule)
            return r.severity;
    return Severity::Error;
}

ConcurrencyAnalysis
analyzeConcurrency(const std::vector<FileModel> &files,
                   const CallGraph &graph)
{
    return Engine(files, graph, nullptr).run();
}

ConcurrencyAnalysis
analyzeConcurrency(const std::vector<FileModel> &files,
                   const CallGraph &graph,
                   const SummarySet &summaries)
{
    return Engine(files, graph, &summaries).run();
}

} // namespace netchar::lint
