#include "lint/driver.hh"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "core/executor.hh"
#include "lint/cache.hh"

namespace netchar::lint
{

LintResult
runLint(const std::vector<std::string> &paths,
        std::vector<std::string> &errors, const DriverOptions &opts,
        LintStats *stats)
{
    LintStats local;
    LintStats &st = stats != nullptr ? *stats : local;
    st = LintStats{};

    const std::vector<std::string> files =
        discoverFiles(paths, errors);

    // Contents are read serially: discovery already fixed the
    // order, and `errors` must not depend on task interleaving.
    std::vector<SourceBuffer> sources;
    sources.reserve(files.size());
    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            errors.push_back(file + ": cannot open");
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        sources.push_back({file, buf.str()});
    }

    std::optional<LintCache> cache;
    std::vector<std::string> keys(sources.size());
    std::string reportKey;
    if (!opts.cacheDir.empty()) {
        cache.emplace(opts.cacheDir, lintCacheVersionTag());
        std::map<std::string, std::string> unitKeys;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            keys[i] =
                cache->unitKey(sources[i].path, sources[i].content);
            unitKeys.emplace(sources[i].path, keys[i]);
        }
        reportKey = cache->reportKey(unitKeys, opts.lint);
        LintResult cached;
        if (cache->loadReport(reportKey, cached)) {
            st.cacheInvalidations = cache->invalidations();
            st.reportCacheHits = cache->reportHits();
            return cached;
        }
    }

    // Probe the unit cache serially (counter determinism), then fan
    // the misses out: each task writes only its own slot, and the
    // assembly below walks the slots in sorted-path order, so the
    // report bytes never depend on the job count.
    std::vector<FileUnit> units(sources.size());
    std::vector<std::size_t> pending;
    if (cache) {
        for (std::size_t i = 0; i < sources.size(); ++i)
            if (!cache->loadUnit(keys[i], units[i]))
                pending.push_back(i);
    } else {
        pending.resize(sources.size());
        for (std::size_t i = 0; i < sources.size(); ++i)
            pending[i] = i;
    }

    const auto analyzeAt = [&](std::size_t p) {
        const std::size_t i = pending[p];
        units[i] =
            analyzeFileUnit(sources[i].path, sources[i].content);
    };
    if (opts.jobs != 1 && pending.size() > 1) {
        Executor pool(opts.jobs);
        pool.forEach(pending.size(), analyzeAt);
    } else {
        for (std::size_t p = 0; p < pending.size(); ++p)
            analyzeAt(p);
    }

    st.filesAnalyzed = pending.size();
    for (const std::size_t i : pending) {
        // Summed task time, not wall time: with --jobs > 1 the
        // per-phase numbers can exceed the elapsed clock.
        st.lexSeconds += units[i].lexSeconds;
        st.rulesSeconds += units[i].rulesSeconds;
        st.parseSeconds += units[i].parseSeconds;
        if (cache)
            cache->storeUnit(sources[i].path, keys[i], units[i]);
    }

    AssembleTimes times;
    LintResult result =
        assembleUnits(std::move(units), opts.lint, &times);
    st.summarySeconds = times.summarySeconds;

    if (cache) {
        cache->storeReport(reportKey, result);
        cache->flush();
        st.cacheHits = cache->hits();
        st.cacheMisses = cache->misses();
        st.cacheInvalidations = cache->invalidations();
        st.reportCacheHits = cache->reportHits();
    }
    return result;
}

} // namespace netchar::lint
