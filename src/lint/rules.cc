#include "lint/rules.hh"

#include <algorithm>
#include <array>
#include <functional>

namespace netchar::lint
{

namespace
{

bool
isId(const Token &t, std::string_view text)
{
    return t.kind == TokenKind::Identifier && t.text == text;
}

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

template <std::size_t N>
bool
idIn(const Token &t, const std::array<std::string_view, N> &set)
{
    if (t.kind != TokenKind::Identifier)
        return false;
    for (const std::string_view s : set)
        if (t.text == s)
            return true;
    return false;
}

bool
idIn(const Token &t, const std::vector<std::string_view> &set)
{
    if (t.kind != TokenKind::Identifier)
        return false;
    for (const std::string_view s : set)
        if (t.text == s)
            return true;
    return false;
}

void
report(std::vector<Finding> &out, std::string_view path,
       const Rule &rule, const Token &at, std::string message)
{
    Finding f;
    f.file = std::string(path);
    f.line = at.line;
    f.column = at.column;
    f.rule = std::string(rule.name());
    f.severity = rule.severity();
    f.message = std::move(message);
    out.push_back(std::move(f));
}

/**
 * Directories whose code runs inside the simulated-time universe:
 * a host-clock read here makes output depend on the machine running
 * the reproduction. src/core is included because the sweep engine
 * orders and retries runs — its only sanctioned wall-time use is the
 * run ledger, which carries explicit allow() pragmas.
 */
constexpr std::array<std::string_view, 6> kDeterministicDirs = {
    "src/sim",   "src/runtime",   "src/stats",
    "src/trace", "src/workloads", "src/core",
};


class NoWallclock final : public Rule
{
  public:
    std::string_view name() const override { return "no-wallclock"; }
    Severity severity() const override { return Severity::Error; }
    std::string_view summary() const override
    {
        return "host clocks are banned in determinism-critical "
               "dirs; time must derive from simulated cycles";
    }
    bool appliesTo(std::string_view path) const override
    {
        for (const std::string_view dir : kDeterministicDirs)
            if (pathInDir(path, dir))
                return true;
        return false;
    }
    void check(std::string_view path, const LexedFile &lexed,
               std::vector<Finding> &out) const override
    {
        const auto &toks = lexed.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (idIn(toks[i], clockTypeNames())) {
                report(out, path, *this, toks[i],
                       "host clock '" + toks[i].text +
                           "' in determinism-critical code; use "
                           "simulated cycles (sim::Machine) or "
                           "pragma the intentional wall-time site");
                continue;
            }
            if (i + 1 < toks.size() &&
                idIn(toks[i], hostTimeCallNames()) &&
                isPunct(toks[i + 1], "(")) {
                report(out, path, *this, toks[i],
                       "host time function '" + toks[i].text +
                           "()' in determinism-critical code");
            }
        }
    }
};

/** Engines that are deterministic only when explicitly seeded. */
constexpr std::array<std::string_view, 6> kSeedableEngines = {
    "mt19937",  "mt19937_64", "minstd_rand",
    "minstd_rand0", "ranlux24", "ranlux48",
};

class NoAmbientRng final : public Rule
{
  public:
    std::string_view name() const override
    {
        return "no-ambient-rng";
    }
    Severity severity() const override { return Severity::Error; }
    std::string_view summary() const override
    {
        return "randomness must flow from an explicit seed: no "
               "rand(), random_device or argless engines";
    }
    bool appliesTo(std::string_view) const override { return true; }
    void check(std::string_view path, const LexedFile &lexed,
               std::vector<Finding> &out) const override
    {
        const auto &toks = lexed.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if ((isId(t, "rand") || isId(t, "srand") ||
                 isId(t, "rand_r") || isId(t, "drand48")) &&
                i + 1 < toks.size() && isPunct(toks[i + 1], "(")) {
                report(out, path, *this, t,
                       "'" + t.text +
                           "()' draws from ambient global state; "
                           "use stats::Rng with an explicit seed");
                continue;
            }
            if (isId(t, "random_device")) {
                report(out, path, *this, t,
                       "'random_device' is nondeterministic by "
                       "design; seeds must be explicit inputs");
                continue;
            }
            if (isId(t, "default_random_engine")) {
                report(out, path, *this, t,
                       "'default_random_engine' is implementation-"
                       "defined; results differ across hosts");
                continue;
            }
            if (idIn(t, kSeedableEngines) && arglessAfter(toks, i))
                report(out, path, *this, t,
                       "argless '" + t.text +
                           "' construction; pass the run seed "
                           "explicitly");
        }
    }

  private:
    /**
     * True when the engine mention at `i` is an argless
     * construction: `mt19937 g;`, `mt19937 g{};`, `mt19937{}`,
     * `mt19937()`. Seeded constructions, references and template
     * arguments all fall through.
     */
    static bool arglessAfter(const std::vector<Token> &toks,
                             std::size_t i)
    {
        std::size_t j = i + 1;
        if (j < toks.size() &&
            toks[j].kind == TokenKind::Identifier)
            ++j; // declared variable name
        if (j >= toks.size())
            return false;
        if (isPunct(toks[j], ";"))
            return j > i + 1; // `mt19937 g;` yes; bare mention no
        if (j + 1 < toks.size() && isPunct(toks[j], "(") &&
            isPunct(toks[j + 1], ")"))
            return true;
        if (j + 1 < toks.size() && isPunct(toks[j], "{") &&
            isPunct(toks[j + 1], "}"))
            return true;
        return false;
    }
};

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

class NoUnorderedIteration final : public Rule
{
  public:
    std::string_view name() const override
    {
        return "no-unordered-iteration";
    }
    Severity severity() const override { return Severity::Error; }
    std::string_view summary() const override
    {
        return "range-for over unordered containers visits hash "
               "order, which leaks into exported output";
    }
    bool appliesTo(std::string_view) const override { return true; }
    void check(std::string_view path, const LexedFile &lexed,
               std::vector<Finding> &out) const override
    {
        const auto &toks = lexed.tokens;
        std::vector<std::string> names = declaredNames(toks);

        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (!isId(toks[i], "for") || !isPunct(toks[i + 1], "("))
                continue;
            // Find `:` at depth 1 — a range-for, not a classic for.
            int depth = 1;
            std::size_t colon = 0;
            std::size_t close = 0;
            for (std::size_t j = i + 2;
                 j < toks.size() && depth > 0; ++j) {
                if (isPunct(toks[j], "("))
                    ++depth;
                else if (isPunct(toks[j], ")")) {
                    --depth;
                    if (depth == 0)
                        close = j;
                } else if (depth == 1 && colon == 0 &&
                           isPunct(toks[j], ":"))
                    colon = j;
                else if (depth == 1 && isPunct(toks[j], ";"))
                    break; // classic for
            }
            if (colon == 0 || close == 0)
                continue;
            for (std::size_t j = colon + 1; j < close; ++j) {
                const Token &t = toks[j];
                const bool direct = idIn(t, kUnorderedTypes);
                bool named = false;
                if (t.kind == TokenKind::Identifier)
                    for (const std::string &n : names)
                        if (t.text == n)
                            named = true;
                if (direct || named) {
                    report(out, path, *this, toks[i],
                           "range-for over unordered container '" +
                               t.text +
                               "'; iterate a sorted copy (hash "
                               "order is not reproducible)");
                    break;
                }
            }
        }
    }

  private:
    /** Names declared in this file with an unordered_* type. */
    static std::vector<std::string>
    declaredNames(const std::vector<Token> &toks)
    {
        std::vector<std::string> names;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!idIn(toks[i], kUnorderedTypes))
                continue;
            std::size_t j = i + 1;
            if (j < toks.size() && isPunct(toks[j], "<")) {
                int depth = 1;
                for (++j; j < toks.size() && depth > 0; ++j) {
                    if (isPunct(toks[j], "<"))
                        ++depth;
                    else if (isPunct(toks[j], ">"))
                        --depth;
                    else if (isPunct(toks[j], ">>"))
                        depth -= 2;
                }
            }
            while (j < toks.size() &&
                   (isId(toks[j], "const") || isPunct(toks[j], "&") ||
                    isPunct(toks[j], "*")))
                ++j;
            if (j < toks.size() &&
                toks[j].kind == TokenKind::Identifier)
                names.push_back(toks[j].text);
        }
        return names;
    }
};

class NoUnguardedStatic final : public Rule
{
  public:
    std::string_view name() const override
    {
        return "no-unguarded-static";
    }
    Severity severity() const override { return Severity::Error; }
    std::string_view summary() const override
    {
        return "mutable static state in library code needs an "
               "atomic/mutex guard (or to not exist)";
    }
    bool appliesTo(std::string_view path) const override
    {
        return pathInDir(path, "src");
    }
    void check(std::string_view path, const LexedFile &lexed,
               std::vector<Finding> &out) const override
    {
        const auto &toks = lexed.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!isId(toks[i], "static"))
                continue;
            if (declaresGuardedOrFunction(toks, i + 1))
                continue;
            report(out, path, *this, toks[i],
                   "mutable static state without an "
                   "atomic/mutex/const guard");
        }
    }

  private:
    /**
     * Scan the declaration after `static` up to its `;` or body
     * `{`. Guarded (const/constexpr/atomic/mutex/...), per-thread
     * (thread_local) and function declarations pass; everything
     * else is mutable shared state.
     */
    static bool
    declaresGuardedOrFunction(const std::vector<Token> &toks,
                              std::size_t start)
    {
        int pdepth = 0;
        bool sawAssign = false;
        bool function = false;
        for (std::size_t j = start; j < toks.size(); ++j) {
            const Token &t = toks[j];
            if (t.kind == TokenKind::Identifier) {
                if (t.text == "const" || t.text == "constexpr" ||
                    t.text == "constinit" ||
                    t.text == "thread_local" ||
                    t.text == "mutex" || t.text == "shared_mutex" ||
                    t.text == "recursive_mutex" ||
                    t.text == "once_flag" ||
                    t.text == "condition_variable" ||
                    t.text == "operator" ||
                    t.text.rfind("atomic", 0) == 0)
                    return true;
                continue;
            }
            if (isPunct(t, "="))
                sawAssign = true;
            else if (isPunct(t, "(")) {
                if (pdepth == 0 && !sawAssign && j > start &&
                    toks[j - 1].kind == TokenKind::Identifier)
                    function = true;
                ++pdepth;
            } else if (isPunct(t, ")"))
                --pdepth;
            else if (pdepth == 0 &&
                     (isPunct(t, ";") || isPunct(t, "{")))
                break;
        }
        return function;
    }
};

class NoSilentCatch final : public Rule
{
  public:
    std::string_view name() const override
    {
        return "no-silent-catch";
    }
    Severity severity() const override { return Severity::Error; }
    std::string_view summary() const override
    {
        return "catch (...) must rethrow or record the failure; "
               "swallowed errors corrupt sweeps silently";
    }
    bool appliesTo(std::string_view) const override { return true; }
    void check(std::string_view path, const LexedFile &lexed,
               std::vector<Finding> &out) const override
    {
        const auto &toks = lexed.tokens;
        for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
            if (!isId(toks[i], "catch") ||
                !isPunct(toks[i + 1], "(") ||
                !isPunct(toks[i + 2], "...") ||
                !isPunct(toks[i + 3], ")") ||
                !isPunct(toks[i + 4], "{"))
                continue;
            int depth = 1;
            bool silent = true;
            for (std::size_t j = i + 5;
                 j < toks.size() && depth > 0; ++j) {
                const Token &t = toks[j];
                if (isPunct(t, "{"))
                    ++depth;
                else if (isPunct(t, "}"))
                    --depth;
                else if (t.kind == TokenKind::Identifier &&
                         t.text != "return" && t.text != "break" &&
                         t.text != "continue" && t.text != "true" &&
                         t.text != "false" && t.text != "nullptr")
                    silent = false; // rethrows or records something
            }
            if (silent)
                report(out, path, *this, toks[i],
                       "catch (...) swallows the error; rethrow "
                       "or record it (RunFailure/ledger)");
        }
    }
};

class NoRawThread final : public Rule
{
  public:
    std::string_view name() const override
    {
        return "no-raw-thread";
    }
    Severity severity() const override { return Severity::Error; }
    std::string_view summary() const override
    {
        return "std::thread/std::async only inside the "
               "deterministic-order executor (src/core/executor)";
    }
    bool appliesTo(std::string_view path) const override
    {
        // The executor IS the sanctioned parallelism layer.
        return path.find("src/core/executor.") ==
               std::string_view::npos;
    }
    void check(std::string_view path, const LexedFile &lexed,
               std::vector<Finding> &out) const override
    {
        const auto &toks = lexed.tokens;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (!isId(toks[i], "std") ||
                !isPunct(toks[i + 1], "::"))
                continue;
            const Token &t = toks[i + 2];
            const bool threadType =
                isId(t, "thread") || isId(t, "jthread");
            // `std::thread::hardware_concurrency()` and friends
            // query, they do not spawn.
            if (threadType && (i + 3 >= toks.size() ||
                               !isPunct(toks[i + 3], "::"))) {
                report(out, path, *this, t,
                       "raw std::" + t.text +
                           " outside src/core/executor; route "
                           "parallelism through the Executor");
                continue;
            }
            if (isId(t, "async") && i + 3 < toks.size() &&
                isPunct(toks[i + 3], "(")) {
                report(out, path, *this, t,
                       "std::async outside src/core/executor; "
                       "route parallelism through the Executor");
            }
        }
    }
};

class NoPointerHash final : public Rule
{
  public:
    std::string_view name() const override
    {
        return "no-pointer-hash";
    }
    Severity severity() const override { return Severity::Error; }
    std::string_view summary() const override
    {
        return "raw pointer values must not be hashed or cast to "
               "integers; addresses differ per run under ASLR";
    }
    bool appliesTo(std::string_view) const override { return true; }
    void check(std::string_view path, const LexedFile &lexed,
               std::vector<Finding> &out) const override
    {
        const auto &toks = lexed.tokens;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (isId(toks[i], "reinterpret_cast") &&
                isPunct(toks[i + 1], "<") &&
                launderArgs(toks, i + 1)) {
                report(out, path, *this, toks[i],
                       "reinterpret_cast of a pointer to an "
                       "integer; the address is ASLR-random and "
                       "not reproducible across runs");
                continue;
            }
            if (isId(toks[i], "hash") && isPunct(toks[i + 1], "<") &&
                pointerTemplateArg(toks, i + 1)) {
                report(out, path, *this, toks[i],
                       "std::hash over a pointer type hashes the "
                       "ASLR-random address, not the value");
            }
        }
    }

  private:
    /** Template-argument tokens of the <...> group starting at
     *  `open`, or an empty range when unterminated. Caps the scan so
     *  a stray `<` comparison cannot run away. */
    static std::pair<std::size_t, std::size_t>
    templateArgRange(const std::vector<Token> &toks,
                     std::size_t open)
    {
        int depth = 0;
        const std::size_t limit =
            std::min(toks.size(), open + 64);
        for (std::size_t j = open; j < limit; ++j) {
            if (isPunct(toks[j], "<"))
                ++depth;
            else if (isPunct(toks[j], ">"))
                --depth;
            else if (isPunct(toks[j], ">>"))
                depth -= 2;
            if (depth <= 0)
                return {open + 1, j};
        }
        return {open + 1, open + 1};
    }

    /** <integral> with no pointer declarator: pointer laundering. */
    static bool launderArgs(const std::vector<Token> &toks,
                            std::size_t open)
    {
        const auto [b, e] = templateArgRange(toks, open);
        bool integral = false;
        for (std::size_t j = b; j < e; ++j) {
            if (isPunct(toks[j], "*"))
                return false; // pointer-to-pointer cast
            if (idIn(toks[j], pointerLaunderTargets()))
                integral = true;
        }
        return integral;
    }

    /** <...*...>: hashing a pointer type. */
    static bool pointerTemplateArg(const std::vector<Token> &toks,
                                   std::size_t open)
    {
        const auto [b, e] = templateArgRange(toks, open);
        for (std::size_t j = b; j < e; ++j)
            if (isPunct(toks[j], "*"))
                return true;
        return false;
    }
};

} // namespace

std::string_view
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

bool
pathInDir(std::string_view path, std::string_view dir)
{
    if (path.size() > dir.size() &&
        path.compare(0, dir.size(), dir) == 0 &&
        path[dir.size()] == '/')
        return true;
    std::string needle;
    needle.reserve(dir.size() + 2);
    needle += '/';
    needle += dir;
    needle += '/';
    return path.find(needle) != std::string_view::npos;
}

const std::vector<std::unique_ptr<Rule>> &
allRules()
{
    static const std::vector<std::unique_ptr<Rule>> rules = [] {
        std::vector<std::unique_ptr<Rule>> r;
        r.push_back(std::make_unique<NoWallclock>());
        r.push_back(std::make_unique<NoAmbientRng>());
        r.push_back(std::make_unique<NoUnorderedIteration>());
        r.push_back(std::make_unique<NoUnguardedStatic>());
        r.push_back(std::make_unique<NoSilentCatch>());
        r.push_back(std::make_unique<NoRawThread>());
        r.push_back(std::make_unique<NoPointerHash>());
        return r;
    }();
    return rules;
}

const std::vector<std::string_view> &
clockTypeNames()
{
    /** Host clock types whose mere mention is a hazard. */
    static const std::vector<std::string_view> names = {
        "steady_clock", "system_clock", "high_resolution_clock",
        "utc_clock",    "file_clock",
    };
    return names;
}

const std::vector<std::string_view> &
hostTimeCallNames()
{
    /** C time functions banned when called. */
    static const std::vector<std::string_view> names = {
        "time",      "clock",  "gettimeofday", "clock_gettime",
        "localtime", "gmtime", "mktime",       "strftime",
        "timespec_get",
    };
    return names;
}

const std::vector<std::string_view> &
pointerLaunderTargets()
{
    /** Integral destination types of a pointer-laundering cast. */
    static const std::vector<std::string_view> names = {
        "uintptr_t", "intptr_t",  "size_t",   "ptrdiff_t",
        "uint64_t",  "uint32_t",  "int64_t",  "uintmax_t",
        "long",      "unsigned",  "int",
    };
    return names;
}

bool
isRuleName(std::string_view name)
{
    for (const auto &rule : allRules())
        if (rule->name() == name)
            return true;
    return false;
}

} // namespace netchar::lint
