#include "lint/taint.hh"

#include <set>
#include <sstream>

#include "lint/callgraph.hh"
#include "lint/summary.hh"

namespace netchar::lint
{

namespace
{

/** Dedup key of one flow: rule plus the full hop path. */
std::string
flowKey(const SinkEvent &ev)
{
    std::ostringstream key;
    key << ev.rule;
    for (const FlowHop &h : ev.path)
        key << '|' << h.file << ':' << h.line << ':' << h.column
            << ':' << h.note;
    return key.str();
}

} // namespace

const std::vector<std::string_view> &
flowRuleNames()
{
    static const std::vector<std::string_view> names = {
        "flow-wallclock", "flow-rng", "flow-env", "flow-ptr",
        "flow-threadid",
    };
    return names;
}

bool
isFlowRuleName(std::string_view name)
{
    for (const std::string_view n : flowRuleNames())
        if (n == name)
            return true;
    return false;
}

std::string_view
flowRuleSummary(std::string_view rule)
{
    if (rule == "flow-wallclock")
        return "a host-clock value flows into serialized output";
    if (rule == "flow-rng")
        return "an ambient-randomness value flows into serialized "
               "output";
    if (rule == "flow-env")
        return "an environment-variable value flows into serialized "
               "output";
    if (rule == "flow-ptr")
        return "an ASLR-random pointer value flows into serialized "
               "output";
    if (rule == "flow-threadid")
        return "a thread-id value flows into serialized output";
    return {};
}

TaintAnalysis
analyzeTaint(const std::vector<FileModel> &files)
{
    const CallGraph graph(files);
    return analyzeTaint(files, graph);
}

TaintAnalysis
analyzeTaint(const std::vector<FileModel> &files,
             const CallGraph &graph)
{
    const SummarySet sums = computeSummaries(files, graph);
    return analyzeTaint(files, graph, sums);
}

TaintAnalysis
analyzeTaint(const std::vector<FileModel> &files,
             const CallGraph &graph, const SummarySet &sums)
{
    // Sanitizer spans per file path, for the any-hop suppression
    // check (lint.hh: an allow-flow pragma on any hop of the path
    // silences the flow).
    std::map<std::string, std::vector<FlowSanitizer>> sanitizers;
    for (const FileModel &file : files)
        sanitizers.emplace(file.path,
                           collectFlowSanitizers(file.lexed));

    TaintAnalysis out;
    std::set<std::string> flowKeys;
    std::set<std::string> suppressedKeys;
    forEachConcreteFlow(
        files, graph, sums, [&](SinkEvent ev) {
            std::string key = flowKey(ev);
            bool sanitized = false;
            for (const FlowHop &h : ev.path) {
                const auto it = sanitizers.find(h.file);
                if (it != sanitizers.end() &&
                    flowSanitizedAt(it->second, h.line, ev.rule)) {
                    sanitized = true;
                    break;
                }
            }
            if (sanitized) {
                suppressedKeys.insert(std::move(key));
                return;
            }
            if (!flowKeys.insert(std::move(key)).second)
                return;
            Finding f;
            f.file = ev.sinkFile;
            f.line = ev.sinkLine;
            f.column = ev.sinkColumn;
            f.rule = ev.rule;
            f.severity = Severity::Error;
            f.message =
                ev.path.front().note +
                " reaches serialization sink '" + ev.sinkCallee +
                "()' through " + std::to_string(ev.path.size()) +
                " hop(s); break the flow or add an allow-flow(" +
                ev.rule + ") pragma with a reason";
            f.path = std::move(ev.path);
            out.flows.push_back(std::move(f));
        });
    out.suppressed = suppressedKeys.size();
    return out;
}

} // namespace netchar::lint
