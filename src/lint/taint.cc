#include "lint/taint.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "lint/callgraph.hh"

namespace netchar::lint
{

namespace
{

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

bool
idIn(const Token &t, const std::vector<std::string_view> &set)
{
    if (t.kind != TokenKind::Identifier)
        return false;
    for (const std::string_view s : set)
        if (t.text == s)
            return true;
    return false;
}

/** The serialization surface. A tainted argument to any of these is
 *  a flow finding: csv/json text helpers, the export entry points,
 *  the trace exporters — everything a --ledger/--stats/--trace-out
 *  stream is written from — and the serve-layer wire/cache builders
 *  (okResponse and friends, requestLine, sweepBodyJson): anything
 *  nondeterministic reaching those would be transmitted to clients
 *  or pinned into the content-addressed result cache. */
constexpr std::string_view kSinkNames[] = {
    "csvField",         "jsonEscape",       "chromeTraceJson",
    "traceCsv",         "suiteStatsCsv",    "suiteStatsJson",
    "failureLedgerCsv", "failureLedgerJson", "metricsCsv",
    "topdownCsv",       "runResultJson",    "suiteJson",
    "okResponse",       "okCachedResponse", "errorResponse",
    "jsonString",       "requestLine",      "sweepBodyJson",
    "errorCodeResponse", "journalRecord",
};

bool
isSinkName(std::string_view name)
{
    for (const std::string_view s : kSinkNames)
        if (name == s)
            return true;
    return false;
}

/** Run-ledger fields sanctioned to carry host wall time (the two
 *  justified sites from the PR-4 pragma review): assignments into
 *  them are sanitized, the taint stops there. */
constexpr std::string_view kLedgerFieldWhitelist[] = {
    "wallSeconds",
};

bool
isWhitelistedField(std::string_view name)
{
    for (const std::string_view s : kLedgerFieldWhitelist)
        if (name == s)
            return true;
    return false;
}

/** Token rule whose allow() pragma also sanitizes the flow rule's
 *  source site (one written exception serves both layers). */
std::string_view
tokenRuleAlias(std::string_view flowRule)
{
    if (flowRule == "flow-wallclock")
        return "no-wallclock";
    if (flowRule == "flow-rng")
        return "no-ambient-rng";
    if (flowRule == "flow-ptr")
        return "no-pointer-hash";
    return {};
}

/** A taint mark: which flow rule, and the path that produced it. */
struct Taint
{
    std::string rule;
    std::vector<FlowHop> path;
};

/** One nondeterminism source occurrence inside a token range. */
struct SourceHit
{
    std::size_t tok = 0;
    std::string_view rule;
    std::string what; ///< human-readable source description
};

/** Integral-destination check for reinterpret_cast<...>: mirrors
 *  the no-pointer-hash token rule via the shared target table. */
bool
laundersPointer(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    bool integral = false;
    const std::size_t limit = std::min(toks.size(), open + 64);
    for (std::size_t j = open; j < limit; ++j) {
        if (isPunct(toks[j], "<"))
            ++depth;
        else if (isPunct(toks[j], ">"))
            --depth;
        else if (isPunct(toks[j], ">>"))
            depth -= 2;
        else if (isPunct(toks[j], "*"))
            return false;
        else if (idIn(toks[j], pointerLaunderTargets()))
            integral = true;
        if (depth <= 0 && j > open)
            break;
    }
    return integral;
}

/** All nondeterminism sources inside [begin, end). */
std::vector<SourceHit>
scanSources(const std::vector<Token> &toks, std::size_t begin,
            std::size_t end)
{
    std::vector<SourceHit> hits;
    const auto next = [&](std::size_t j) -> const Token * {
        return j + 1 < end ? &toks[j + 1] : nullptr;
    };
    for (std::size_t j = begin; j < end && j < toks.size(); ++j) {
        const Token &t = toks[j];
        if (t.kind != TokenKind::Identifier)
            continue;
        const Token *n = next(j);
        if (idIn(t, clockTypeNames())) {
            hits.push_back(
                {j, "flow-wallclock", "host clock '" + t.text + "'"});
            continue;
        }
        if (idIn(t, hostTimeCallNames()) && n && isPunct(*n, "(")) {
            hits.push_back({j, "flow-wallclock",
                            "host time function '" + t.text + "()'"});
            continue;
        }
        if (t.text == "random_device" ||
            t.text == "default_random_engine") {
            hits.push_back(
                {j, "flow-rng", "ambient RNG '" + t.text + "'"});
            continue;
        }
        if ((t.text == "rand" || t.text == "srand" ||
             t.text == "rand_r" || t.text == "drand48") &&
            n && isPunct(*n, "(")) {
            hits.push_back(
                {j, "flow-rng", "ambient RNG '" + t.text + "()'"});
            continue;
        }
        if ((t.text == "getenv" || t.text == "secure_getenv") && n &&
            isPunct(*n, "(")) {
            hits.push_back({j, "flow-env",
                            "environment read '" + t.text + "()'"});
            continue;
        }
        if (t.text == "reinterpret_cast" && n && isPunct(*n, "<") &&
            laundersPointer(toks, j + 1)) {
            hits.push_back({j, "flow-ptr",
                            "pointer-to-integer cast "
                            "'reinterpret_cast'"});
            continue;
        }
        if (t.text == "get_id" && n && isPunct(*n, "(")) {
            hits.push_back(
                {j, "flow-threadid", "thread id 'get_id()'"});
            continue;
        }
        if (t.text == "thread" && n && isPunct(*n, "::") &&
            j + 2 < end && toks[j + 2].kind ==
                TokenKind::Identifier &&
            toks[j + 2].text == "id") {
            hits.push_back(
                {j, "flow-threadid", "thread id 'thread::id'"});
            continue;
        }
    }
    return hits;
}

/** Per-function taint state: named locals/params and the return. */
struct FnState
{
    std::map<std::string, Taint> vars;
    std::optional<Taint> ret;
};

class Engine
{
  public:
    Engine(const std::vector<FileModel> &files,
           const CallGraph &graph)
        : files_(files), graph_(graph)
    {
        state_.resize(files.size());
        sanitizers_.resize(files.size());
        for (std::size_t fi = 0; fi < files.size(); ++fi) {
            state_[fi].resize(files[fi].functions.size());
            collectSanitizers(fi);
        }
    }

    TaintAnalysis run()
    {
        for (std::size_t fi = 0; fi < files_.size(); ++fi)
            for (std::size_t gi = 0;
                 gi < files_[fi].functions.size(); ++gi)
                enqueue({fi, gi});
        while (!queue_.empty()) {
            const FunctionRef ref = queue_.front();
            queue_.pop_front();
            queued_.erase(ref);
            processFunction(ref);
        }
        TaintAnalysis out;
        out.flows = std::move(flows_);
        out.suppressed = suppressedKeys_.size();
        return out;
    }

  private:
    /** One sanitizer pragma's coverage span for one flow rule. */
    struct Sanitizer
    {
        int line;
        int endLine;
        std::string rule;
    };

    void collectSanitizers(std::size_t fi)
    {
        for (const Pragma &p : files_[fi].lexed.pragmas) {
            if (p.malformed)
                continue;
            for (const std::string &rule : p.rules) {
                if (p.flow) {
                    if (isFlowRuleName(rule))
                        sanitizers_[fi].push_back(
                            {p.line, p.endLine, rule});
                    continue;
                }
                // An allow(<token-rule>) on the source site also
                // sanitizes the corresponding flow rule there.
                for (const std::string_view fr : flowRuleNames())
                    if (tokenRuleAlias(fr) == rule)
                        sanitizers_[fi].push_back(
                            {p.line, p.endLine, std::string(fr)});
            }
        }
    }

    bool sanitizedAt(std::size_t fi, int line,
                     std::string_view rule) const
    {
        for (const Sanitizer &s : sanitizers_[fi])
            if (s.rule == rule && line >= s.line &&
                line <= s.endLine + 1)
                return true;
        return false;
    }

    void enqueue(FunctionRef ref)
    {
        if (queued_.insert(ref).second)
            queue_.push_back(ref);
    }

    FnState &stateOf(FunctionRef ref)
    {
        return state_[ref.file][ref.fn];
    }

    /**
     * Taint of the expression [begin, end): the earliest (by token
     * position) of a direct source, a tainted variable mention, or
     * a call whose return is tainted. Sanitized sources don't count.
     */
    std::optional<Taint>
    exprTaint(FunctionRef ref, const FnState &st, std::size_t begin,
              std::size_t end, const std::vector<CallSite> &calls)
    {
        const FileModel &file = files_[ref.file];
        const auto &toks = file.lexed.tokens;
        std::optional<Taint> best;
        std::size_t bestPos = 0;

        const auto consider = [&](std::size_t pos, Taint t) {
            if (!best || pos < bestPos) {
                best = std::move(t);
                bestPos = pos;
            }
        };

        for (const SourceHit &hit : scanSources(toks, begin, end)) {
            const int line = toks[hit.tok].line;
            if (sanitizedAt(ref.file, line, hit.rule))
                continue;
            Taint t;
            t.rule = std::string(hit.rule);
            t.path.push_back({file.path, line,
                              toks[hit.tok].column,
                              "source: " + hit.what});
            consider(hit.tok, std::move(t));
        }

        for (std::size_t j = begin; j < end && j < toks.size();
             ++j) {
            if (toks[j].kind != TokenKind::Identifier)
                continue;
            const auto it = st.vars.find(toks[j].text);
            if (it != st.vars.end())
                consider(j, it->second);
        }

        for (const CallSite &call : calls) {
            if (call.begin < begin || call.end > end)
                continue;
            for (const FunctionRef def : graph_.resolve(call)) {
                const FnState &ds = stateOf(def);
                if (!ds.ret)
                    continue;
                Taint t = *ds.ret;
                t.path.push_back({file.path, call.line, call.column,
                                  "tainted value returned by '" +
                                      call.callee + "()'"});
                consider(call.begin, std::move(t));
                break; // one matching definition is enough
            }
        }
        return best;
    }

    void emitFlow(FunctionRef ref, const CallSite &call,
                  std::size_t argIndex, Taint taint)
    {
        const FileModel &file = files_[ref.file];
        taint.path.push_back(
            {file.path, call.line, call.column,
             "sink: argument " + std::to_string(argIndex + 1) +
                 " of '" + call.callee + "()'"});

        std::ostringstream key;
        key << taint.rule;
        for (const FlowHop &h : taint.path)
            key << '|' << h.file << ':' << h.line << ':' << h.column
                << ':' << h.note;

        if (sanitizedAt(ref.file, call.line, taint.rule)) {
            suppressedKeys_.insert(key.str());
            return;
        }
        if (!flowKeys_.insert(key.str()).second)
            return;

        Finding f;
        f.file = file.path;
        f.line = call.line;
        f.column = call.column;
        f.rule = taint.rule;
        f.severity = Severity::Error;
        f.message = taint.path.front().note +
                    " reaches serialization sink '" + call.callee +
                    "()' through " +
                    std::to_string(taint.path.size()) +
                    " hop(s); break the flow or add an allow-flow(" +
                    taint.rule + ") pragma with a reason";
        f.path = std::move(taint.path);
        flows_.push_back(std::move(f));
    }

    void processFunction(FunctionRef ref)
    {
        const FunctionModel &fn =
            files_[ref.file].functions[ref.fn];
        const FileModel &file = files_[ref.file];
        FnState &st = stateOf(ref);

        bool changed = true;
        int guard = 0;
        while (changed && guard++ < 64) {
            changed = false;
            for (const Statement &stmt : fn.stmts) {
                if ((stmt.kind == Statement::Kind::Decl ||
                     stmt.kind == Statement::Kind::Assign) &&
                    !stmt.target.empty() &&
                    !isWhitelistedField(stmt.target)) {
                    const bool wantTarget =
                        st.vars.find(stmt.target) == st.vars.end();
                    const bool wantBase =
                        !stmt.base.empty() &&
                        st.vars.find(stmt.base) == st.vars.end();
                    if (wantTarget || wantBase) {
                        auto taint = exprTaint(
                            ref, st, stmt.expr.first,
                            stmt.expr.second, stmt.calls);
                        if (taint &&
                            !sanitizedAt(ref.file, stmt.line,
                                         taint->rule)) {
                            FlowHop hop{file.path, stmt.line,
                                        stmt.column,
                                        "'" + stmt.target +
                                            "' assigned from "
                                            "tainted expression"};
                            if (wantTarget) {
                                Taint t = *taint;
                                t.path.push_back(hop);
                                st.vars.emplace(stmt.target,
                                                std::move(t));
                                changed = true;
                            }
                            if (wantBase) {
                                Taint t = *taint;
                                hop.note = "member of '" +
                                           stmt.base +
                                           "' assigned from "
                                           "tainted expression";
                                t.path.push_back(hop);
                                st.vars.emplace(stmt.base,
                                                std::move(t));
                                changed = true;
                            }
                        }
                    }
                }

                if (stmt.kind == Statement::Kind::Return &&
                    !st.ret) {
                    auto taint =
                        exprTaint(ref, st, stmt.expr.first,
                                  stmt.expr.second, stmt.calls);
                    if (taint &&
                        !sanitizedAt(ref.file, stmt.line,
                                     taint->rule)) {
                        taint->path.push_back(
                            {file.path, stmt.line, stmt.column,
                             "returned from '" + fn.name + "()'"});
                        st.ret = std::move(*taint);
                        changed = true;
                        for (const FunctionRef caller :
                             graph_.callersOf(fn.name))
                            enqueue(caller);
                    }
                }

                for (const CallSite &call : stmt.calls) {
                    for (std::size_t ai = 0;
                         ai < call.args.size(); ++ai) {
                        auto taint = exprTaint(
                            ref, st, call.args[ai].first,
                            call.args[ai].second, stmt.calls);
                        if (!taint)
                            continue;
                        if (isSinkName(call.callee)) {
                            emitFlow(ref, call, ai,
                                     std::move(*taint));
                            continue;
                        }
                        for (const FunctionRef def :
                             graph_.resolve(call)) {
                            const FunctionModel &dfn =
                                files_[def.file]
                                    .functions[def.fn];
                            if (ai >= dfn.params.size() ||
                                dfn.params[ai].empty())
                                continue;
                            FnState &ds = stateOf(def);
                            if (ds.vars.find(dfn.params[ai]) !=
                                ds.vars.end())
                                continue;
                            Taint t = *taint;
                            t.path.push_back(
                                {file.path, call.line, call.column,
                                 "argument " +
                                     std::to_string(ai + 1) +
                                     " of '" + call.callee +
                                     "()' taints parameter '" +
                                     dfn.params[ai] + "'"});
                            ds.vars.emplace(dfn.params[ai],
                                            std::move(t));
                            enqueue(def);
                        }
                    }
                }
            }
        }
    }

    const std::vector<FileModel> &files_;
    const CallGraph &graph_;
    std::vector<std::vector<FnState>> state_;
    std::vector<std::vector<Sanitizer>> sanitizers_;
    std::vector<Finding> flows_;
    std::set<std::string> flowKeys_;
    std::set<std::string> suppressedKeys_;
    std::deque<FunctionRef> queue_;
    std::set<FunctionRef> queued_;
};

} // namespace

const std::vector<std::string_view> &
flowRuleNames()
{
    static const std::vector<std::string_view> names = {
        "flow-wallclock", "flow-rng", "flow-env", "flow-ptr",
        "flow-threadid",
    };
    return names;
}

bool
isFlowRuleName(std::string_view name)
{
    for (const std::string_view n : flowRuleNames())
        if (n == name)
            return true;
    return false;
}

std::string_view
flowRuleSummary(std::string_view rule)
{
    if (rule == "flow-wallclock")
        return "a host-clock value flows into serialized output";
    if (rule == "flow-rng")
        return "an ambient-randomness value flows into serialized "
               "output";
    if (rule == "flow-env")
        return "an environment-variable value flows into serialized "
               "output";
    if (rule == "flow-ptr")
        return "an ASLR-random pointer value flows into serialized "
               "output";
    if (rule == "flow-threadid")
        return "a thread-id value flows into serialized output";
    return {};
}

TaintAnalysis
analyzeTaint(const std::vector<FileModel> &files)
{
    const CallGraph graph(files);
    return analyzeTaint(files, graph);
}

TaintAnalysis
analyzeTaint(const std::vector<FileModel> &files,
             const CallGraph &graph)
{
    Engine engine(files, graph);
    return engine.run();
}

} // namespace netchar::lint
