/**
 * @file
 * Lockset dataflow and escape analysis: build-time race detection.
 *
 * TSan only vets the interleavings the tests happen to execute;
 * this pass makes the absence of data races a property of the
 * build. It runs a forward dataflow over the per-function CFGs
 * (cfg.hh), computing at every program point the set of held lock
 * resources as a (must, may) pair:
 *
 *   must — locks held on EVERY path reaching the point (set
 *          intersection at joins): the safety the code can rely on;
 *   may  — locks held on SOME path (set union at joins): the basis
 *          for double-lock and leak diagnostics.
 *
 * The lattice is the powerset of the function's lock resources,
 * ordered by inclusion; transfer functions add and remove single
 * elements, so the fixpoint terminates in O(blocks × resources).
 * Resources are named by their receiver spelling (`mu`,
 * `state.mu`); RAII guards (`lock_guard`, `scoped_lock`,
 * `unique_lock`) acquire at their declaration and are modeled as
 * held until function exit — a deliberate approximation (block
 * scopes are not tracked) that can only miss findings, never
 * invent them. `unique_lock` receivers may `.lock()`/`.unlock()`
 * freely: the guard's destructor makes that discipline safe.
 *
 * Combined with the call graph, the pass computes an *escape set*:
 * functions reachable from `core::Executor` task submissions
 * (`forEach`/`forEachCollect` call sites, plus everything defined
 * in the executor implementation itself — the thread entry
 * universe). Writes in escaped code are the race surface.
 *
 * Five severity-ranked rules, all carrying SARIF codeFlows:
 *
 *  race-shared-write (error)  write to a mutable static or a
 *      by-reference-captured enclosing local, in escaped code,
 *      with an empty must-lockset
 *  lock-leak (error)          raw `.lock()` with no `.unlock()` on
 *      some path to the function exit
 *  guard-discipline (error)   double-lock, or unlock-without-lock,
 *      along any path
 *  atomic-mixed-access (warning)  one object accessed both
 *      atomically (`.load()`/`.store()`/`atomic_ref`) and plainly
 *  flow-unchecked-error (warning) a bool error-carrying return
 *      discarded in serve/journal code
 *
 * Suppression uses the existing token pragma machinery: a
 * well-formed `allow(<rule>) -- <reason>` comment on the finding
 * line (or the line above) silences it and counts as suppressed.
 * Reports are byte-identical across runs and enumeration orders —
 * the pass walks files in their (already sorted) input order only.
 */

#ifndef NETCHAR_LINT_CONCURRENCY_HH
#define NETCHAR_LINT_CONCURRENCY_HH

#include <string_view>
#include <vector>

#include "lint/callgraph.hh"
#include "lint/parser.hh"
#include "lint/rules.hh"
#include "lint/summary.hh"

namespace netchar::lint
{

/** Outcome of the concurrency pass over one parsed file set. */
struct ConcurrencyAnalysis
{
    /** Findings in emission order (the caller sorts). Each carries
     *  Finding::function and Finding::lockset for the JSON
     *  `locksets` array. */
    std::vector<Finding> findings;
    /** Findings an allow() pragma silenced. */
    std::size_t suppressed = 0;
    /** Functions reachable from executor task submissions. */
    std::size_t escapedFunctions = 0;
};

/** The concurrency rule namespace, fixed order. These are valid
 *  names inside allow(...). */
const std::vector<std::string_view> &concurrencyRuleNames();

/** True when `name` names a concurrency rule (pragma validation). */
bool isConcurrencyRuleName(std::string_view name);

/** One-line description, for --list-rules and SARIF metadata. */
std::string_view concurrencyRuleSummary(std::string_view rule);

/** Severity of a concurrency rule. */
Severity concurrencyRuleSeverity(std::string_view rule);

/** Run the pass. `files` must already be in sorted path order;
 *  `graph` must have been built over the same `files`. */
ConcurrencyAnalysis
analyzeConcurrency(const std::vector<FileModel> &files,
                   const CallGraph &graph);

/** Same, with interprocedural lock-effect summaries (summary.hh):
 *  calls to functions with a net lock effect become lockset events,
 *  so a mutex locked in `acquire()` and released in `release()` is
 *  tracked through the callers that pair them, and a lock leaked
 *  through a helper is reported at the root caller. */
ConcurrencyAnalysis
analyzeConcurrency(const std::vector<FileModel> &files,
                   const CallGraph &graph,
                   const SummarySet &summaries);

} // namespace netchar::lint

#endif // NETCHAR_LINT_CONCURRENCY_HH
