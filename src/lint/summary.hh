/**
 * @file
 * Interprocedural function summaries for netchar-lint.
 *
 * The taint and concurrency passes used to reason about one function
 * at a time and stitch results together with ad-hoc worklists. This
 * module computes, once per function, a closed *summary* of its
 * externally visible behavior:
 *
 *  - taint transfer: whether a nondeterminism source inside the body
 *    reaches the return value (`returnTaint`), which parameters flow
 *    to the return value (`paramToReturn`), and which parameters
 *    reach a serialization sink anywhere in the body — directly or
 *    through further calls (`paramSinks`);
 *  - lock effects: the net set of lock resources a call to the
 *    function acquires or releases (`mustAcquire`/`mustRelease` on
 *    every path, `mayAcquire`/`mayRelease` on some path), with RAII
 *    guards excluded because their destructors make them net-zero.
 *
 * Summaries are computed bottom-up over the Tarjan strongly-
 * connected components of the call graph: a function's summary only
 * depends on summaries of its callees, so processing SCCs in
 * reverse topological order needs a fixpoint only *inside* a cycle.
 * Within an SCC the taint slots are fill-once (monotone growth ⇒
 * guaranteed termination) and the lock effects iterate to a fixed
 * point under a deterministic iteration cap.
 *
 * Consumers: taint.cc composes `paramSinks`/`returnTaint` at call
 * sites so a source→sink chain spanning any number of helper
 * functions is reported without inlining, and concurrency.cc turns
 * `LockEffects` into call events in its lockset dataflow so a mutex
 * locked in `acquire()` and released in `release()` is tracked
 * through the callers that pair them.
 *
 * Determinism contract (same as every lint layer): files arrive in
 * sorted order, SCC member order and every container iteration is
 * fixed, so identical inputs produce identical summaries — and
 * identical reports — on every run at any `--jobs` value.
 */

#ifndef NETCHAR_LINT_SUMMARY_HH
#define NETCHAR_LINT_SUMMARY_HH

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/callgraph.hh"
#include "lint/parser.hh"
#include "lint/rules.hh"

namespace netchar::lint
{

// ---------------------------------------------------------------
// Shared taint vocabulary (one source model for every consumer)
// ---------------------------------------------------------------

/** One nondeterminism source occurrence inside a token range. */
struct TaintSourceHit
{
    std::size_t tok = 0;
    std::string_view rule;
    std::string what; ///< human-readable source description
};

/** All nondeterminism sources inside [begin, end). */
std::vector<TaintSourceHit>
scanTaintSources(const std::vector<Token> &toks, std::size_t begin,
                 std::size_t end);

/** True when `name` is a serialization-surface sink function. */
bool isTaintSinkName(std::string_view name);

/** True when `name` is a run-ledger field sanctioned to carry host
 *  wall time (assignments into it stop the flow). */
bool isLedgerWhitelistedField(std::string_view name);

/** Token rule whose allow() pragma also sanitizes the flow rule's
 *  source site ("" when the flow rule has no token alias). */
std::string_view tokenRuleAliasFor(std::string_view flowRule);

/** One sanitizer pragma's coverage span for one flow rule. */
struct FlowSanitizer
{
    int line = 0;
    int endLine = 0;
    std::string rule;
};

/** The flow sanitizers of one file: allow-flow() pragmas plus
 *  allow(<token-alias>) pragmas, resolved to flow-rule names. */
std::vector<FlowSanitizer> collectFlowSanitizers(const LexedFile &lexed);

/** True when a sanitizer for `rule` covers `line` (a pragma covers
 *  its own span plus the line directly below). */
bool flowSanitizedAt(const std::vector<FlowSanitizer> &sanitizers,
                     int line, std::string_view rule);

// ---------------------------------------------------------------
// Per-function summaries
// ---------------------------------------------------------------

/** A concrete taint: which flow rule, and the hop path so far. */
struct ConcreteTaint
{
    std::string rule;
    std::vector<FlowHop> path;
};

/** One "parameter reaches a sink" fact: if the `param`-th parameter
 *  is tainted, the taint reaches `sinkCallee` at the recorded site.
 *  `hops` are the steps *inside* this function (and its callees),
 *  ending with the sink hop; the caller prepends its own path and
 *  the argument→parameter bridging hop. */
struct ParamSinkFlow
{
    std::size_t param = 0;
    std::string sinkCallee;
    std::size_t sinkArg = 0; ///< 0-based argument index at the sink
    std::string sinkFile;
    int sinkLine = 0;
    int sinkColumn = 0;
    std::vector<FlowHop> hops;
};

/** Taint transfer behavior of one function. */
struct TaintSummary
{
    /** A source inside the body reaches the return value; the path
     *  ends with the "returned from" hop. */
    std::optional<ConcreteTaint> returnTaint;
    /** param index → hops from the parameter to the return value
     *  (ending with the "returned from" hop). */
    std::map<std::size_t, std::vector<FlowHop>> paramToReturn;
    /** Parameters that reach a serialization sink. */
    std::vector<ParamSinkFlow> paramSinks;
};

/** Net lock effects of calling one function, RAII guards excluded.
 *  Resources are receiver spellings, the same namespace the
 *  concurrency pass uses. */
struct LockEffects
{
    /** Held at exit on every / some path (net acquisitions). */
    std::set<std::string> mustAcquire;
    std::set<std::string> mayAcquire;
    /** Entry-held resources released on every / some path. */
    std::set<std::string> mustRelease;
    std::set<std::string> mayRelease;
    /** Resources this function itself raw-locks / raw-unlocks
     *  anywhere in its body (syntactic, for wrapper pairing). */
    std::set<std::string> localLocks;
    std::set<std::string> localUnlocks;
    /** resource → hops explaining where a net acquisition
     *  ultimately happens (innermost raw lock site first, then the
     *  call sites it bubbled through). */
    std::map<std::string, std::vector<FlowHop>> acquireChain;

    bool hasNetEffect() const
    {
        return !mustAcquire.empty() || !mayAcquire.empty() ||
               !mustRelease.empty() || !mayRelease.empty();
    }
};

/** The closed summary of one function. */
struct FunctionSummary
{
    TaintSummary taint;
    LockEffects locks;
};

/** Aggregate statistics, surfaced in the schema-v4 JSON report. */
struct SummaryStats
{
    std::size_t functions = 0;
    std::size_t sccs = 0;
    std::size_t largestScc = 0;
    /** Total per-SCC passes beyond the first (cycle fixpoints). */
    std::size_t fixpointPasses = 0;
    std::size_t returnTaints = 0;
    std::size_t paramReturnFlows = 0;
    std::size_t paramSinkFlows = 0;
    /** Functions with a non-empty net lock effect. */
    std::size_t lockEffects = 0;
};

/** Summaries for every function of a parsed file set. */
class SummarySet
{
  public:
    const FunctionSummary &of(FunctionRef ref) const
    {
        return byFile_[ref.file][ref.fn];
    }
    const SummaryStats &stats() const { return stats_; }

  private:
    friend SummarySet computeSummaries(const std::vector<FileModel> &,
                                       const CallGraph &);
    std::vector<std::vector<FunctionSummary>> byFile_;
    SummaryStats stats_;
};

/** Compute summaries bottom-up over Tarjan SCCs of the call graph.
 *  `files` must already be in sorted path order; `graph` must have
 *  been built over the same `files`. */
SummarySet computeSummaries(const std::vector<FileModel> &files,
                            const CallGraph &graph);

// ---------------------------------------------------------------
// Concrete-flow enumeration (the taint pass's reporting engine)
// ---------------------------------------------------------------

/** One concrete source→sink flow discovered during reporting. */
struct SinkEvent
{
    std::string rule;
    std::vector<FlowHop> path; ///< source hop first, sink hop last
    std::string sinkFile;
    int sinkLine = 0;
    int sinkColumn = 0;
    std::string sinkCallee;
};

/**
 * Enumerate every concrete source→sink flow: per function, track
 * concrete taints through locals, and at each call compose the
 * callee's summary (`returnTaint`, `paramToReturn`, `paramSinks`)
 * instead of inlining. The callback decides suppression and
 * deduplication; events arrive in deterministic (file, function,
 * statement) order.
 */
void forEachConcreteFlow(const std::vector<FileModel> &files,
                         const CallGraph &graph,
                         const SummarySet &sums,
                         const std::function<void(SinkEvent)> &emit);

} // namespace netchar::lint

#endif // NETCHAR_LINT_SUMMARY_HH
