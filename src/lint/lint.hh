/**
 * @file
 * netchar-lint driver: file discovery, pragma suppression, taint
 * analysis and deterministic report rendering.
 *
 * Determinism is a feature of the linter itself, not just what it
 * checks: discovered files are sorted lexicographically (never the
 * directory enumeration order), findings are sorted by
 * (file, line, column, rule), and the text, JSON and SARIF
 * renderings are pure functions of the sorted finding list —
 * repeated runs over an unchanged tree are byte-identical, at any
 * --jobs count and whether the analysis cache was cold or warm.
 *
 * Three analysis layers feed the same report:
 *  - token rules (rules.hh), checked per file,
 *  - the flow-aware taint pass (taint.hh), which parses every file
 *    into a declaration-level model, links them through the call
 *    graph and reports nondeterminism sources that reach the
 *    serialization surface, carrying the full source→…→sink path,
 *  - the CFG/lockset concurrency pass (concurrency.hh).
 * Both cross-file passes consume the per-function interprocedural
 * summaries of summary.hh, computed bottom-up over the call graph's
 * strongly connected components.
 *
 * The pipeline is split to support parallel and incremental
 * driving (driver.hh): analyzeFileUnit() does all the per-file work
 * (lex, token rules, pragma suppression, parse) and is a pure
 * function of (path, content) — safe to fan out over an executor
 * and to cache on a content hash — while assembleUnits() does the
 * cross-file work (call graph, summaries, taint, concurrency) and
 * the final deterministic sort.
 *
 * Suppression contract: a token finding is dropped only when a
 * well-formed netchar-lint `allow(<rule>) -- <reason>` pragma
 * comment names its rule on the same line or the line directly
 * above. Flow findings are silenced by `allow-flow(<flow-rule>) --
 * <reason>` on any hop of the path (or by an allow() on the source
 * site — see taint.hh). Malformed pragmas (missing reason, unknown
 * rule, bad syntax) are themselves findings under the reserved rule
 * name `bad-pragma` and suppress nothing.
 */

#ifndef NETCHAR_LINT_LINT_HH
#define NETCHAR_LINT_LINT_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/parser.hh"
#include "lint/rules.hh"
#include "lint/summary.hh"

namespace netchar::lint
{

/** Outcome of linting one buffer or a whole tree. */
struct LintResult
{
    /** Unsuppressed findings, sorted (file, line, column, rule).
     *  Flow findings carry their source→…→sink path. */
    std::vector<Finding> findings;
    /** How many findings valid pragmas suppressed (token findings
     *  plus sanitized flows and silenced concurrency findings). */
    std::size_t suppressedCount = 0;
    std::size_t filesScanned = 0;
    /** Call-graph link statistics (schema v3 `callGraph` object);
     *  zero when neither cross-file pass ran. */
    std::size_t callSites = 0;
    std::size_t unresolvedCalls = 0;
    /** Functions the concurrency pass proved reachable from
     *  executor task submissions. */
    std::size_t escapedFunctions = 0;
    /** Interprocedural summary statistics (schema v4 `summaries`
     *  object); zero when neither cross-file pass ran. */
    SummaryStats summaries;
    /** True when any finding has Severity::Error. */
    bool hasError() const;
};

/** Analysis knobs shared by every lint entry point. */
struct LintOptions
{
    /** Run the flow-aware taint pass (on by default). */
    bool taint = true;
    /** Run the CFG/lockset concurrency pass (on by default). */
    bool concurrency = true;
};

/** One in-memory source buffer with the path it pretends to live
 *  at (the path drives per-rule directory scoping). */
struct SourceBuffer
{
    std::string path;
    std::string content;
};

/**
 * Everything the per-file phase produces for one source buffer: the
 * parsed declaration model plus the pragma-filtered token findings.
 * A FileUnit is a pure function of (path, content) — no analysis
 * option reaches the per-file phase — which is what makes it the
 * unit of both parallelism and content-hash caching (cache.hh).
 */
struct FileUnit
{
    /** Declaration-level model; model.path names the file. */
    FileModel model;
    /** Token and bad-pragma findings that survived suppression. */
    std::vector<Finding> findings;
    /** Token findings a valid allow() pragma dropped. */
    std::size_t suppressed = 0;
    /** Per-phase wall time of this unit's analysis (zero when the
     *  unit was loaded from cache rather than analyzed). */
    double lexSeconds = 0;
    double rulesSeconds = 0;
    double parseSeconds = 0;
};

/** Wall time spent in assembleUnits' cross-file phase. */
struct AssembleTimes
{
    /** Call graph + summaries + taint + concurrency, together. */
    double summarySeconds = 0;
};

/** --stats payload: per-phase timing plus cache counters. Timings
 *  are nondeterministic by nature, so stats never appear in a
 *  report unless explicitly requested. */
struct LintStats
{
    double lexSeconds = 0;
    double parseSeconds = 0;
    double rulesSeconds = 0;
    double summarySeconds = 0;
    /** Units freshly analyzed this run (≠ filesScanned when the
     *  cache served the rest). */
    std::size_t filesAnalyzed = 0;
    /** Incremental-cache counters (driver.hh); all zero when the
     *  run was uncached. */
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    std::size_t cacheInvalidations = 0;
    /** 1 when the whole report was served from the report-level
     *  cache (no per-file or cross-file analysis ran at all). */
    std::size_t reportCacheHits = 0;
};

/**
 * Run the per-file phase on one buffer: lex, token rules, pragma
 * validation and suppression, declaration parse. Thread-safe with
 * respect to other analyzeFileUnit calls — it touches only its
 * arguments and the immutable rule registry.
 */
FileUnit analyzeFileUnit(const std::string &path,
                         std::string_view content);

/**
 * Run the cross-file phase and build the final report: merge unit
 * findings, build the call graph and interprocedural summaries,
 * run the taint and concurrency passes, sort. `units` must be in
 * sorted model.path order; the result is byte-deterministic given
 * that order. `times` (optional) receives phase wall time.
 */
LintResult assembleUnits(std::vector<FileUnit> units,
                         const LintOptions &opts = {},
                         AssembleTimes *times = nullptr);

/**
 * Expand files and directory trees into the sorted, de-duplicated
 * list of C++ sources (.cc/.hh/.cpp/.hpp/.h/.cxx/.hxx). Paths are
 * lexically normalized first, so repeated or overlapping arguments
 * (`src src ./src/lint`) visit each file once and the report order
 * never depends on how the caller spelled the paths. An unreadable
 * path appends to `errors` and is otherwise skipped.
 */
std::vector<std::string>
discoverFiles(const std::vector<std::string> &paths,
              std::vector<std::string> &errors);

/**
 * Lint one in-memory buffer, token rules only. This is the
 * single-file unit-test entry point; taint needs the whole file set
 * and lives in lintSources().
 */
LintResult lintSource(const std::string &path,
                      std::string_view content);

/**
 * Lint a set of in-memory buffers as one tree: token rules per
 * file, then (when `opts.taint`) the cross-file taint pass.
 * Buffers are processed in sorted-path order regardless of the
 * order given.
 */
LintResult lintSources(std::vector<SourceBuffer> sources,
                       const LintOptions &opts = {});

/**
 * Lint files and directory trees (discoverFiles + lintSources).
 */
LintResult lintPaths(const std::vector<std::string> &paths,
                     std::vector<std::string> &errors,
                     const LintOptions &opts = {});

/** Render `file:line: rule: message` lines (flow findings followed
 *  by their indented hop lines) plus a summary line. */
std::string renderText(const LintResult &result);

/**
 * Render the machine-readable JSON report (schema version 4: v2
 * added the `flows` array of taint paths; v3 the `callGraph` link
 * statistics and the `locksets` array; v4 the `summaries` object
 * of interprocedural summary statistics and — only when `stats` is
 * non-null — the `stats` object of per-phase timings and cache
 * counters). Without `stats` the rendering is a pure function of
 * the result, byte-identical across runs.
 */
std::string renderJson(const LintResult &result,
                       const LintStats *stats = nullptr);

/** Render the --stats payload as human-readable text lines. */
std::string renderStatsText(const LintStats &stats);

/** One line per registered rule — token rules, the reserved
 *  bad-pragma rule, the flow rules, then the concurrency rules. */
std::string listRulesText();

} // namespace netchar::lint

#endif // NETCHAR_LINT_LINT_HH
