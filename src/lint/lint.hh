/**
 * @file
 * netchar-lint driver: file discovery, pragma suppression and
 * deterministic report rendering.
 *
 * Determinism is a feature of the linter itself, not just what it
 * checks: discovered files are sorted lexicographically (never the
 * directory enumeration order), findings are sorted by
 * (file, line, column, rule), and both the text and JSON renderings
 * are pure functions of the sorted finding list — repeated runs over
 * an unchanged tree are byte-identical.
 *
 * Suppression contract: a finding is dropped only when a well-formed
 * netchar-lint `allow(<rule>) -- <reason>` pragma comment names its
 * rule on the same line or the line directly above.
 * Malformed pragmas (missing reason, unknown rule, bad syntax) are
 * themselves findings under the reserved rule name `bad-pragma` and
 * suppress nothing.
 */

#ifndef NETCHAR_LINT_LINT_HH
#define NETCHAR_LINT_LINT_HH

#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hh"

namespace netchar::lint
{

/** Outcome of linting one buffer or a whole tree. */
struct LintResult
{
    /** Unsuppressed findings, sorted (file, line, column, rule). */
    std::vector<Finding> findings;
    /** How many findings valid pragmas suppressed. */
    std::size_t suppressedCount = 0;
    std::size_t filesScanned = 0;
    /** True when any finding has Severity::Error. */
    bool hasError() const;
};

/**
 * Lint one in-memory buffer as if it lived at `path` (which drives
 * per-rule directory scoping). This is the unit-test entry point.
 */
LintResult lintSource(const std::string &path,
                      std::string_view content);

/**
 * Lint files and directory trees. Directories are walked
 * recursively for C++ sources (.cc/.hh/.cpp/.hpp/.h/.cxx/.hxx);
 * the final file list is sorted and de-duplicated. An unreadable
 * path appends to `errors` and is otherwise skipped.
 */
LintResult lintPaths(const std::vector<std::string> &paths,
                     std::vector<std::string> &errors);

/** Render `file:line: rule: message` lines plus a summary line. */
std::string renderText(const LintResult &result);

/** Render the machine-readable JSON report (schema version 1). */
std::string renderJson(const LintResult &result);

/** One line per registered rule: name, severity, summary. */
std::string listRulesText();

} // namespace netchar::lint

#endif // NETCHAR_LINT_LINT_HH
