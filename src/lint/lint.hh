/**
 * @file
 * netchar-lint driver: file discovery, pragma suppression, taint
 * analysis and deterministic report rendering.
 *
 * Determinism is a feature of the linter itself, not just what it
 * checks: discovered files are sorted lexicographically (never the
 * directory enumeration order), findings are sorted by
 * (file, line, column, rule), and the text, JSON and SARIF
 * renderings are pure functions of the sorted finding list —
 * repeated runs over an unchanged tree are byte-identical.
 *
 * Two analysis layers feed the same report:
 *  - token rules (rules.hh), checked per file, and
 *  - the flow-aware taint pass (taint.hh), which parses every file
 *    into a declaration-level model, links them through the call
 *    graph and reports nondeterminism sources that reach the
 *    serialization surface, carrying the full source→…→sink path.
 *
 * Suppression contract: a token finding is dropped only when a
 * well-formed netchar-lint `allow(<rule>) -- <reason>` pragma
 * comment names its rule on the same line or the line directly
 * above. Flow findings are silenced by `allow-flow(<flow-rule>) --
 * <reason>` on any hop of the path (or by an allow() on the source
 * site — see taint.hh). Malformed pragmas (missing reason, unknown
 * rule, bad syntax) are themselves findings under the reserved rule
 * name `bad-pragma` and suppress nothing.
 */

#ifndef NETCHAR_LINT_LINT_HH
#define NETCHAR_LINT_LINT_HH

#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hh"

namespace netchar::lint
{

/** Outcome of linting one buffer or a whole tree. */
struct LintResult
{
    /** Unsuppressed findings, sorted (file, line, column, rule).
     *  Flow findings carry their source→…→sink path. */
    std::vector<Finding> findings;
    /** How many findings valid pragmas suppressed (token findings
     *  plus sanitized flows and silenced concurrency findings). */
    std::size_t suppressedCount = 0;
    std::size_t filesScanned = 0;
    /** Call-graph link statistics (schema v3 `callGraph` object);
     *  zero when neither cross-file pass ran. */
    std::size_t callSites = 0;
    std::size_t unresolvedCalls = 0;
    /** Functions the concurrency pass proved reachable from
     *  executor task submissions. */
    std::size_t escapedFunctions = 0;
    /** True when any finding has Severity::Error. */
    bool hasError() const;
};

/** Analysis knobs shared by every lint entry point. */
struct LintOptions
{
    /** Run the flow-aware taint pass (on by default). */
    bool taint = true;
    /** Run the CFG/lockset concurrency pass (on by default). */
    bool concurrency = true;
};

/** One in-memory source buffer with the path it pretends to live
 *  at (the path drives per-rule directory scoping). */
struct SourceBuffer
{
    std::string path;
    std::string content;
};

/**
 * Lint one in-memory buffer, token rules only. This is the
 * single-file unit-test entry point; taint needs the whole file set
 * and lives in lintSources().
 */
LintResult lintSource(const std::string &path,
                      std::string_view content);

/**
 * Lint a set of in-memory buffers as one tree: token rules per
 * file, then (when `opts.taint`) the cross-file taint pass.
 * Buffers are processed in sorted-path order regardless of the
 * order given.
 */
LintResult lintSources(std::vector<SourceBuffer> sources,
                       const LintOptions &opts = {});

/**
 * Lint files and directory trees. Directories are walked
 * recursively for C++ sources (.cc/.hh/.cpp/.hpp/.h/.cxx/.hxx);
 * the final file list is sorted and de-duplicated. An unreadable
 * path appends to `errors` and is otherwise skipped.
 */
LintResult lintPaths(const std::vector<std::string> &paths,
                     std::vector<std::string> &errors,
                     const LintOptions &opts = {});

/** Render `file:line: rule: message` lines (flow findings followed
 *  by their indented hop lines) plus a summary line. */
std::string renderText(const LintResult &result);

/** Render the machine-readable JSON report (schema version 3:
 *  v2 added the `flows` array of taint paths; v3 adds the
 *  `callGraph` link statistics and the `locksets` array carried
 *  by concurrency findings). */
std::string renderJson(const LintResult &result);

/** One line per registered rule — token rules, the reserved
 *  bad-pragma rule, the flow rules, then the concurrency rules. */
std::string listRulesText();

} // namespace netchar::lint

#endif // NETCHAR_LINT_LINT_HH
