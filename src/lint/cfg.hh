/**
 * @file
 * Per-function control-flow graphs for netchar-lint.
 *
 * The declaration-level parser (parser.hh) flattens control
 * structure away — good enough for taint, useless for path
 * questions like "is the mutex released on every exit?". This
 * builder re-walks a function's body token range and recovers basic
 * blocks over the same token stream the rest of the linter uses:
 *
 *  - `if`/`else` fork the current block and re-join after;
 *  - `while`/`for` get a dedicated loop-head block with a back
 *    edge from the body and an exit edge past the loop;
 *  - `do`/`while` place the condition after the body, so the body
 *    always runs at least once;
 *  - `switch` fans out from the header to every `case`/`default`
 *    section, with fallthrough edges between adjacent sections and
 *    `break` edges to the block after the switch;
 *  - `return` edges to the dedicated exit block; `break`/`continue`
 *    edge to their enclosing construct;
 *  - `try` bodies are inlined; each `catch` block is modeled as an
 *    optional branch that re-joins after the handler.
 *
 * Brace groups in expression position (lambda bodies, brace
 * initializers) are skipped as part of the statement that contains
 * them: a lambda's control flow belongs to its eventual caller, not
 * to the enclosing function's CFG.
 *
 * Determinism contract (same as every lint layer): blocks are
 * numbered in source order, block 0 is the entry, block 1 the
 * single exit, successor lists are sorted and de-duplicated —
 * building the same function twice yields identical graphs.
 */

#ifndef NETCHAR_LINT_CFG_HH
#define NETCHAR_LINT_CFG_HH

#include <cstddef>
#include <vector>

#include "lint/parser.hh"

namespace netchar::lint
{

/** One statement of a basic block: a half-open token range plus the
 *  position of its first token. Control headers (`if (cond)`,
 *  `for (init; cond; step)`) are statements of the block that
 *  evaluates them. */
struct CfgStmt
{
    std::size_t begin = 0; ///< first token index
    std::size_t end = 0;   ///< one past the last token
    int line = 0;
    int column = 0;
};

/** A maximal straight-line run of statements. */
struct BasicBlock
{
    std::vector<CfgStmt> stmts;
    /** Successor block indices, sorted ascending, de-duplicated. */
    std::vector<std::size_t> succs;
    /** True when the block is reachable from the entry block. */
    bool reachable = false;
};

/** The per-function graph. Block 0 is the entry (it may already
 *  hold statements); block 1 is the single empty exit block every
 *  `return` — and the fall-off-the-end path — edges into. */
struct Cfg
{
    std::vector<BasicBlock> blocks;
    static constexpr std::size_t kEntry = 0;
    static constexpr std::size_t kExit = 1;

    /** Total number of edges, for tests and diagnostics. */
    std::size_t edgeCount() const;
};

/** Build the CFG for the body token range [bodyOpen, bodyClose)
 *  (the braces themselves are not part of any statement). */
Cfg buildCfg(const std::vector<Token> &tokens, std::size_t bodyOpen,
             std::size_t bodyClose);

/** Convenience: build the CFG of a parsed function. */
Cfg buildCfg(const FileModel &file, const FunctionModel &fn);

} // namespace netchar::lint

#endif // NETCHAR_LINT_CFG_HH
