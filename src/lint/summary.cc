#include "lint/summary.hh"

#include <algorithm>
#include <array>

#include "lint/cfg.hh"
#include "lint/taint.hh"

namespace netchar::lint
{

namespace
{

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

bool
idIn(const Token &t, const std::vector<std::string_view> &set)
{
    if (t.kind != TokenKind::Identifier)
        return false;
    for (const std::string_view s : set)
        if (t.text == s)
            return true;
    return false;
}

/** The serialization surface. A tainted argument to any of these is
 *  a flow finding: csv/json text helpers, the export entry points,
 *  the trace exporters — everything a --ledger/--stats/--trace-out
 *  stream is written from — and the serve-layer wire/cache builders
 *  (okResponse and friends, requestLine, sweepBodyJson): anything
 *  nondeterministic reaching those would be transmitted to clients
 *  or pinned into the content-addressed result cache. */
constexpr std::string_view kSinkNames[] = {
    "csvField",         "jsonEscape",       "chromeTraceJson",
    "traceCsv",         "suiteStatsCsv",    "suiteStatsJson",
    "failureLedgerCsv", "failureLedgerJson", "metricsCsv",
    "topdownCsv",       "runResultJson",    "suiteJson",
    "okResponse",       "okCachedResponse", "errorResponse",
    "jsonString",       "requestLine",      "sweepBodyJson",
    "errorCodeResponse", "journalRecord",
};

/** Run-ledger fields sanctioned to carry host wall time (the two
 *  justified sites from the PR-4 pragma review): assignments into
 *  them are sanitized, the taint stops there. */
constexpr std::string_view kLedgerFieldWhitelist[] = {
    "wallSeconds",
};

/** Integral-destination check for reinterpret_cast<...>: mirrors
 *  the no-pointer-hash token rule via the shared target table. */
bool
laundersPointer(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    bool integral = false;
    const std::size_t limit = std::min(toks.size(), open + 64);
    for (std::size_t j = open; j < limit; ++j) {
        if (isPunct(toks[j], "<"))
            ++depth;
        else if (isPunct(toks[j], ">"))
            --depth;
        else if (isPunct(toks[j], ">>"))
            depth -= 2;
        else if (isPunct(toks[j], "*"))
            return false;
        else if (idIn(toks[j], pointerLaunderTargets()))
            integral = true;
        if (depth <= 0 && j > open)
            break;
    }
    return integral;
}

// ---------------------------------------------------------------
// Lock-event extraction (the concurrency pass's vocabulary)
// ---------------------------------------------------------------

/** RAII guard types that sanction lock/unlock discipline. */
constexpr std::array<std::string_view, 3> kGuardTypes = {
    "lock_guard",
    "scoped_lock",
    "unique_lock",
};

bool
contains(const auto &table, std::string_view text)
{
    for (const std::string_view t : table)
        if (t == text)
            return true;
    return false;
}

/** Index of the `)` matching the `(` at `open`, or `limit`. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open,
           std::size_t limit)
{
    int depth = 0;
    for (std::size_t j = open; j < limit; ++j) {
        if (isPunct(toks[j], "("))
            ++depth;
        else if (isPunct(toks[j], ")")) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return limit;
}

/** Index of the `}` matching the `{` at `open`, or `limit`. */
std::size_t
matchBrace(const std::vector<Token> &toks, std::size_t open,
           std::size_t limit)
{
    int depth = 0;
    for (std::size_t j = open; j < limit; ++j) {
        if (isPunct(toks[j], "{"))
            ++depth;
        else if (isPunct(toks[j], "}")) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return limit;
}

/** Skip a balanced template argument list starting at `<`, or
 *  return `open` unchanged when it does not look like one. */
std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t open,
           std::size_t limit)
{
    int depth = 0;
    for (std::size_t j = open; j < limit; ++j) {
        const Token &t = toks[j];
        if (isPunct(t, "<"))
            ++depth;
        else if (isPunct(t, ">")) {
            if (--depth == 0)
                return j + 1;
        } else if (isPunct(t, ">>")) {
            depth -= 2;
            if (depth <= 0)
                return j + 1;
        } else if (isPunct(t, ";") || isPunct(t, "{") ||
                   t.kind == TokenKind::String)
            break; // not a template argument list after all
    }
    return open;
}

/** The dotted receiver spelling whose last token sits just before
 *  the `.`/`->` at `dot`, or "" for non-identifier receivers. */
std::string
receiverChain(const std::vector<Token> &toks, std::size_t dot)
{
    std::vector<std::string> parts;
    std::size_t j = dot;
    while (j > 0) {
        if (toks[j - 1].kind != TokenKind::Identifier)
            return "";
        parts.push_back(toks[j - 1].text);
        if (j < 2 || (!isPunct(toks[j - 2], ".") &&
                      !isPunct(toks[j - 2], "->") &&
                      !isPunct(toks[j - 2], "::")))
            break;
        j -= 2;
    }
    std::string out;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        if (!out.empty())
            out += '.';
        out += *it;
    }
    return out;
}

std::string
lastComponent(const std::string &chain)
{
    const std::size_t dot = chain.rfind('.');
    return dot == std::string::npos ? chain : chain.substr(dot + 1);
}

struct LSite
{
    int line = 0;
    int column = 0;
};

/** One lock-relevant event of a function body, in token order. */
struct LockEv
{
    enum class Kind
    {
        GuardAcquire,
        GuardRelease,
        GuardRelock,
        RawLock,
        RawUnlock,
        Call, ///< apply the callee's net LockEffects
    };
    Kind kind = Kind::RawLock;
    std::vector<std::string> resources;
    const CallSite *call = nullptr;
    std::size_t token = 0;
    int line = 0;
    int column = 0;
};

/** Mode-independent per-function lock facts, extracted once. */
struct LockLocal
{
    Cfg cfg;
    std::vector<std::vector<LockEv>> events; ///< per block
    std::set<std::string> guardResources;
    std::set<std::string> localLocks;
    std::set<std::string> localUnlocks;
    std::map<std::string, LSite> firstRawLock;
};

/** (held, released) dataflow element for the effect computation.
 *  heldMust ∩ / heldMay ∪ at joins track net acquisitions;
 *  relMust ∩ / relMay ∪ track releases of entry-held resources. */
struct EffState
{
    bool reached = false;
    std::set<std::string> heldMust;
    std::set<std::string> heldMay;
    std::set<std::string> relMust;
    std::set<std::string> relMay;

    bool operator==(const EffState &o) const = default;

    bool meet(const EffState &pred)
    {
        if (!pred.reached)
            return false;
        if (!reached) {
            *this = pred;
            return true;
        }
        bool changed = false;
        const auto intersect = [&](std::set<std::string> &mine,
                                   const std::set<std::string> &th) {
            for (auto it = mine.begin(); it != mine.end();)
                if (th.count(*it) == 0) {
                    it = mine.erase(it);
                    changed = true;
                } else
                    ++it;
        };
        const auto unite = [&](std::set<std::string> &mine,
                               const std::set<std::string> &th) {
            for (const std::string &r : th)
                changed |= mine.insert(r).second;
        };
        intersect(heldMust, pred.heldMust);
        unite(heldMay, pred.heldMay);
        intersect(relMust, pred.relMust);
        unite(relMay, pred.relMay);
        return changed;
    }
};

// ---------------------------------------------------------------
// The taint value and the two-mode interpreter
// ---------------------------------------------------------------

/** Abstract taint of one variable (or expression): an optional
 *  concrete taint (a real source reached it) plus, in build mode,
 *  symbolic hop paths from each parameter slot that reaches it. */
struct TaintVal
{
    std::optional<ConcreteTaint> concrete;
    std::map<std::size_t, std::vector<FlowHop>> sym;

    bool empty() const { return !concrete && sym.empty(); }
};

/**
 * One interpreter, two modes, so the hop vocabulary and evaluation
 * order can never diverge between summary construction and
 * reporting:
 *
 *  Build  — parameters are seeded symbolically; return statements
 *           and sink calls fill the function's summary slots
 *           (fill-once, so the SCC fixpoint is monotone);
 *  Report — only concrete taints propagate; every sink reached —
 *           directly or through a callee's paramSinks — is handed
 *           to the emit callback.
 */
class Interp
{
  public:
    enum class Mode
    {
        Build,
        Report,
    };

    Interp(const std::vector<FileModel> &files,
           const CallGraph &graph, const SummarySet &read)
        : files_(files), graph_(graph), read_(read)
    {
        sanitizers_.reserve(files.size());
        for (const FileModel &f : files)
            sanitizers_.push_back(collectFlowSanitizers(f.lexed));
    }

    /** Interpret one function. In Build mode `out` receives summary
     *  fills and `summaryChanged` reports whether any slot was
     *  filled this run; in Report mode `emit` receives every
     *  concrete flow. */
    void runFunction(FunctionRef ref, Mode mode,
                     FunctionSummary *out, bool *summaryChanged,
                     const std::function<void(SinkEvent)> *emit)
    {
        const FileModel &file = files_[ref.file];
        const FunctionModel &fn = file.functions[ref.fn];
        std::map<std::string, TaintVal> vars;
        if (mode == Mode::Build)
            for (std::size_t p = 0; p < fn.params.size(); ++p)
                if (!fn.params[p].empty())
                    vars[fn.params[p]].sym[p] = {};

        bool changed = true;
        int guard = 0;
        while (changed && guard++ < 64) {
            changed = false;
            for (const Statement &stmt : fn.stmts) {
                if ((stmt.kind == Statement::Kind::Decl ||
                     stmt.kind == Statement::Kind::Assign) &&
                    !stmt.target.empty() &&
                    !isLedgerWhitelistedField(stmt.target))
                    changed |= processAssign(ref, fn, stmt, vars);

                if (stmt.kind == Statement::Kind::Return &&
                    mode == Mode::Build)
                    processReturn(ref, fn, stmt, vars, out,
                                  summaryChanged, changed);

                for (const CallSite &call : stmt.calls)
                    processCall(ref, fn, stmt, call, vars, mode,
                                out, summaryChanged, emit, changed);
            }
        }
    }

  private:
    const std::vector<FileModel> &files_;
    const CallGraph &graph_;
    const SummarySet &read_;
    std::vector<std::vector<FlowSanitizer>> sanitizers_;

    FlowHop returnedByHop(const FileModel &file,
                          const CallSite &call) const
    {
        return {file.path, call.line, call.column,
                "tainted value returned by '" + call.callee +
                    "()'"};
    }

    FlowHop bridgeHop(const FileModel &file, const CallSite &call,
                      std::size_t argIndex,
                      const std::string &param) const
    {
        return {file.path, call.line, call.column,
                "argument " + std::to_string(argIndex + 1) +
                    " of '" + call.callee +
                    "()' taints parameter '" + param + "'"};
    }

    /**
     * Taint of the expression [begin, end): the earliest (by token
     * position) of a direct source, a tainted variable mention, or
     * a call whose return is tainted — per slot, concrete and
     * symbolic alike. Calls compose the callee's summary: its
     * concrete returnTaint directly, its paramToReturn entries by
     * recursively evaluating the feeding argument (a strictly
     * smaller token range, so the recursion terminates). Sanitized
     * sources don't count.
     */
    TaintVal evalExpr(std::size_t fi,
                      const std::map<std::string, TaintVal> &vars,
                      std::size_t begin, std::size_t end,
                      const std::vector<CallSite> &calls)
    {
        const FileModel &file = files_[fi];
        const auto &toks = file.lexed.tokens;
        std::optional<ConcreteTaint> best;
        std::size_t bestPos = 0;
        std::map<std::size_t,
                 std::pair<std::size_t, std::vector<FlowHop>>>
            symBest;

        const auto considerConcrete = [&](std::size_t pos,
                                          ConcreteTaint t) {
            if (!best || pos < bestPos) {
                best = std::move(t);
                bestPos = pos;
            }
        };
        const auto considerSym = [&](std::size_t slot,
                                     std::size_t pos,
                                     std::vector<FlowHop> hops) {
            const auto it = symBest.find(slot);
            if (it == symBest.end() || pos < it->second.first)
                symBest[slot] = {pos, std::move(hops)};
        };

        for (const TaintSourceHit &hit :
             scanTaintSources(toks, begin, end)) {
            const int line = toks[hit.tok].line;
            if (flowSanitizedAt(sanitizers_[fi], line, hit.rule))
                continue;
            ConcreteTaint t;
            t.rule = std::string(hit.rule);
            t.path.push_back({file.path, line,
                              toks[hit.tok].column,
                              "source: " + hit.what});
            considerConcrete(hit.tok, std::move(t));
        }

        for (std::size_t j = begin; j < end && j < toks.size();
             ++j) {
            if (toks[j].kind != TokenKind::Identifier)
                continue;
            const auto it = vars.find(toks[j].text);
            if (it == vars.end())
                continue;
            if (it->second.concrete)
                considerConcrete(j, *it->second.concrete);
            for (const auto &[slot, hops] : it->second.sym)
                considerSym(slot, j, hops);
        }

        for (const CallSite &call : calls) {
            if (call.begin < begin || call.end > end)
                continue;
            for (const FunctionRef def : graph_.resolve(call)) {
                const TaintSummary &ts = read_.of(def).taint;
                const FunctionModel &dfn =
                    files_[def.file].functions[def.fn];
                bool used = false;
                if (ts.returnTaint) {
                    ConcreteTaint t = *ts.returnTaint;
                    t.path.push_back(returnedByHop(file, call));
                    considerConcrete(call.begin, std::move(t));
                    used = true;
                }
                for (const auto &[p, retHops] : ts.paramToReturn) {
                    if (p >= call.args.size() ||
                        p >= dfn.params.size() ||
                        dfn.params[p].empty())
                        continue;
                    const TaintVal av =
                        evalExpr(fi, vars, call.args[p].first,
                                 call.args[p].second, calls);
                    if (av.empty())
                        continue;
                    const FlowHop bridge =
                        bridgeHop(file, call, p, dfn.params[p]);
                    if (av.concrete) {
                        ConcreteTaint t = *av.concrete;
                        t.path.push_back(bridge);
                        t.path.insert(t.path.end(),
                                      retHops.begin(),
                                      retHops.end());
                        t.path.push_back(returnedByHop(file, call));
                        considerConcrete(call.begin, std::move(t));
                        used = true;
                    }
                    for (const auto &[slot, argHops] : av.sym) {
                        std::vector<FlowHop> hops = argHops;
                        hops.push_back(bridge);
                        hops.insert(hops.end(), retHops.begin(),
                                    retHops.end());
                        hops.push_back(returnedByHop(file, call));
                        considerSym(slot, call.begin,
                                    std::move(hops));
                        used = true;
                    }
                }
                if (used)
                    break; // one matching definition is enough
            }
        }

        TaintVal out;
        out.concrete = std::move(best);
        for (auto &[slot, pr] : symBest)
            out.sym.emplace(slot, std::move(pr.second));
        return out;
    }

    /** `target = expr` / `Type target = expr`: first writer wins,
     *  per slot — a variable's concrete taint and each symbolic
     *  slot are set at most once. Returns true on any new fill. */
    bool processAssign(FunctionRef ref, const FunctionModel &,
                       const Statement &stmt,
                       std::map<std::string, TaintVal> &vars)
    {
        const FileModel &file = files_[ref.file];
        const auto needs = [&](const std::string &name,
                               const TaintVal &rhs) {
            const auto it = vars.find(name);
            if (it == vars.end())
                return !rhs.empty();
            if (rhs.concrete && !it->second.concrete)
                return true;
            for (const auto &[slot, hops] : rhs.sym)
                if (it->second.sym.count(slot) == 0)
                    return true;
            return false;
        };

        const bool wantTarget =
            vars.find(stmt.target) == vars.end();
        const bool wantBase = !stmt.base.empty() &&
                              vars.find(stmt.base) == vars.end();
        if (!wantTarget && !wantBase)
            return false;
        const TaintVal rhs =
            evalExpr(ref.file, vars, stmt.expr.first,
                     stmt.expr.second, stmt.calls);
        if (rhs.empty())
            return false;

        bool changed = false;
        const auto fill = [&](const std::string &name,
                              bool asMember) {
            if (!needs(name, rhs))
                return;
            FlowHop hop{file.path, stmt.line, stmt.column,
                        asMember ? "member of '" + name +
                                       "' assigned from tainted "
                                       "expression"
                                 : "'" + stmt.target +
                                       "' assigned from tainted "
                                       "expression"};
            TaintVal add;
            if (rhs.concrete &&
                !flowSanitizedAt(sanitizers_[ref.file], stmt.line,
                                 rhs.concrete->rule)) {
                add.concrete = *rhs.concrete;
                add.concrete->path.push_back(hop);
            }
            for (const auto &[slot, hops] : rhs.sym) {
                std::vector<FlowHop> h = hops;
                h.push_back(hop);
                add.sym.emplace(slot, std::move(h));
            }
            if (add.empty())
                return;
            TaintVal &tv = vars[name];
            if (add.concrete && !tv.concrete) {
                tv.concrete = std::move(add.concrete);
                changed = true;
            }
            for (auto &[slot, hops] : add.sym)
                if (tv.sym.emplace(slot, std::move(hops)).second)
                    changed = true;
        };
        if (wantTarget)
            fill(stmt.target, false);
        if (wantBase)
            fill(stmt.base, true);
        return changed;
    }

    void processReturn(FunctionRef ref, const FunctionModel &fn,
                       const Statement &stmt,
                       const std::map<std::string, TaintVal> &vars,
                       FunctionSummary *out, bool *summaryChanged,
                       bool &changed)
    {
        TaintSummary &ts = out->taint;
        const bool wantConcrete = !ts.returnTaint;
        const TaintVal v =
            evalExpr(ref.file, vars, stmt.expr.first,
                     stmt.expr.second, stmt.calls);
        if (v.empty())
            return;
        const FileModel &file = files_[ref.file];
        const FlowHop rhop{file.path, stmt.line, stmt.column,
                           "returned from '" + fn.name + "()'"};
        if (wantConcrete && v.concrete &&
            !flowSanitizedAt(sanitizers_[ref.file], stmt.line,
                             v.concrete->rule)) {
            ConcreteTaint t = *v.concrete;
            t.path.push_back(rhop);
            ts.returnTaint = std::move(t);
            changed = true;
            if (summaryChanged != nullptr)
                *summaryChanged = true;
        }
        for (const auto &[slot, hops] : v.sym) {
            if (ts.paramToReturn.count(slot) != 0)
                continue;
            std::vector<FlowHop> h = hops;
            h.push_back(rhop);
            ts.paramToReturn.emplace(slot, std::move(h));
            changed = true;
            if (summaryChanged != nullptr)
                *summaryChanged = true;
        }
    }

    static bool hasParamSink(const TaintSummary &ts,
                             std::size_t param,
                             const ParamSinkFlow &like)
    {
        for (const ParamSinkFlow &f : ts.paramSinks)
            if (f.param == param &&
                f.sinkCallee == like.sinkCallee &&
                f.sinkFile == like.sinkFile &&
                f.sinkLine == like.sinkLine &&
                f.sinkColumn == like.sinkColumn &&
                f.sinkArg == like.sinkArg)
                return true;
        return false;
    }

    void processCall(FunctionRef ref, const FunctionModel &,
                     const Statement &stmt, const CallSite &call,
                     const std::map<std::string, TaintVal> &vars,
                     Mode mode, FunctionSummary *out,
                     bool *summaryChanged,
                     const std::function<void(SinkEvent)> *emit,
                     bool &changed)
    {
        const FileModel &file = files_[ref.file];
        for (std::size_t ai = 0; ai < call.args.size(); ++ai) {
            const TaintVal av =
                evalExpr(ref.file, vars, call.args[ai].first,
                         call.args[ai].second, stmt.calls);
            if (av.empty())
                continue;

            if (isTaintSinkName(call.callee)) {
                const FlowHop sinkHop{
                    file.path, call.line, call.column,
                    "sink: argument " + std::to_string(ai + 1) +
                        " of '" + call.callee + "()'"};
                if (mode == Mode::Report && av.concrete &&
                    emit != nullptr) {
                    SinkEvent ev;
                    ev.rule = av.concrete->rule;
                    ev.path = av.concrete->path;
                    ev.path.push_back(sinkHop);
                    ev.sinkFile = file.path;
                    ev.sinkLine = call.line;
                    ev.sinkColumn = call.column;
                    ev.sinkCallee = call.callee;
                    (*emit)(std::move(ev));
                }
                if (mode == Mode::Build)
                    for (const auto &[slot, hops] : av.sym) {
                        ParamSinkFlow f;
                        f.param = slot;
                        f.sinkCallee = call.callee;
                        f.sinkArg = ai;
                        f.sinkFile = file.path;
                        f.sinkLine = call.line;
                        f.sinkColumn = call.column;
                        if (hasParamSink(out->taint, slot, f))
                            continue;
                        f.hops = hops;
                        f.hops.push_back(sinkHop);
                        out->taint.paramSinks.push_back(
                            std::move(f));
                        changed = true;
                        if (summaryChanged != nullptr)
                            *summaryChanged = true;
                    }
                continue;
            }

            // Non-sink call: compose the callee's own param→sink
            // flows, so chains through any number of helpers are
            // seen without inlining.
            for (const FunctionRef def : graph_.resolve(call)) {
                const FunctionModel &dfn =
                    files_[def.file].functions[def.fn];
                if (ai >= dfn.params.size() ||
                    dfn.params[ai].empty())
                    continue;
                // Snapshot: on a recursive call `def` aliases the
                // summary being built, and the Build branch below
                // appends to the same vector.
                const std::vector<ParamSinkFlow> flows =
                    read_.of(def).taint.paramSinks;
                for (const ParamSinkFlow &pf : flows) {
                    if (pf.param != ai)
                        continue;
                    const FlowHop bridge = bridgeHop(
                        file, call, ai, dfn.params[ai]);
                    if (mode == Mode::Report && av.concrete &&
                        emit != nullptr) {
                        SinkEvent ev;
                        ev.rule = av.concrete->rule;
                        ev.path = av.concrete->path;
                        ev.path.push_back(bridge);
                        ev.path.insert(ev.path.end(),
                                       pf.hops.begin(),
                                       pf.hops.end());
                        ev.sinkFile = pf.sinkFile;
                        ev.sinkLine = pf.sinkLine;
                        ev.sinkColumn = pf.sinkColumn;
                        ev.sinkCallee = pf.sinkCallee;
                        (*emit)(std::move(ev));
                    }
                    if (mode == Mode::Build)
                        for (const auto &[slot, hops] : av.sym) {
                            ParamSinkFlow f;
                            f.param = slot;
                            f.sinkCallee = pf.sinkCallee;
                            f.sinkArg = pf.sinkArg;
                            f.sinkFile = pf.sinkFile;
                            f.sinkLine = pf.sinkLine;
                            f.sinkColumn = pf.sinkColumn;
                            if (hasParamSink(out->taint, slot, f))
                                continue;
                            f.hops = hops;
                            f.hops.push_back(bridge);
                            f.hops.insert(f.hops.end(),
                                          pf.hops.begin(),
                                          pf.hops.end());
                            out->taint.paramSinks.push_back(
                                std::move(f));
                            changed = true;
                            if (summaryChanged != nullptr)
                                *summaryChanged = true;
                        }
                }
            }
        }
    }
};

// ---------------------------------------------------------------
// Lock effects
// ---------------------------------------------------------------

class LockEffectBuilder
{
  public:
    LockEffectBuilder(const std::vector<FileModel> &files,
                      const CallGraph &graph)
        : files_(files), graph_(graph)
    {
        collectDeclTypes();
    }

    /** Extract the mode-independent lock facts of one function
     *  (done once; only the Call events' meanings change across
     *  fixpoint passes). */
    LockLocal extract(FunctionRef ref)
    {
        LockLocal out;
        const FileModel &file = files_[ref.file];
        const FunctionModel &fn = file.functions[ref.fn];
        if (fn.bodyEnd <= fn.bodyBegin)
            return out;
        const auto &toks = file.lexed.tokens;
        out.cfg = buildCfg(file, fn);
        out.events.resize(out.cfg.blocks.size());

        std::map<std::string, std::vector<std::string>> guardVars;
        for (std::size_t b = 0; b < out.cfg.blocks.size(); ++b)
            for (const CfgStmt &st : out.cfg.blocks[b].stmts)
                extractFromStmt(toks, st.begin, st.end, guardVars,
                                out, b);

        // Call events, injected at the callee token and merged
        // into token order with the lock events of the same block.
        for (const Statement &stmt : fn.stmts)
            for (const CallSite &call : stmt.calls)
                placeCall(out, call);
        for (auto &evs : out.events)
            std::stable_sort(evs.begin(), evs.end(),
                             [](const LockEv &a, const LockEv &b) {
                                 return a.token < b.token;
                             });
        return out;
    }

    /** Compute the net effects of one function under the current
     *  callee summaries. */
    LockEffects compute(FunctionRef ref, const LockLocal &local,
                        const SummarySet &sums)
    {
        LockEffects out;
        out.localLocks = local.localLocks;
        out.localUnlocks = local.localUnlocks;
        if (local.events.empty())
            return out;
        const std::size_t n = local.cfg.blocks.size();

        std::vector<std::vector<std::size_t>> preds(n);
        for (std::size_t b = 0; b < n; ++b)
            for (const std::size_t s : local.cfg.blocks[b].succs)
                preds[s].push_back(b);

        std::vector<EffState> in(n);
        std::vector<EffState> outState(n);
        in[Cfg::kEntry].reached = true;
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t b = 0; b < n; ++b) {
                for (const std::size_t p : preds[b])
                    changed |= in[b].meet(outState[p]);
                if (!in[b].reached)
                    continue;
                EffState s = in[b];
                for (const LockEv &ev : local.events[b])
                    apply(s, ev, sums);
                if (!(s == outState[b])) {
                    outState[b] = std::move(s);
                    changed = true;
                }
            }
        }

        const EffState &exit = in[Cfg::kExit];
        if (!exit.reached)
            return out;
        const auto keep = [&](const std::set<std::string> &src,
                              std::set<std::string> &dst) {
            for (const std::string &r : src)
                if (local.guardResources.count(r) == 0)
                    dst.insert(r);
        };
        keep(exit.heldMust, out.mustAcquire);
        keep(exit.heldMay, out.mayAcquire);
        keep(exit.relMust, out.mustRelease);
        keep(exit.relMay, out.mayRelease);
        buildAcquireChains(ref, local, sums, out);
        return out;
    }

    const LockEffects *effectsFor(const CallSite &call,
                                  const SummarySet &sums) const
    {
        for (const FunctionRef def : graph_.resolve(call)) {
            const LockEffects &e = sums.of(def).locks;
            if (e.hasNetEffect())
                return &e;
        }
        return nullptr;
    }

  private:
    const std::vector<FileModel> &files_;
    const CallGraph &graph_;
    /** name → last type-word of its declaration, over all files
     *  (same heuristic the concurrency pass uses to classify
     *  guard-variable receivers). */
    std::map<std::string, std::string> declType_;

    void collectDeclTypes()
    {
        for (const FileModel &file : files_) {
            const auto &toks = file.lexed.tokens;
            for (std::size_t j = 0; j + 1 < toks.size(); ++j) {
                if (toks[j].kind != TokenKind::Identifier)
                    continue;
                if (j > 0 && (isPunct(toks[j - 1], ".") ||
                              isPunct(toks[j - 1], "->")))
                    continue;
                std::size_t k = j + 1;
                if (isPunct(toks[k], "<")) {
                    const std::size_t past =
                        skipAngles(toks, k, toks.size());
                    if (past == k)
                        continue;
                    k = past;
                }
                if (k >= toks.size() ||
                    toks[k].kind != TokenKind::Identifier)
                    continue;
                if (k + 1 >= toks.size())
                    continue;
                const Token &after = toks[k + 1];
                if (!isPunct(after, ";") && !isPunct(after, "=") &&
                    !isPunct(after, "{") && !isPunct(after, "(") &&
                    !isPunct(after, ","))
                    continue;
                declType_[toks[k].text] = toks[j].text;
            }
        }
    }

    void extractFromStmt(
        const std::vector<Token> &toks, std::size_t b,
        std::size_t e,
        std::map<std::string, std::vector<std::string>> &guardVars,
        LockLocal &out, std::size_t block)
    {
        for (std::size_t j = b; j < e; ++j) {
            const Token &t = toks[j];
            // RAII guard declaration.
            if (t.kind == TokenKind::Identifier &&
                contains(kGuardTypes, t.text)) {
                std::size_t k = j + 1;
                if (k < e && isPunct(toks[k], "<")) {
                    const std::size_t past = skipAngles(toks, k, e);
                    if (past == k)
                        continue;
                    k = past;
                }
                if (k >= e ||
                    toks[k].kind != TokenKind::Identifier)
                    continue;
                const std::string var = toks[k].text;
                if (k + 1 >= e || (!isPunct(toks[k + 1], "(") &&
                                   !isPunct(toks[k + 1], "{")))
                    continue;
                const bool paren = isPunct(toks[k + 1], "(");
                const std::size_t close =
                    paren ? matchParen(toks, k + 1, e)
                          : matchBrace(toks, k + 1, e);
                std::vector<std::string> resources;
                std::size_t argStart = k + 2;
                for (std::size_t a = argStart; a <= close; ++a) {
                    if (a == close || (isPunct(toks[a], ",") &&
                                       a > argStart)) {
                        std::size_t s = argStart;
                        while (s < a && (isPunct(toks[s], "*") ||
                                         isPunct(toks[s], "&")))
                            ++s;
                        std::string res;
                        while (s < a) {
                            if (toks[s].kind ==
                                TokenKind::Identifier) {
                                if (!res.empty())
                                    res += '.';
                                res += toks[s].text;
                                if (s + 2 < a &&
                                    (isPunct(toks[s + 1], ".") ||
                                     isPunct(toks[s + 1], "->") ||
                                     isPunct(toks[s + 1], "::"))) {
                                    s += 2;
                                    continue;
                                }
                            }
                            break;
                        }
                        if (!res.empty() &&
                            res.find("defer_lock") ==
                                std::string::npos)
                            resources.push_back(res);
                        argStart = a + 1;
                    }
                }
                guardVars[var] = resources;
                if (!resources.empty()) {
                    for (const std::string &r : resources)
                        out.guardResources.insert(r);
                    LockEv ev;
                    ev.kind = LockEv::Kind::GuardAcquire;
                    ev.resources = resources;
                    ev.token = j;
                    ev.line = t.line;
                    ev.column = t.column;
                    out.events[block].push_back(std::move(ev));
                }
                j = close;
                continue;
            }
            // Member lock/unlock.
            if ((isPunct(t, ".") || isPunct(t, "->")) &&
                j + 2 < e &&
                toks[j + 1].kind == TokenKind::Identifier &&
                isPunct(toks[j + 2], "(")) {
                const std::string &method = toks[j + 1].text;
                if (method != "lock" && method != "unlock")
                    continue;
                const std::string recv = receiverChain(toks, j);
                if (recv.empty())
                    continue;
                LockEv ev;
                ev.token = j + 1;
                ev.line = toks[j + 1].line;
                ev.column = toks[j + 1].column;
                const auto guard = guardVars.find(recv);
                const auto type =
                    declType_.find(lastComponent(recv));
                const bool isGuardVar =
                    guard != guardVars.end() ||
                    (type != declType_.end() &&
                     contains(kGuardTypes, type->second));
                if (isGuardVar) {
                    if (guard == guardVars.end() ||
                        guard->second.empty())
                        continue; // resources unknown
                    ev.resources = guard->second;
                    ev.kind = method == "lock"
                                  ? LockEv::Kind::GuardRelock
                                  : LockEv::Kind::GuardRelease;
                } else {
                    ev.resources = {recv};
                    if (method == "lock") {
                        ev.kind = LockEv::Kind::RawLock;
                        out.localLocks.insert(recv);
                        out.firstRawLock.try_emplace(
                            recv, LSite{ev.line, ev.column});
                    } else {
                        ev.kind = LockEv::Kind::RawUnlock;
                        out.localUnlocks.insert(recv);
                    }
                }
                out.events[block].push_back(std::move(ev));
            }
        }
    }

    void placeCall(LockLocal &out, const CallSite &call)
    {
        for (std::size_t b = 0; b < out.cfg.blocks.size(); ++b)
            for (const CfgStmt &st : out.cfg.blocks[b].stmts)
                if (call.begin >= st.begin && call.begin < st.end) {
                    LockEv ev;
                    ev.kind = LockEv::Kind::Call;
                    ev.call = &call;
                    ev.token = call.begin;
                    ev.line = call.line;
                    ev.column = call.column;
                    out.events[b].push_back(std::move(ev));
                    return;
                }
    }

    void apply(EffState &s, const LockEv &ev,
               const SummarySet &sums) const
    {
        switch (ev.kind) {
        case LockEv::Kind::GuardAcquire:
        case LockEv::Kind::GuardRelock:
        case LockEv::Kind::RawLock:
            for (const std::string &r : ev.resources) {
                s.heldMust.insert(r);
                s.heldMay.insert(r);
            }
            break;
        case LockEv::Kind::GuardRelease:
        case LockEv::Kind::RawUnlock:
            for (const std::string &r : ev.resources) {
                if (s.heldMay.count(r) != 0) {
                    s.heldMust.erase(r);
                    s.heldMay.erase(r);
                } else {
                    // Releases a lock the caller held at entry.
                    s.relMust.insert(r);
                    s.relMay.insert(r);
                }
            }
            break;
        case LockEv::Kind::Call: {
            const LockEffects *eff = effectsFor(*ev.call, sums);
            if (eff == nullptr)
                break;
            for (const std::string &r : eff->mustRelease) {
                if (s.heldMay.count(r) != 0) {
                    s.heldMust.erase(r);
                    s.heldMay.erase(r);
                } else {
                    s.relMust.insert(r);
                    s.relMay.insert(r);
                }
            }
            for (const std::string &r : eff->mayRelease) {
                if (eff->mustRelease.count(r) != 0)
                    continue;
                s.heldMust.erase(r);
                if (s.heldMay.count(r) == 0)
                    s.relMay.insert(r);
            }
            for (const std::string &r : eff->mustAcquire) {
                s.heldMust.insert(r);
                s.heldMay.insert(r);
            }
            for (const std::string &r : eff->mayAcquire)
                if (eff->mustAcquire.count(r) == 0)
                    s.heldMay.insert(r);
            break;
        }
        }
    }

    /** Explain each net acquisition: the local raw-lock site, or
     *  the first call (block/token order) that bubbles it up, with
     *  the callee's own chain prepended (capped to keep paths
     *  readable). */
    void buildAcquireChains(FunctionRef ref,
                            const LockLocal &local,
                            const SummarySet &sums,
                            LockEffects &out) const
    {
        const FileModel &file = files_[ref.file];
        for (const std::string &r : out.mayAcquire) {
            if (const auto site = local.firstRawLock.find(r);
                site != local.firstRawLock.end()) {
                out.acquireChain[r] = {
                    {file.path, site->second.line,
                     site->second.column,
                     "raw lock acquired here"}};
                continue;
            }
            for (std::size_t b = 0;
                 b < local.events.size() &&
                 out.acquireChain.count(r) == 0;
                 ++b)
                for (const LockEv &ev : local.events[b]) {
                    if (ev.kind != LockEv::Kind::Call)
                        continue;
                    const LockEffects *eff =
                        effectsFor(*ev.call, sums);
                    if (eff == nullptr ||
                        (eff->mustAcquire.count(r) == 0 &&
                         eff->mayAcquire.count(r) == 0))
                        continue;
                    std::vector<FlowHop> chain;
                    if (const auto it = eff->acquireChain.find(r);
                        it != eff->acquireChain.end())
                        chain = it->second;
                    chain.push_back(
                        {file.path, ev.line, ev.column,
                         "call to '" + ev.call->callee +
                             "()' leaves '" + r + "' locked"});
                    if (chain.size() > 6)
                        chain.erase(chain.begin(),
                                    chain.end() - 6);
                    out.acquireChain[r] = std::move(chain);
                    break;
                }
        }
    }
};

// ---------------------------------------------------------------
// Tarjan SCC (iterative) over the function call graph
// ---------------------------------------------------------------

std::vector<std::vector<std::size_t>>
tarjanSccs(const std::vector<std::vector<std::size_t>> &adj)
{
    const std::size_t n = adj.size();
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<std::size_t> index(n, kNone);
    std::vector<std::size_t> low(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<std::size_t> stack;
    std::vector<std::vector<std::size_t>> sccs;
    std::size_t counter = 0;

    struct Frame
    {
        std::size_t v;
        std::size_t child;
    };
    std::vector<Frame> frames;
    for (std::size_t root = 0; root < n; ++root) {
        if (index[root] != kNone)
            continue;
        frames.push_back({root, 0});
        index[root] = low[root] = counter++;
        stack.push_back(root);
        onStack[root] = true;
        while (!frames.empty()) {
            Frame &f = frames.back();
            if (f.child < adj[f.v].size()) {
                const std::size_t w = adj[f.v][f.child++];
                if (index[w] == kNone) {
                    index[w] = low[w] = counter++;
                    stack.push_back(w);
                    onStack[w] = true;
                    frames.push_back({w, 0});
                } else if (onStack[w]) {
                    low[f.v] = std::min(low[f.v], index[w]);
                }
                continue;
            }
            // All children visited: pop.
            const std::size_t v = f.v;
            frames.pop_back();
            if (!frames.empty())
                low[frames.back().v] =
                    std::min(low[frames.back().v], low[v]);
            if (low[v] == index[v]) {
                std::vector<std::size_t> scc;
                while (true) {
                    const std::size_t w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    scc.push_back(w);
                    if (w == v)
                        break;
                }
                std::sort(scc.begin(), scc.end());
                sccs.push_back(std::move(scc));
            }
        }
    }
    return sccs;
}

bool
lockEffectsDiffer(const LockEffects &a, const LockEffects &b)
{
    return a.mustAcquire != b.mustAcquire ||
           a.mayAcquire != b.mayAcquire ||
           a.mustRelease != b.mustRelease ||
           a.mayRelease != b.mayRelease;
}

} // namespace

// ---------------------------------------------------------------
// Shared taint vocabulary
// ---------------------------------------------------------------

bool
isTaintSinkName(std::string_view name)
{
    for (const std::string_view s : kSinkNames)
        if (name == s)
            return true;
    return false;
}

bool
isLedgerWhitelistedField(std::string_view name)
{
    for (const std::string_view s : kLedgerFieldWhitelist)
        if (name == s)
            return true;
    return false;
}

std::string_view
tokenRuleAliasFor(std::string_view flowRule)
{
    if (flowRule == "flow-wallclock")
        return "no-wallclock";
    if (flowRule == "flow-rng")
        return "no-ambient-rng";
    if (flowRule == "flow-ptr")
        return "no-pointer-hash";
    return {};
}

std::vector<TaintSourceHit>
scanTaintSources(const std::vector<Token> &toks, std::size_t begin,
                 std::size_t end)
{
    std::vector<TaintSourceHit> hits;
    const auto next = [&](std::size_t j) -> const Token * {
        return j + 1 < end ? &toks[j + 1] : nullptr;
    };
    for (std::size_t j = begin; j < end && j < toks.size(); ++j) {
        const Token &t = toks[j];
        if (t.kind != TokenKind::Identifier)
            continue;
        const Token *n = next(j);
        if (idIn(t, clockTypeNames())) {
            hits.push_back(
                {j, "flow-wallclock", "host clock '" + t.text + "'"});
            continue;
        }
        if (idIn(t, hostTimeCallNames()) && n && isPunct(*n, "(")) {
            hits.push_back({j, "flow-wallclock",
                            "host time function '" + t.text + "()'"});
            continue;
        }
        if (t.text == "random_device" ||
            t.text == "default_random_engine") {
            hits.push_back(
                {j, "flow-rng", "ambient RNG '" + t.text + "'"});
            continue;
        }
        if ((t.text == "rand" || t.text == "srand" ||
             t.text == "rand_r" || t.text == "drand48") &&
            n && isPunct(*n, "(")) {
            hits.push_back(
                {j, "flow-rng", "ambient RNG '" + t.text + "()'"});
            continue;
        }
        if ((t.text == "getenv" || t.text == "secure_getenv") && n &&
            isPunct(*n, "(")) {
            hits.push_back({j, "flow-env",
                            "environment read '" + t.text + "()'"});
            continue;
        }
        if (t.text == "reinterpret_cast" && n && isPunct(*n, "<") &&
            laundersPointer(toks, j + 1)) {
            hits.push_back({j, "flow-ptr",
                            "pointer-to-integer cast "
                            "'reinterpret_cast'"});
            continue;
        }
        if (t.text == "get_id" && n && isPunct(*n, "(")) {
            hits.push_back(
                {j, "flow-threadid", "thread id 'get_id()'"});
            continue;
        }
        if (t.text == "thread" && n && isPunct(*n, "::") &&
            j + 2 < end && toks[j + 2].kind ==
                TokenKind::Identifier &&
            toks[j + 2].text == "id") {
            hits.push_back(
                {j, "flow-threadid", "thread id 'thread::id'"});
            continue;
        }
    }
    return hits;
}

std::vector<FlowSanitizer>
collectFlowSanitizers(const LexedFile &lexed)
{
    std::vector<FlowSanitizer> out;
    for (const Pragma &p : lexed.pragmas) {
        if (p.malformed)
            continue;
        for (const std::string &rule : p.rules) {
            if (p.flow) {
                if (isFlowRuleName(rule))
                    out.push_back({p.line, p.endLine, rule});
                continue;
            }
            // An allow(<token-rule>) on the source site also
            // sanitizes the corresponding flow rule there.
            for (const std::string_view fr : flowRuleNames())
                if (tokenRuleAliasFor(fr) == rule)
                    out.push_back(
                        {p.line, p.endLine, std::string(fr)});
        }
    }
    return out;
}

bool
flowSanitizedAt(const std::vector<FlowSanitizer> &sanitizers,
                int line, std::string_view rule)
{
    for (const FlowSanitizer &s : sanitizers)
        if (s.rule == rule && line >= s.line &&
            line <= s.endLine + 1)
            return true;
    return false;
}

// ---------------------------------------------------------------
// Summary computation
// ---------------------------------------------------------------

SummarySet
computeSummaries(const std::vector<FileModel> &files,
                 const CallGraph &graph)
{
    SummarySet out;
    out.byFile_.resize(files.size());
    std::vector<std::size_t> offset(files.size(), 0);
    std::size_t n = 0;
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        offset[fi] = n;
        n += files[fi].functions.size();
        out.byFile_[fi].resize(files[fi].functions.size());
    }
    std::vector<FunctionRef> refs(n);
    for (std::size_t fi = 0; fi < files.size(); ++fi)
        for (std::size_t gi = 0; gi < files[fi].functions.size();
             ++gi)
            refs[offset[fi] + gi] = {fi, gi};

    // Call-graph adjacency (call-site order, de-duplicated).
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t v = 0; v < n; ++v) {
        const FunctionRef ref = refs[v];
        std::set<std::size_t> seen;
        for (const Statement &stmt :
             files[ref.file].functions[ref.fn].stmts)
            for (const CallSite &call : stmt.calls)
                for (const FunctionRef def : graph.resolve(call)) {
                    const std::size_t w =
                        offset[def.file] + def.fn;
                    if (seen.insert(w).second)
                        adj[v].push_back(w);
                }
    }

    const std::vector<std::vector<std::size_t>> sccs =
        tarjanSccs(adj);

    Interp interp(files, graph, out);
    LockEffectBuilder lockBuilder(files, graph);
    std::vector<LockLocal> locals(n);
    for (std::size_t v = 0; v < n; ++v)
        locals[v] = lockBuilder.extract(refs[v]);

    SummaryStats &st = out.stats_;
    st.functions = n;
    // Tarjan emits SCCs callees-first, so one sweep in emission
    // order sees every callee summary before its callers — the
    // fixpoint is only needed inside a cycle.
    for (const std::vector<std::size_t> &scc : sccs) {
        ++st.sccs;
        st.largestScc = std::max(st.largestScc, scc.size());
        bool cyclic = scc.size() > 1;
        if (!cyclic)
            for (const std::size_t w : adj[scc[0]])
                cyclic |= w == scc[0];

        const auto runMember = [&](std::size_t v) {
            const FunctionRef ref = refs[v];
            FunctionSummary &sum =
                out.byFile_[ref.file][ref.fn];
            bool changed = false;
            interp.runFunction(ref, Interp::Mode::Build, &sum,
                               &changed, nullptr);
            LockEffects eff =
                lockBuilder.compute(ref, locals[v], out);
            if (lockEffectsDiffer(eff, sum.locks))
                changed = true;
            sum.locks = std::move(eff);
            return changed;
        };

        if (!cyclic) {
            runMember(scc[0]);
            continue;
        }
        const std::size_t cap = 3 + 2 * scc.size();
        std::size_t passes = 0;
        bool changed = true;
        while (changed && passes < cap) {
            ++passes;
            changed = false;
            for (const std::size_t v : scc)
                changed |= runMember(v);
        }
        st.fixpointPasses += passes > 0 ? passes - 1 : 0;
    }

    for (std::size_t v = 0; v < n; ++v) {
        const FunctionSummary &sum =
            out.byFile_[refs[v].file][refs[v].fn];
        if (sum.taint.returnTaint)
            ++st.returnTaints;
        st.paramReturnFlows += sum.taint.paramToReturn.size();
        st.paramSinkFlows += sum.taint.paramSinks.size();
        if (sum.locks.hasNetEffect())
            ++st.lockEffects;
    }
    return out;
}

void
forEachConcreteFlow(const std::vector<FileModel> &files,
                    const CallGraph &graph, const SummarySet &sums,
                    const std::function<void(SinkEvent)> &emit)
{
    Interp interp(files, graph, sums);
    for (std::size_t fi = 0; fi < files.size(); ++fi)
        for (std::size_t gi = 0; gi < files[fi].functions.size();
             ++gi)
            interp.runFunction({fi, gi}, Interp::Mode::Report,
                               nullptr, nullptr, &emit);
}

} // namespace netchar::lint
