#include "lint/parser.hh"

#include <array>

namespace netchar::lint
{

namespace
{

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

/** Keywords that can precede `(` without naming a call/function. */
bool
isControlKeyword(std::string_view text)
{
    constexpr std::array<std::string_view, 14> kw = {
        "if",     "for",    "while",    "switch", "catch",
        "return", "sizeof", "alignof",  "new",    "delete",
        "throw",  "decltype", "static_assert", "constexpr",
    };
    for (const std::string_view k : kw)
        if (text == k)
            return true;
    return false;
}

/** Type words that would otherwise read as a parameter name. */
bool
isTypeWord(std::string_view text)
{
    constexpr std::array<std::string_view, 11> kw = {
        "void", "int",   "bool",  "char",     "double", "float",
        "long", "short", "unsigned", "signed", "auto",
    };
    for (const std::string_view k : kw)
        if (text == k)
            return true;
    return false;
}

/** Index of the `)` matching the `(` at `open`, or npos. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (isPunct(toks[j], "("))
            ++depth;
        else if (isPunct(toks[j], ")")) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return std::string::npos;
}

/** Index of the `}` matching the `{` at `open`, or npos. */
std::size_t
matchBrace(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (isPunct(toks[j], "{"))
            ++depth;
        else if (isPunct(toks[j], "}")) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return std::string::npos;
}

/**
 * Split the token range [begin, end) at top-level commas (depth 0
 * with respect to parens, brackets and braces). Empty chunks are
 * kept so argument positions stay aligned.
 */
std::vector<TokenRange>
splitAtCommas(const std::vector<Token> &toks, std::size_t begin,
              std::size_t end)
{
    std::vector<TokenRange> out;
    int depth = 0;
    std::size_t start = begin;
    for (std::size_t j = begin; j < end; ++j) {
        const Token &t = toks[j];
        if (isPunct(t, "(") || isPunct(t, "[") || isPunct(t, "{"))
            ++depth;
        else if (isPunct(t, ")") || isPunct(t, "]") ||
                 isPunct(t, "}"))
            --depth;
        else if (depth == 0 && isPunct(t, ",")) {
            out.push_back({start, j});
            start = j + 1;
        }
    }
    if (start < end || !out.empty())
        out.push_back({start, end});
    return out;
}

/** Parameter name of one parameter chunk: the last identifier
 *  before any default value, or "" when unnamed. */
std::string
paramName(const std::vector<Token> &toks, TokenRange chunk)
{
    std::size_t limit = chunk.second;
    for (std::size_t j = chunk.first; j < chunk.second; ++j)
        if (isPunct(toks[j], "=")) {
            limit = j;
            break;
        }
    std::string name;
    std::size_t idents = 0;
    for (std::size_t j = chunk.first; j < limit; ++j)
        if (toks[j].kind == TokenKind::Identifier) {
            name = toks[j].text;
            ++idents;
        }
    if (idents == 1 && isTypeWord(name))
        return ""; // bare `void` / unnamed `int`
    return name;
}

/**
 * Try to recognise a function definition whose name is the
 * identifier at `i` and whose parameter list opens at `i + 1`.
 * On success fills `fn` (name/params/position) and returns the
 * index of the body `{`; otherwise returns npos.
 */
std::size_t
recognizeHeader(const std::vector<Token> &toks, std::size_t i,
                FunctionModel &fn)
{
    const Token &name = toks[i];
    if (name.kind != TokenKind::Identifier ||
        isControlKeyword(name.text))
        return std::string::npos;
    if (i > 0 &&
        (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->")))
        return std::string::npos; // member call, not a definition
    const std::size_t close = matchParen(toks, i + 1);
    if (close == std::string::npos)
        return std::string::npos;

    // Walk the tokens between `)` and the body `{`: cv/ref
    // qualifiers, noexcept(...), a trailing return type, or a
    // constructor initializer list. Anything else means this was a
    // call or a plain declaration.
    std::size_t k = close + 1;
    bool ctorInit = false;
    while (k < toks.size()) {
        const Token &t = toks[k];
        if (t.kind == TokenKind::Identifier &&
            (t.text == "const" || t.text == "noexcept" ||
             t.text == "override" || t.text == "final" ||
             t.text == "mutable" || t.text == "volatile")) {
            if (t.text == "noexcept" && k + 1 < toks.size() &&
                isPunct(toks[k + 1], "(")) {
                const std::size_t nc = matchParen(toks, k + 1);
                if (nc == std::string::npos)
                    return std::string::npos;
                k = nc + 1;
                continue;
            }
            ++k;
            continue;
        }
        if (isPunct(t, "&") || isPunct(t, "&&")) {
            ++k;
            continue;
        }
        if (isPunct(t, "->")) {
            // Trailing return type: skip to the body brace.
            ++k;
            while (k < toks.size() && !isPunct(toks[k], "{") &&
                   !isPunct(toks[k], ";"))
                ++k;
            continue;
        }
        if (isPunct(t, ":")) {
            ctorInit = true;
            ++k;
            continue;
        }
        if (isPunct(t, "(") || (ctorInit && isPunct(t, "{"))) {
            // Constructor initializer `member(expr)` / `member{expr}`
            // groups sit between `:` and the body.
            if (!ctorInit)
                return std::string::npos;
            const std::size_t gc = isPunct(t, "(")
                ? matchParen(toks, k)
                : matchBrace(toks, k);
            if (gc == std::string::npos)
                return std::string::npos;
            k = gc + 1;
            // After a group: `,` continues the list, `{` is the
            // body. The `{` case is handled on the next loop pass
            // only if another init follows, so peek here.
            if (k < toks.size() && isPunct(toks[k], ","))
                ++k;
            else if (k < toks.size() && isPunct(toks[k], "{"))
                break;
            continue;
        }
        if (ctorInit && t.kind == TokenKind::Identifier) {
            ++k; // initializer member name (possibly qualified)
            continue;
        }
        if (ctorInit && (isPunct(t, "::") || isPunct(t, "<") ||
                         isPunct(t, ">"))) {
            ++k;
            continue;
        }
        break;
    }
    if (k >= toks.size() || !isPunct(toks[k], "{"))
        return std::string::npos;

    fn.name = name.text;
    fn.line = name.line;
    fn.column = name.column;
    fn.params.clear();
    if (close > i + 2)
        for (const TokenRange &chunk :
             splitAtCommas(toks, i + 2, close))
            fn.params.push_back(paramName(toks, chunk));
    return k;
}

/** The `::`-qualified spelling ending at the identifier `j`
 *  (`std::chrono::now` for `...std :: chrono :: now`), or just the
 *  identifier itself. Member access (`.`/`->`) yields "". */
std::string
qualifiedSpelling(const std::vector<Token> &toks, std::size_t j)
{
    if (j > 0 &&
        (isPunct(toks[j - 1], ".") || isPunct(toks[j - 1], "->")))
        return "";
    std::string name = toks[j].text;
    while (j >= 2 && isPunct(toks[j - 1], "::") &&
           toks[j - 2].kind == TokenKind::Identifier) {
        j -= 2;
        name = toks[j].text + "::" + name;
        if (j > 0 && (isPunct(toks[j - 1], ".") ||
                      isPunct(toks[j - 1], "->")))
            return "";
    }
    return name;
}

/** Collect every `callee(args)` inside [begin, end). */
void
collectCalls(const std::vector<Token> &toks, std::size_t begin,
             std::size_t end, std::vector<CallSite> &out)
{
    for (std::size_t j = begin; j + 1 < end; ++j) {
        const Token &t = toks[j];
        if (t.kind != TokenKind::Identifier ||
            isControlKeyword(t.text) || !isPunct(toks[j + 1], "("))
            continue;
        const std::size_t close = matchParen(toks, j + 1);
        if (close == std::string::npos || close >= end)
            continue;
        CallSite call;
        call.callee = t.text;
        call.qualified = qualifiedSpelling(toks, j);
        call.line = t.line;
        call.column = t.column;
        call.begin = j;
        call.end = close + 1;
        if (close > j + 2)
            call.args = splitAtCommas(toks, j + 2, close);
        out.push_back(std::move(call));
    }
}

/** Classify the flushed statement [s, e) and append it. */
void
flushStatement(const std::vector<Token> &toks, std::size_t s,
               std::size_t e, std::vector<Statement> &out)
{
    if (s >= e)
        return;
    Statement st;
    st.line = toks[s].line;
    st.column = toks[s].column;

    if (toks[s].kind == TokenKind::Identifier &&
        toks[s].text == "return") {
        st.kind = Statement::Kind::Return;
        st.expr = {s + 1, e};
    } else {
        // First assignment operator at depth 0 splits LHS and RHS.
        constexpr std::array<std::string_view, 6> kAssignOps = {
            "=", "+=", "-=", "*=", "/=", "%=",
        };
        std::size_t q = e;
        int depth = 0;
        for (std::size_t j = s; j < e && q == e; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, "(") || isPunct(t, "[") ||
                isPunct(t, "{"))
                ++depth;
            else if (isPunct(t, ")") || isPunct(t, "]") ||
                     isPunct(t, "}"))
                --depth;
            else if (depth == 0 && t.kind == TokenKind::Punct)
                for (const std::string_view op : kAssignOps)
                    if (t.text == op) {
                        q = j;
                        break;
                    }
        }
        if (q < e) {
            bool member = false;
            std::string first;
            std::string last;
            std::size_t idents = 0;
            for (std::size_t j = s; j < q; ++j) {
                const Token &t = toks[j];
                if (isPunct(t, ".") || isPunct(t, "->"))
                    member = true;
                if (t.kind == TokenKind::Identifier) {
                    if (first.empty())
                        first = t.text;
                    last = t.text;
                    ++idents;
                }
            }
            if (idents > 0) {
                st.target = last;
                if (member) {
                    st.kind = Statement::Kind::Assign;
                    if (first != last)
                        st.base = first;
                } else {
                    st.kind = idents >= 2 ? Statement::Kind::Decl
                                          : Statement::Kind::Assign;
                }
                st.expr = {q + 1, e};
            } else {
                st.expr = {s, e};
            }
        } else {
            st.expr = {s, e};
        }
    }
    collectCalls(toks, s, e, st.calls);
    out.push_back(std::move(st));
}

/** Segment the body [open+1, close) into statements. Braces always
 *  end a statement; `;` only at paren/bracket depth 0, so a for-
 *  header stays whole. */
void
parseBody(const std::vector<Token> &toks, std::size_t open,
          std::size_t close, FunctionModel &fn)
{
    int depth = 0;
    std::size_t start = open + 1;
    for (std::size_t j = open + 1; j < close; ++j) {
        const Token &t = toks[j];
        if (isPunct(t, "(") || isPunct(t, "[")) {
            ++depth;
            continue;
        }
        if (isPunct(t, ")") || isPunct(t, "]")) {
            --depth;
            continue;
        }
        const bool boundary =
            (depth == 0 && (isPunct(t, ";") || isPunct(t, "{") ||
                            isPunct(t, "}")));
        if (boundary) {
            flushStatement(toks, start, j, fn.stmts);
            start = j + 1;
        }
    }
    flushStatement(toks, start, close, fn.stmts);
}

} // namespace

FileModel
parseFile(const std::string &path, LexedFile lexed)
{
    FileModel file;
    file.path = path;
    file.lexed = std::move(lexed);
    const auto &toks = file.lexed.tokens;

    std::size_t i = 0;
    while (i + 1 < toks.size()) {
        if (toks[i].kind == TokenKind::Identifier &&
            isPunct(toks[i + 1], "(")) {
            FunctionModel fn;
            const std::size_t bodyOpen =
                recognizeHeader(toks, i, fn);
            if (bodyOpen != std::string::npos) {
                const std::size_t bodyClose =
                    matchBrace(toks, bodyOpen);
                if (bodyClose != std::string::npos) {
                    fn.qualified = qualifiedSpelling(toks, i);
                    if (fn.qualified.empty())
                        fn.qualified = fn.name;
                    // Return type: the identifier directly before
                    // the (possibly qualified) name, when there is
                    // one (`bool Cache::save(...)` → "bool").
                    std::size_t head = i;
                    while (head >= 2 &&
                           isPunct(toks[head - 1], "::") &&
                           toks[head - 2].kind ==
                               TokenKind::Identifier)
                        head -= 2;
                    if (head > 0 && toks[head - 1].kind ==
                                        TokenKind::Identifier)
                        fn.retType = toks[head - 1].text;
                    fn.bodyBegin = bodyOpen;
                    fn.bodyEnd = bodyClose;
                    parseBody(toks, bodyOpen, bodyClose, fn);
                    file.functions.push_back(std::move(fn));
                    i = bodyClose + 1;
                    continue;
                }
            }
        }
        ++i;
    }
    return file;
}

} // namespace netchar::lint
