/**
 * @file
 * The netchar-lint rule registry: determinism and concurrency
 * invariants of this repo, expressed as named, severity-ranked
 * checks over the token stream.
 *
 * Every result this reproduction publishes rests on one invariant:
 * a (workload, machine, seed) triple produces byte-identical output
 * at any --jobs value, on any host. The rules encode the ways that
 * invariant has historically been broken in measurement harnesses:
 *
 *  - no-wallclock           host clocks in simulated-time code
 *  - no-ambient-rng         unseeded randomness anywhere
 *  - no-unordered-iteration hash-order iteration feeding output
 *  - no-unguarded-static    unsynchronized mutable static state
 *  - no-silent-catch        catch (...) that swallows the error
 *  - no-raw-thread          parallelism outside the executor
 *  - no-pointer-hash        hashing/laundering raw pointer values
 *                           (addresses differ per run under ASLR)
 *
 * Rules are heuristic token matchers, not a type checker: they err
 * on the side of flagging, and every intentional exception must be
 * written down as an `allow(...)` pragma with a reason — which is
 * the point: exceptions become visible, reviewed text.
 */

#ifndef NETCHAR_LINT_RULES_HH
#define NETCHAR_LINT_RULES_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hh"

namespace netchar::lint
{

enum class Severity
{
    Warning,
    Error,
};

/** "warning" / "error". */
std::string_view severityName(Severity severity);

/** One step of a taint path (source → ... → sink), for flow
 *  findings. Token-rule findings carry no hops. */
struct FlowHop
{
    std::string file;
    int line = 0;
    int column = 0;
    std::string note; ///< human-readable description of the step
};

/** One reported violation (or pragma defect). */
struct Finding
{
    std::string file;
    int line = 0;
    int column = 0;
    std::string rule;
    Severity severity = Severity::Error;
    std::string message;
    /** Source→…→sink path; non-empty exactly for flow findings. */
    std::vector<FlowHop> path;
    /** Concurrency findings only (concurrency.hh): the enclosing
     *  function and the sorted must-held lockset at the finding
     *  site, surfaced as the JSON `locksets` array. */
    std::string function;
    std::vector<std::string> lockset;
};

/** One lint rule: a name, a scope predicate and a token checker. */
class Rule
{
  public:
    virtual ~Rule() = default;

    virtual std::string_view name() const = 0;
    virtual Severity severity() const = 0;
    /** One-line description for --list-rules and docs. */
    virtual std::string_view summary() const = 0;
    /** Whether the rule checks the file at this repo-relative path. */
    virtual bool appliesTo(std::string_view path) const = 0;
    virtual void check(std::string_view path, const LexedFile &lexed,
                       std::vector<Finding> &out) const = 0;
};

/** The registry, in fixed order (report order never depends on it). */
const std::vector<std::unique_ptr<Rule>> &allRules();

/** True when `name` names a registered rule (pragma validation). */
bool isRuleName(std::string_view name);

/**
 * True when `path` (forward slashes) lies inside directory `dir`
 * (e.g. dir "src/sim" matches "src/sim/core.cc" and
 * "/root/repo/src/sim/core.cc" but not "src/simx/a.cc").
 */
bool pathInDir(std::string_view path, std::string_view dir);

/**
 * Token vocabularies shared between the token rules and the taint
 * source model (taint.cc): the two layers must agree on what a
 * nondeterminism source looks like, so the tables live in one place.
 */
const std::vector<std::string_view> &clockTypeNames();
const std::vector<std::string_view> &hostTimeCallNames();
const std::vector<std::string_view> &pointerLaunderTargets();

} // namespace netchar::lint

#endif // NETCHAR_LINT_RULES_HH
