/**
 * @file
 * Flow-aware determinism taint analysis.
 *
 * The token rules (rules.hh) catch nondeterminism *sources* at the
 * call site; this pass proves the stronger invariant the repo's
 * results rest on: a nondeterministic value never reaches serialized
 * output. It is a forward taint propagation over the declaration-
 * level models from parser.hh, linked across files by the call graph
 * (callgraph.hh), with a classic source/sanitizer/sink model:
 *
 *  sources     host clocks (steady_clock/system_clock/... and the C
 *              time functions), ambient RNG (random_device, rand),
 *              environment reads (getenv), pointer-to-integer casts
 *              and pointer hashing, thread ids
 *  sanitizers  an `allow-flow(<flow-rule>) -- <reason>` pragma on
 *              any hop of the path; an `allow(<token-rule>)` pragma
 *              on the source site (the token rule and the flow rule
 *              describe the same exception, so one pragma serves
 *              both layers); and the whitelisted run-ledger fields
 *              (SuiteRunStats wall time, the two justified wall-time
 *              sites) as assignment targets
 *  sinks       the serialization surface: the textio csv/json
 *              helpers and every export entry point (suite stats,
 *              failure ledger, trace exporters) — i.e. anything that
 *              can end up in a --ledger/--stats/--trace-out stream
 *
 * Findings are reported under the flow-rule namespace
 * (flow-wallclock, flow-rng, flow-env, flow-ptr, flow-threadid),
 * anchored at the sink, and carry the full source→…→sink path, one
 * FlowHop per propagation step. Propagation is monotone (a variable,
 * parameter or return slot is tainted at most once, first writer
 * wins in deterministic worklist order), so the pass terminates and
 * its report bytes are a pure function of the sorted input set.
 */

#ifndef NETCHAR_LINT_TAINT_HH
#define NETCHAR_LINT_TAINT_HH

#include <string_view>
#include <vector>

#include "lint/callgraph.hh"
#include "lint/parser.hh"
#include "lint/rules.hh"
#include "lint/summary.hh"

namespace netchar::lint
{

/** Outcome of the taint pass over one parsed file set. */
struct TaintAnalysis
{
    /** Flow findings (non-empty Finding::path), emission order. */
    std::vector<Finding> flows;
    /** Distinct flows an allow-flow sanitizer pragma silenced. */
    std::size_t suppressed = 0;
};

/** The flow-rule namespace, fixed order (reports never depend on
 *  it). These are valid names inside allow-flow(...). */
const std::vector<std::string_view> &flowRuleNames();

/** True when `name` names a flow rule (pragma validation). */
bool isFlowRuleName(std::string_view name);

/** One-line description of a flow rule, for --list-rules/SARIF. */
std::string_view flowRuleSummary(std::string_view rule);

/** Run the taint pass. `files` must already be in sorted path
 *  order; the result is deterministic given that order. */
TaintAnalysis analyzeTaint(const std::vector<FileModel> &files);

/** Same, over a call graph the caller already built (the lint
 *  driver shares one graph between taint and concurrency). */
TaintAnalysis analyzeTaint(const std::vector<FileModel> &files,
                           const CallGraph &graph);

/** Same, over interprocedural summaries the caller already
 *  computed (summary.hh) — the driver shares one SummarySet
 *  between the taint and concurrency passes. */
TaintAnalysis analyzeTaint(const std::vector<FileModel> &files,
                           const CallGraph &graph,
                           const SummarySet &summaries);

} // namespace netchar::lint

#endif // NETCHAR_LINT_TAINT_HH
