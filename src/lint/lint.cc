#include "lint/lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "stats/textio.hh"

namespace netchar::lint
{

namespace
{

namespace fs = std::filesystem;

/** Extensions the walker treats as C++ sources. */
constexpr std::string_view kExtensions[] = {
    ".cc", ".hh", ".cpp", ".hpp", ".h", ".cxx", ".hxx",
};

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    for (const std::string_view e : kExtensions)
        if (ext == e)
            return true;
    return false;
}

/** Directories the walker never descends into. */
bool
isSkippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name.empty() || name.front() == '.' ||
           name == "build" || name == "_deps" ||
           name.rfind("build-", 0) == 0;
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.column != b.column)
                      return a.column < b.column;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

/**
 * Validate pragmas (appending `bad-pragma` findings) and drop
 * findings a valid pragma covers. A pragma covers its own line and
 * the line directly below, for the named rules only.
 */
void
applyPragmas(const std::string &path, const LexedFile &lexed,
             std::vector<Finding> &found, LintResult &result)
{
    struct Suppression
    {
        int line;
        std::string rule;
    };
    std::vector<Suppression> active;

    for (const Pragma &pragma : lexed.pragmas) {
        if (pragma.malformed) {
            Finding f;
            f.file = path;
            f.line = pragma.line;
            f.column = 1;
            f.rule = "bad-pragma";
            f.severity = Severity::Error;
            f.message = pragma.error;
            result.findings.push_back(std::move(f));
            continue;
        }
        for (const std::string &rule : pragma.rules) {
            if (!isRuleName(rule)) {
                Finding f;
                f.file = path;
                f.line = pragma.line;
                f.column = 1;
                f.rule = "bad-pragma";
                f.severity = Severity::Error;
                f.message =
                    "allow() names unknown rule '" + rule + "'";
                result.findings.push_back(std::move(f));
                continue;
            }
            active.push_back({pragma.line, rule});
        }
    }

    for (Finding &f : found) {
        bool suppressed = false;
        for (const Suppression &s : active)
            if (f.rule == s.rule &&
                (f.line == s.line || f.line == s.line + 1)) {
                suppressed = true;
                break;
            }
        if (suppressed)
            ++result.suppressedCount;
        else
            result.findings.push_back(std::move(f));
    }
}

void
lintInto(const std::string &path, std::string_view content,
         LintResult &result)
{
    const LexedFile lexed = lex(content);
    std::vector<Finding> found;
    for (const auto &rule : allRules())
        if (rule->appliesTo(path))
            rule->check(path, lexed, found);
    applyPragmas(path, lexed, found, result);
    ++result.filesScanned;
}

} // namespace

bool
LintResult::hasError() const
{
    for (const Finding &f : findings)
        if (f.severity == Severity::Error)
            return true;
    return false;
}

LintResult
lintSource(const std::string &path, std::string_view content)
{
    LintResult result;
    lintInto(path, content, result);
    sortFindings(result.findings);
    return result;
}

LintResult
lintPaths(const std::vector<std::string> &paths,
          std::vector<std::string> &errors)
{
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        const fs::file_status st = fs::status(p, ec);
        if (ec) {
            errors.push_back(p + ": " + ec.message());
            continue;
        }
        if (fs::is_regular_file(st)) {
            files.push_back(fs::path(p).generic_string());
            continue;
        }
        if (!fs::is_directory(st)) {
            errors.push_back(p + ": not a file or directory");
            continue;
        }
        fs::recursive_directory_iterator it(p, ec), end;
        if (ec) {
            errors.push_back(p + ": " + ec.message());
            continue;
        }
        for (; it != end; it.increment(ec)) {
            if (ec) {
                errors.push_back(p + ": " + ec.message());
                break;
            }
            if (it->is_directory()) {
                if (isSkippedDir(it->path()))
                    it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && isSourceFile(it->path()))
                files.push_back(it->path().generic_string());
        }
    }

    // Lexicographic order, never enumeration order: reports must be
    // byte-identical across filesystems and repeated runs.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());

    LintResult result;
    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            errors.push_back(file + ": cannot open");
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string content = buf.str();
        lintInto(file, content, result);
    }
    sortFindings(result.findings);
    return result;
}

std::string
renderText(const LintResult &result)
{
    std::ostringstream out;
    std::size_t nerror = 0;
    std::size_t nwarning = 0;
    for (const Finding &f : result.findings) {
        out << f.file << ':' << f.line << ": " << f.rule << ": "
            << f.message << '\n';
        if (f.severity == Severity::Error)
            ++nerror;
        else
            ++nwarning;
    }
    out << "netchar-lint: " << result.findings.size()
        << " finding(s) (" << nerror << " error(s), " << nwarning
        << " warning(s)), " << result.suppressedCount
        << " suppressed, " << result.filesScanned
        << " file(s) scanned\n";
    return out.str();
}

std::string
renderJson(const LintResult &result)
{
    std::ostringstream out;
    std::size_t nerror = 0;
    std::size_t nwarning = 0;
    for (const Finding &f : result.findings) {
        if (f.severity == Severity::Error)
            ++nerror;
        else
            ++nwarning;
    }
    out << "{\n  \"version\": 1,\n  \"filesScanned\": "
        << result.filesScanned
        << ",\n  \"suppressed\": " << result.suppressedCount
        << ",\n  \"counts\": {\"error\": " << nerror
        << ", \"warning\": " << nwarning
        << "},\n  \"findings\": [";
    bool first = true;
    for (const Finding &f : result.findings) {
        out << (first ? "\n" : ",\n")
            << "    {\"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line
            << ", \"column\": " << f.column << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"severity\": \""
            << severityName(f.severity) << "\", \"message\": \""
            << jsonEscape(f.message) << "\"}";
        first = false;
    }
    out << (first ? "]\n}\n" : "\n  ]\n}\n");
    return out.str();
}

std::string
listRulesText()
{
    std::ostringstream out;
    for (const auto &rule : allRules())
        out << rule->name() << " (" << severityName(rule->severity())
            << "): " << rule->summary() << '\n';
    out << "bad-pragma (error): reserved - a netchar-lint pragma "
           "that is malformed, lacks a reason, or names an "
           "unknown rule\n";
    return out.str();
}

} // namespace netchar::lint
