#include "lint/lint.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/concurrency.hh"
#include "lint/parser.hh"
#include "lint/taint.hh"
#include "stats/textio.hh"

namespace netchar::lint
{

namespace
{

namespace fs = std::filesystem;

/** Extensions the walker treats as C++ sources. */
constexpr std::string_view kExtensions[] = {
    ".cc", ".hh", ".cpp", ".hpp", ".h", ".cxx", ".hxx",
};

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    for (const std::string_view e : kExtensions)
        if (ext == e)
            return true;
    return false;
}

/** Directories the walker never descends into. */
bool
isSkippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name.empty() || name.front() == '.' ||
           name == "build" || name == "_deps" ||
           name.rfind("build-", 0) == 0;
}

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Path-wise ordering of flow hops, the final sort tie-break: two
 *  flow findings can agree on everything up to the message (same
 *  sink, same rule, same hop count) yet trace distinct paths. */
bool
pathLess(const std::vector<FlowHop> &a,
         const std::vector<FlowHop> &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i].file != b[i].file)
            return a[i].file < b[i].file;
        if (a[i].line != b[i].line)
            return a[i].line < b[i].line;
        if (a[i].column != b[i].column)
            return a[i].column < b[i].column;
        if (a[i].note != b[i].note)
            return a[i].note < b[i].note;
    }
    return a.size() < b.size();
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.column != b.column)
                      return a.column < b.column;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  if (a.message != b.message)
                      return a.message < b.message;
                  return pathLess(a.path, b.path);
              });
}

/**
 * Validate pragmas (appending `bad-pragma` findings) and drop
 * token findings a valid pragma covers. A pragma covers its own
 * line and the line directly below, for the named rules only.
 * allow-flow() pragmas are validated here but suppress nothing at
 * the token layer — the taint pass consumes them as sanitizers.
 */
void
applyPragmas(const std::string &path, const LexedFile &lexed,
             std::vector<Finding> &found, FileUnit &unit)
{
    struct Suppression
    {
        int line;
        int endLine;
        std::string rule;
    };
    std::vector<Suppression> active;

    for (const Pragma &pragma : lexed.pragmas) {
        if (pragma.malformed) {
            Finding f;
            f.file = path;
            f.line = pragma.line;
            f.column = 1;
            f.rule = "bad-pragma";
            f.severity = Severity::Error;
            f.message = pragma.error;
            unit.findings.push_back(std::move(f));
            continue;
        }
        for (const std::string &rule : pragma.rules) {
            if (pragma.flow) {
                if (!isFlowRuleName(rule)) {
                    Finding f;
                    f.file = path;
                    f.line = pragma.line;
                    f.column = 1;
                    f.rule = "bad-pragma";
                    f.severity = Severity::Error;
                    f.message = "allow-flow() names unknown flow "
                                "rule '" +
                                rule + "'";
                    unit.findings.push_back(std::move(f));
                }
                continue;
            }
            if (!isRuleName(rule) &&
                !isConcurrencyRuleName(rule)) {
                Finding f;
                f.file = path;
                f.line = pragma.line;
                f.column = 1;
                f.rule = "bad-pragma";
                f.severity = Severity::Error;
                f.message =
                    "allow() names unknown rule '" + rule + "'";
                unit.findings.push_back(std::move(f));
                continue;
            }
            active.push_back({pragma.line, pragma.endLine, rule});
        }
    }

    for (Finding &f : found) {
        bool suppressed = false;
        for (const Suppression &s : active)
            if (f.rule == s.rule && f.line >= s.line &&
                f.line <= s.endLine + 1) {
                suppressed = true;
                break;
            }
        if (suppressed)
            ++unit.suppressed;
        else
            unit.findings.push_back(std::move(f));
    }
}

} // namespace

bool
LintResult::hasError() const
{
    for (const Finding &f : findings)
        if (f.severity == Severity::Error)
            return true;
    return false;
}

FileUnit
analyzeFileUnit(const std::string &path, std::string_view content)
{
    using clock = std::chrono::steady_clock;
    FileUnit unit;
    const clock::time_point t0 = clock::now();
    LexedFile lexed = lex(content);
    const clock::time_point t1 = clock::now();
    std::vector<Finding> found;
    for (const auto &rule : allRules())
        if (rule->appliesTo(path))
            rule->check(path, lexed, found);
    applyPragmas(path, lexed, found, unit);
    const clock::time_point t2 = clock::now();
    unit.model = parseFile(path, std::move(lexed));
    const clock::time_point t3 = clock::now();
    unit.lexSeconds = secondsBetween(t0, t1);
    unit.rulesSeconds = secondsBetween(t1, t2);
    unit.parseSeconds = secondsBetween(t2, t3);
    return unit;
}

LintResult
assembleUnits(std::vector<FileUnit> units, const LintOptions &opts,
              AssembleTimes *times)
{
    using clock = std::chrono::steady_clock;
    LintResult result;
    result.filesScanned = units.size();
    for (FileUnit &unit : units) {
        for (Finding &f : unit.findings)
            result.findings.push_back(std::move(f));
        result.suppressedCount += unit.suppressed;
    }

    const bool crossFile = opts.taint || opts.concurrency;
    if (crossFile) {
        std::vector<FileModel> models;
        models.reserve(units.size());
        for (FileUnit &unit : units)
            models.push_back(std::move(unit.model));
        const clock::time_point t0 = clock::now();
        // One call graph and one summary set feed both cross-file
        // passes; their statistics surface in the schema-v4 report
        // either way.
        const CallGraph graph(models);
        const SummarySet sums = computeSummaries(models, graph);
        result.callSites = graph.stats().callSites;
        result.unresolvedCalls = graph.stats().unresolvedCalls;
        result.summaries = sums.stats();
        if (opts.taint) {
            TaintAnalysis taint = analyzeTaint(models, graph, sums);
            for (Finding &f : taint.flows)
                result.findings.push_back(std::move(f));
            result.suppressedCount += taint.suppressed;
        }
        if (opts.concurrency) {
            ConcurrencyAnalysis conc =
                analyzeConcurrency(models, graph, sums);
            for (Finding &f : conc.findings)
                result.findings.push_back(std::move(f));
            result.suppressedCount += conc.suppressed;
            result.escapedFunctions = conc.escapedFunctions;
        }
        if (times != nullptr)
            times->summarySeconds +=
                secondsBetween(t0, clock::now());
    }

    sortFindings(result.findings);
    return result;
}

LintResult
lintSource(const std::string &path, std::string_view content)
{
    LintOptions opts;
    opts.taint = false;
    opts.concurrency = false;
    return lintSources({{path, std::string(content)}}, opts);
}

LintResult
lintSources(std::vector<SourceBuffer> sources,
            const LintOptions &opts)
{
    // Sorted-path order, so the taint worklist (and through it the
    // report bytes) never depends on the order the caller found
    // the files in.
    std::sort(sources.begin(), sources.end(),
              [](const SourceBuffer &a, const SourceBuffer &b) {
                  return a.path < b.path;
              });

    std::vector<FileUnit> units;
    units.reserve(sources.size());
    for (const SourceBuffer &src : sources)
        units.push_back(analyzeFileUnit(src.path, src.content));
    return assembleUnits(std::move(units), opts);
}

std::vector<std::string>
discoverFiles(const std::vector<std::string> &paths,
              std::vector<std::string> &errors)
{
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        const fs::file_status st = fs::status(p, ec);
        if (ec) {
            errors.push_back(p + ": " + ec.message());
            continue;
        }
        if (fs::is_regular_file(st)) {
            files.push_back(
                fs::path(p).lexically_normal().generic_string());
            continue;
        }
        if (!fs::is_directory(st)) {
            errors.push_back(p + ": not a file or directory");
            continue;
        }
        fs::recursive_directory_iterator it(p, ec), end;
        if (ec) {
            errors.push_back(p + ": " + ec.message());
            continue;
        }
        for (; it != end; it.increment(ec)) {
            if (ec) {
                errors.push_back(p + ": " + ec.message());
                break;
            }
            if (it->is_directory()) {
                if (isSkippedDir(it->path()))
                    it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && isSourceFile(it->path()))
                files.push_back(it->path()
                                    .lexically_normal()
                                    .generic_string());
        }
    }

    // Lexicographic order, never enumeration order: reports must be
    // byte-identical across filesystems, repeated runs, and
    // repeated or overlapping path arguments.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());
    return files;
}

LintResult
lintPaths(const std::vector<std::string> &paths,
          std::vector<std::string> &errors, const LintOptions &opts)
{
    const std::vector<std::string> files =
        discoverFiles(paths, errors);
    std::vector<SourceBuffer> sources;
    sources.reserve(files.size());
    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            errors.push_back(file + ": cannot open");
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        sources.push_back({file, buf.str()});
    }
    return lintSources(std::move(sources), opts);
}

std::string
renderText(const LintResult &result)
{
    std::ostringstream out;
    std::size_t nerror = 0;
    std::size_t nwarning = 0;
    for (const Finding &f : result.findings) {
        out << f.file << ':' << f.line << ": " << f.rule << ": "
            << f.message << '\n';
        for (std::size_t i = 0; i < f.path.size(); ++i) {
            const FlowHop &hop = f.path[i];
            out << "    #" << i + 1 << ' ' << hop.file << ':'
                << hop.line << ':' << hop.column << ": " << hop.note
                << '\n';
        }
        if (f.severity == Severity::Error)
            ++nerror;
        else
            ++nwarning;
    }
    out << "netchar-lint: " << result.findings.size()
        << " finding(s) (" << nerror << " error(s), " << nwarning
        << " warning(s)), " << result.suppressedCount
        << " suppressed, " << result.filesScanned
        << " file(s) scanned\n";
    return out.str();
}

std::string
renderJson(const LintResult &result, const LintStats *stats)
{
    std::ostringstream out;
    std::size_t nerror = 0;
    std::size_t nwarning = 0;
    for (const Finding &f : result.findings) {
        if (f.severity == Severity::Error)
            ++nerror;
        else
            ++nwarning;
    }
    out << "{\n  \"version\": 4,\n  \"filesScanned\": "
        << result.filesScanned
        << ",\n  \"suppressed\": " << result.suppressedCount
        << ",\n  \"counts\": {\"error\": " << nerror
        << ", \"warning\": " << nwarning
        << "},\n  \"callGraph\": {\"callSites\": "
        << result.callSites
        << ", \"unresolvedCalls\": " << result.unresolvedCalls
        << ", \"escapedFunctions\": " << result.escapedFunctions
        << "},\n  \"summaries\": {\"functions\": "
        << result.summaries.functions
        << ", \"sccs\": " << result.summaries.sccs
        << ", \"largestScc\": " << result.summaries.largestScc
        << ", \"fixpointPasses\": "
        << result.summaries.fixpointPasses
        << ", \"returnTaints\": " << result.summaries.returnTaints
        << ", \"paramReturnFlows\": "
        << result.summaries.paramReturnFlows
        << ", \"paramSinkFlows\": "
        << result.summaries.paramSinkFlows
        << ", \"lockEffects\": " << result.summaries.lockEffects
        << "}";
    if (stats != nullptr)
        out << ",\n  \"stats\": {\"lexSeconds\": "
            << stats->lexSeconds
            << ", \"parseSeconds\": " << stats->parseSeconds
            << ", \"rulesSeconds\": " << stats->rulesSeconds
            << ", \"summarySeconds\": " << stats->summarySeconds
            << ", \"filesAnalyzed\": " << stats->filesAnalyzed
            << ", \"cacheHits\": " << stats->cacheHits
            << ", \"cacheMisses\": " << stats->cacheMisses
            << ", \"cacheInvalidations\": "
            << stats->cacheInvalidations
            << ", \"reportCacheHits\": " << stats->reportCacheHits
            << "}";
    out << ",\n  \"findings\": [";
    bool first = true;
    for (const Finding &f : result.findings) {
        out << (first ? "\n" : ",\n")
            << "    {\"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line
            << ", \"column\": " << f.column << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"severity\": \""
            << severityName(f.severity) << "\", \"message\": \""
            << jsonEscape(f.message) << "\"}";
        first = false;
    }
    out << (first ? "]" : "\n  ]") << ",\n  \"flows\": [";
    first = true;
    for (const Finding &f : result.findings) {
        if (f.path.empty())
            continue;
        out << (first ? "\n" : ",\n")
            << "    {\"rule\": \"" << jsonEscape(f.rule)
            << "\", \"sinkFile\": \"" << jsonEscape(f.file)
            << "\", \"sinkLine\": " << f.line << ", \"path\": [";
        bool firstHop = true;
        for (const FlowHop &hop : f.path) {
            out << (firstHop ? "\n" : ",\n")
                << "      {\"file\": \"" << jsonEscape(hop.file)
                << "\", \"line\": " << hop.line
                << ", \"column\": " << hop.column
                << ", \"note\": \"" << jsonEscape(hop.note)
                << "\"}";
            firstHop = false;
        }
        out << (firstHop ? "]}" : "\n    ]}");
        first = false;
    }
    out << (first ? "]" : "\n  ]") << ",\n  \"locksets\": [";
    first = true;
    for (const Finding &f : result.findings) {
        if (!isConcurrencyRuleName(f.rule))
            continue;
        out << (first ? "\n" : ",\n")
            << "    {\"rule\": \"" << jsonEscape(f.rule)
            << "\", \"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"function\": \""
            << jsonEscape(f.function) << "\", \"held\": [";
        bool firstHeld = true;
        for (const std::string &r : f.lockset) {
            out << (firstHeld ? "" : ", ") << '"' << jsonEscape(r)
                << '"';
            firstHeld = false;
        }
        out << "]}";
        first = false;
    }
    out << (first ? "]\n}\n" : "\n  ]\n}\n");
    return out.str();
}

std::string
renderStatsText(const LintStats &stats)
{
    std::ostringstream out;
    out << "netchar-lint stats:\n"
        << "  lex       " << stats.lexSeconds << "s\n"
        << "  parse     " << stats.parseSeconds << "s\n"
        << "  rules     " << stats.rulesSeconds << "s\n"
        << "  summaries " << stats.summarySeconds << "s\n"
        << "  files analyzed: " << stats.filesAnalyzed << '\n'
        << "  cache: " << stats.cacheHits << " hit(s), "
        << stats.cacheMisses << " miss(es), "
        << stats.cacheInvalidations << " invalidation(s), "
        << stats.reportCacheHits << " report hit(s)\n";
    return out.str();
}

std::string
listRulesText()
{
    std::ostringstream out;
    for (const auto &rule : allRules())
        out << rule->name() << " (" << severityName(rule->severity())
            << "): " << rule->summary() << '\n';
    out << "bad-pragma (error): reserved - a netchar-lint pragma "
           "that is malformed, lacks a reason, or names an "
           "unknown rule\n";
    for (const std::string_view fr : flowRuleNames())
        out << fr << " (error): " << flowRuleSummary(fr) << '\n';
    for (const std::string_view cr : concurrencyRuleNames())
        out << cr << " ("
            << severityName(concurrencyRuleSeverity(cr))
            << "): " << concurrencyRuleSummary(cr) << '\n';
    return out.str();
}

} // namespace netchar::lint
