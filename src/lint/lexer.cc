#include "lint/lexer.hh"

#include <array>
#include <cctype>

namespace netchar::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

/**
 * Multi-character punctuators, longest first so maximal munch works
 * by scanning the table in order. Only `::` and `...` matter to the
 * rules; the rest keep the stream faithful (so `->` is one token,
 * not a `-` the rules might misread).
 */
constexpr std::array<std::string_view, 22> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=",
    "/=",  "%=",  "++",  "--",
};

/** Cursor over the source with 1-based line/column tracking. */
struct Cursor
{
    std::string_view src;
    std::size_t pos = 0;
    int line = 1;
    int column = 1;

    bool done() const { return pos >= src.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos + ahead < src.size() ? src[pos + ahead] : '\0';
    }
    bool startsWith(std::string_view s) const
    {
        return src.compare(pos, s.size(), s) == 0;
    }
    void advance()
    {
        if (src[pos] == '\n') {
            ++line;
            column = 1;
        } else {
            ++column;
        }
        ++pos;
    }
    void advance(std::size_t n)
    {
        while (n-- > 0 && !done())
            advance();
    }
};

/** Trim ASCII whitespace from both ends. */
std::string_view
trim(std::string_view s)
{
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

/**
 * Parse the body of a comment that contains the pragma marker. The
 * grammar is strict on purpose — a pragma that silences a rule must
 * name the rule and carry a human reason, or it is itself a finding.
 */
Pragma
parsePragma(std::string_view comment, int line, int endLine)
{
    Pragma p;
    p.line = line;
    p.endLine = endLine;

    const std::string_view marker = "netchar-lint:";
    const auto at = comment.find(marker);
    std::string_view rest = trim(comment.substr(at + marker.size()));

    const std::string_view flowVerb = "allow-flow(";
    const std::string_view verb = "allow(";
    if (rest.compare(0, flowVerb.size(), flowVerb) == 0) {
        p.flow = true;
        rest.remove_prefix(flowVerb.size());
    } else if (rest.compare(0, verb.size(), verb) == 0) {
        rest.remove_prefix(verb.size());
    } else {
        p.malformed = true;
        p.error = "expected 'allow(<rule>) -- <reason>' or "
                  "'allow-flow(<rule>) -- <reason>' after "
                  "'netchar-lint:'";
        return p;
    }
    const auto close = rest.find(')');
    if (close == std::string_view::npos) {
        p.malformed = true;
        p.error = "unterminated allow(...) rule list";
        return p;
    }
    std::string_view list = rest.substr(0, close);
    rest = trim(rest.substr(close + 1));

    while (!list.empty()) {
        const auto comma = list.find(',');
        const std::string_view name = trim(list.substr(0, comma));
        if (name.empty()) {
            p.malformed = true;
            p.error = "empty rule name in allow(...)";
            return p;
        }
        p.rules.emplace_back(name);
        if (comma == std::string_view::npos)
            break;
        list.remove_prefix(comma + 1);
    }
    if (p.rules.empty()) {
        p.malformed = true;
        p.error = "allow(...) names no rule";
        return p;
    }

    if (rest.compare(0, 2, "--") != 0) {
        p.malformed = true;
        p.error = "missing '-- <reason>' after allow(...)";
        return p;
    }
    rest = trim(rest.substr(2));
    // Block comments may carry their terminator into the text.
    if (rest.size() >= 2 && rest.substr(rest.size() - 2) == "*/")
        rest = trim(rest.substr(0, rest.size() - 2));
    if (rest.empty()) {
        p.malformed = true;
        p.error = "suppression reason after '--' is empty";
        return p;
    }
    p.reason = std::string(rest);
    return p;
}

/** Record `comment` as a pragma if it contains the marker. A spliced
 *  comment (backslash-newline continuations) is flattened first so
 *  the pragma grammar never sees the line break. */
void
harvestPragma(LexedFile &out, std::string_view comment, int line,
              int endLine)
{
    if (comment.find("netchar-lint:") == std::string_view::npos)
        return;
    if (comment.find('\\') == std::string_view::npos) {
        out.pragmas.push_back(parsePragma(comment, line, endLine));
        return;
    }
    std::string flat;
    flat.reserve(comment.size());
    for (std::size_t i = 0; i < comment.size(); ++i) {
        if (comment[i] == '\\') {
            std::size_t j = i + 1;
            if (j < comment.size() && comment[j] == '\r')
                ++j;
            if (j < comment.size() && comment[j] == '\n') {
                flat += ' ';
                i = j;
                continue;
            }
        }
        flat += comment[i];
    }
    out.pragmas.push_back(parsePragma(flat, line, endLine));
}

/** True when the cursor sits on a backslash-newline line splice. */
bool
atSplice(const Cursor &c)
{
    if (c.peek() != '\\')
        return false;
    return c.peek(1) == '\n' ||
           (c.peek(1) == '\r' && c.peek(2) == '\n');
}

/** Consume one backslash-newline (or backslash-CR-LF) splice. */
void
eatSplice(Cursor &c)
{
    c.advance(c.peek(1) == '\r' ? 3u : 2u);
}

} // namespace

LexedFile
lex(std::string_view source)
{
    LexedFile out;
    Cursor c{source};

    while (!c.done()) {
        const char ch = c.peek();

        if (std::isspace(static_cast<unsigned char>(ch))) {
            c.advance();
            continue;
        }

        // Translation phase 2: a backslash-newline between tokens
        // (preprocessor continuations in particular) splices lines
        // and must not surface as a stray `\` punctuator.
        if (atSplice(c)) {
            eatSplice(c);
            continue;
        }

        // Line comment (also harvests pragmas). A backslash-newline
        // splice extends the comment onto the next physical line —
        // the standard behaviour, and the one that keeps a spliced
        // pragma whole.
        if (ch == '/' && c.peek(1) == '/') {
            const int line = c.line;
            const std::size_t start = c.pos;
            while (!c.done()) {
                if (atSplice(c)) {
                    eatSplice(c);
                    continue;
                }
                if (c.peek() == '\n')
                    break;
                c.advance();
            }
            harvestPragma(out, source.substr(start, c.pos - start),
                          line, c.line);
            continue;
        }

        // Block comment.
        if (ch == '/' && c.peek(1) == '*') {
            const int line = c.line;
            const std::size_t start = c.pos;
            c.advance(2);
            while (!c.done() && !c.startsWith("*/"))
                c.advance();
            c.advance(2);
            harvestPragma(out, source.substr(start, c.pos - start),
                          line, c.line);
            continue;
        }

        // Ordinary string or char literal (with escape handling).
        if (ch == '"' || ch == '\'') {
            const int line = c.line;
            const int column = c.column;
            const char quote = ch;
            c.advance();
            while (!c.done() && c.peek() != quote) {
                if (c.peek() == '\\')
                    c.advance();
                if (!c.done())
                    c.advance();
            }
            c.advance(1); // closing quote (bounds-checked at EOF)
            out.tokens.push_back({quote == '"' ? TokenKind::String
                                               : TokenKind::CharLit,
                                  quote == '"' ? "<string>"
                                               : "<char>",
                                  line, column});
            continue;
        }

        // Identifier. Ordinary string-literal prefixes (u8"", L"",
        // ...) stay plain identifiers followed by a String token,
        // which is faithful enough for the rules — but raw-string
        // prefixes (R, u8R, uR, UR, LR) must switch to the raw
        // grammar, where the content is delimiter-terminated and
        // escapes are inert.
        if (isIdentStart(ch)) {
            const int line = c.line;
            const int column = c.column;
            std::string text;
            while (!c.done()) {
                // A splice inside an identifier joins the halves
                // into one name (translation phase 2 runs before
                // tokenization).
                if (atSplice(c)) {
                    eatSplice(c);
                    continue;
                }
                if (!isIdentChar(c.peek()))
                    break;
                text += c.peek();
                c.advance();
            }
            if (c.peek() == '"' &&
                (text == "R" || text == "u8R" || text == "uR" ||
                 text == "UR" || text == "LR")) {
                // Raw string literal: (prefix)R"delim( ... )delim".
                c.advance(); // opening quote
                std::string delim;
                while (!c.done() && c.peek() != '(' &&
                       c.peek() != '"' && c.peek() != '\n') {
                    delim += c.peek();
                    c.advance();
                }
                c.advance(1); // '(' (bounds-checked: EOF is legal)
                const std::string close = ")" + delim + "\"";
                while (!c.done() && !c.startsWith(close))
                    c.advance();
                c.advance(close.size());
                out.tokens.push_back(
                    {TokenKind::String, "<raw-string>", line,
                     column});
                continue;
            }
            out.tokens.push_back(
                {TokenKind::Identifier, std::move(text), line,
                 column});
            continue;
        }

        // pp-number: digits plus '.', digit separators and
        // exponent signs. `1.5e-3` and `0x1fp+2` are one token.
        if (isDigit(ch) ||
            (ch == '.' && isDigit(c.peek(1)))) {
            const int line = c.line;
            const int column = c.column;
            std::string text;
            while (!c.done()) {
                const char d = c.peek();
                if (isIdentChar(d) || d == '.') {
                    text += d;
                    c.advance();
                    continue;
                }
                // C++14 digit separator: a `'` continues the
                // pp-number only when followed by an alphanumeric
                // (`1'000'000`, `0xDEAD'BEEF`). A bare `'` after a
                // digit opens a character literal instead, and
                // swallowing it would desync every later token —
                // and with them pragma line attribution.
                if (d == '\'' && (isDigit(c.peek(1)) ||
                                  isIdentChar(c.peek(1)))) {
                    text += d;
                    c.advance();
                    continue;
                }
                if ((d == '+' || d == '-') && !text.empty()) {
                    const char prev = text.back();
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        text += d;
                        c.advance();
                        continue;
                    }
                }
                break;
            }
            out.tokens.push_back(
                {TokenKind::Number, std::move(text), line, column});
            continue;
        }

        // Punctuation, longest munch over the multi-char table.
        {
            const int line = c.line;
            const int column = c.column;
            std::string text;
            for (const std::string_view p : kPuncts) {
                if (c.startsWith(p)) {
                    text = std::string(p);
                    break;
                }
            }
            if (text.empty())
                text = std::string(1, ch);
            c.advance(text.size());
            out.tokens.push_back(
                {TokenKind::Punct, std::move(text), line, column});
        }
    }

    return out;
}

} // namespace netchar::lint
