/**
 * @file
 * A declaration-level recognizer over the netchar-lint token stream.
 *
 * This is deliberately not a C++ parser. The taint pass (taint.hh)
 * only needs to know, per function: its name and parameters, the
 * assignments/declarations inside its body (target name + RHS token
 * range), the calls it makes (callee + per-argument token ranges)
 * and what it returns. A recognizer tuned to this codebase's idiom —
 * free functions and `Class::method` definitions with brace bodies,
 * `target = expr;` statements, `callee(arg, ...)` calls — recovers
 * all of that from the token stream without a grammar. Constructs it
 * does not understand are simply skipped: the analysis is best-
 * effort by design, and the token rules (rules.hh) remain the
 * call-site backstop.
 *
 * Known approximations, on purpose:
 *  - namespace-scope initializers are not attributed to a function;
 *  - lambda bodies are attributed to the enclosing function (which
 *    matches by-reference capture, the repo's idiom);
 *  - `Type name(args);` ctor-style declarations are treated as
 *    calls, not declarations (the `=` forms carry the taint).
 */

#ifndef NETCHAR_LINT_PARSER_HH
#define NETCHAR_LINT_PARSER_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lint/lexer.hh"

namespace netchar::lint
{

/** Half-open token-index range into a LexedFile's token vector. */
using TokenRange = std::pair<std::size_t, std::size_t>;

/** One call expression found inside a statement. */
struct CallSite
{
    std::string callee; ///< unqualified name (last :: component)
    /** The written `::`-qualified spelling (`ns::f` for `ns::f()`),
     *  equal to `callee` for bare calls, and empty for member calls
     *  (`obj.method()` — the receiver type is unknown here). */
    std::string qualified;
    int line = 0;
    int column = 0;
    std::size_t begin = 0;       ///< token index of the callee
    std::size_t end = 0;         ///< one past the closing ')'
    std::vector<TokenRange> args; ///< per-argument token ranges
};

/** One recovered statement of a function body. */
struct Statement
{
    enum class Kind
    {
        Decl,   ///< `Type name = expr;` / `using N = T;`
        Assign, ///< `name = expr;`, `obj.field += expr;`
        Return, ///< `return expr;`
        Expr,   ///< anything else (calls still recovered)
    };

    Kind kind = Kind::Expr;
    std::string target; ///< assigned/declared name (Decl/Assign)
    /** Base object of a member assignment (`opts` in
     *  `opts.field = x`); empty otherwise. */
    std::string base;
    int line = 0;   ///< first token's line (pragma anchor)
    int column = 0;
    TokenRange expr{0, 0}; ///< RHS / returned expression tokens
    std::vector<CallSite> calls; ///< calls anywhere in the statement
};

/** One recovered function (or method) definition. */
struct FunctionModel
{
    std::string name; ///< unqualified (last :: component)
    /** The written qualified name (`Executor::forEach` for an
     *  out-of-class definition), equal to `name` when unqualified. */
    std::string qualified;
    /** Last identifier of the return type when it is a plain word
     *  (`bool`, `RunResult`); empty for pointers/templates/ctors.
     *  Used by the concurrency pass to spot error-carrying calls. */
    std::string retType;
    int line = 0;
    int column = 0;
    /** Token indices of the body braces: `{` at bodyBegin, matching
     *  `}` at bodyEnd. The CFG builder (cfg.hh) re-walks this range
     *  because stmts flattens control structure away. */
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;
    std::vector<std::string> params; ///< "" for unnamed parameters
    std::vector<Statement> stmts;
};

/** One parsed file: the token stream plus its recovered functions. */
struct FileModel
{
    std::string path;
    LexedFile lexed; ///< owns the tokens the ranges index into
    std::vector<FunctionModel> functions;
};

/** Recover the declaration-level model of one lexed file. */
FileModel parseFile(const std::string &path, LexedFile lexed);

} // namespace netchar::lint

#endif // NETCHAR_LINT_PARSER_HH
