#include "lint/callgraph.hh"

#include <algorithm>

namespace netchar::lint
{

CallGraph::CallGraph(const std::vector<FileModel> &files)
{
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const FileModel &file = files[fi];
        for (std::size_t gi = 0; gi < file.functions.size(); ++gi) {
            const FunctionModel &fn = file.functions[gi];
            defs_[fn.name].push_back({fi, gi});
            for (const Statement &st : fn.stmts)
                for (const CallSite &call : st.calls)
                    callers_[call.callee].push_back({fi, gi});
        }
    }
    // A function calling `f` twice is one caller edge.
    for (auto &[name, refs] : callers_) {
        std::sort(refs.begin(), refs.end());
        refs.erase(std::unique(refs.begin(), refs.end()),
                   refs.end());
    }
}

const std::vector<FunctionRef> &
CallGraph::definitionsOf(const std::string &name) const
{
    const auto it = defs_.find(name);
    return it == defs_.end() ? empty_ : it->second;
}

const std::vector<FunctionRef> &
CallGraph::callersOf(const std::string &name) const
{
    const auto it = callers_.find(name);
    return it == callers_.end() ? empty_ : it->second;
}

} // namespace netchar::lint
