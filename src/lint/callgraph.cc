#include "lint/callgraph.hh"

#include <algorithm>

namespace netchar::lint
{

bool
qualifiedSuffixMatches(const std::string &def,
                       const std::string &call)
{
    if (def == call)
        return true;
    // The suffix must be preceded by a full `::` separator, so any
    // shorter definition — including one exactly one character
    // longer than the call, where the old `<=` guard let the
    // separator position underflow — cannot match.
    if (def.size() < call.size() + 2)
        return false;
    return def.compare(def.size() - call.size(), call.size(),
                       call) == 0 &&
           def.compare(def.size() - call.size() - 2, 2, "::") == 0;
}

CallGraph::CallGraph(const std::vector<FileModel> &files)
{
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const FileModel &file = files[fi];
        for (std::size_t gi = 0; gi < file.functions.size(); ++gi) {
            const FunctionModel &fn = file.functions[gi];
            defs_[fn.name].push_back({fi, gi});
            defQualified_[fn.name].push_back(
                fn.qualified.empty() ? fn.name : fn.qualified);
        }
    }
    // Second pass, once every definition is known: caller edges and
    // the resolved/unresolved link statistics.
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const FileModel &file = files[fi];
        for (std::size_t gi = 0; gi < file.functions.size(); ++gi)
            for (const Statement &st : file.functions[gi].stmts)
                for (const CallSite &call : st.calls) {
                    callers_[call.callee].push_back({fi, gi});
                    ++stats_.callSites;
                    if (resolve(call).empty())
                        ++stats_.unresolvedCalls;
                }
    }
    // A function calling `f` twice is one caller edge.
    for (auto &[name, refs] : callers_) {
        std::sort(refs.begin(), refs.end());
        refs.erase(std::unique(refs.begin(), refs.end()),
                   refs.end());
    }
}

const std::vector<FunctionRef> &
CallGraph::definitionsOf(const std::string &name) const
{
    const auto it = defs_.find(name);
    return it == defs_.end() ? empty_ : it->second;
}

std::vector<FunctionRef>
CallGraph::resolve(const CallSite &call) const
{
    const auto it = defs_.find(call.callee);
    if (it == defs_.end())
        return {};
    const std::vector<FunctionRef> &all = it->second;
    if (call.qualified.empty() || call.qualified == call.callee)
        return all;
    const std::vector<std::string> &quals =
        defQualified_.at(call.callee);
    std::vector<FunctionRef> out;
    for (std::size_t i = 0; i < all.size(); ++i)
        if (qualifiedSuffixMatches(quals[i], call.qualified))
            out.push_back(all[i]);
    // Definitions written inside `namespace ns { ... }` carry no
    // `ns::` in their spelling, so a qualified call may match none
    // of them textually; keep the conservative bare-name link set
    // rather than dropping the edge.
    return out.empty() ? all : out;
}

const std::vector<FunctionRef> &
CallGraph::callersOf(const std::string &name) const
{
    const auto it = callers_.find(name);
    return it == callers_.end() ? empty_ : it->second;
}

} // namespace netchar::lint
