/**
 * @file
 * A small comment/string-aware C++ tokenizer for netchar-lint.
 *
 * This is deliberately not a C++ parser: the lint rules only need a
 * token stream in which comments, string literals (including raw
 * strings) and character literals can never be mistaken for code.
 * Everything else — identifiers, numbers, punctuation — is surfaced
 * with 1-based line/column positions so findings are clickable.
 *
 * The lexer is also where suppression pragmas are recognised: a
 * comment containing the marker `netchar-lint` followed by a colon,
 * then `allow(<rule>[,<rule>...]) -- <reason>` for token-rule
 * findings, or `allow-flow(<rule>[,<rule>...]) -- <reason>` to
 * sanitize a taint flow (see taint.hh). (The marker is not written
 * out literally here, or this header would carry pragmas.)
 *
 * A pragma comment suppresses matching findings on any line it
 * spans and on the line directly below its last line (so it works
 * both as a trailing comment and as a comment line — possibly
 * spliced or block-form over several lines — above the flagged
 * statement). The
 * reason after `--` is mandatory; a pragma without one is surfaced as
 * malformed and suppresses nothing.
 *
 * Translation-phase-2 line splices (backslash-newline) are honoured:
 * a spliced line comment keeps its pragma intact, and a spliced
 * preprocessor directive contributes its continuation tokens without
 * stray `\` punctuation in the stream.
 */

#ifndef NETCHAR_LINT_LEXER_HH
#define NETCHAR_LINT_LEXER_HH

#include <string>
#include <string_view>
#include <vector>

namespace netchar::lint
{

enum class TokenKind
{
    Identifier, ///< keywords are not distinguished from identifiers
    Number,     ///< pp-number: 0x1f, 1'000, 1.5e-3, ...
    String,     ///< "..." (any prefix), R"(...)" raw strings
    CharLit,    ///< '...'
    Punct,      ///< operators and punctuation, longest-munch
};

struct Token
{
    TokenKind kind = TokenKind::Punct;
    std::string text;
    int line = 0;   ///< 1-based
    int column = 0; ///< 1-based byte column
};

/** One parsed netchar-lint pragma comment. */
struct Pragma
{
    int line = 0; ///< line the comment starts on
    /** Line the comment ends on (== line unless the comment is
     *  spliced or a multi-line block comment). Coverage extends
     *  from `line` through `endLine + 1`. */
    int endLine = 0;
    std::vector<std::string> rules; ///< rule names inside allow(...)
    std::string reason;             ///< text after `--`
    /** True for `allow-flow(...)`: a taint sanitizer, not a token
     *  suppression (see taint.hh for the flow-rule namespace). */
    bool flow = false;
    bool malformed = false;
    std::string error; ///< why the pragma was rejected
};

/** Token stream plus any lint pragmas found in comments. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Pragma> pragmas;
};

/**
 * Tokenize one translation unit. Never throws on malformed input:
 * an unterminated comment or literal simply ends at end-of-file
 * (the real compiler is the syntax checker, not the linter).
 */
LexedFile lex(std::string_view source);

} // namespace netchar::lint

#endif // NETCHAR_LINT_LEXER_HH
