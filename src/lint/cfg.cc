#include "lint/cfg.hh"

#include <algorithm>
#include <string>

namespace netchar::lint
{

namespace
{

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

bool
isWord(const Token &t, std::string_view text)
{
    return t.kind == TokenKind::Identifier && t.text == text;
}

/** Index of the `)` matching the `(` at `open`, or `limit`. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open,
           std::size_t limit)
{
    int depth = 0;
    for (std::size_t j = open; j < limit; ++j) {
        if (isPunct(toks[j], "("))
            ++depth;
        else if (isPunct(toks[j], ")")) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return limit;
}

/** Index of the `}` matching the `{` at `open`, or `limit`. */
std::size_t
matchBrace(const std::vector<Token> &toks, std::size_t open,
           std::size_t limit)
{
    int depth = 0;
    for (std::size_t j = open; j < limit; ++j) {
        if (isPunct(toks[j], "{"))
            ++depth;
        else if (isPunct(toks[j], "}")) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return limit;
}

/**
 * Recursive-descent basic-block builder over one body token range.
 * `cur_` is the block under construction; `terminated_` means the
 * current path already edged away (return/break/continue), so the
 * next statement starts a fresh — possibly unreachable — block.
 */
class Builder
{
  public:
    Builder(const std::vector<Token> &toks, std::size_t bodyOpen,
            std::size_t bodyClose)
        : toks_(toks)
    {
        cfg_.blocks.resize(2); // entry, exit
        cur_ = Cfg::kEntry;
        parseSeq(bodyOpen + 1, bodyClose, nullptr, nullptr);
        if (!terminated_)
            edge(cur_, Cfg::kExit);
        finalize();
    }

    Cfg take() { return std::move(cfg_); }

  private:
    const std::vector<Token> &toks_;
    Cfg cfg_;
    std::size_t cur_ = 0;
    bool terminated_ = false;

    std::size_t newBlock()
    {
        cfg_.blocks.emplace_back();
        return cfg_.blocks.size() - 1;
    }

    void edge(std::size_t from, std::size_t to)
    {
        cfg_.blocks[from].succs.push_back(to);
    }

    void addStmt(std::size_t block, std::size_t begin,
                 std::size_t end)
    {
        if (begin >= end)
            return;
        CfgStmt s;
        s.begin = begin;
        s.end = end;
        s.line = toks_[begin].line;
        s.column = toks_[begin].column;
        cfg_.blocks[block].stmts.push_back(s);
    }

    /** Parse every statement in [i, end). */
    void parseSeq(std::size_t i, std::size_t end,
                  std::vector<std::size_t> *brks,
                  std::vector<std::size_t> *conts)
    {
        while (i < end) {
            if (terminated_) {
                cur_ = newBlock(); // dead code after return/break
                terminated_ = false;
            }
            i = parseOne(i, end, brks, conts);
        }
    }

    /** Parse one statement starting at `i`; return the index just
     *  past it. `brks`/`conts` collect blocks whose `break`/
     *  `continue` edges are patched once the target exists. */
    std::size_t parseOne(std::size_t i, std::size_t end,
                         std::vector<std::size_t> *brks,
                         std::vector<std::size_t> *conts)
    {
        const Token &t = toks_[i];

        if (isPunct(t, ";"))
            return i + 1;

        if (isPunct(t, "{")) {
            const std::size_t close = matchBrace(toks_, i, end);
            parseSeq(i + 1, close, brks, conts);
            return close + 1;
        }

        if (isWord(t, "if"))
            return parseIf(i, end, brks, conts);
        if (isWord(t, "while") || isWord(t, "for"))
            return parseLoop(i, end);
        if (isWord(t, "do"))
            return parseDoWhile(i, end);
        if (isWord(t, "switch"))
            return parseSwitch(i, end, conts);
        if (isWord(t, "try"))
            return parseTry(i, end, brks, conts);

        if (isWord(t, "return")) {
            const std::size_t semi = findSemi(i + 1, end);
            addStmt(cur_, i, semi);
            edge(cur_, Cfg::kExit);
            terminated_ = true;
            return semi + 1;
        }
        if (isWord(t, "break") || isWord(t, "continue")) {
            std::vector<std::size_t> *pending =
                t.text == "break" ? brks : conts;
            if (pending != nullptr) {
                addStmt(cur_, i, i + 1);
                pending->push_back(cur_);
                terminated_ = true;
            }
            const std::size_t semi = findSemi(i + 1, end);
            return semi + 1;
        }

        // Plain statement: everything up to the `;` at depth 0.
        const std::size_t semi = findSemi(i, end);
        addStmt(cur_, i, semi);
        return semi + 1;
    }

    /** First `;` at paren/bracket depth 0 from `i`, skipping brace
     *  groups in expression position (lambdas, brace-init) whole. */
    std::size_t findSemi(std::size_t i, std::size_t end) const
    {
        int depth = 0;
        while (i < end) {
            const Token &t = toks_[i];
            if (isPunct(t, "(") || isPunct(t, "["))
                ++depth;
            else if (isPunct(t, ")") || isPunct(t, "]"))
                --depth;
            else if (isPunct(t, "{")) {
                i = matchBrace(toks_, i, end);
                if (i >= end)
                    return end;
            } else if (depth <= 0 && isPunct(t, ";"))
                return i;
            ++i;
        }
        return end;
    }

    std::size_t parseIf(std::size_t i, std::size_t end,
                        std::vector<std::size_t> *brks,
                        std::vector<std::size_t> *conts)
    {
        const std::size_t close = matchParen(toks_, i + 1, end);
        addStmt(cur_, i, close + 1);
        const std::size_t condBlock = cur_;

        const std::size_t thenBlock = newBlock();
        edge(condBlock, thenBlock);
        cur_ = thenBlock;
        terminated_ = false;
        std::size_t j = parseOne(close + 1, end, brks, conts);
        const std::size_t thenEnd = cur_;
        const bool thenTerm = terminated_;

        if (j < end && isWord(toks_[j], "else")) {
            const std::size_t elseBlock = newBlock();
            edge(condBlock, elseBlock);
            cur_ = elseBlock;
            terminated_ = false;
            j = parseOne(j + 1, end, brks, conts);
            const std::size_t elseEnd = cur_;
            const bool elseTerm = terminated_;

            const std::size_t join = newBlock();
            if (!thenTerm)
                edge(thenEnd, join);
            if (!elseTerm)
                edge(elseEnd, join);
            cur_ = join;
            terminated_ = false;
            return j;
        }

        const std::size_t join = newBlock();
        edge(condBlock, join);
        if (!thenTerm)
            edge(thenEnd, join);
        cur_ = join;
        terminated_ = false;
        return j;
    }

    /** `while (cond) body` / `for (init; cond; step) body`: the
     *  whole header is one statement of the loop-head block;
     *  `continue` re-enters the head (for the `for` form this skips
     *  the step expression — the head statement contains it). */
    std::size_t parseLoop(std::size_t i, std::size_t end)
    {
        const std::size_t close = matchParen(toks_, i + 1, end);
        const std::size_t head = newBlock();
        if (!terminated_)
            edge(cur_, head);
        addStmt(head, i, close + 1);

        const std::size_t body = newBlock();
        edge(head, body);
        cur_ = body;
        terminated_ = false;
        std::vector<std::size_t> brks;
        std::vector<std::size_t> conts;
        const std::size_t j =
            parseOne(close + 1, end, &brks, &conts);
        for (const std::size_t c : conts)
            edge(c, head);
        if (!terminated_)
            edge(cur_, head); // back edge

        const std::size_t after = newBlock();
        edge(head, after);
        for (const std::size_t b : brks)
            edge(b, after);
        cur_ = after;
        terminated_ = false;
        return j;
    }

    std::size_t parseDoWhile(std::size_t i, std::size_t end)
    {
        const std::size_t body = newBlock();
        if (!terminated_)
            edge(cur_, body);
        cur_ = body;
        terminated_ = false;
        std::vector<std::size_t> brks;
        std::vector<std::size_t> conts;
        std::size_t j = parseOne(i + 1, end, &brks, &conts);

        const std::size_t cond = newBlock();
        if (!terminated_)
            edge(cur_, cond);
        for (const std::size_t c : conts)
            edge(c, cond);
        if (j < end && isWord(toks_[j], "while")) {
            const std::size_t close = matchParen(toks_, j + 1, end);
            addStmt(cond, j, close + 1);
            j = close + 1;
            if (j < end && isPunct(toks_[j], ";"))
                ++j;
        }
        edge(cond, body); // back edge: the body runs at least once

        const std::size_t after = newBlock();
        edge(cond, after);
        for (const std::size_t b : brks)
            edge(b, after);
        cur_ = after;
        terminated_ = false;
        return j;
    }

    std::size_t parseSwitch(std::size_t i, std::size_t end,
                            std::vector<std::size_t> *conts)
    {
        const std::size_t close = matchParen(toks_, i + 1, end);
        addStmt(cur_, i, close + 1);
        const std::size_t head = cur_;

        std::size_t j = close + 1;
        if (j >= end || !isPunct(toks_[j], "{")) {
            // Malformed / macro switch: treat as a plain statement.
            terminated_ = false;
            return findSemi(j, end) + 1;
        }
        const std::size_t bodyClose = matchBrace(toks_, j, end);

        std::vector<std::size_t> brks;
        bool hasDefault = false;
        std::size_t prevEnd = kNone;
        bool prevTerm = true;
        std::size_t pos = j + 1;
        while (pos < bodyClose) {
            if (isWord(toks_[pos], "case") ||
                isWord(toks_[pos], "default")) {
                hasDefault |= toks_[pos].text == "default";
                // Swallow the label through its `:`.
                while (pos < bodyClose && !isPunct(toks_[pos], ":"))
                    ++pos;
                ++pos;
                const std::size_t section = newBlock();
                edge(head, section);
                if (prevEnd != kNone && !prevTerm)
                    edge(prevEnd, section); // fallthrough
                cur_ = section;
                terminated_ = false;
                // Statements up to the next label or the end.
                while (pos < bodyClose &&
                       !isWord(toks_[pos], "case") &&
                       !isWord(toks_[pos], "default")) {
                    if (terminated_) {
                        cur_ = newBlock();
                        terminated_ = false;
                    }
                    pos = parseOne(pos, bodyClose, &brks, conts);
                }
                prevEnd = cur_;
                prevTerm = terminated_;
                continue;
            }
            // Statements before the first label never execute;
            // still parse them for deterministic block counts.
            pos = parseOne(pos, bodyClose, &brks, conts);
        }

        const std::size_t after = newBlock();
        if (!hasDefault)
            edge(head, after);
        if (prevEnd != kNone && !prevTerm)
            edge(prevEnd, after);
        for (const std::size_t b : brks)
            edge(b, after);
        cur_ = after;
        terminated_ = false;
        return bodyClose + 1;
    }

    /** `try { ... } catch (...) { ... }`: the try body is inlined;
     *  each handler is an optional branch from the block that
     *  entered the try, re-joining after the statement. */
    std::size_t parseTry(std::size_t i, std::size_t end,
                         std::vector<std::size_t> *brks,
                         std::vector<std::size_t> *conts)
    {
        const std::size_t entryBlock = cur_;
        std::size_t j = i + 1;
        if (j < end && isPunct(toks_[j], "{")) {
            const std::size_t close = matchBrace(toks_, j, end);
            parseSeq(j + 1, close, brks, conts);
            j = close + 1;
        }
        std::vector<std::size_t> joins;
        if (!terminated_)
            joins.push_back(cur_);

        while (j < end && isWord(toks_[j], "catch")) {
            const std::size_t close = matchParen(toks_, j + 1, end);
            const std::size_t handler = newBlock();
            edge(entryBlock, handler);
            cur_ = handler;
            terminated_ = false;
            j = close + 1;
            if (j < end)
                j = parseOne(j, end, brks, conts);
            if (!terminated_)
                joins.push_back(cur_);
        }

        const std::size_t after = newBlock();
        for (const std::size_t b : joins)
            edge(b, after);
        cur_ = after;
        terminated_ = false;
        return j;
    }

    void finalize()
    {
        for (BasicBlock &b : cfg_.blocks) {
            std::sort(b.succs.begin(), b.succs.end());
            b.succs.erase(
                std::unique(b.succs.begin(), b.succs.end()),
                b.succs.end());
        }
        // Reachability from the entry, in deterministic order.
        std::vector<std::size_t> work{Cfg::kEntry};
        cfg_.blocks[Cfg::kEntry].reachable = true;
        while (!work.empty()) {
            const std::size_t b = work.back();
            work.pop_back();
            for (const std::size_t s : cfg_.blocks[b].succs)
                if (!cfg_.blocks[s].reachable) {
                    cfg_.blocks[s].reachable = true;
                    work.push_back(s);
                }
        }
    }
};

} // namespace

std::size_t
Cfg::edgeCount() const
{
    std::size_t n = 0;
    for (const BasicBlock &b : blocks)
        n += b.succs.size();
    return n;
}

Cfg
buildCfg(const std::vector<Token> &tokens, std::size_t bodyOpen,
         std::size_t bodyClose)
{
    return Builder(tokens, bodyOpen, bodyClose).take();
}

Cfg
buildCfg(const FileModel &file, const FunctionModel &fn)
{
    return buildCfg(file.lexed.tokens, fn.bodyBegin, fn.bodyEnd);
}

} // namespace netchar::lint
