/**
 * @file
 * Incremental analysis cache for netchar-lint (--cache DIR).
 *
 * Two levels, both content-addressed with the shared stats/hash
 * helpers so keys are bit-stable across hosts and build modes:
 *
 *  unit level    one entry per source file, keyed by a hash of
 *                (cache version tag, path, file content). The entry
 *                holds the serialized FileUnit — the declaration
 *                model plus the pragma-filtered token findings — so
 *                a warm run skips lexing, token rules and parsing
 *                for every unchanged file and re-analyzes only
 *                changed files; the cross-file phase (summaries,
 *                taint, concurrency) then re-runs over the full
 *                model set, which safely covers every reverse
 *                call-graph dependent of a changed file.
 *  report level  one entry for the whole run, keyed by a hash of
 *                every (path, unit key) pair plus the analysis
 *                options. On a hit the complete LintResult is
 *                restored and no analysis runs at all — this is
 *                what makes a fully-warm run an order of magnitude
 *                cheaper than a cold one.
 *
 * The version tag folds in the serialization schema version and a
 * hash of the full rule list, so upgrading the linter (new rules,
 * changed summaries, changed JSON schema) invalidates every entry
 * at once: the VERSION file is compared on open and the cache is
 * wiped on mismatch. Corrupt or truncated entries parse as misses,
 * never as wrong results. The cache never changes report bytes —
 * cold and warm runs are byte-identical by construction, because
 * entries are keyed on everything the analysis depends on.
 *
 * Writes are tmp+rename, so a crash mid-store leaves either the
 * old entry or the new one, never a torn file (the same journaling
 * discipline as the serve-layer result cache).
 */

#ifndef NETCHAR_LINT_CACHE_HH
#define NETCHAR_LINT_CACHE_HH

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "lint/lint.hh"

namespace netchar::lint
{

/** The cache schema/version tag: serialization format version plus
 *  a content hash of the registered rule list. Any change to either
 *  wipes existing caches on first open. */
std::string lintCacheVersionTag();

/**
 * One on-disk cache directory. Open is cheap (reads VERSION and the
 * small index); all I/O failures degrade to cache misses — the
 * linter's output never depends on whether the cache is usable.
 */
class LintCache
{
  public:
    /** Opens (creating if needed) `dir`; wipes it first when its
     *  VERSION does not match `versionTag`. */
    LintCache(std::string dir, std::string versionTag);

    /** False when the directory could not be created or written;
     *  every load then misses and every store is a no-op. */
    bool valid() const
    {
        return valid_;
    }

    /** Content-addressed key of one source file's unit entry. */
    std::string unitKey(const std::string &path,
                        std::string_view content) const;

    /** Key of the whole-run report entry: every (path, unit key)
     *  pair plus the analysis options. Parallelism (--jobs) is
     *  deliberately excluded — reports are byte-identical at any
     *  job count, so runs at different widths share the entry. */
    std::string
    reportKey(const std::map<std::string, std::string> &unitKeys,
              const LintOptions &opts) const;

    /** Load one unit entry. True (and `out` filled) on a hit;
     *  counts hit or miss either way. */
    bool loadUnit(const std::string &key, FileUnit &out);

    /** Store one unit entry under `key` for `path`, retiring (and
     *  counting as invalidated) any entry a previous content of
     *  `path` left behind. */
    void storeUnit(const std::string &path, const std::string &key,
                   const FileUnit &unit);

    /** Load the report entry. True (and `out` filled) on a hit;
     *  counts reportHits on success only. */
    bool loadReport(const std::string &key, LintResult &out);

    /** Store the report entry, retiring the previous one. */
    void storeReport(const std::string &key,
                     const LintResult &result);

    /** Persist the path→key index. Call once after the last store;
     *  a skipped flush costs future invalidation accounting, never
     *  correctness. */
    void flush();

    /** Unit entries served from disk this run. */
    std::size_t hits() const
    {
        return hits_;
    }

    /** Unit lookups that found no (usable) entry. */
    std::size_t misses() const
    {
        return misses_;
    }

    /** Entries retired because their file's content changed, plus
     *  entries wiped by a version-tag mismatch. */
    std::size_t invalidations() const
    {
        return invalidations_;
    }

    /** 1 when the whole report was served from disk. */
    std::size_t reportHits() const
    {
        return reportHits_;
    }

  private:
    std::string entryPath(const std::string &key,
                          const char *suffix) const;
    bool writeEntry(const std::string &key, const char *suffix,
                    const std::string &body);
    bool readEntry(const std::string &key, const char *suffix,
                   std::string &body) const;
    void removeEntry(const std::string &key, const char *suffix);
    void wipe();
    void loadIndex();

    std::string dir_;
    std::string tag_;
    bool valid_ = false;
    /** Normalized source path → unit key of its stored entry. */
    std::map<std::string, std::string> index_;
    /** Key of the stored report entry ("" when none). */
    std::string reportIndex_;
    bool indexDirty_ = false;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t invalidations_ = 0;
    std::size_t reportHits_ = 0;
};

/** Serialize one FileUnit to the versioned cache text format.
 *  Exposed for tests; stability across runs is what makes unit
 *  entries shareable. */
std::string serializeUnit(const FileUnit &unit);

/** Parse a serialized FileUnit. False on any malformation (the
 *  caller treats that as a cache miss). */
bool parseUnit(const std::string &body, FileUnit &out);

/** Serialize one LintResult to the cache text format. */
std::string serializeReport(const LintResult &result);

/** Parse a serialized LintResult. False on any malformation. */
bool parseReport(const std::string &body, LintResult &out);

} // namespace netchar::lint

#endif // NETCHAR_LINT_CACHE_HH
