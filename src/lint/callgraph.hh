/**
 * @file
 * Cross-file call graph over the parsed file models.
 *
 * Functions are indexed by their unqualified name: the recognizer
 * cannot resolve overloads or receiver types, so a call site
 * `ch.runAll(...)` links to every definition named `runAll` in the
 * analyzed set. That is deliberately conservative — taint flows to
 * every plausible callee — and cheap, because this codebase names
 * its entry points uniquely.
 *
 * The graph is built in one pass over files in their (already
 * sorted) input order, so edge ordering — and therefore taint
 * worklist ordering and report bytes — never depends on directory
 * enumeration order.
 */

#ifndef NETCHAR_LINT_CALLGRAPH_HH
#define NETCHAR_LINT_CALLGRAPH_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/parser.hh"

namespace netchar::lint
{

/**
 * True when qualified name `def` equals `call` or ends with the
 * `::` components of `call` (`a::ns::f` matches call spellings
 * `ns::f` and `f`, but `XParser::parse` does not match
 * `Parser::parse`: the suffix must sit behind a `::` boundary).
 */
bool qualifiedSuffixMatches(const std::string &def,
                            const std::string &call);

/** Index of one function: (file index, function index). */
struct FunctionRef
{
    std::size_t file = 0;
    std::size_t fn = 0;

    bool operator==(const FunctionRef &o) const
    {
        return file == o.file && fn == o.fn;
    }
    bool operator<(const FunctionRef &o) const
    {
        return file != o.file ? file < o.file : fn < o.fn;
    }
};

/** Link statistics, surfaced in the JSON report (schema v3): how
 *  many call sites exist and how many failed to link to any
 *  definition in the analyzed set. */
struct CallGraphStats
{
    std::size_t callSites = 0;
    std::size_t unresolvedCalls = 0;
};

/** Name → definitions and name → callers, over a parsed file set. */
class CallGraph
{
  public:
    explicit CallGraph(const std::vector<FileModel> &files);

    /** Definitions of `name`, in file order (empty when unknown). */
    const std::vector<FunctionRef> &
    definitionsOf(const std::string &name) const;

    /**
     * Definitions a call site can reach, in file order. A call
     * written with a qualifier (`serve::parseJson(...)`) links only
     * to definitions whose own qualified spelling ends with the
     * same `::` components, so `ns::f()` no longer links to every
     * unrelated `f`. Bare and member calls keep the conservative
     * all-definitions-of-the-name behavior.
     */
    std::vector<FunctionRef> resolve(const CallSite &call) const;

    /** Functions containing a call to `name`, in file order. */
    const std::vector<FunctionRef> &
    callersOf(const std::string &name) const;

    const CallGraphStats &stats() const { return stats_; }

  private:
    std::map<std::string, std::vector<FunctionRef>> defs_;
    /** Qualified spelling of each definition, parallel to defs_. */
    std::map<std::string, std::vector<std::string>> defQualified_;
    std::map<std::string, std::vector<FunctionRef>> callers_;
    std::vector<FunctionRef> empty_;
    CallGraphStats stats_;
};

} // namespace netchar::lint

#endif // NETCHAR_LINT_CALLGRAPH_HH
