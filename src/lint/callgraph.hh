/**
 * @file
 * Cross-file call graph over the parsed file models.
 *
 * Functions are indexed by their unqualified name: the recognizer
 * cannot resolve overloads or receiver types, so a call site
 * `ch.runAll(...)` links to every definition named `runAll` in the
 * analyzed set. That is deliberately conservative — taint flows to
 * every plausible callee — and cheap, because this codebase names
 * its entry points uniquely.
 *
 * The graph is built in one pass over files in their (already
 * sorted) input order, so edge ordering — and therefore taint
 * worklist ordering and report bytes — never depends on directory
 * enumeration order.
 */

#ifndef NETCHAR_LINT_CALLGRAPH_HH
#define NETCHAR_LINT_CALLGRAPH_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/parser.hh"

namespace netchar::lint
{

/** Index of one function: (file index, function index). */
struct FunctionRef
{
    std::size_t file = 0;
    std::size_t fn = 0;

    bool operator==(const FunctionRef &o) const
    {
        return file == o.file && fn == o.fn;
    }
    bool operator<(const FunctionRef &o) const
    {
        return file != o.file ? file < o.file : fn < o.fn;
    }
};

/** Name → definitions and name → callers, over a parsed file set. */
class CallGraph
{
  public:
    explicit CallGraph(const std::vector<FileModel> &files);

    /** Definitions of `name`, in file order (empty when unknown). */
    const std::vector<FunctionRef> &
    definitionsOf(const std::string &name) const;

    /** Functions containing a call to `name`, in file order. */
    const std::vector<FunctionRef> &
    callersOf(const std::string &name) const;

  private:
    std::map<std::string, std::vector<FunctionRef>> defs_;
    std::map<std::string, std::vector<FunctionRef>> callers_;
    std::vector<FunctionRef> empty_;
};

} // namespace netchar::lint

#endif // NETCHAR_LINT_CALLGRAPH_HH
