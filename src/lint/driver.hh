/**
 * @file
 * Parallel, incrementally-cached lint driver.
 *
 * The analysis layers below (lint.hh) are deliberately split into a
 * per-file phase (analyzeFileUnit — a pure function of path and
 * content) and a cross-file phase (assembleUnits). This driver
 * exploits that split twice:
 *
 *  --jobs N   fans the per-file phase out over a core::Executor.
 *             Each task writes only its own unit slot and the
 *             cross-file phase consumes the slots in sorted-path
 *             order, so the report is byte-identical at any job
 *             count (ctest-enforced, same bar as lint.concurrency).
 *  --cache D  consults the two-level content-addressed cache
 *             (cache.hh): unchanged files load their FileUnit from
 *             disk instead of being re-analyzed, and a fully
 *             unchanged tree short-circuits through the report-
 *             level entry without running any analysis at all.
 *
 * This is the only lint layer allowed to link netchar_core: the
 * analysis code audits the executor, so it must not depend on it
 * (CMake enforces the split — netchar_lint_core links only
 * netchar_stats, the driver library links both).
 */

#ifndef NETCHAR_LINT_DRIVER_HH
#define NETCHAR_LINT_DRIVER_HH

#include <string>
#include <vector>

#include "lint/lint.hh"

namespace netchar::lint
{

/** Knobs of one driver run, wrapping the analysis options. */
struct DriverOptions
{
    LintOptions lint;
    /** Per-file analysis parallelism; 0 picks one job per hardware
     *  thread, 1 (the default) is a serial loop. Never affects
     *  report bytes. */
    unsigned jobs = 1;
    /** Incremental cache directory (--cache); empty disables
     *  caching. Created on first use, wiped when its version tag
     *  does not match this binary's. */
    std::string cacheDir;
};

/**
 * Lint files and directory trees: discover (sorted, de-duplicated,
 * lexically normalized), analyze per file (parallel, cached),
 * assemble the cross-file report. Equivalent to lintPaths() byte
 * for byte; `stats` (optional) receives per-phase timings and the
 * cache counters.
 */
LintResult runLint(const std::vector<std::string> &paths,
                   std::vector<std::string> &errors,
                   const DriverOptions &opts,
                   LintStats *stats = nullptr);

} // namespace netchar::lint

#endif // NETCHAR_LINT_DRIVER_HH
