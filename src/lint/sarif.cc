#include "lint/sarif.hh"

#include <sstream>

#include "lint/concurrency.hh"
#include "lint/taint.hh"
#include "stats/textio.hh"

namespace netchar::lint
{

namespace
{

/** GitHub code scanning expects 1-based positions; clamp defensively
 *  (bad-pragma findings anchor at column 1 already). */
int
atLeastOne(int v)
{
    return v < 1 ? 1 : v;
}

void
emitRule(std::ostringstream &out, bool &first, std::string_view id,
         std::string_view summary, std::string_view level)
{
    out << (first ? "\n" : ",\n") << "          {\"id\": \""
        << jsonEscape(std::string(id))
        << "\", \"shortDescription\": {\"text\": \""
        << jsonEscape(std::string(summary))
        << "\"}, \"defaultConfiguration\": {\"level\": \"" << level
        << "\"}}";
    first = false;
}

void
emitLocation(std::ostringstream &out, const std::string &file,
             int line, int column, const std::string &message)
{
    out << "{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << jsonEscape(file)
        << "\"}, \"region\": {\"startLine\": " << atLeastOne(line)
        << ", \"startColumn\": " << atLeastOne(column) << "}}";
    if (!message.empty())
        out << ", \"message\": {\"text\": \"" << jsonEscape(message)
            << "\"}";
    out << "}";
}

} // namespace

std::string
renderSarif(const LintResult &result)
{
    std::ostringstream out;
    out << "{\n"
           "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
           "  \"version\": \"2.1.0\",\n"
           "  \"runs\": [\n"
           "    {\n"
           "      \"tool\": {\n"
           "        \"driver\": {\n"
           "          \"name\": \"netchar-lint\",\n"
           "          \"informationUri\": "
           "\"https://example.invalid/netchar/docs/ARCHITECTURE.md\""
           ",\n"
           "          \"rules\": [";

    bool first = true;
    for (const auto &rule : allRules())
        emitRule(out, first, rule->name(), rule->summary(),
                 severityName(rule->severity()));
    emitRule(out, first, "bad-pragma",
             "a netchar-lint pragma that is malformed, lacks a "
             "reason, or names an unknown rule",
             "error");
    for (const std::string_view fr : flowRuleNames())
        emitRule(out, first, fr, flowRuleSummary(fr), "error");
    for (const std::string_view cr : concurrencyRuleNames())
        emitRule(out, first, cr, concurrencyRuleSummary(cr),
                 severityName(concurrencyRuleSeverity(cr)));

    out << "\n          ]\n"
           "        }\n"
           "      },\n"
           "      \"results\": [";

    first = true;
    for (const Finding &f : result.findings) {
        out << (first ? "\n" : ",\n")
            << "        {\"ruleId\": \"" << jsonEscape(f.rule)
            << "\", \"level\": \"" << severityName(f.severity)
            << "\", \"message\": {\"text\": \""
            << jsonEscape(f.message) << "\"}, \"locations\": [";
        emitLocation(out, f.file, f.line, f.column, "");
        out << "]";
        if (!f.path.empty()) {
            out << ", \"codeFlows\": [{\"threadFlows\": "
                   "[{\"locations\": [";
            bool firstHop = true;
            for (const FlowHop &hop : f.path) {
                out << (firstHop ? "" : ", ") << "{\"location\": ";
                emitLocation(out, hop.file, hop.line, hop.column,
                             hop.note);
                out << "}";
                firstHop = false;
            }
            out << "]}]}]";
        }
        out << "}";
        first = false;
    }

    out << (first ? "]\n" : "\n      ]\n")
        << "    }\n"
           "  ]\n"
           "}\n";
    return out.str();
}

} // namespace netchar::lint
