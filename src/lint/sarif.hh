/**
 * @file
 * SARIF 2.1.0 emitter for netchar-lint reports.
 *
 * SARIF (Static Analysis Results Interchange Format, OASIS) is the
 * interchange format GitHub code scanning ingests: uploading the
 * report via codeql-action/upload-sarif turns lint findings into
 * inline pull-request annotations. The emitter covers the subset
 * code scanning reads — tool.driver with per-rule metadata, one
 * result per finding with a physicalLocation, and a codeFlows/
 * threadFlows chain for taint findings so the full source→…→sink
 * path renders hop by hop.
 *
 * Like every other netchar-lint rendering, the output is a pure
 * function of the sorted finding list: byte-identical across runs
 * and directory enumeration orders.
 */

#ifndef NETCHAR_LINT_SARIF_HH
#define NETCHAR_LINT_SARIF_HH

#include <string>

#include "lint/lint.hh"

namespace netchar::lint
{

/** Render the SARIF 2.1.0 report for `result`. */
std::string renderSarif(const LintResult &result);

} // namespace netchar::lint

#endif // NETCHAR_LINT_SARIF_HH
