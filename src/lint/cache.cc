#include "lint/cache.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "stats/hash.hh"

namespace netchar::lint
{

namespace
{

namespace fs = std::filesystem;

/** Format version of the serialized entries. Bump on any layout
 *  change — it feeds the cache version tag, so old caches wipe. */
constexpr int kFormatVersion = 1;

/**
 * Escape a string into one whitespace-free field. The leading '~'
 * marks the field as a string (so an empty string is "~", never an
 * empty field), and the escapes keep the line-and-space record
 * structure unambiguous for any source text.
 */
std::string
esc(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 1);
    out.push_back('~');
    for (const char c : s) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case ' ':
            out += "\\s";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out.push_back(c);
        }
    }
    return out;
}

bool
unesc(const std::string &field, std::string &out)
{
    if (field.empty() || field.front() != '~')
        return false;
    out.clear();
    out.reserve(field.size() - 1);
    for (std::size_t i = 1; i < field.size(); ++i) {
        const char c = field[i];
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (++i >= field.size())
            return false;
        switch (field[i]) {
        case '\\':
            out.push_back('\\');
            break;
        case 'n':
            out.push_back('\n');
            break;
        case 'r':
            out.push_back('\r');
            break;
        case 's':
            out.push_back(' ');
            break;
        case 't':
            out.push_back('\t');
            break;
        default:
            return false;
        }
    }
    return true;
}

/** Sequential whitespace-separated field reader. Any failure is
 *  sticky: the caller checks `ok` once at the end and treats a
 *  false as a cache miss. */
struct In
{
    explicit In(const std::string &body) : is(body) {}

    std::istringstream is;
    bool ok = true;

    bool word(std::string &w)
    {
        if (!ok || !(is >> w))
            return ok = false;
        return true;
    }

    bool str(std::string &s)
    {
        std::string w;
        if (!word(w))
            return false;
        return ok = unesc(w, s);
    }

    bool num(long long &v)
    {
        if (!ok || !(is >> v))
            return ok = false;
        return true;
    }

    bool size(std::size_t &v)
    {
        long long n = 0;
        if (!num(n) || n < 0)
            return ok = false;
        v = static_cast<std::size_t>(n);
        return true;
    }

    bool intv(int &v)
    {
        long long n = 0;
        if (!num(n))
            return false;
        v = static_cast<int>(n);
        return true;
    }

    bool tag(const char *t)
    {
        std::string w;
        if (!word(w))
            return false;
        return ok = (w == t);
    }
};

void
writeFinding(std::ostream &out, const Finding &f)
{
    out << "fi " << esc(f.file) << ' ' << f.line << ' ' << f.column
        << ' ' << esc(f.rule) << ' ' << static_cast<int>(f.severity)
        << ' ' << esc(f.message) << ' ' << esc(f.function) << ' '
        << f.lockset.size();
    for (const std::string &r : f.lockset)
        out << ' ' << esc(r);
    out << ' ' << f.path.size() << '\n';
    for (const FlowHop &h : f.path)
        out << "ho " << esc(h.file) << ' ' << h.line << ' '
            << h.column << ' ' << esc(h.note) << '\n';
}

bool
readFinding(In &in, Finding &f)
{
    int sev = 0;
    std::size_t nlock = 0;
    std::size_t nhops = 0;
    if (!in.tag("fi") || !in.str(f.file) || !in.intv(f.line) ||
        !in.intv(f.column) || !in.str(f.rule) || !in.intv(sev) ||
        !in.str(f.message) || !in.str(f.function) ||
        !in.size(nlock))
        return false;
    if (sev < 0 || sev > 1)
        return in.ok = false;
    f.severity = static_cast<Severity>(sev);
    for (std::size_t i = 0; i < nlock && in.ok; ++i) {
        std::string r;
        if (in.str(r))
            f.lockset.push_back(std::move(r));
    }
    if (!in.size(nhops))
        return false;
    for (std::size_t i = 0; i < nhops && in.ok; ++i) {
        FlowHop h;
        if (in.tag("ho") && in.str(h.file) && in.intv(h.line) &&
            in.intv(h.column) && in.str(h.note))
            f.path.push_back(std::move(h));
    }
    return in.ok;
}

bool
writeRawFile(const std::string &path, const std::string &body)
{
    // tmp+rename: a crash mid-write leaves the old entry (or none),
    // never a torn one.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << body;
        if (!out.flush())
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
readRawFile(const std::string &path, std::string &body)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    body = buf.str();
    return true;
}

} // namespace

std::string
lintCacheVersionTag()
{
    return "netchar-lint-cache " + std::to_string(kFormatVersion) +
           " schema 4 rules " + contentHashHex(listRulesText());
}

std::string
serializeUnit(const FileUnit &unit)
{
    std::ostringstream out;
    out << "netchar-lint-unit " << kFormatVersion << '\n';
    out << "path " << esc(unit.model.path) << '\n';
    const LexedFile &lx = unit.model.lexed;
    out << "tokens " << lx.tokens.size() << '\n';
    for (const Token &t : lx.tokens)
        out << "t " << static_cast<int>(t.kind) << ' ' << t.line
            << ' ' << t.column << ' ' << esc(t.text) << '\n';
    out << "pragmas " << lx.pragmas.size() << '\n';
    for (const Pragma &p : lx.pragmas) {
        out << "p " << p.line << ' ' << p.endLine << ' '
            << (p.flow ? 1 : 0) << ' ' << (p.malformed ? 1 : 0)
            << ' ' << esc(p.reason) << ' ' << esc(p.error) << ' '
            << p.rules.size();
        for (const std::string &r : p.rules)
            out << ' ' << esc(r);
        out << '\n';
    }
    out << "functions " << unit.model.functions.size() << '\n';
    for (const FunctionModel &fn : unit.model.functions) {
        out << "fn " << esc(fn.name) << ' ' << esc(fn.qualified)
            << ' ' << esc(fn.retType) << ' ' << fn.line << ' '
            << fn.column << ' ' << fn.bodyBegin << ' ' << fn.bodyEnd
            << ' ' << fn.params.size();
        for (const std::string &p : fn.params)
            out << ' ' << esc(p);
        out << ' ' << fn.stmts.size() << '\n';
        for (const Statement &st : fn.stmts) {
            out << "st " << static_cast<int>(st.kind) << ' '
                << esc(st.target) << ' ' << esc(st.base) << ' '
                << st.line << ' ' << st.column << ' '
                << st.expr.first << ' ' << st.expr.second << ' '
                << st.calls.size() << '\n';
            for (const CallSite &c : st.calls) {
                out << "ca " << esc(c.callee) << ' '
                    << esc(c.qualified) << ' ' << c.line << ' '
                    << c.column << ' ' << c.begin << ' ' << c.end
                    << ' ' << c.args.size();
                for (const TokenRange &a : c.args)
                    out << ' ' << a.first << ' ' << a.second;
                out << '\n';
            }
        }
    }
    out << "findings " << unit.findings.size() << '\n';
    for (const Finding &f : unit.findings)
        writeFinding(out, f);
    out << "suppressed " << unit.suppressed << '\n';
    out << "end\n";
    return out.str();
}

bool
parseUnit(const std::string &body, FileUnit &out)
{
    In in(body);
    long long version = 0;
    if (!in.tag("netchar-lint-unit") || !in.num(version) ||
        version != kFormatVersion)
        return false;
    if (!in.tag("path") || !in.str(out.model.path))
        return false;

    std::size_t ntokens = 0;
    if (!in.tag("tokens") || !in.size(ntokens))
        return false;
    for (std::size_t i = 0; i < ntokens && in.ok; ++i) {
        Token t;
        int kind = 0;
        if (!in.tag("t") || !in.intv(kind) || !in.intv(t.line) ||
            !in.intv(t.column) || !in.str(t.text))
            break;
        if (kind < 0 || kind > 4)
            return in.ok = false;
        t.kind = static_cast<TokenKind>(kind);
        out.model.lexed.tokens.push_back(std::move(t));
    }

    std::size_t npragmas = 0;
    if (!in.tag("pragmas") || !in.size(npragmas))
        return false;
    for (std::size_t i = 0; i < npragmas && in.ok; ++i) {
        Pragma p;
        int flow = 0;
        int malformed = 0;
        std::size_t nrules = 0;
        if (!in.tag("p") || !in.intv(p.line) ||
            !in.intv(p.endLine) || !in.intv(flow) ||
            !in.intv(malformed) || !in.str(p.reason) ||
            !in.str(p.error) || !in.size(nrules))
            break;
        p.flow = flow != 0;
        p.malformed = malformed != 0;
        for (std::size_t j = 0; j < nrules && in.ok; ++j) {
            std::string r;
            if (in.str(r))
                p.rules.push_back(std::move(r));
        }
        out.model.lexed.pragmas.push_back(std::move(p));
    }

    std::size_t nfunctions = 0;
    if (!in.tag("functions") || !in.size(nfunctions))
        return false;
    for (std::size_t i = 0; i < nfunctions && in.ok; ++i) {
        FunctionModel fn;
        std::size_t nparams = 0;
        std::size_t nstmts = 0;
        long long bodyBegin = 0;
        long long bodyEnd = 0;
        if (!in.tag("fn") || !in.str(fn.name) ||
            !in.str(fn.qualified) || !in.str(fn.retType) ||
            !in.intv(fn.line) || !in.intv(fn.column) ||
            !in.num(bodyBegin) || !in.num(bodyEnd) ||
            !in.size(nparams))
            break;
        fn.bodyBegin = static_cast<std::size_t>(bodyBegin);
        fn.bodyEnd = static_cast<std::size_t>(bodyEnd);
        for (std::size_t j = 0; j < nparams && in.ok; ++j) {
            std::string p;
            if (in.str(p))
                fn.params.push_back(std::move(p));
        }
        if (!in.size(nstmts))
            break;
        for (std::size_t j = 0; j < nstmts && in.ok; ++j) {
            Statement st;
            int kind = 0;
            std::size_t ncalls = 0;
            long long e0 = 0;
            long long e1 = 0;
            if (!in.tag("st") || !in.intv(kind) ||
                !in.str(st.target) || !in.str(st.base) ||
                !in.intv(st.line) || !in.intv(st.column) ||
                !in.num(e0) || !in.num(e1) || !in.size(ncalls))
                break;
            if (kind < 0 || kind > 3)
                return in.ok = false;
            st.kind = static_cast<Statement::Kind>(kind);
            st.expr = {static_cast<std::size_t>(e0),
                       static_cast<std::size_t>(e1)};
            for (std::size_t k = 0; k < ncalls && in.ok; ++k) {
                CallSite c;
                std::size_t nargs = 0;
                long long begin = 0;
                long long end = 0;
                if (!in.tag("ca") || !in.str(c.callee) ||
                    !in.str(c.qualified) || !in.intv(c.line) ||
                    !in.intv(c.column) || !in.num(begin) ||
                    !in.num(end) || !in.size(nargs))
                    break;
                c.begin = static_cast<std::size_t>(begin);
                c.end = static_cast<std::size_t>(end);
                for (std::size_t m = 0; m < nargs && in.ok; ++m) {
                    long long a0 = 0;
                    long long a1 = 0;
                    if (in.num(a0) && in.num(a1))
                        c.args.push_back(
                            {static_cast<std::size_t>(a0),
                             static_cast<std::size_t>(a1)});
                }
                st.calls.push_back(std::move(c));
            }
            fn.stmts.push_back(std::move(st));
        }
        out.model.functions.push_back(std::move(fn));
    }

    std::size_t nfindings = 0;
    if (!in.tag("findings") || !in.size(nfindings))
        return false;
    for (std::size_t i = 0; i < nfindings && in.ok; ++i) {
        Finding f;
        if (readFinding(in, f))
            out.findings.push_back(std::move(f));
    }

    if (!in.tag("suppressed") || !in.size(out.suppressed))
        return false;
    return in.tag("end") && in.ok;
}

std::string
serializeReport(const LintResult &result)
{
    std::ostringstream out;
    out << "netchar-lint-report " << kFormatVersion << '\n';
    out << "counts " << result.suppressedCount << ' '
        << result.filesScanned << ' ' << result.callSites << ' '
        << result.unresolvedCalls << ' ' << result.escapedFunctions
        << '\n';
    out << "summaries " << result.summaries.functions << ' '
        << result.summaries.sccs << ' '
        << result.summaries.largestScc << ' '
        << result.summaries.fixpointPasses << ' '
        << result.summaries.returnTaints << ' '
        << result.summaries.paramReturnFlows << ' '
        << result.summaries.paramSinkFlows << ' '
        << result.summaries.lockEffects << '\n';
    out << "findings " << result.findings.size() << '\n';
    for (const Finding &f : result.findings)
        writeFinding(out, f);
    out << "end\n";
    return out.str();
}

bool
parseReport(const std::string &body, LintResult &out)
{
    In in(body);
    long long version = 0;
    if (!in.tag("netchar-lint-report") || !in.num(version) ||
        version != kFormatVersion)
        return false;
    if (!in.tag("counts") || !in.size(out.suppressedCount) ||
        !in.size(out.filesScanned) || !in.size(out.callSites) ||
        !in.size(out.unresolvedCalls) ||
        !in.size(out.escapedFunctions))
        return false;
    if (!in.tag("summaries") || !in.size(out.summaries.functions) ||
        !in.size(out.summaries.sccs) ||
        !in.size(out.summaries.largestScc) ||
        !in.size(out.summaries.fixpointPasses) ||
        !in.size(out.summaries.returnTaints) ||
        !in.size(out.summaries.paramReturnFlows) ||
        !in.size(out.summaries.paramSinkFlows) ||
        !in.size(out.summaries.lockEffects))
        return false;
    std::size_t nfindings = 0;
    if (!in.tag("findings") || !in.size(nfindings))
        return false;
    for (std::size_t i = 0; i < nfindings && in.ok; ++i) {
        Finding f;
        if (readFinding(in, f))
            out.findings.push_back(std::move(f));
    }
    return in.tag("end") && in.ok;
}

LintCache::LintCache(std::string dir, std::string versionTag)
    : dir_(std::move(dir)), tag_(std::move(versionTag))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        return;
    std::string existing;
    readRawFile(dir_ + "/VERSION", existing);
    if (existing != tag_) {
        wipe();
        if (!writeRawFile(dir_ + "/VERSION", tag_))
            return;
    }
    valid_ = true;
    loadIndex();
}

std::string
LintCache::unitKey(const std::string &path,
                   std::string_view content) const
{
    std::string key;
    key.reserve(tag_.size() + path.size() + content.size() + 32);
    key += tag_;
    key += '\n';
    key += std::to_string(path.size());
    key += ':';
    key += path;
    key += '\n';
    key += content;
    return contentHashHex(key);
}

std::string
LintCache::reportKey(
    const std::map<std::string, std::string> &unitKeys,
    const LintOptions &opts) const
{
    std::string key = tag_;
    key += "\nopts ";
    key += opts.taint ? 'T' : 't';
    key += opts.concurrency ? 'C' : 'c';
    for (const auto &[path, unit] : unitKeys) {
        key += '\n';
        key += unit;
        key += ' ';
        key += path;
    }
    return contentHashHex(key);
}

bool
LintCache::loadUnit(const std::string &key, FileUnit &out)
{
    std::string body;
    if (!valid_ || !readEntry(key, ".unit", body) ||
        !parseUnit(body, out)) {
        ++misses_;
        return false;
    }
    ++hits_;
    return true;
}

void
LintCache::storeUnit(const std::string &path,
                     const std::string &key, const FileUnit &unit)
{
    if (!valid_)
        return;
    const auto it = index_.find(path);
    if (it != index_.end() && it->second != key) {
        removeEntry(it->second, ".unit");
        ++invalidations_;
    }
    if (writeEntry(key, ".unit", serializeUnit(unit))) {
        if (it == index_.end() || it->second != key) {
            index_[path] = key;
            indexDirty_ = true;
        }
    }
}

bool
LintCache::loadReport(const std::string &key, LintResult &out)
{
    std::string body;
    if (!valid_ || !readEntry(key, ".report", body) ||
        !parseReport(body, out))
        return false;
    ++reportHits_;
    return true;
}

void
LintCache::storeReport(const std::string &key,
                       const LintResult &result)
{
    if (!valid_)
        return;
    if (!reportIndex_.empty() && reportIndex_ != key) {
        removeEntry(reportIndex_, ".report");
        ++invalidations_;
    }
    if (writeEntry(key, ".report", serializeReport(result))) {
        if (reportIndex_ != key) {
            reportIndex_ = key;
            indexDirty_ = true;
        }
    }
}

void
LintCache::flush()
{
    if (!valid_ || !indexDirty_)
        return;
    std::ostringstream out;
    out << "netchar-lint-index " << kFormatVersion << '\n';
    if (!reportIndex_.empty())
        out << "report " << reportIndex_ << '\n';
    for (const auto &[path, key] : index_)
        out << "u " << esc(path) << ' ' << key << '\n';
    if (writeRawFile(dir_ + "/index.txt", out.str()))
        indexDirty_ = false;
}

std::string
LintCache::entryPath(const std::string &key,
                     const char *suffix) const
{
    return dir_ + "/" + key + suffix;
}

bool
LintCache::writeEntry(const std::string &key, const char *suffix,
                      const std::string &body)
{
    return writeRawFile(entryPath(key, suffix), body);
}

bool
LintCache::readEntry(const std::string &key, const char *suffix,
                     std::string &body) const
{
    return readRawFile(entryPath(key, suffix), body);
}

void
LintCache::removeEntry(const std::string &key, const char *suffix)
{
    std::error_code ec;
    fs::remove(entryPath(key, suffix), ec);
}

void
LintCache::wipe()
{
    std::error_code ec;
    fs::directory_iterator it(dir_, ec), end;
    if (ec)
        return;
    std::vector<fs::path> stale;
    for (; it != end; it.increment(ec)) {
        if (ec)
            break;
        const std::string ext = it->path().extension().string();
        const std::string name = it->path().filename().string();
        if (ext == ".unit" || ext == ".report" ||
            name == "index.txt")
            stale.push_back(it->path());
    }
    for (const fs::path &p : stale) {
        if (p.filename().string() != "index.txt")
            ++invalidations_;
        fs::remove(p, ec);
    }
}

void
LintCache::loadIndex()
{
    std::string body;
    if (!readRawFile(dir_ + "/index.txt", body))
        return;
    In in(body);
    long long version = 0;
    if (!in.tag("netchar-lint-index") || !in.num(version) ||
        version != kFormatVersion)
        return;
    std::string word;
    while (in.word(word)) {
        if (word == "report") {
            if (!in.word(reportIndex_))
                break;
        } else if (word == "u") {
            std::string path;
            std::string key;
            if (!in.str(path) || !in.word(key))
                break;
            index_[path] = key;
        } else {
            break;
        }
    }
}

} // namespace netchar::lint
