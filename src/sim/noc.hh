/**
 * @file
 * Sliced last-level cache behind a contended network-on-chip.
 *
 * §VI-B2 observes that ASP.NET applications become L3-latency bound as
 * core counts grow even though per-core LLC MPKI stays flat — the
 * extra stall time comes from contention at LLC slice ports and in the
 * NoC. This model reproduces that: the LLC is divided into
 * address-hashed slices shared by all cores, and each access pays a
 * queueing delay that grows with the aggregate access rate per slice
 * (an M/M/1-style rho/(1-rho) term).
 */

#ifndef NETCHAR_SIM_NOC_HH
#define NETCHAR_SIM_NOC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.hh"
#include "sim/config.hh"

namespace netchar::sim
{

/** Tuning knobs for the contention model. */
struct NocParams
{
    /**
     * Effective service rate of one LLC slice / NoC stop in accesses
     * per cycle. Deliberately low: the "slice" stands in for the
     * shared mesh stop (directory + link bandwidth), which saturates
     * long before the SRAM port does.
     */
    double sliceServiceRate = 0.02;
    /** Cap on the queueing multiplier to keep the model stable. */
    double maxQueueCycles = 150.0;
    /** Smoothing window (accesses) for the arrival-rate estimate. */
    double rateSmoothing = 4096.0;
    /** Enable/disable contention entirely (ablation switch). */
    bool contentionEnabled = true;
};

/** Outcome of one LLC access through the NoC. */
struct LlcOutcome
{
    bool hit = false;
    bool evictedUnusedPrefetch = false;
    bool writeback = false;
    /** Total latency: base LLC latency + NoC queueing delay. */
    double latency = 0.0;
};

/**
 * Shared sliced LLC. All cores of a Machine funnel their L2 misses
 * through one LlcNoc instance; slice selection hashes the line
 * address, mimicking Intel's slice hash.
 */
class LlcNoc
{
  public:
    /**
     * @param geometry Aggregate LLC geometry; capacity is split evenly
     *        across slices (must divide evenly).
     * @param slices Slice count.
     * @param base_latency Uncontended LLC hit latency in cycles.
     * @param params Contention model knobs.
     */
    LlcNoc(const CacheGeometry &geometry, unsigned slices,
           double base_latency, const NocParams &params = {});

    /**
     * One access from a core.
     *
     * @param addr Byte address.
     * @param is_write Marks the line dirty.
     * @param active_cores How many cores are concurrently generating
     *        this access pattern (scales the arrival-rate estimate).
     * @param core_cycles The requesting core's current cycle count,
     *        used to estimate its access rate.
     */
    LlcOutcome access(std::uint64_t addr, bool is_write,
                      unsigned active_cores, double core_cycles);

    /** Prefetch fill into the right slice. */
    CacheOutcome insertPrefetch(std::uint64_t addr);

    /** Probe without state change. */
    bool contains(std::uint64_t addr) const;

    /** Drop all lines and rate state. */
    void reset();

    /** Total demand accesses across slices. */
    std::uint64_t accesses() const { return accesses_; }

    /** Total demand misses across slices. */
    std::uint64_t misses() const { return misses_; }

    /** Most recent queueing delay estimate in cycles (telemetry). */
    double lastQueueDelay() const { return lastQueueDelay_; }

    unsigned sliceCount() const
    {
        return static_cast<unsigned>(slices_.size());
    }

  private:
    std::size_t sliceFor(std::uint64_t addr) const;

    std::vector<std::unique_ptr<Cache>> slices_;
    double baseLatency_;
    NocParams params_;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    double smoothedRate_ = 0.0; ///< aggregate accesses per cycle
    double lastCycles_ = 0.0;
    double windowStartCycles_ = 0.0;
    std::uint64_t windowAccesses_ = 0;
    double lastQueueDelay_ = 0.0;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_NOC_HH
