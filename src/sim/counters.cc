#include "sim/counters.hh"

namespace netchar::sim
{

std::string_view
slotNodeName(SlotNode node)
{
    switch (node) {
      case SlotNode::Retiring: return "Retiring";
      case SlotNode::BadSpeculation: return "Bad_Speculation";
      case SlotNode::FeICache: return "FE.ICache_Misses";
      case SlotNode::FeITlb: return "FE.ITLB_Misses";
      case SlotNode::FeBtbResteer: return "FE.Branch_Resteers";
      case SlotNode::FeMsSwitch: return "FE.MS_Switches";
      case SlotNode::FeDsb: return "FE.DSB_Bandwidth";
      case SlotNode::FeMite: return "FE.MITE_Bandwidth";
      case SlotNode::BeL1Bound: return "BE.MEM.L1_Bound";
      case SlotNode::BeL2Bound: return "BE.MEM.L2_Bound";
      case SlotNode::BeL3Bound: return "BE.MEM.L3_Bound";
      case SlotNode::BeDramBound: return "BE.MEM.DRAM_Bound";
      case SlotNode::BeStoreBound: return "BE.MEM.Store_Bound";
      case SlotNode::BePortsUtil: return "BE.CR.Ports_Utilization";
      case SlotNode::BeDivider: return "BE.CR.Divider";
      default: return "Unknown";
    }
}

SlotCategory
slotCategory(SlotNode node)
{
    switch (node) {
      case SlotNode::Retiring:
        return SlotCategory::Retiring;
      case SlotNode::BadSpeculation:
        return SlotCategory::BadSpeculation;
      case SlotNode::FeICache:
      case SlotNode::FeITlb:
      case SlotNode::FeBtbResteer:
      case SlotNode::FeMsSwitch:
      case SlotNode::FeDsb:
      case SlotNode::FeMite:
        return SlotCategory::Frontend;
      default:
        return SlotCategory::Backend;
    }
}

double
SlotAccount::total() const
{
    double sum = 0.0;
    for (double s : slots)
        sum += s;
    return sum;
}

double
SlotAccount::categoryTotal(SlotCategory cat) const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < slots.size(); ++i)
        if (slotCategory(static_cast<SlotNode>(i)) == cat)
            sum += slots[i];
    return sum;
}

double
SlotAccount::fraction(SlotNode n) const
{
    const double t = total();
    return t > 0.0 ? (*this)[n] / t : 0.0;
}

double
SlotAccount::categoryFraction(SlotCategory cat) const
{
    const double t = total();
    return t > 0.0 ? categoryTotal(cat) / t : 0.0;
}

void
SlotAccount::add(const SlotAccount &other)
{
    for (std::size_t i = 0; i < slots.size(); ++i)
        slots[i] += other.slots[i];
}

SlotAccount
SlotAccount::delta(const SlotAccount &since) const
{
    SlotAccount d;
    for (std::size_t i = 0; i < slots.size(); ++i)
        d.slots[i] = slots[i] - since.slots[i];
    return d;
}

void
PerfCounters::add(const PerfCounters &other)
{
    instructions += other.instructions;
    kernelInstructions += other.kernelInstructions;
    branches += other.branches;
    loads += other.loads;
    stores += other.stores;
    cycles += other.cycles;
    branchMisses += other.branchMisses;
    btbMisses += other.btbMisses;
    l1dMisses += other.l1dMisses;
    l1iMisses += other.l1iMisses;
    l2Misses += other.l2Misses;
    llcMisses += other.llcMisses;
    itlbMisses += other.itlbMisses;
    dtlbLoadMisses += other.dtlbLoadMisses;
    dtlbStoreMisses += other.dtlbStoreMisses;
    memReadBytes += other.memReadBytes;
    memWriteBytes += other.memWriteBytes;
    dramAccesses += other.dramAccesses;
    dramRowMisses += other.dramRowMisses;
    pageFaults += other.pageFaults;
    prefetchesIssued += other.prefetchesIssued;
    prefetchesUseful += other.prefetchesUseful;
    prefetchesUseless += other.prefetchesUseless;
}

PerfCounters
PerfCounters::delta(const PerfCounters &since) const
{
    PerfCounters d;
    d.instructions = instructions - since.instructions;
    d.kernelInstructions = kernelInstructions - since.kernelInstructions;
    d.branches = branches - since.branches;
    d.loads = loads - since.loads;
    d.stores = stores - since.stores;
    d.cycles = cycles - since.cycles;
    d.branchMisses = branchMisses - since.branchMisses;
    d.btbMisses = btbMisses - since.btbMisses;
    d.l1dMisses = l1dMisses - since.l1dMisses;
    d.l1iMisses = l1iMisses - since.l1iMisses;
    d.l2Misses = l2Misses - since.l2Misses;
    d.llcMisses = llcMisses - since.llcMisses;
    d.itlbMisses = itlbMisses - since.itlbMisses;
    d.dtlbLoadMisses = dtlbLoadMisses - since.dtlbLoadMisses;
    d.dtlbStoreMisses = dtlbStoreMisses - since.dtlbStoreMisses;
    d.memReadBytes = memReadBytes - since.memReadBytes;
    d.memWriteBytes = memWriteBytes - since.memWriteBytes;
    d.dramAccesses = dramAccesses - since.dramAccesses;
    d.dramRowMisses = dramRowMisses - since.dramRowMisses;
    d.pageFaults = pageFaults - since.pageFaults;
    d.prefetchesIssued = prefetchesIssued - since.prefetchesIssued;
    d.prefetchesUseful = prefetchesUseful - since.prefetchesUseful;
    d.prefetchesUseless = prefetchesUseless - since.prefetchesUseless;
    return d;
}

double
PerfCounters::mpki(std::uint64_t events) const
{
    return instructions > 0
        ? 1000.0 * static_cast<double>(events) /
              static_cast<double>(instructions)
        : 0.0;
}

double
PerfCounters::cpi() const
{
    return instructions > 0
        ? cycles / static_cast<double>(instructions)
        : 0.0;
}

double
PerfCounters::ipc() const
{
    return cycles > 0.0
        ? static_cast<double>(instructions) / cycles
        : 0.0;
}

} // namespace netchar::sim
