/**
 * @file
 * Machine: a set of cores sharing a sliced LLC and DRAM, the top-level
 * simulation object workloads execute on.
 */

#ifndef NETCHAR_SIM_MACHINE_HH
#define NETCHAR_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sim/config.hh"
#include "sim/core.hh"
#include "sim/counters.hh"
#include "sim/memory.hh"
#include "sim/noc.hh"
#include "trace/counter_record.hh"
#include "trace/recorder.hh"

namespace netchar::sim
{

/**
 * One simulated machine instance. Cores are created up front per the
 * requested active-core count; all share the LlcNoc and DramModel.
 *
 * The machine is also the TraceClock of a capture: timeline events are
 * stamped with its aggregate simulated cycles/instructions, and
 * emitCounterSample() snapshots all counters onto an attached trace.
 */
class Machine : public trace::TraceClock
{
  public:
    /**
     * @param cfg Machine description (use the Table II factories).
     * @param active_cores Cores the workload will run on (1 .. config
     *        physical cores; clamped).
     * @param seed Master seed for all stochastic core behavior.
     * @param noc NoC contention knobs (ablation switch lives here).
     */
    explicit Machine(const MachineConfig &cfg, unsigned active_cores = 1,
                     std::uint64_t seed = 0x6E65746368617221ULL,
                     const NocParams &noc = {});

    /** Machine description in use. */
    const MachineConfig &config() const { return cfg_; }

    /** Number of active cores. */
    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Access core i (0-based; throws std::out_of_range). */
    Core &core(unsigned i);
    const Core &core(unsigned i) const;

    /** Shared LLC/NoC (telemetry). */
    const LlcNoc &llc() const { return llc_; }

    /** Shared DRAM model (telemetry). */
    const DramModel &dram() const { return dram_; }

    /** Sum of all cores' counters. */
    PerfCounters totalCounters() const;

    /** Sum of all cores' Top-Down slot accounts. */
    SlotAccount totalSlots() const;

    /** TraceClock: aggregate core cycles (= totalCounters().cycles). */
    double cycles() const override;

    /** TraceClock: aggregate instructions retired. */
    std::uint64_t instructions() const override;

    /**
     * Attach (or detach with nullptrs) a capture: emitCounterSample()
     * pushes records into `samples`, stamped with `recorder`'s event
     * watermark so re-slices bucket runtime events exactly as live
     * sampling did. Neither pointer is owned.
     */
    void attachTrace(const trace::TraceRecorder *recorder,
                     trace::TraceBuffer<trace::CounterRecord> *samples)
    {
        traceRecorder_ = recorder;
        traceSamples_ = samples;
    }

    /**
     * Push one cumulative counter record onto the attached trace
     * (no-op when none is attached).
     */
    void emitCounterSample();

    /**
     * Wall-clock seconds of the run: the slowest core's cycles divided
     * by the max turbo frequency (single-threaded runs turbo).
     */
    double seconds() const;

    /** Enable the JIT ISA hint on every core. */
    void setJitHintEnabled(bool enabled);

    /** Reset all cores, the LLC and DRAM. */
    void reset();

  private:
    MachineConfig cfg_;
    LlcNoc llc_;
    DramModel dram_;
    /** The process page table, shared by all cores. */
    std::unordered_set<std::uint64_t> processPages_;
    std::vector<std::unique_ptr<Core>> cores_;
    const trace::TraceRecorder *traceRecorder_ = nullptr;
    trace::TraceBuffer<trace::CounterRecord> *traceSamples_ = nullptr;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_MACHINE_HH
