/**
 * @file
 * The instruction record exchanged between workload generators and the
 * core model. Workloads stream these; the core consumes them one at a
 * time, so no trace is ever materialized.
 */

#ifndef NETCHAR_SIM_INST_HH
#define NETCHAR_SIM_INST_HH

#include <cstdint>

namespace netchar::sim
{

/** Broad instruction classes the core model distinguishes. */
enum class InstKind : std::uint8_t
{
    Alu,    ///< simple integer/FP op
    Mul,    ///< pipelined multiply
    Div,    ///< non-pipelined divide
    Load,   ///< memory read
    Store,  ///< memory write
    Branch, ///< conditional or indirect branch
};

/** One dynamic instruction. */
struct Inst
{
    InstKind kind = InstKind::Alu;
    /** Executed in kernel mode (syscalls, networking stack, faults). */
    bool kernel = false;
    /** Branch outcome (branches only). */
    bool taken = false;
    /** Decodes through the microcode sequencer (MS switch). */
    bool microcoded = false;
    /** Instruction address. */
    std::uint64_t pc = 0;
    /** Effective data address (loads/stores only). */
    std::uint64_t addr = 0;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_INST_HH
