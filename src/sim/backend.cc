#include "sim/backend.hh"

#include <algorithm>

namespace netchar::sim
{

double
Divider::issue(double now)
{
    double stall = 0.0;
    if (busyUntil_ > now)
        stall = busyUntil_ - now;
    busyUntil_ = now + stall + latency_;
    return stall;
}

IssueModel::IssueModel(const PipelineParams &pipe, double ilp)
{
    const double width = static_cast<double>(pipe.issueWidth);
    const double slots = static_cast<double>(pipe.slotsPerCycle);
    const double effective =
        std::max(0.25, std::min(ilp, width));
    cyclesPerInst_ = 1.0 / effective;
    portStall_ = std::max(0.0, cyclesPerInst_ - 1.0 / slots);
}

} // namespace netchar::sim
