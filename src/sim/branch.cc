#include "sim/branch.hh"

#include <stdexcept>

namespace netchar::sim
{

BranchPredictor::BranchPredictor(unsigned table_bits,
                                 unsigned history_bits)
{
    if (table_bits == 0 || table_bits > 24)
        throw std::invalid_argument("BranchPredictor: bad table_bits");
    if (history_bits > table_bits)
        throw std::invalid_argument("BranchPredictor: history too long");
    table_.assign(std::size_t{1} << table_bits, 1); // weakly not-taken
    mask_ = (std::uint64_t{1} << table_bits) - 1;
    historyMask_ = (std::uint64_t{1} << history_bits) - 1;
    historyShift_ = table_bits - history_bits;
}

std::size_t
BranchPredictor::indexFor(std::uint64_t pc) const
{
    // History is folded into the top index bits so short histories
    // do not alias away the PC's low bits.
    return static_cast<std::size_t>(
        ((pc >> 2) ^ (history_ << historyShift_)) & mask_);
}

bool
BranchPredictor::predict(std::uint64_t pc) const
{
    return table_[indexFor(pc)] >= 2;
}

bool
BranchPredictor::predictAndTrain(std::uint64_t pc, bool taken)
{
    ++lookups_;
    const std::size_t idx = indexFor(pc);
    const bool prediction = table_[idx] >= 2;
    const bool correct = prediction == taken;
    if (!correct)
        ++mispredicts_;

    if (taken && table_[idx] < 3)
        ++table_[idx];
    else if (!taken && table_[idx] > 0)
        --table_[idx];

    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    return correct;
}

void
BranchPredictor::reset()
{
    for (auto &c : table_)
        c = 1;
    history_ = 0;
}

Btb::Btb(unsigned entries, unsigned assoc) : assoc_(assoc)
{
    if (entries == 0 || assoc == 0 || entries % assoc != 0)
        throw std::invalid_argument("Btb: bad geometry");
    sets_.resize(entries / assoc);
    for (auto &set : sets_)
        set.resize(assoc_);
}

bool
Btb::accessAndFill(std::uint64_t pc)
{
    ++lookups_;
    ++tick_;
    const std::uint64_t tag = pc >> 2;
    auto &set = sets_[tag % sets_.size()];
    for (Entry &e : set) {
        if (e.valid && e.tag == tag) {
            e.lastUse = tick_;
            return true;
        }
    }
    ++misses_;
    Entry *victim = &set.front();
    for (Entry &e : set) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->lastUse = tick_;
    return false;
}

bool
Btb::contains(std::uint64_t pc) const
{
    const std::uint64_t tag = pc >> 2;
    const auto &set = sets_[tag % sets_.size()];
    for (const Entry &e : set)
        if (e.valid && e.tag == tag)
            return true;
    return false;
}

void
Btb::install(std::uint64_t pc)
{
    ++tick_;
    const std::uint64_t tag = pc >> 2;
    auto &set = sets_[tag % sets_.size()];
    for (Entry &e : set) {
        if (e.valid && e.tag == tag) {
            e.lastUse = tick_;
            return;
        }
    }
    Entry *victim = &set.front();
    for (Entry &e : set) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->lastUse = tick_;
}

void
Btb::invalidateAll()
{
    for (auto &set : sets_)
        for (auto &e : set)
            e = Entry{};
}

} // namespace netchar::sim
