#include "sim/frontend.hh"

#include <algorithm>

namespace netchar::sim
{

Dsb::Dsb(unsigned lines, unsigned assoc)
    : enabled_(lines > 0)
{
    if (!enabled_)
        return;
    assoc_ = std::max(1u, std::min(assoc, lines));
    unsigned num_sets = std::max(1u, lines / assoc_);
    sets_.resize(num_sets);
    for (auto &set : sets_)
        set.resize(assoc_);
}

bool
Dsb::accessAndFill(std::uint64_t fetch_line)
{
    ++lookups_;
    if (!enabled_)
        return false;
    ++tick_;
    auto &set = sets_[static_cast<std::size_t>(
        fetch_line % sets_.size())];
    for (Entry &e : set) {
        if (e.valid && e.tag == fetch_line) {
            e.lastUse = tick_;
            ++hits_;
            return true;
        }
    }
    Entry *victim = &set.front();
    for (Entry &e : set) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->tag = fetch_line;
    victim->valid = true;
    victim->lastUse = tick_;
    return false;
}

void
Dsb::invalidateAll()
{
    for (auto &set : sets_)
        for (auto &e : set)
            e = Entry{};
}

LoopBuffer::LoopBuffer(unsigned lines) : capacity_(lines)
{
    lines_.reserve(capacity_);
}

bool
LoopBuffer::accessAndFill(std::uint64_t fetch_line)
{
    if (capacity_ == 0)
        return false;
    auto it = std::find(lines_.begin(), lines_.end(), fetch_line);
    if (it != lines_.end()) {
        // Move to most-recent position.
        lines_.erase(it);
        lines_.push_back(fetch_line);
        return true;
    }
    if (lines_.size() >= capacity_)
        lines_.erase(lines_.begin());
    lines_.push_back(fetch_line);
    return false;
}

void
LoopBuffer::invalidateAll()
{
    lines_.clear();
}

} // namespace netchar::sim
