/**
 * @file
 * Backend core-bound models: the non-pipelined divider and an issue
 * port utilization estimator.
 *
 * §VI-B2: port-utilization stalls capture both genuine port conflicts
 * and lack of intrinsic ILP in the program; divider-heavy code shows a
 * small dedicated stall share because the divide unit is non-pipelined.
 */

#ifndef NETCHAR_SIM_BACKEND_HH
#define NETCHAR_SIM_BACKEND_HH

#include <cstdint>

#include "sim/config.hh"

namespace netchar::sim
{

/**
 * Non-pipelined divider: back-to-back divides serialize; sparse
 * divides mostly hide under other work.
 */
class Divider
{
  public:
    /** @param latency Cycles one divide occupies the unit. */
    explicit Divider(double latency) : latency_(latency) {}

    /**
     * Issue a divide at the given core cycle.
     *
     * @param now Current core cycle count.
     * @return Stall cycles exposed because the unit was still busy.
     */
    double issue(double now);

    /** Forget outstanding work. */
    void reset() { busyUntil_ = 0.0; }

  private:
    double latency_;
    double busyUntil_ = 0.0;
};

/**
 * Issue-bandwidth estimator: converts a workload's intrinsic ILP into
 * per-instruction issue cycles and exposes the gap versus the machine's
 * peak slot rate as ports-utilization stalls.
 */
class IssueModel
{
  public:
    /**
     * @param pipe Pipeline widths of the machine.
     * @param ilp Workload intrinsic instruction-level parallelism
     *        (independent instructions per cycle the program offers).
     */
    IssueModel(const PipelineParams &pipe, double ilp);

    /** Cycles consumed issuing one instruction at the achieved rate. */
    double cyclesPerInst() const { return cyclesPerInst_; }

    /**
     * Ports-utilization stall cycles per instruction: achieved issue
     * time minus what the peak pipeline width would need.
     */
    double portStallPerInst() const { return portStall_; }

  private:
    double cyclesPerInst_;
    double portStall_;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_BACKEND_HH
