/**
 * @file
 * Machine configurations mirroring Table II of the paper, plus the
 * pipeline/latency parameters the statistical core model needs.
 *
 * Three factory configs are provided: the Intel Xeon E5-2620 v4
 * (baseline machine for subset validation), the Intel Core i9-9980XE
 * (main measurement machine), and the AArch64 server of §V-D.
 */

#ifndef NETCHAR_SIM_CONFIG_HH
#define NETCHAR_SIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace netchar::sim
{

/** Instruction set architecture of a modeled machine. */
enum class Isa { X86_64, AArch64 };

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    unsigned associativity = 8;
    unsigned lineBytes = 64;
};

/** Geometry of one TLB level. */
struct TlbGeometry
{
    unsigned entries = 64;
    unsigned associativity = 4;
    std::uint64_t pageBytes = 4096;
};

/** Pipeline widths and event penalties (in core cycles). */
struct PipelineParams
{
    /** Top-Down slots per cycle (4 on the Intel parts modeled). */
    unsigned slotsPerCycle = 4;
    /** Peak decode width. */
    unsigned decodeWidth = 4;
    /** Peak issue width. */
    unsigned issueWidth = 4;
    /** Reorder buffer capacity (bounds memory-level parallelism). */
    unsigned robEntries = 224;

    // Latencies (cycles)
    double l1Latency = 4.0;
    double l2Latency = 12.0;
    double llcLatency = 38.0;
    double dramLatency = 200.0;
    double dramRowMissExtra = 110.0;
    double tlbWalkLatency = 30.0;
    double stlbHitLatency = 8.0;
    double branchMispredictPenalty = 12.0;
    double btbResteerPenalty = 7.0;
    double msSwitchPenalty = 3.0;
    double pageFaultPenalty = 1500.0;

    /**
     * Fraction of an instruction-side miss's latency that shows up as
     * a frontend stall (the rest hides under backend stalls; §VI-B1
     * notes much of the I-cache stall time is hidden).
     */
    double feExposure = 0.30;

    /**
     * Fraction of a data-miss latency the out-of-order window fails
     * to hide beyond what MLP already overlaps. Models speculation
     * depth: modern cores expose well under half of a miss.
     */
    double memStallExposure = 0.30;

    /** DSB (uop cache) capacity in 32B fetch lines; 0 disables (Arm). */
    unsigned dsbLines = 96;
    /** Loop buffer capacity in fetch lines (Arm-style; 0 disables). */
    unsigned loopBufferLines = 0;
    /** Probability a DSB-delivered line still loses bandwidth slots. */
    double dsbBandwidthStall = 0.012;
    /** Probability a MITE-delivered line loses bandwidth slots. */
    double miteBandwidthStall = 0.045;
    /** Bandwidth-stall cost in cycles when one occurs. */
    double bandwidthStallCycles = 1.0;

    /** Probability a load that hits L1 still queues on L1 ports. */
    double l1BandwidthStall = 0.055;
    /** Store-buffer full probability per store. */
    double storeBufferStall = 0.020;
    double storeStallCycles = 3.0;

    /** Divider occupancy per div instruction (non-pipelined unit). */
    double divLatency = 18.0;
};

/**
 * Full machine description: Table II data plus core/uncore parameters
 * used by the simulator.
 */
struct MachineConfig
{
    std::string name;
    Isa isa = Isa::X86_64;

    unsigned physicalCores = 1;
    unsigned logicalCores = 1;

    CacheGeometry l1d{32 * 1024, 8, 64};
    CacheGeometry l1i{32 * 1024, 8, 64};
    CacheGeometry l2{256 * 1024, 8, 64};
    CacheGeometry llc{20ULL * 1024 * 1024, 16, 64};
    /** Number of LLC slices (one NoC stop each). */
    unsigned llcSlices = 8;

    TlbGeometry itlb{128, 4, 4096};
    TlbGeometry dtlb{64, 4, 4096};
    /** Unified second-level TLB (0 entries disables). */
    TlbGeometry stlb{1536, 8, 4096};

    unsigned btbEntries = 4096;
    unsigned predictorBits = 14;       ///< log2 of gshare table entries
    /**
     * Global history length. 0 = bimodal (per-PC) prediction, the
     * right model for statistical workloads whose branch outcomes
     * carry no inter-branch correlation a history could exploit.
     */
    unsigned predictorHistoryBits = 0;

    double nominalGhz = 2.0;
    double maxGhz = 3.0;

    PipelineParams pipe;

    /**
     * Software-stack maturity factor (>= 1). Models §V-D: the Arm
     * runtime/compiler stack lacks years of cross-stack tuning, so
     * jitted code is laid out across more, sparser pages and data is
     * less densely packed. 1.0 = fully tuned (Intel stack).
     */
    double codeSpreadFactor = 1.0;
    double dataSpreadFactor = 1.0;

    /**
     * Validate structural invariants with descriptive errors: every
     * cache/TLB geometry well-formed (non-zero ways, power-of-two
     * line and page sizes, size divisible by ways x line), non-zero
     * frequencies with max >= nominal, sane pipeline widths and
     * probabilities, spread factors >= 1, and every floating-point
     * parameter finite. Throws std::invalid_argument naming the
     * offending field; a malformed config must never reach a run
     * silently (sim::Machine calls this on construction).
     */
    void validate() const;

    /** Factory: Intel Xeon E5-2620 v4 (validation baseline). */
    static MachineConfig intelXeonE52620V4();

    /** Factory: Intel Core i9-9980XE (main machine). */
    static MachineConfig intelCoreI99980Xe();

    /** Factory: AArch64 server of §V-D. */
    static MachineConfig armServer();
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_CONFIG_HH
