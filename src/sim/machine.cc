#include "sim/machine.hh"

#include <algorithm>
#include <stdexcept>

namespace netchar::sim
{

Machine::Machine(const MachineConfig &cfg, unsigned active_cores,
                 std::uint64_t seed, const NocParams &noc)
    // Validate before any member consumes the config: a malformed
    // geometry must fail with a named error, not a Cache-ctor throw.
    : cfg_((cfg.validate(), cfg)),
      llc_(cfg.llc, cfg.llcSlices, cfg.pipe.llcLatency, noc),
      dram_()
{
    const unsigned n =
        std::clamp(active_cores, 1u, cfg_.physicalCores);
    cores_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        cores_.push_back(
            std::make_unique<Core>(cfg_, llc_, dram_, processPages_, i, seed));
        cores_.back()->setActiveCores(n);
    }
}

Core &
Machine::core(unsigned i)
{
    if (i >= cores_.size())
        throw std::out_of_range("Machine::core");
    return *cores_[i];
}

const Core &
Machine::core(unsigned i) const
{
    if (i >= cores_.size())
        throw std::out_of_range("Machine::core");
    return *cores_[i];
}

PerfCounters
Machine::totalCounters() const
{
    PerfCounters total;
    for (const auto &core : cores_)
        total.add(core->counters());
    return total;
}

SlotAccount
Machine::totalSlots() const
{
    SlotAccount total;
    for (const auto &core : cores_)
        total.add(core->slotAccount());
    return total;
}

double
Machine::cycles() const
{
    double total = 0.0;
    for (const auto &core : cores_)
        total += core->cycles();
    return total;
}

std::uint64_t
Machine::instructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->counters().instructions;
    return total;
}

void
Machine::emitCounterSample()
{
    if (!traceSamples_)
        return;
    trace::CounterRecord record;
    record.counters = totalCounters();
    record.slots = totalSlots();
    record.eventSeq =
        traceRecorder_ ? traceRecorder_->eventsPushed() : 0;
    traceSamples_->push(record);
}

double
Machine::seconds() const
{
    double max_cycles = 0.0;
    for (const auto &core : cores_)
        max_cycles = std::max(max_cycles, core->cycles());
    return max_cycles / (cfg_.maxGhz * 1e9);
}

void
Machine::setJitHintEnabled(bool enabled)
{
    for (auto &core : cores_)
        core->setJitHintEnabled(enabled);
}

void
Machine::reset()
{
    for (auto &core : cores_)
        core->reset();
    processPages_.clear();
    llc_.reset();
    dram_.reset();
}

} // namespace netchar::sim
