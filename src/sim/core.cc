#include "sim/core.hh"

#include <algorithm>

namespace netchar::sim
{

namespace
{

PrefetcherParams
dataPrefetcherParams(const MachineConfig &cfg)
{
    PrefetcherParams p;
    p.streams = 16;
    p.degree = 2;
    p.trainThreshold = 2;
    p.lineBytes = cfg.l1d.lineBytes;
    return p;
}

PrefetcherParams
instPrefetcherParams(const MachineConfig &cfg)
{
    PrefetcherParams p;
    p.streams = 8;
    p.degree = 2;
    p.trainThreshold = 1; // next-line I-prefetchers train fast
    p.lineBytes = cfg.l1i.lineBytes;
    return p;
}

} // namespace

Core::Core(const MachineConfig &cfg, LlcNoc &llc, DramModel &dram,
           std::unordered_set<std::uint64_t> &process_pages,
           unsigned core_id, std::uint64_t seed)
    : cfg_(cfg),
      llc_(llc),
      dram_(dram),
      touchedPages_(process_pages),
      rng_(stats::Rng(seed).fork(core_id + 1)),
      l1i_(cfg.l1i, "l1i"),
      l1d_(cfg.l1d, "l1d"),
      l2_(cfg.l2, "l2"),
      itlb_(cfg.itlb, cfg.stlb),
      dtlb_(cfg.dtlb, cfg.stlb),
      predictor_(cfg.predictorBits, cfg.predictorHistoryBits),
      btb_(cfg.btbEntries),
      dsb_(cfg.pipe.dsbLines),
      loopBuffer_(cfg.pipe.loopBufferLines),
      dataPrefetcher_(dataPrefetcherParams(cfg)),
      instPrefetcher_(instPrefetcherParams(cfg)),
      divider_(cfg.pipe.divLatency),
      issue_(cfg.pipe, 2.0)
{
    touchedPages_.reserve(1 << 16);
}

void
Core::setIlp(double ilp)
{
    ilp_ = ilp;
    issue_ = IssueModel(cfg_.pipe, ilp);
}

void
Core::setMlp(double mlp)
{
    mlp_ = std::max(1.0, mlp);
}

void
Core::touchPage(std::uint64_t addr)
{
    const std::uint64_t page = addr / 4096;
    if (touchedPages_.insert(page).second) {
        ++counters_.pageFaults;
        // Fault service time; most of it is the walk + kernel entry.
        counters_.cycles += cfg_.pipe.pageFaultPenalty;
        stallCycles_[static_cast<std::size_t>(SlotNode::BeDramBound)] +=
            cfg_.pipe.pageFaultPenalty;
    }
}

void
Core::issuePrefetches(std::uint64_t addr)
{
    for (std::uint64_t target : dataPrefetcher_.observe(addr)) {
        if (l2_.contains(target))
            continue;
        const auto out = l2_.insertPrefetch(target);
        ++counters_.prefetchesIssued;
        if (out.evictedUnusedPrefetch)
            ++counters_.prefetchesUseless;
        if (out.writeback) {
            dram_.access(target, true);
            counters_.memWriteBytes += cfg_.l2.lineBytes;
        }
        // The fill itself reads memory.
        if (!llc_.contains(target)) {
            dram_.access(target, false);
            counters_.memReadBytes += cfg_.l2.lineBytes;
        }
        llc_.insertPrefetch(target);
    }
}

double
Core::missPath(std::uint64_t addr, bool is_write, SlotNode &node)
{
    // L1D missed; walk L2 -> LLC -> DRAM and report exposed latency.
    const auto l2_out = l2_.access(addr, is_write);
    if (l2_out.evictedUnusedPrefetch)
        ++counters_.prefetchesUseless;
    if (l2_out.writeback) {
        dram_.access(addr, true);
        counters_.memWriteBytes += cfg_.l2.lineBytes;
    }
    if (l2_out.hit) {
        if (l2_out.hitOnPrefetch)
            ++counters_.prefetchesUseful;
        node = SlotNode::BeL2Bound;
        return cfg_.pipe.l2Latency;
    }
    ++counters_.l2Misses;

    const auto llc_out =
        llc_.access(addr, is_write, activeCores_, counters_.cycles);
    if (llc_out.writeback) {
        dram_.access(addr, true);
        counters_.memWriteBytes += cfg_.llc.lineBytes;
    }
    if (llc_out.hit) {
        node = SlotNode::BeL3Bound;
        return llc_out.latency;
    }
    ++counters_.llcMisses;

    const auto dram_out = dram_.access(addr, false);
    ++counters_.dramAccesses;
    counters_.memReadBytes += cfg_.llc.lineBytes;
    if (!dram_out.rowHit)
        ++counters_.dramRowMisses;
    node = SlotNode::BeDramBound;
    double latency = llc_out.latency + cfg_.pipe.dramLatency;
    if (!dram_out.rowHit)
        latency += cfg_.pipe.dramRowMissExtra;
    return latency;
}

void
Core::doLoad(std::uint64_t addr)
{
    ++counters_.loads;
    auto stall = [&](SlotNode node, double cyc) {
        counters_.cycles += cyc;
        stallCycles_[static_cast<std::size_t>(node)] += cyc;
    };

    const auto tlb_out = dtlb_.access(addr);
    if (!tlb_out.hit) {
        ++counters_.dtlbLoadMisses;
        const double walk = tlb_out.stlbHit
            ? cfg_.pipe.stlbHitLatency
            : cfg_.pipe.tlbWalkLatency;
        stall(SlotNode::BeL1Bound,
              walk * cfg_.pipe.memStallExposure / mlp_);
    }

    const auto l1_out = l1d_.access(addr, false);
    if (l1_out.hit) {
        // L1 hits can still queue on D-cache ports (§VI-B2 notes L1
        // bandwidth saturation in ASP.NET).
        if (rng_.chance(cfg_.pipe.l1BandwidthStall))
            stall(SlotNode::BeL1Bound, cfg_.pipe.l1Latency);
        return;
    }
    ++counters_.l1dMisses;
    touchPage(addr);
    issuePrefetches(addr);

    SlotNode node = SlotNode::BeL2Bound;
    const double latency = missPath(addr, false, node);
    stall(node, latency * cfg_.pipe.memStallExposure / mlp_);
}

void
Core::doStore(std::uint64_t addr)
{
    ++counters_.stores;
    auto stall = [&](SlotNode node, double cyc) {
        counters_.cycles += cyc;
        stallCycles_[static_cast<std::size_t>(node)] += cyc;
    };

    const auto tlb_out = dtlb_.access(addr);
    if (!tlb_out.hit) {
        ++counters_.dtlbStoreMisses;
        const double walk = tlb_out.stlbHit
            ? cfg_.pipe.stlbHitLatency
            : cfg_.pipe.tlbWalkLatency;
        stall(SlotNode::BeStoreBound,
              walk * cfg_.pipe.memStallExposure / mlp_);
    }

    if (rng_.chance(cfg_.pipe.storeBufferStall))
        stall(SlotNode::BeStoreBound, cfg_.pipe.storeStallCycles);

    const auto l1_out = l1d_.access(addr, true);
    if (l1_out.hit)
        return;
    ++counters_.l1dMisses;
    touchPage(addr);
    issuePrefetches(addr);

    SlotNode node = SlotNode::BeL2Bound;
    const double latency = missPath(addr, true, node);
    // The store buffer hides most write-allocate latency; only part
    // of it backs up into the pipeline.
    stall(SlotNode::BeStoreBound,
          0.25 * latency * cfg_.pipe.memStallExposure / mlp_);
    (void)node;
}

void
Core::fetch(std::uint64_t pc, bool kernel)
{
    (void)kernel;
    const std::uint64_t fetch_line = pc >> 5; // 32 B fetch blocks
    if (fetch_line == lastFetchLine_)
        return;
    lastFetchLine_ = fetch_line;

    auto stall = [&](SlotNode node, double cyc) {
        counters_.cycles += cyc;
        stallCycles_[static_cast<std::size_t>(node)] += cyc;
    };

    if (loopBuffer_.accessAndFill(fetch_line))
        return; // replay from the loop buffer: no fetch at all

    // Decode-path bandwidth: DSB hit or legacy MITE pipeline.
    if (dsb_.accessAndFill(fetch_line)) {
        if (rng_.chance(cfg_.pipe.dsbBandwidthStall))
            stall(SlotNode::FeDsb, cfg_.pipe.bandwidthStallCycles);
    } else {
        if (rng_.chance(cfg_.pipe.miteBandwidthStall))
            stall(SlotNode::FeMite, cfg_.pipe.bandwidthStallCycles);
    }

    const auto tlb_out = itlb_.access(pc);
    if (!tlb_out.hit) {
        ++counters_.itlbMisses;
        const double walk = tlb_out.stlbHit
            ? cfg_.pipe.stlbHitLatency
            : cfg_.pipe.tlbWalkLatency;
        stall(SlotNode::FeITlb, walk * cfg_.pipe.feExposure);
    }

    const auto l1_out = l1i_.access(pc, false);
    if (l1_out.hit)
        return;
    ++counters_.l1iMisses;
    touchPage(pc);

    // I-side next-line prefetch into L1I.
    for (std::uint64_t target : instPrefetcher_.observe(pc)) {
        if (!l1i_.contains(target)) {
            l1i_.insertPrefetch(target);
            ++counters_.prefetchesIssued;
            if (!l2_.contains(target) && !llc_.contains(target)) {
                dram_.access(target, false);
                counters_.memReadBytes += cfg_.l1i.lineBytes;
            }
            l2_.insertPrefetch(target);
        }
    }

    SlotNode node = SlotNode::BeL2Bound;
    const double latency = missPath(pc, false, node);
    // Fetch-ahead and the instruction byte queue hide most of the
    // *queueing* component of contended LLC code accesses; only the
    // base miss latency stalls the frontend at the usual exposure.
    double queue = 0.0;
    if (node == SlotNode::BeL3Bound || node == SlotNode::BeDramBound)
        queue = llc_.lastQueueDelay();
    stall(SlotNode::FeICache,
          (latency - queue) * cfg_.pipe.feExposure + queue * 0.08);
}

void
Core::execute(const Inst &inst)
{
    ++counters_.instructions;
    if (inst.kernel)
        ++counters_.kernelInstructions;

    // Issue bandwidth: retiring share plus ports-utilization share.
    counters_.cycles += issue_.cyclesPerInst();
    stallCycles_[static_cast<std::size_t>(SlotNode::BePortsUtil)] +=
        issue_.portStallPerInst();

    fetch(inst.pc, inst.kernel);

    auto stall = [&](SlotNode node, double cyc) {
        counters_.cycles += cyc;
        stallCycles_[static_cast<std::size_t>(node)] += cyc;
    };

    if (inst.microcoded)
        stall(SlotNode::FeMsSwitch, cfg_.pipe.msSwitchPenalty);

    switch (inst.kind) {
      case InstKind::Branch: {
        ++counters_.branches;
        if (!btb_.accessAndFill(inst.pc)) {
            ++counters_.btbMisses;
            if (inst.taken)
                stall(SlotNode::FeBtbResteer,
                      cfg_.pipe.btbResteerPenalty);
        }
        if (!predictor_.predictAndTrain(inst.pc, inst.taken)) {
            ++counters_.branchMisses;
            stall(SlotNode::BadSpeculation,
                  cfg_.pipe.branchMispredictPenalty);
        }
        break;
      }
      case InstKind::Load:
        doLoad(inst.addr);
        break;
      case InstKind::Store:
        doStore(inst.addr);
        break;
      case InstKind::Div:
        stall(SlotNode::BeDivider, divider_.issue(counters_.cycles));
        break;
      case InstKind::Mul:
      case InstKind::Alu:
        break;
    }
}

void
Core::prefaultRegion(std::uint64_t base, std::uint64_t bytes)
{
    const std::uint64_t first = base / 4096;
    const std::uint64_t last = (base + bytes + 4095) / 4096;
    for (std::uint64_t page = first; page < last; ++page)
        touchedPages_.insert(page);
}

void
Core::preloadLlc(std::uint64_t base, std::uint64_t bytes)
{
    const std::uint64_t line = cfg_.llc.lineBytes;
    for (std::uint64_t addr = base & ~std::uint64_t{line - 1};
         addr < base + bytes; addr += line)
        llc_.insertPrefetch(addr);
}

void
Core::onJitPage(std::uint64_t page_addr, std::uint64_t bytes)
{
    if (!jitHintEnabled_)
        return;
    // ISA-hook model: the runtime tells the hardware about the fresh
    // code page; the prefetcher pulls its lines into L2/L1I and the
    // translation is pre-installed, so first execution avoids the cold
    // start (§VII-A1's proposed mitigation).
    const std::uint64_t line = cfg_.l1i.lineBytes;
    for (std::uint64_t off = 0; off < bytes; off += line) {
        const std::uint64_t addr = page_addr + off;
        l2_.insertPrefetch(addr);
        l1i_.insertPrefetch(addr);
        ++counters_.prefetchesIssued;
    }
    itlb_.install(page_addr);
    // The page arrives via the kernel's JIT mapping, so it does not
    // minor-fault on first execution either.
    touchedPages_.insert(page_addr / 4096);
}

void
Core::onJitBranchMoved(std::uint64_t old_pc, std::uint64_t new_pc)
{
    if (!jitHintEnabled_)
        return;
    (void)old_pc;
    btb_.install(new_pc);
}

SlotAccount
Core::slotAccount() const
{
    SlotAccount account;
    const double slots = static_cast<double>(cfg_.pipe.slotsPerCycle);
    account[SlotNode::Retiring] =
        static_cast<double>(counters_.instructions);
    for (std::size_t i = 0; i < stallCycles_.size(); ++i) {
        const auto node = static_cast<SlotNode>(i);
        if (node == SlotNode::Retiring)
            continue;
        account[node] += stallCycles_[i] * slots;
    }
    return account;
}

void
Core::reset()
{
    l1i_.invalidateAll();
    l1d_.invalidateAll();
    l2_.invalidateAll();
    itlb_.invalidateAll();
    dtlb_.invalidateAll();
    predictor_.reset();
    btb_.invalidateAll();
    dsb_.invalidateAll();
    loopBuffer_.invalidateAll();
    dataPrefetcher_.reset();
    instPrefetcher_.reset();
    divider_.reset();
    counters_ = PerfCounters{};
    stallCycles_.fill(0.0);
    lastFetchLine_ = ~0ULL;
}

} // namespace netchar::sim
