/**
 * @file
 * Set-associative TLB model with an optional unified second level.
 *
 * Mirrors the structures the paper's metrics 12-14 measure: dedicated
 * first-level I-TLB and D-TLB plus a shared second-level (S)TLB, with
 * page-walk latency charged on a full miss.
 */

#ifndef NETCHAR_SIM_TLB_HH
#define NETCHAR_SIM_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace netchar::sim
{

/** Outcome of one TLB lookup. */
struct TlbOutcome
{
    /** First-level hit. */
    bool hit = false;
    /** Missed L1 TLB but hit the second level. */
    bool stlbHit = false;
};

/**
 * One TLB level: set-associative over virtual page numbers, true LRU.
 */
class Tlb
{
  public:
    /**
     * @param geometry Entry count, associativity and page size. Entry
     *        count must be a multiple of associativity.
     */
    explicit Tlb(const TlbGeometry &geometry);

    /** Lookup a byte address; fills the entry on miss. */
    bool access(std::uint64_t addr);

    /** Probe without state change. */
    bool contains(std::uint64_t addr) const;

    /** Pre-install a translation (JIT-hint warmup path). */
    void install(std::uint64_t addr);

    /** Drop all entries. */
    void invalidateAll();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t vpnFor(std::uint64_t addr) const
    {
        return addr / pageBytes_;
    }

    Entry *findVictim(std::vector<Entry> &set);

    std::uint64_t pageBytes_;
    unsigned assoc_;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t tick_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Two-level TLB hierarchy: a dedicated L1 TLB backed by an optional
 * shared STLB. Both levels fill on a walk.
 */
class TlbHierarchy
{
  public:
    /**
     * @param l1 First-level geometry.
     * @param stlb Second-level geometry; entries == 0 disables it.
     */
    TlbHierarchy(const TlbGeometry &l1, const TlbGeometry &stlb);

    /** Translate; fills both levels as needed. */
    TlbOutcome access(std::uint64_t addr);

    /** Pre-install into both levels (JIT-hint warmup path). */
    void install(std::uint64_t addr);

    /** Drop all entries in both levels. */
    void invalidateAll();

    /** First-level miss count (what perf's *tlb_misses report). */
    std::uint64_t l1Misses() const { return l1_.misses(); }

    /** Full misses that required a page walk. */
    std::uint64_t walks() const { return walks_; }

  private:
    Tlb l1_;
    bool hasStlb_;
    Tlb stlb_;
    std::uint64_t walks_ = 0;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_TLB_HH
