/**
 * @file
 * Frontend instruction-delivery structures: the DSB (decoded stream
 * buffer / uop cache) and an Arm-style loop buffer.
 *
 * §VI-B1 attributes a large share of .NET/ASP.NET frontend-bandwidth
 * stalls to DSB and MITE (legacy decode) bandwidth. The model tracks
 * which fetch lines are DSB-resident: hot loops stream from the DSB,
 * everything else decodes through MITE with a higher chance of losing
 * fetch bandwidth.
 */

#ifndef NETCHAR_SIM_FRONTEND_HH
#define NETCHAR_SIM_FRONTEND_HH

#include <cstdint>
#include <vector>

namespace netchar::sim
{

/**
 * Decoded stream buffer: a small fully-tagged LRU store of 32-byte
 * fetch-line addresses. A lookup hit means uops for that line stream
 * from the DSB instead of the legacy decoders.
 */
class Dsb
{
  public:
    /**
     * @param lines Capacity in fetch lines; 0 produces a DSB that
     *        never hits (machines without a uop cache).
     * @param assoc Set associativity (clamped to lines).
     */
    explicit Dsb(unsigned lines, unsigned assoc = 8);

    /** Lookup a fetch-line address; fills on miss. */
    bool accessAndFill(std::uint64_t fetch_line);

    /** Drop all lines. */
    void invalidateAll();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    bool enabled_;
    unsigned assoc_ = 1;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

/**
 * Loop buffer: replays the most recent N distinct fetch lines (a tiny
 * fully-associative structure on Arm cores). A hit bypasses both the
 * I-cache and the decoders.
 */
class LoopBuffer
{
  public:
    /** @param lines Capacity in fetch lines; 0 disables. */
    explicit LoopBuffer(unsigned lines);

    /** Lookup a fetch-line address; records it as most recent. */
    bool accessAndFill(std::uint64_t fetch_line);

    /** Drop all lines. */
    void invalidateAll();

  private:
    unsigned capacity_;
    std::vector<std::uint64_t> lines_; ///< most recent last
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_FRONTEND_HH
