#include "sim/noc.hh"

#include <algorithm>
#include <stdexcept>

namespace netchar::sim
{

LlcNoc::LlcNoc(const CacheGeometry &geometry, unsigned slices,
               double base_latency, const NocParams &params)
    : baseLatency_(base_latency), params_(params)
{
    if (slices == 0)
        throw std::invalid_argument("LlcNoc: zero slices");
    if (geometry.sizeBytes % slices != 0)
        throw std::invalid_argument(
            "LlcNoc: capacity does not divide across slices");
    CacheGeometry slice_geom = geometry;
    slice_geom.sizeBytes = geometry.sizeBytes / slices;
    for (unsigned i = 0; i < slices; ++i)
        slices_.push_back(
            std::make_unique<Cache>(slice_geom, "llc-slice"));
}

std::size_t
LlcNoc::sliceFor(std::uint64_t addr) const
{
    // Cheap line-address hash standing in for Intel's slice hash.
    std::uint64_t line = addr / 64;
    line ^= line >> 17;
    line *= 0x9E3779B97F4A7C15ULL;
    line ^= line >> 29;
    return static_cast<std::size_t>(line % slices_.size());
}

LlcOutcome
LlcNoc::access(std::uint64_t addr, bool is_write,
               unsigned active_cores, double core_cycles)
{
    LlcOutcome out;
    ++accesses_;
    ++windowAccesses_;
    (void)active_cores;

    // Aggregate arrival-rate estimate: total accesses (all cores)
    // divided by wall-clock progress, where wall clock is the max
    // core-cycle count observed (cores run concurrently, so the
    // furthest core's clock is the wall).
    lastCycles_ = std::max(lastCycles_, core_cycles);
    if (windowAccesses_ >= params_.rateSmoothing &&
        lastCycles_ > windowStartCycles_) {
        const double rate = static_cast<double>(windowAccesses_) /
            (lastCycles_ - windowStartCycles_);
        smoothedRate_ = smoothedRate_ == 0.0
            ? rate
            : 0.7 * smoothedRate_ + 0.3 * rate;
        windowAccesses_ = 0;
        windowStartCycles_ = lastCycles_;
    }

    double queue_delay = 0.0;
    if (params_.contentionEnabled && smoothedRate_ > 0.0) {
        // Arrival rate per NoC stop, M/M/1 waiting time.
        const double lambda = smoothedRate_ /
            static_cast<double>(slices_.size());
        const double rho =
            std::min(lambda / params_.sliceServiceRate, 0.98);
        queue_delay = std::min(
            baseLatency_ * rho / (1.0 - rho), params_.maxQueueCycles);
    }
    lastQueueDelay_ = queue_delay;

    const auto cache_out =
        slices_[sliceFor(addr)]->access(addr, is_write);
    out.hit = cache_out.hit;
    out.evictedUnusedPrefetch = cache_out.evictedUnusedPrefetch;
    out.writeback = cache_out.writeback;
    out.latency = baseLatency_ + queue_delay;
    if (!out.hit)
        ++misses_;
    return out;
}

CacheOutcome
LlcNoc::insertPrefetch(std::uint64_t addr)
{
    return slices_[sliceFor(addr)]->insertPrefetch(addr);
}

bool
LlcNoc::contains(std::uint64_t addr) const
{
    return slices_[sliceFor(addr)]->contains(addr);
}

void
LlcNoc::reset()
{
    for (auto &slice : slices_)
        slice->invalidateAll();
    accesses_ = 0;
    misses_ = 0;
    smoothedRate_ = 0.0;
    lastCycles_ = 0.0;
    windowStartCycles_ = 0.0;
    windowAccesses_ = 0;
    lastQueueDelay_ = 0.0;
}

} // namespace netchar::sim
