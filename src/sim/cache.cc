#include "sim/cache.hh"

#include <stdexcept>

namespace netchar::sim
{

Cache::Cache(const CacheGeometry &geometry, std::string name)
    : name_(std::move(name)),
      lineBytes_(geometry.lineBytes),
      assoc_(geometry.associativity)
{
    if (lineBytes_ == 0 || assoc_ == 0)
        throw std::invalid_argument(name_ + ": zero line size or assoc");
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(lineBytes_) * assoc_;
    if (geometry.sizeBytes == 0 || geometry.sizeBytes % way_bytes != 0)
        throw std::invalid_argument(
            name_ + ": size not a multiple of assoc x line");
    const std::uint64_t num_sets = geometry.sizeBytes / way_bytes;
    sets_.resize(num_sets);
    for (auto &set : sets_)
        set.ways.resize(assoc_);
}

CacheOutcome
Cache::access(std::uint64_t addr, bool is_write)
{
    CacheOutcome out;
    ++accesses_;
    ++tick_;
    const std::uint64_t line = lineFor(addr);
    Set &set = sets_[line % sets_.size()];

    for (Way &way : set.ways) {
        if (way.valid && way.tag == line) {
            out.hit = true;
            out.hitOnPrefetch = way.prefetched;
            way.prefetched = false;
            way.lastUse = tick_;
            way.dirty = way.dirty || is_write;
            return out;
        }
    }

    ++misses_;
    // Victim: invalid way first, else LRU.
    Way *victim = &set.ways.front();
    for (Way &way : set.ways) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    if (victim->valid) {
        out.evictedUnusedPrefetch = victim->prefetched;
        out.writeback = victim->dirty;
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = is_write;
    victim->prefetched = false;
    victim->lastUse = tick_;
    return out;
}

CacheOutcome
Cache::insertPrefetch(std::uint64_t addr)
{
    CacheOutcome out;
    ++tick_;
    const std::uint64_t line = lineFor(addr);
    Set &set = sets_[line % sets_.size()];

    for (Way &way : set.ways) {
        if (way.valid && way.tag == line)
            return out; // already present; nothing to do
    }

    Way *victim = &set.ways.front();
    for (Way &way : set.ways) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    if (victim->valid) {
        out.evictedUnusedPrefetch = victim->prefetched;
        out.writeback = victim->dirty;
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = false;
    victim->prefetched = true;
    victim->lastUse = tick_;
    return out;
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::uint64_t line = lineFor(addr);
    const Set &set = sets_[line % sets_.size()];
    for (const Way &way : set.ways)
        if (way.valid && way.tag == line)
            return true;
    return false;
}

void
Cache::invalidateAll()
{
    for (auto &set : sets_)
        for (auto &way : set.ways)
            way = Way{};
}

} // namespace netchar::sim
