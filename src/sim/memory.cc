#include "sim/memory.hh"

#include <stdexcept>

namespace netchar::sim
{

DramModel::DramModel(const DramParams &params) : params_(params)
{
    if (params_.banks == 0 || params_.rowBytes == 0 ||
        params_.lineBytes == 0)
        throw std::invalid_argument("DramModel: bad params");
    openRow_.assign(params_.banks, -1);
}

DramOutcome
DramModel::access(std::uint64_t addr, bool is_write)
{
    DramOutcome out;
    ++accesses_;
    const std::uint64_t row = addr / params_.rowBytes;
    const std::size_t bank =
        static_cast<std::size_t>(row % params_.banks);
    if (openRow_[bank] == static_cast<std::int64_t>(row)) {
        out.rowHit = true;
    } else {
        ++rowMisses_;
        openRow_[bank] = static_cast<std::int64_t>(row);
    }
    if (is_write)
        writeBytes_ += params_.lineBytes;
    else
        readBytes_ += params_.lineBytes;
    return out;
}

void
DramModel::reset()
{
    openRow_.assign(params_.banks, -1);
    accesses_ = 0;
    rowMisses_ = 0;
    readBytes_ = 0;
    writeBytes_ = 0;
}

double
DramModel::rowMissRate() const
{
    return accesses_ > 0
        ? static_cast<double>(rowMisses_) /
              static_cast<double>(accesses_)
        : 0.0;
}

} // namespace netchar::sim
