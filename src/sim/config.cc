#include "sim/config.hh"

#include <cmath>
#include <stdexcept>

namespace netchar::sim
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Throw std::invalid_argument "<machine>: <what>". */
[[noreturn]] void
fail(const std::string &machine, const std::string &what)
{
    throw std::invalid_argument(
        (machine.empty() ? std::string("MachineConfig") : machine) +
        ": " + what);
}

void
checkCache(const std::string &machine, const char *which,
           const CacheGeometry &g)
{
    const std::string name = std::string(which);
    if (g.associativity == 0)
        fail(machine, name + " has zero ways (associativity)");
    if (!isPowerOfTwo(g.lineBytes))
        fail(machine, name + " line size " +
                          std::to_string(g.lineBytes) +
                          " is not a power of two");
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(g.lineBytes) * g.associativity;
    if (g.sizeBytes == 0 || g.sizeBytes % way_bytes != 0)
        fail(machine, name + " size " + std::to_string(g.sizeBytes) +
                          " is not a positive multiple of ways x "
                          "line (" + std::to_string(way_bytes) + ")");
}

void
checkTlb(const std::string &machine, const char *which,
         const TlbGeometry &g)
{
    const std::string name = std::string(which);
    if (g.associativity == 0)
        fail(machine, name + " has zero ways (associativity)");
    if (g.entries == 0 || g.entries % g.associativity != 0)
        fail(machine, name + " entry count " +
                          std::to_string(g.entries) +
                          " is not a positive multiple of its " +
                          std::to_string(g.associativity) + " ways");
    if (!isPowerOfTwo(g.pageBytes))
        fail(machine, name + " page size " +
                          std::to_string(g.pageBytes) +
                          " is not a power of two");
}

void
checkProbability(const std::string &machine, const char *field,
                 double value)
{
    if (!(value >= 0.0 && value <= 1.0))
        fail(machine, std::string(field) + " = " +
                          std::to_string(value) +
                          " is not a probability in [0,1]");
}

void
checkNonNegativeFinite(const std::string &machine, const char *field,
                       double value)
{
    if (!std::isfinite(value) || value < 0.0)
        fail(machine, std::string(field) + " = " +
                          std::to_string(value) +
                          " must be finite and >= 0");
}

} // namespace

void
MachineConfig::validate() const
{
    if (physicalCores == 0)
        fail(name, "zero physical cores");
    if (logicalCores < physicalCores)
        fail(name, "logical cores (" + std::to_string(logicalCores) +
                       ") below physical cores (" +
                       std::to_string(physicalCores) + ")");

    checkCache(name, "L1D", l1d);
    checkCache(name, "L1I", l1i);
    checkCache(name, "L2", l2);
    checkCache(name, "LLC", llc);
    if (llcSlices == 0)
        fail(name, "zero LLC slices");

    checkTlb(name, "ITLB", itlb);
    checkTlb(name, "DTLB", dtlb);
    if (stlb.entries > 0)
        checkTlb(name, "STLB", stlb);

    if (btbEntries == 0)
        fail(name, "zero BTB entries");
    if (predictorBits == 0 || predictorBits > 30)
        fail(name, "predictor bits " + std::to_string(predictorBits) +
                       " outside [1,30]");

    if (!std::isfinite(nominalGhz) || nominalGhz <= 0.0)
        fail(name, "zero or invalid nominal frequency (" +
                       std::to_string(nominalGhz) + " GHz)");
    if (!std::isfinite(maxGhz) || maxGhz < nominalGhz)
        fail(name, "max frequency (" + std::to_string(maxGhz) +
                       " GHz) below nominal (" +
                       std::to_string(nominalGhz) + " GHz)");

    if (pipe.slotsPerCycle == 0)
        fail(name, "zero pipeline slots per cycle");
    if (pipe.decodeWidth == 0 || pipe.issueWidth == 0)
        fail(name, "zero decode or issue width");
    if (pipe.robEntries == 0)
        fail(name, "zero ROB entries");

    checkNonNegativeFinite(name, "l1Latency", pipe.l1Latency);
    checkNonNegativeFinite(name, "l2Latency", pipe.l2Latency);
    checkNonNegativeFinite(name, "llcLatency", pipe.llcLatency);
    checkNonNegativeFinite(name, "dramLatency", pipe.dramLatency);
    checkNonNegativeFinite(name, "dramRowMissExtra",
                           pipe.dramRowMissExtra);
    checkNonNegativeFinite(name, "tlbWalkLatency",
                           pipe.tlbWalkLatency);
    checkNonNegativeFinite(name, "stlbHitLatency",
                           pipe.stlbHitLatency);
    checkNonNegativeFinite(name, "branchMispredictPenalty",
                           pipe.branchMispredictPenalty);
    checkNonNegativeFinite(name, "btbResteerPenalty",
                           pipe.btbResteerPenalty);
    checkNonNegativeFinite(name, "msSwitchPenalty",
                           pipe.msSwitchPenalty);
    checkNonNegativeFinite(name, "pageFaultPenalty",
                           pipe.pageFaultPenalty);
    checkNonNegativeFinite(name, "bandwidthStallCycles",
                           pipe.bandwidthStallCycles);
    checkNonNegativeFinite(name, "storeStallCycles",
                           pipe.storeStallCycles);
    checkNonNegativeFinite(name, "divLatency", pipe.divLatency);

    checkProbability(name, "feExposure", pipe.feExposure);
    checkProbability(name, "memStallExposure", pipe.memStallExposure);
    checkProbability(name, "dsbBandwidthStall",
                     pipe.dsbBandwidthStall);
    checkProbability(name, "miteBandwidthStall",
                     pipe.miteBandwidthStall);
    checkProbability(name, "l1BandwidthStall", pipe.l1BandwidthStall);
    checkProbability(name, "storeBufferStall", pipe.storeBufferStall);

    if (!std::isfinite(codeSpreadFactor) || codeSpreadFactor < 1.0)
        fail(name, "codeSpreadFactor " +
                       std::to_string(codeSpreadFactor) +
                       " must be finite and >= 1");
    if (!std::isfinite(dataSpreadFactor) || dataSpreadFactor < 1.0)
        fail(name, "dataSpreadFactor " +
                       std::to_string(dataSpreadFactor) +
                       " must be finite and >= 1");
}

MachineConfig
MachineConfig::intelXeonE52620V4()
{
    MachineConfig cfg;
    cfg.name = "Intel Xeon E5-2620 v4";
    cfg.isa = Isa::X86_64;
    cfg.physicalCores = 16;
    cfg.logicalCores = 32;
    cfg.l1d = {32 * 1024, 8, 64};
    cfg.l1i = {32 * 1024, 8, 64};
    cfg.l2 = {256 * 1024, 8, 64};
    // 20 MiB x 2 sockets; model the socket the workload runs on.
    cfg.llc = {20ULL * 1024 * 1024, 20, 64};
    cfg.llcSlices = 8;
    cfg.itlb = {128, 4, 4096};
    cfg.dtlb = {64, 4, 4096};
    cfg.stlb = {1536, 6, 4096};
    cfg.btbEntries = 4096;
    cfg.predictorBits = 16;
    cfg.nominalGhz = 2.1;
    cfg.maxGhz = 3.0;
    cfg.pipe.slotsPerCycle = 4;
    cfg.pipe.decodeWidth = 4;
    cfg.pipe.issueWidth = 4;
    cfg.pipe.robEntries = 192;
    cfg.pipe.l2Latency = 12.0;
    cfg.pipe.llcLatency = 44.0;  // Broadwell ring is slower than SKX mesh
    cfg.pipe.dramLatency = 230.0;
    cfg.pipe.dsbLines = 64;      // 1.5K uop DSB
    return cfg;
}

MachineConfig
MachineConfig::intelCoreI99980Xe()
{
    MachineConfig cfg;
    cfg.name = "Intel Core i9-9980XE";
    cfg.isa = Isa::X86_64;
    cfg.physicalCores = 18;
    cfg.logicalCores = 18;
    cfg.l1d = {32 * 1024, 8, 64};
    cfg.l1i = {32 * 1024, 8, 64};
    cfg.l2 = {1024 * 1024, 16, 64};
    // 24.75 MiB non-inclusive LLC.
    cfg.llc = {24ULL * 1024 * 1024 + 768 * 1024, 11, 64};
    cfg.llcSlices = 18;
    cfg.itlb = {128, 8, 4096};
    cfg.dtlb = {64, 4, 4096};
    cfg.stlb = {1536, 12, 4096};
    cfg.btbEntries = 8192;
    cfg.predictorBits = 17;
    cfg.nominalGhz = 3.0;
    cfg.maxGhz = 4.5;
    cfg.pipe.slotsPerCycle = 4;
    cfg.pipe.decodeWidth = 4;
    cfg.pipe.issueWidth = 4;
    cfg.pipe.robEntries = 224;
    cfg.pipe.l2Latency = 13.0;
    cfg.pipe.llcLatency = 50.0;  // mesh; bigger L2 compensates
    cfg.pipe.dramLatency = 210.0;
    cfg.pipe.dsbLines = 96;      // 2.25K uop DSB (Skylake-X)
    return cfg;
}

MachineConfig
MachineConfig::armServer()
{
    MachineConfig cfg;
    cfg.name = "Arm server (AArch64)";
    cfg.isa = Isa::AArch64;
    cfg.physicalCores = 32;
    cfg.logicalCores = 32;
    cfg.l1d = {32 * 1024, 8, 64};
    cfg.l1i = {32 * 1024, 8, 64};
    cfg.l2 = {256 * 1024, 8, 64};
    cfg.llc = {32ULL * 1024 * 1024, 16, 64};
    cfg.llcSlices = 8;
    // Dedicated small I/D TLBs plus a 2K-entry secondary TLB (§III-B).
    cfg.itlb = {48, 4, 4096};
    cfg.dtlb = {32, 4, 4096};
    cfg.stlb = {2048, 8, 4096};
    cfg.btbEntries = 3072;
    cfg.predictorBits = 15;
    cfg.nominalGhz = 1.6;
    cfg.maxGhz = 2.2;
    cfg.pipe.slotsPerCycle = 4;   // decodes up to 4 micro-ops
    cfg.pipe.decodeWidth = 4;
    cfg.pipe.issueWidth = 6;      // issues up to 6 micro-ops
    cfg.pipe.robEntries = 180;
    cfg.pipe.l2Latency = 14.0;
    cfg.pipe.llcLatency = 60.0;
    cfg.pipe.dramLatency = 260.0;
    cfg.pipe.dsbLines = 0;        // no uop cache
    cfg.pipe.loopBufferLines = 4; // 128-entry loop buffer
    cfg.pipe.miteBandwidthStall = 0.06;
    // §V-D: the Arm .NET stack lacks cross-stack tuning; jitted code
    // and heap layouts are markedly sparser than on the Intel stack.
    cfg.codeSpreadFactor = 14.0;
    cfg.dataSpreadFactor = 2.5;
    return cfg;
}

} // namespace netchar::sim
