#include "sim/config.hh"

namespace netchar::sim
{

MachineConfig
MachineConfig::intelXeonE52620V4()
{
    MachineConfig cfg;
    cfg.name = "Intel Xeon E5-2620 v4";
    cfg.isa = Isa::X86_64;
    cfg.physicalCores = 16;
    cfg.logicalCores = 32;
    cfg.l1d = {32 * 1024, 8, 64};
    cfg.l1i = {32 * 1024, 8, 64};
    cfg.l2 = {256 * 1024, 8, 64};
    // 20 MiB x 2 sockets; model the socket the workload runs on.
    cfg.llc = {20ULL * 1024 * 1024, 20, 64};
    cfg.llcSlices = 8;
    cfg.itlb = {128, 4, 4096};
    cfg.dtlb = {64, 4, 4096};
    cfg.stlb = {1536, 6, 4096};
    cfg.btbEntries = 4096;
    cfg.predictorBits = 16;
    cfg.nominalGhz = 2.1;
    cfg.maxGhz = 3.0;
    cfg.pipe.slotsPerCycle = 4;
    cfg.pipe.decodeWidth = 4;
    cfg.pipe.issueWidth = 4;
    cfg.pipe.robEntries = 192;
    cfg.pipe.l2Latency = 12.0;
    cfg.pipe.llcLatency = 44.0;  // Broadwell ring is slower than SKX mesh
    cfg.pipe.dramLatency = 230.0;
    cfg.pipe.dsbLines = 64;      // 1.5K uop DSB
    return cfg;
}

MachineConfig
MachineConfig::intelCoreI99980Xe()
{
    MachineConfig cfg;
    cfg.name = "Intel Core i9-9980XE";
    cfg.isa = Isa::X86_64;
    cfg.physicalCores = 18;
    cfg.logicalCores = 18;
    cfg.l1d = {32 * 1024, 8, 64};
    cfg.l1i = {32 * 1024, 8, 64};
    cfg.l2 = {1024 * 1024, 16, 64};
    // 24.75 MiB non-inclusive LLC.
    cfg.llc = {24ULL * 1024 * 1024 + 768 * 1024, 11, 64};
    cfg.llcSlices = 18;
    cfg.itlb = {128, 8, 4096};
    cfg.dtlb = {64, 4, 4096};
    cfg.stlb = {1536, 12, 4096};
    cfg.btbEntries = 8192;
    cfg.predictorBits = 17;
    cfg.nominalGhz = 3.0;
    cfg.maxGhz = 4.5;
    cfg.pipe.slotsPerCycle = 4;
    cfg.pipe.decodeWidth = 4;
    cfg.pipe.issueWidth = 4;
    cfg.pipe.robEntries = 224;
    cfg.pipe.l2Latency = 13.0;
    cfg.pipe.llcLatency = 50.0;  // mesh; bigger L2 compensates
    cfg.pipe.dramLatency = 210.0;
    cfg.pipe.dsbLines = 96;      // 2.25K uop DSB (Skylake-X)
    return cfg;
}

MachineConfig
MachineConfig::armServer()
{
    MachineConfig cfg;
    cfg.name = "Arm server (AArch64)";
    cfg.isa = Isa::AArch64;
    cfg.physicalCores = 32;
    cfg.logicalCores = 32;
    cfg.l1d = {32 * 1024, 8, 64};
    cfg.l1i = {32 * 1024, 8, 64};
    cfg.l2 = {256 * 1024, 8, 64};
    cfg.llc = {32ULL * 1024 * 1024, 16, 64};
    cfg.llcSlices = 8;
    // Dedicated small I/D TLBs plus a 2K-entry secondary TLB (§III-B).
    cfg.itlb = {48, 4, 4096};
    cfg.dtlb = {32, 4, 4096};
    cfg.stlb = {2048, 8, 4096};
    cfg.btbEntries = 3072;
    cfg.predictorBits = 15;
    cfg.nominalGhz = 1.6;
    cfg.maxGhz = 2.2;
    cfg.pipe.slotsPerCycle = 4;   // decodes up to 4 micro-ops
    cfg.pipe.decodeWidth = 4;
    cfg.pipe.issueWidth = 6;      // issues up to 6 micro-ops
    cfg.pipe.robEntries = 180;
    cfg.pipe.l2Latency = 14.0;
    cfg.pipe.llcLatency = 60.0;
    cfg.pipe.dramLatency = 260.0;
    cfg.pipe.dsbLines = 0;        // no uop cache
    cfg.pipe.loopBufferLines = 4; // 128-entry loop buffer
    cfg.pipe.miteBandwidthStall = 0.06;
    // §V-D: the Arm .NET stack lacks cross-stack tuning; jitted code
    // and heap layouts are markedly sparser than on the Intel stack.
    cfg.codeSpreadFactor = 14.0;
    cfg.dataSpreadFactor = 2.5;
    return cfg;
}

} // namespace netchar::sim
