/**
 * @file
 * Branch direction predictor (gshare) and branch target buffer.
 *
 * PC-indexed predictor state is central to the paper's JIT cold-start
 * findings (§VII-A1): when the runtime re-JITs a method to a new code
 * page, branch addresses change and the predictor/BTB state trained on
 * the old addresses becomes unreachable, forcing retraining. Because
 * both structures here are genuinely PC-indexed, that effect emerges
 * naturally in simulation.
 */

#ifndef NETCHAR_SIM_BRANCH_HH
#define NETCHAR_SIM_BRANCH_HH

#include <cstdint>
#include <vector>

namespace netchar::sim
{

/**
 * gshare direction predictor: a table of 2-bit saturating counters
 * indexed by PC xor global history.
 */
class BranchPredictor
{
  public:
    /**
     * @param table_bits log2 of the counter-table size.
     * @param history_bits Global-history length xored into the index
     *        (kept short: long histories dilute training on workloads
     *        whose inter-branch correlation is weak).
     */
    explicit BranchPredictor(unsigned table_bits,
                             unsigned history_bits = 4);

    /**
     * Predict and train on one conditional branch.
     *
     * @param pc Branch instruction address.
     * @param taken Actual outcome.
     * @return true when the prediction matched the outcome.
     */
    bool predictAndTrain(std::uint64_t pc, bool taken);

    /** Prediction only, no training or history update (tests). */
    bool predict(std::uint64_t pc) const;

    /** Reset counters and history to the weakly-not-taken state. */
    void reset();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::size_t indexFor(std::uint64_t pc) const;

    std::vector<std::uint8_t> table_;
    std::uint64_t mask_;
    std::uint64_t historyMask_;
    unsigned historyShift_;
    std::uint64_t history_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

/**
 * Branch target buffer: set-associative tag store over branch PCs.
 * A taken branch whose PC misses the BTB costs a fetch re-steer.
 */
class Btb
{
  public:
    /** @param entries Total entries (rounded to assoc multiples). */
    explicit Btb(unsigned entries, unsigned assoc = 4);

    /** Lookup; inserts on miss. @return true on hit. */
    bool accessAndFill(std::uint64_t pc);

    /** Probe without state change. */
    bool contains(std::uint64_t pc) const;

    /** Pre-install an entry (JIT-hint state transformation path). */
    void install(std::uint64_t pc);

    /** Drop all entries. */
    void invalidateAll();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned assoc_;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_BRANCH_HH
