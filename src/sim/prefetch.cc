#include "sim/prefetch.hh"

#include <stdexcept>

namespace netchar::sim
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherParams &params)
    : params_(params)
{
    if (params_.streams == 0 || params_.lineBytes == 0 ||
        params_.pageBytes == 0)
        throw std::invalid_argument("StreamPrefetcher: bad params");
    streams_.resize(params_.streams);
}

std::vector<std::uint64_t>
StreamPrefetcher::observe(std::uint64_t addr)
{
    ++tick_;
    const std::uint64_t line = addr / params_.lineBytes;
    const std::uint64_t page = addr / params_.pageBytes;

    // Find the stream for this page, or allocate one (LRU victim,
    // preferring invalid slots).
    Stream *stream = nullptr;
    for (Stream &s : streams_) {
        if (s.valid && s.page == page) {
            stream = &s;
            break;
        }
    }
    if (stream == nullptr) {
        Stream *victim = &streams_.front();
        for (Stream &s : streams_) {
            if (!s.valid) {
                victim = &s;
                break;
            }
            if (s.lastUse < victim->lastUse)
                victim = &s;
        }
        victim->page = page;
        victim->lastLine = line;
        victim->direction = 0;
        victim->confidence = 0;
        victim->valid = true;
        victim->lastUse = tick_;
        return {};
    }

    stream->lastUse = tick_;
    std::vector<std::uint64_t> out;
    if (line == stream->lastLine)
        return out; // same line, no new direction information

    const int dir = line > stream->lastLine ? 1 : -1;
    if (dir == stream->direction) {
        if (stream->confidence < 255)
            ++stream->confidence;
    } else {
        stream->direction = dir;
        stream->confidence = 1;
    }
    stream->lastLine = line;

    if (stream->confidence < params_.trainThreshold)
        return out;

    const std::uint64_t lines_per_page =
        params_.pageBytes / params_.lineBytes;
    for (unsigned i = 1; i <= params_.degree; ++i) {
        const std::int64_t target =
            static_cast<std::int64_t>(line) +
            static_cast<std::int64_t>(i) * dir;
        if (target < 0)
            break;
        const auto tline = static_cast<std::uint64_t>(target);
        if (!params_.crossPageHint &&
            tline / lines_per_page != page)
            break; // real prefetchers stop at the page boundary
        out.push_back(tline * params_.lineBytes);
    }
    return out;
}

void
StreamPrefetcher::reset()
{
    for (auto &s : streams_)
        s = Stream{};
}

} // namespace netchar::sim
