/**
 * @file
 * DRAM model: per-bank open-row tracking for the "memory page miss
 * rate" metric (Table I, metric 17) and byte counters for the read /
 * write bandwidth metrics (15, 16).
 */

#ifndef NETCHAR_SIM_MEMORY_HH
#define NETCHAR_SIM_MEMORY_HH

#include <cstdint>
#include <vector>

namespace netchar::sim
{

/** Tuning knobs for DramModel. */
struct DramParams
{
    unsigned banks = 16;
    std::uint64_t rowBytes = 8192;
    unsigned lineBytes = 64;
};

/** Outcome of one DRAM access. */
struct DramOutcome
{
    /** The access hit the open row of its bank. */
    bool rowHit = false;
};

/**
 * Open-page DRAM model. Tag-only: tracks which row each bank has open
 * and counts row hits/misses plus transferred bytes.
 */
class DramModel
{
  public:
    explicit DramModel(const DramParams &params = {});

    /**
     * One line fill or writeback.
     *
     * @param addr Byte address of the line.
     * @param is_write Writeback (counts toward write bandwidth).
     */
    DramOutcome access(std::uint64_t addr, bool is_write);

    /** Close all rows and zero counters. */
    void reset();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    std::uint64_t readBytes() const { return readBytes_; }
    std::uint64_t writeBytes() const { return writeBytes_; }

    /** Row-miss fraction (0 when idle). */
    double rowMissRate() const;

  private:
    DramParams params_;
    std::vector<std::int64_t> openRow_;
    std::uint64_t accesses_ = 0;
    std::uint64_t rowMisses_ = 0;
    std::uint64_t readBytes_ = 0;
    std::uint64_t writeBytes_ = 0;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_MEMORY_HH
