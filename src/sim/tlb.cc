#include "sim/tlb.hh"

#include <stdexcept>

namespace netchar::sim
{

Tlb::Tlb(const TlbGeometry &geometry)
    : pageBytes_(geometry.pageBytes), assoc_(geometry.associativity)
{
    if (geometry.pageBytes == 0 || assoc_ == 0)
        throw std::invalid_argument("Tlb: zero page size or assoc");
    if (geometry.entries == 0 || geometry.entries % assoc_ != 0)
        throw std::invalid_argument(
            "Tlb: entries not a multiple of associativity");
    sets_.resize(geometry.entries / assoc_);
    for (auto &set : sets_)
        set.resize(assoc_);
}

Tlb::Entry *
Tlb::findVictim(std::vector<Entry> &set)
{
    Entry *victim = &set.front();
    for (Entry &e : set) {
        if (!e.valid)
            return &e;
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    return victim;
}

bool
Tlb::access(std::uint64_t addr)
{
    ++accesses_;
    ++tick_;
    const std::uint64_t vpn = vpnFor(addr);
    auto &set = sets_[vpn % sets_.size()];
    for (Entry &e : set) {
        if (e.valid && e.vpn == vpn) {
            e.lastUse = tick_;
            return true;
        }
    }
    ++misses_;
    Entry *victim = findVictim(set);
    victim->vpn = vpn;
    victim->valid = true;
    victim->lastUse = tick_;
    return false;
}

bool
Tlb::contains(std::uint64_t addr) const
{
    const std::uint64_t vpn = vpnFor(addr);
    const auto &set = sets_[vpn % sets_.size()];
    for (const Entry &e : set)
        if (e.valid && e.vpn == vpn)
            return true;
    return false;
}

void
Tlb::install(std::uint64_t addr)
{
    ++tick_;
    const std::uint64_t vpn = vpnFor(addr);
    auto &set = sets_[vpn % sets_.size()];
    for (Entry &e : set) {
        if (e.valid && e.vpn == vpn) {
            e.lastUse = tick_;
            return;
        }
    }
    Entry *victim = findVictim(set);
    victim->vpn = vpn;
    victim->valid = true;
    victim->lastUse = tick_;
}

void
Tlb::invalidateAll()
{
    for (auto &set : sets_)
        for (auto &e : set)
            e = Entry{};
}

TlbHierarchy::TlbHierarchy(const TlbGeometry &l1, const TlbGeometry &stlb)
    : l1_(l1),
      hasStlb_(stlb.entries > 0),
      stlb_(hasStlb_ ? stlb : TlbGeometry{1, 1, l1.pageBytes})
{
}

TlbOutcome
TlbHierarchy::access(std::uint64_t addr)
{
    TlbOutcome out;
    if (l1_.access(addr)) {
        out.hit = true;
        return out;
    }
    if (hasStlb_ && stlb_.access(addr)) {
        out.stlbHit = true;
        return out;
    }
    if (hasStlb_) {
        // The walk filled the STLB via access(); nothing more to do.
    }
    ++walks_;
    return out;
}

void
TlbHierarchy::install(std::uint64_t addr)
{
    l1_.install(addr);
    if (hasStlb_)
        stlb_.install(addr);
}

void
TlbHierarchy::invalidateAll()
{
    l1_.invalidateAll();
    if (hasStlb_)
        stlb_.invalidateAll();
}

} // namespace netchar::sim
