/**
 * @file
 * Set-associative cache model with true-LRU replacement and prefetch
 * tracking.
 *
 * The model is tag-only (no data), which is all a characterization
 * study needs: hit/miss outcomes, eviction of unused prefetches, and
 * writeback generation for bandwidth accounting.
 */

#ifndef NETCHAR_SIM_CACHE_HH
#define NETCHAR_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace netchar::sim
{

/** Outcome of one cache access or prefetch insertion. */
struct CacheOutcome
{
    /** Demand access hit. */
    bool hit = false;
    /** The line hit was brought in by the prefetcher (first use). */
    bool hitOnPrefetch = false;
    /** A prefetched-but-never-used line was evicted by this access. */
    bool evictedUnusedPrefetch = false;
    /** A dirty line was written back by this access. */
    bool writeback = false;
};

/**
 * One level of a tag-only set-associative cache.
 *
 * Addresses are byte addresses; the cache extracts line and set bits
 * itself. Replacement is true LRU within a set.
 */
class Cache
{
  public:
    /**
     * @param geometry Size/associativity/line size. Size must be a
     *        multiple of associativity x line bytes (throws
     *        std::invalid_argument otherwise).
     * @param name Label used in error messages.
     */
    explicit Cache(const CacheGeometry &geometry,
                   std::string name = "cache");

    /**
     * Demand access: probe, update LRU, allocate on miss.
     *
     * @param addr Byte address.
     * @param is_write Marks the line dirty on hit or fill.
     * @return Hit/miss plus prefetch/writeback side effects.
     */
    CacheOutcome access(std::uint64_t addr, bool is_write);

    /**
     * Prefetch insertion: allocate the line (if absent) marked as
     * unused-prefetch. Does not update hit statistics.
     *
     * @return Outcome with evictedUnusedPrefetch/writeback set.
     */
    CacheOutcome insertPrefetch(std::uint64_t addr);

    /** Probe without any state change. */
    bool contains(std::uint64_t addr) const;

    /** Drop all lines (machine reset). */
    void invalidateAll();

    /** Number of demand accesses so far. */
    std::uint64_t accesses() const { return accesses_; }

    /** Number of demand misses so far. */
    std::uint64_t misses() const { return misses_; }

    /** Number of sets (geometry introspection for tests). */
    std::size_t numSets() const { return sets_.size(); }

    /** Line size in bytes. */
    unsigned lineBytes() const { return lineBytes_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    struct Set
    {
        std::vector<Way> ways;
    };

    std::uint64_t lineFor(std::uint64_t addr) const
    {
        return addr / lineBytes_;
    }

    std::string name_;
    unsigned lineBytes_;
    unsigned assoc_;
    std::vector<Set> sets_;
    std::uint64_t tick_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_CACHE_HH
