/**
 * @file
 * Raw hardware event counters and Top-Down pipeline-slot accounting.
 *
 * PerfCounters mirrors what the paper collects with Linux perf
 * (instructions, branches, cache/TLB misses, bandwidth, faults), and
 * SlotAccount mirrors what toplev derives from the PMU: pipeline slots
 * attributed to each Top-Down tree node. Both are plain aggregates so
 * they can be snapshotted and diffed for interval sampling (§VII-A).
 */

#ifndef NETCHAR_SIM_COUNTERS_HH
#define NETCHAR_SIM_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace netchar::sim
{

/** Nodes of the Top-Down hierarchy tracked by the simulator. */
enum class SlotNode : std::size_t
{
    Retiring = 0,
    BadSpeculation,
    // Frontend latency
    FeICache,
    FeITlb,
    FeBtbResteer,
    FeMsSwitch,
    // Frontend bandwidth
    FeDsb,
    FeMite,
    // Backend memory
    BeL1Bound,
    BeL2Bound,
    BeL3Bound,
    BeDramBound,
    BeStoreBound,
    // Backend core
    BePortsUtil,
    BeDivider,
    NumNodes,
};

/** Human-readable short name of a SlotNode (toplev-style). */
std::string_view slotNodeName(SlotNode node);

/** Top-level Top-Down category of a node. */
enum class SlotCategory { Retiring, BadSpeculation, Frontend, Backend };

/** Map a SlotNode to its level-1 category. */
SlotCategory slotCategory(SlotNode node);

/**
 * Pipeline-slot account. Values are in units of issue slots
 * (cycles x machine width). Plain add/subtract semantics support
 * interval deltas.
 */
struct SlotAccount
{
    std::array<double, static_cast<std::size_t>(SlotNode::NumNodes)>
        slots{};

    double &operator[](SlotNode n)
    {
        return slots[static_cast<std::size_t>(n)];
    }
    double operator[](SlotNode n) const
    {
        return slots[static_cast<std::size_t>(n)];
    }

    /** Sum over all nodes. */
    double total() const;

    /** Sum over one level-1 category. */
    double categoryTotal(SlotCategory cat) const;

    /** Fraction of total slots in node n (0 if no slots recorded). */
    double fraction(SlotNode n) const;

    /** Fraction of total slots in a level-1 category. */
    double categoryFraction(SlotCategory cat) const;

    /** Elementwise accumulate. */
    void add(const SlotAccount &other);

    /** Elementwise difference (this - since); for interval sampling. */
    SlotAccount delta(const SlotAccount &since) const;
};

/**
 * Raw event counters, the perf/LTTng view of one run or one sampling
 * interval. All counts are totals since the last reset.
 */
struct PerfCounters
{
    // Instruction mix
    std::uint64_t instructions = 0;
    std::uint64_t kernelInstructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    // Core
    double cycles = 0.0;

    // Branch
    std::uint64_t branchMisses = 0;
    std::uint64_t btbMisses = 0;

    // Caches
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t llcMisses = 0;

    // TLBs
    std::uint64_t itlbMisses = 0;
    std::uint64_t dtlbLoadMisses = 0;
    std::uint64_t dtlbStoreMisses = 0;

    // Memory system
    std::uint64_t memReadBytes = 0;
    std::uint64_t memWriteBytes = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t dramRowMisses = 0;
    std::uint64_t pageFaults = 0;

    // Prefetcher
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0;
    std::uint64_t prefetchesUseless = 0;

    /** Elementwise accumulate. */
    void add(const PerfCounters &other);

    /** Elementwise difference (this - since); for interval sampling. */
    PerfCounters delta(const PerfCounters &since) const;

    /** Misses per kilo-instruction helper; 0 when no instructions. */
    double mpki(std::uint64_t events) const;

    /** Cycles per instruction; 0 when no instructions. */
    double cpi() const;

    /** Instructions per cycle; 0 when no cycles. */
    double ipc() const;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_COUNTERS_HH
