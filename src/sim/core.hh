/**
 * @file
 * Statistical core model: consumes an instruction stream, drives the
 * cache/TLB/predictor/prefetcher structures, and accounts pipeline
 * slots to Top-Down nodes as each stall is simulated.
 *
 * The accounting identity is exact by construction:
 *
 *     cycles = instructions / width  (retiring)
 *            + port stalls           (BE core bound)
 *            + per-event stall terms (FE / BE / bad speculation)
 *
 * so the Top-Down fractions always sum to 1, mirroring toplev output.
 */

#ifndef NETCHAR_SIM_CORE_HH
#define NETCHAR_SIM_CORE_HH

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "sim/backend.hh"
#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/counters.hh"
#include "sim/frontend.hh"
#include "sim/inst.hh"
#include "sim/memory.hh"
#include "sim/noc.hh"
#include "sim/prefetch.hh"
#include "sim/tlb.hh"
#include "stats/rng.hh"

namespace netchar::sim
{

/**
 * One core: private L1I/L1D/L2, TLBs, branch structures and
 * prefetchers, sharing an LlcNoc and DramModel with its siblings.
 */
class Core
{
  public:
    /**
     * @param cfg Machine description (geometries, penalties).
     * @param llc Shared sliced LLC (owned by the Machine).
     * @param dram Shared DRAM model (owned by the Machine).
     * @param core_id Used to derive this core's RNG substream.
     * @param seed Machine master seed.
     */
    /**
     * @param process_pages Shared touched-page set (the process page
     *        table): a page faults once per process, not per core.
     */
    Core(const MachineConfig &cfg, LlcNoc &llc, DramModel &dram,
         std::unordered_set<std::uint64_t> &process_pages,
         unsigned core_id, std::uint64_t seed);

    /** Execute one instruction, updating counters and slot accounts. */
    void execute(const Inst &inst);

    /**
     * Set the workload's intrinsic ILP (independent ops per cycle it
     * offers the issue stage). Affects issue bandwidth and the
     * memory-level-parallelism divisor for miss latencies.
     */
    void setIlp(double ilp);

    /**
     * Set the workload's memory-level parallelism: overlapping demand
     * misses divide exposed miss latency.
     */
    void setMlp(double mlp);

    /** Cores concurrently active on the machine (NoC contention). */
    void setActiveCores(unsigned n) { activeCores_ = n; }

    /**
     * Enable the paper's proposed JIT ISA hook (§VII-A1): jitted pages
     * announced via onJitPage() are prefetched into L2 / pre-installed
     * into the I-TLB, and relocated branches transplant BTB state.
     */
    void setJitHintEnabled(bool enabled) { jitHintEnabled_ = enabled; }
    bool jitHintEnabled() const { return jitHintEnabled_; }

    /**
     * Runtime callback: a method was jitted into [page_addr,
     * page_addr + bytes). No-op unless the JIT hint is enabled.
     */
    void onJitPage(std::uint64_t page_addr, std::uint64_t bytes);

    /**
     * Runtime callback: a branch moved from old_pc to new_pc during
     * re-JIT; transplants BTB state when the JIT hint is enabled.
     */
    void onJitBranchMoved(std::uint64_t old_pc, std::uint64_t new_pc);

    /**
     * Mark [base, base + bytes) as already resident: the process
     * image, statically initialized arrays, and the initial heap are
     * faulted in during program load/init, which the measurement
     * window never observes. Without this, scaled-down footprints
     * would fault at wildly unrealistic per-instruction rates.
     */
    void prefaultRegion(std::uint64_t base, std::uint64_t bytes);

    /**
     * Pre-load [base, base + bytes) into the shared LLC: the code and
     * steady-state working set of a long-running process is LLC
     * resident before any measurement window starts. Uses prefetch
     * fills, so eviction/usefulness accounting stays consistent.
     */
    void preloadLlc(std::uint64_t base, std::uint64_t bytes);

    /** Raw counters since construction/reset. */
    const PerfCounters &counters() const { return counters_; }

    /** Core cycles elapsed. */
    double cycles() const { return counters_.cycles; }

    /** Top-Down slot account derived from the stall breakdown. */
    SlotAccount slotAccount() const;

    /** Clear all microarchitectural state and counters. */
    void reset();

  private:
    void fetch(std::uint64_t pc, bool kernel);
    void doLoad(std::uint64_t addr);
    void doStore(std::uint64_t addr);
    /** Handle L1D miss path; returns exposed latency in cycles. */
    double missPath(std::uint64_t addr, bool is_write, SlotNode &node);
    void issuePrefetches(std::uint64_t addr);
    void touchPage(std::uint64_t addr);

    const MachineConfig &cfg_;
    LlcNoc &llc_;
    DramModel &dram_;
    /** Shared process page table (owned by the Machine). */
    std::unordered_set<std::uint64_t> &touchedPages_;
    stats::Rng rng_;

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    TlbHierarchy itlb_;
    TlbHierarchy dtlb_;
    BranchPredictor predictor_;
    Btb btb_;
    Dsb dsb_;
    LoopBuffer loopBuffer_;
    StreamPrefetcher dataPrefetcher_;
    StreamPrefetcher instPrefetcher_;
    Divider divider_;
    IssueModel issue_;

    PerfCounters counters_;
    std::array<double,
               static_cast<std::size_t>(SlotNode::NumNodes)>
        stallCycles_{};

    double ilp_ = 2.0;
    double mlp_ = 2.0;
    unsigned activeCores_ = 1;
    bool jitHintEnabled_ = false;
    std::uint64_t lastFetchLine_ = ~0ULL;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_CORE_HH
