/**
 * @file
 * Stream prefetcher with a configurable page-boundary policy.
 *
 * §VII-A1 of the paper hinges on a property of real hardware stream
 * prefetchers: they do not prefetch across 4 KiB page boundaries, so
 * freshly JITed code pages always start cold. The `crossPageHint`
 * switch models the paper's proposed ISA hook that lets the runtime
 * tell the prefetcher about new code pages — the basis of the
 * `bench_ablation_jit_prefetch` experiment.
 */

#ifndef NETCHAR_SIM_PREFETCH_HH
#define NETCHAR_SIM_PREFETCH_HH

#include <cstdint>
#include <vector>

namespace netchar::sim
{

/** Tuning knobs for StreamPrefetcher. */
struct PrefetcherParams
{
    /** Number of concurrently tracked streams. */
    unsigned streams = 16;
    /** Lines fetched ahead once a stream is confirmed. */
    unsigned degree = 2;
    /** Accesses on a stream required before prefetching starts. */
    unsigned trainThreshold = 2;
    /** Allow prefetches to cross 4 KiB page boundaries (ISA hint). */
    bool crossPageHint = false;
    /** Page size used for the boundary check. */
    std::uint64_t pageBytes = 4096;
    /** Cache line size (prefetch granularity). */
    unsigned lineBytes = 64;
};

/**
 * Classic per-page ascending/descending stream prefetcher.
 *
 * observe() is called with every demand access (hit or miss); it
 * returns the list of line addresses to prefetch, already filtered by
 * the page-boundary policy.
 */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(const PrefetcherParams &params = {});

    /**
     * Train on a demand access and emit prefetch candidates.
     *
     * @param addr Byte address of the demand access.
     * @return Byte addresses (line-aligned) to prefetch; empty until
     *         the stream is trained.
     */
    std::vector<std::uint64_t> observe(std::uint64_t addr);

    /** Forget all streams. */
    void reset();

    /** Parameters in use (tests/ablation reporting). */
    const PrefetcherParams &params() const { return params_; }

  private:
    struct Stream
    {
        std::uint64_t page = 0;
        std::uint64_t lastLine = 0;
        int direction = 0;     ///< +1 ascending, -1 descending
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    PrefetcherParams params_;
    std::vector<Stream> streams_;
    std::uint64_t tick_ = 0;
};

} // namespace netchar::sim

#endif // NETCHAR_SIM_PREFETCH_HH
