#include "core/characterize.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/executor.hh"
#include "sim/machine.hh"
#include "trace/recorder.hh"
#include "workloads/synth.hh"

namespace netchar
{

Characterizer::Characterizer(sim::MachineConfig config)
    : config_(std::move(config))
{
    // Fail at construction, not inside run #1 of a 3000-run sweep.
    config_.validate();
}

wl::WorkloadProfile
Characterizer::applyOverrides(const wl::WorkloadProfile &p,
                              const RunOptions &o) const
{
    wl::WorkloadProfile out = p;
    if (o.gcMode)
        out.gcMode = *o.gcMode;
    if (o.gcAssist)
        out.gcAssist = *o.gcAssist;
    if (o.maxHeapBytes)
        out.maxHeapBytes = *o.maxHeapBytes;
    out.allocBytesPerInst *= o.allocScale;
    if (out.managed && out.maxHeapBytes < out.dataFootprint)
        out.dataFootprint = out.maxHeapBytes;
    out.validate();
    return out;
}

namespace
{

/** Machine + workload instances for one run. */
struct Rig
{
    std::unique_ptr<sim::Machine> machine;
    std::vector<std::unique_ptr<wl::SynthWorkload>> workloads;
    std::shared_ptr<rt::Clr> clr; // null for native
    /** Watchdog budget in simulated cycles (0 = disabled). */
    std::uint64_t budgetCycles = 0;

    /** Run `count` instructions on every core, interleaved. */
    void
    advance(std::uint64_t count, std::uint64_t quantum)
    {
        const unsigned n = machine->coreCount();
        std::uint64_t done = 0;
        while (done < count) {
            const std::uint64_t step =
                std::min<std::uint64_t>(quantum, count - done);
            for (unsigned c = 0; c < n; ++c)
                workloads[c]->run(machine->core(c), step);
            done += step;
            // Deterministic watchdog: trips on the same simulated
            // cycle on every host, at quantum granularity.
            if (budgetCycles > 0 &&
                machine->cycles() >
                    static_cast<double>(budgetCycles))
                throw RunBudgetExceeded(machine->cycles(),
                                        budgetCycles);
        }
    }
};

Rig
buildRig(const sim::MachineConfig &config,
         const wl::WorkloadProfile &profile, const RunOptions &options)
{
    Rig rig;
    rig.budgetCycles = options.runBudgetCycles;
    rig.machine = std::make_unique<sim::Machine>(
        config, options.cores, options.seed, options.noc);
    rig.machine->setJitHintEnabled(options.jitHint);

    const wl::SpreadFactors spread{config.codeSpreadFactor,
                                   config.dataSpreadFactor};
    if (profile.managed) {
        rig.clr = wl::SynthWorkload::makeClr(
            profile, profile.seed ^ options.seed, spread);
    }
    for (unsigned c = 0; c < rig.machine->coreCount(); ++c) {
        rig.workloads.push_back(std::make_unique<wl::SynthWorkload>(
            profile, options.seed * 1000003ULL + c, rig.clr, spread));
    }
    return rig;
}

/** Thrown when screenRunResult rejects a non-injected result. */
struct ScreenFailure : std::runtime_error
{
    explicit ScreenFailure(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Shared mutable state of one resilient sweep. */
struct SweepState
{
    unsigned attempts = 1;
    ResilienceOptions resilience;
    const FaultInjector *inject = nullptr; // null = no chaos
    std::atomic<bool> abort{false};
    std::mutex mu;
    std::vector<RunFailure> failures;
};

/**
 * The retry / backoff / quarantine state machine for one run.
 * `attempt` performs one attempt with the (possibly perturbed and
 * fault-annotated) options, throwing on any failure; on return the
 * attempt's result has already been stored at its slot.
 *
 * Everything recorded in SweepState::failures is a pure function of
 * (inputs, chaos plan) — no wall times, no worker ids — so keep-going
 * ledgers are byte-identical at any job count once sorted.
 */
template <typename AttemptFn>
void
attemptResiliently(std::size_t i, const std::string &name,
                   const RunOptions &base, SweepState &state,
                   RunLedgerEntry &entry, AttemptFn &&attempt)
{
    entry.benchmark = name;
    entry.index = i;
    const ResilienceOptions &res = state.resilience;

    if (state.abort.load(std::memory_order_relaxed)) {
        entry.succeeded = false;
        entry.skipped = true;
        entry.attempts = 0;
        entry.error = "skipped: fail-fast abort";
        RunFailure f;
        f.index = i;
        f.benchmark = name;
        f.attempt = 0;
        f.kind = "skipped";
        f.error = entry.error;
        f.seed = base.seed;
        std::lock_guard<std::mutex> lock(state.mu);
        state.failures.push_back(std::move(f));
        return;
    }

    const unsigned quarantine_at = res.quarantineAfter == 0
        ? 0
        : std::min(state.attempts, res.quarantineAfter);

    for (unsigned a = 1; a <= state.attempts; ++a) {
        entry.attempts = a;
        RunOptions opt = base;
        if (res.perturbSeedOnRetry)
            opt.seed = perturbedSeed(base.seed, name, a);
        const FaultDecision fault = state.inject
            ? state.inject->decide(name, a)
            : FaultDecision{};

        std::string kind = "error";
        try {
            attempt(opt, fault);
            entry.succeeded = true;
            entry.error.clear();
            return;
        } catch (const FaultInjectedError &ex) {
            kind = faultKindName(ex.kind());
            entry.error = ex.what();
        } catch (const RunBudgetExceeded &ex) {
            kind = fault.kind == FaultKind::Stall ? "stall"
                                                  : "budget";
            entry.error = ex.what();
        } catch (const ScreenFailure &ex) {
            kind = "screen";
            entry.error = ex.what();
        } catch (const std::exception &ex) {
            entry.error = ex.what();
        } catch (...) {
            entry.error = "unknown exception";
        }
        entry.succeeded = false;

        const bool quarantined = quarantine_at != 0 &&
                                 a >= quarantine_at;
        const bool retrying = !quarantined && a < state.attempts;

        RunFailure f;
        f.index = i;
        f.benchmark = name;
        f.attempt = a;
        f.kind = kind;
        f.error = entry.error;
        f.seed = opt.seed;
        if (retrying && res.backoffBaseMicros > 0) {
            // base * 2^(a-1), capped at 100 ms of host sleep.
            const std::uint64_t cap = 100'000;
            const unsigned shift = std::min(a - 1, 20u);
            f.backoffMicros =
                std::min(cap, res.backoffBaseMicros << shift);
        }
        {
            std::lock_guard<std::mutex> lock(state.mu);
            state.failures.push_back(f);
        }
        if (f.backoffMicros > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(f.backoffMicros));
        if (quarantined) {
            entry.quarantined = true;
            break;
        }
    }

    if (!res.keepGoing)
        state.abort.store(true, std::memory_order_relaxed);
}

/** Sort and publish one sweep's failure ledger into stats. */
void
publishFailures(SweepState &state,
                const std::vector<RunLedgerEntry> &ledger,
                SuiteRunStats &s)
{
    std::sort(state.failures.begin(), state.failures.end(),
              [](const RunFailure &a, const RunFailure &b) {
                  return a.index != b.index ? a.index < b.index
                                            : a.attempt < b.attempt;
              });
    s.failures = std::move(state.failures);
    for (const auto &e : ledger)
        if (e.quarantined)
            s.quarantined.push_back(e.benchmark);
}

} // namespace

RunResult
Characterizer::run(const wl::WorkloadProfile &raw_profile,
                   const RunOptions &options) const
{
    const auto profile = applyOverrides(raw_profile, options);
    Rig rig = buildRig(config_, profile, options);

    rig.advance(options.warmupInstructions, options.quantum);

    const auto snap_counters = rig.machine->totalCounters();
    const auto snap_slots = rig.machine->totalSlots();
    const auto snap_events = rig.clr
        ? rig.clr->trace().counts()
        : rt::RuntimeEventCounts{};
    const double snap_seconds = rig.machine->seconds();

    const std::uint64_t measured = options.measuredInstructions > 0
        ? options.measuredInstructions
        : profile.instructions;
    rig.advance(measured, options.quantum);

    RunResult result;
    result.counters = rig.machine->totalCounters().delta(snap_counters);
    result.slots = rig.machine->totalSlots().delta(snap_slots);
    result.events = rig.clr
        ? rig.clr->trace().counts().delta(snap_events)
        : rt::RuntimeEventCounts{};
    result.seconds = rig.machine->seconds() - snap_seconds;
    result.metrics = computeMetrics(result.counters, result.events,
                                    profile.cpuUtil, result.seconds);
    result.instructionsPerSecond = result.seconds > 0.0
        ? static_cast<double>(result.counters.instructions) /
              result.seconds
        : 0.0;
    return result;
}

std::vector<IntervalSample>
Characterizer::sample(const wl::WorkloadProfile &raw_profile,
                      const RunOptions &options,
                      std::uint64_t interval_instructions,
                      std::size_t samples) const
{
    const auto profile = applyOverrides(raw_profile, options);
    Rig rig = buildRig(config_, profile, options);

    rig.advance(options.warmupInstructions, options.quantum);

    std::vector<IntervalSample> out;
    out.reserve(samples);
    auto prev_counters = rig.machine->totalCounters();
    auto prev_slots = rig.machine->totalSlots();
    auto prev_events = rig.clr
        ? rig.clr->trace().counts()
        : rt::RuntimeEventCounts{};

    for (std::size_t i = 0; i < samples; ++i) {
        rig.advance(interval_instructions, options.quantum);
        IntervalSample s;
        const auto counters = rig.machine->totalCounters();
        const auto slots = rig.machine->totalSlots();
        const auto events = rig.clr
            ? rig.clr->trace().counts()
            : rt::RuntimeEventCounts{};
        s.counters = counters.delta(prev_counters);
        s.slots = slots.delta(prev_slots);
        s.events = events.delta(prev_events);
        prev_counters = counters;
        prev_slots = slots;
        prev_events = events;
        out.push_back(s);
    }
    return out;
}

std::vector<IntervalSample>
Characterizer::sampleCycles(const wl::WorkloadProfile &raw_profile,
                            const RunOptions &options,
                            double interval_cycles,
                            std::size_t samples) const
{
    const auto profile = applyOverrides(raw_profile, options);
    Rig rig = buildRig(config_, profile, options);

    rig.advance(options.warmupInstructions, options.quantum);

    std::vector<IntervalSample> out;
    out.reserve(samples);
    auto prev_counters = rig.machine->totalCounters();
    auto prev_slots = rig.machine->totalSlots();
    auto prev_events = rig.clr
        ? rig.clr->trace().counts()
        : rt::RuntimeEventCounts{};

    // Advance in small instruction chunks until each cycle window
    // fills; granularity error is one chunk.
    const std::uint64_t chunk =
        std::max<std::uint64_t>(500, options.quantum / 16);
    for (std::size_t i = 0; i < samples; ++i) {
        const double target =
            prev_counters.cycles + interval_cycles;
        while (rig.machine->totalCounters().cycles < target)
            rig.advance(chunk, chunk);
        IntervalSample s;
        const auto counters = rig.machine->totalCounters();
        const auto slots = rig.machine->totalSlots();
        const auto events = rig.clr
            ? rig.clr->trace().counts()
            : rt::RuntimeEventCounts{};
        s.counters = counters.delta(prev_counters);
        s.slots = slots.delta(prev_slots);
        s.events = events.delta(prev_events);
        prev_counters = counters;
        prev_slots = slots;
        prev_events = events;
        out.push_back(s);
    }
    return out;
}

CaptureResult
Characterizer::capture(const wl::WorkloadProfile &raw_profile,
                       const RunOptions &options,
                       const TraceOptions &topts) const
{
    const auto profile = applyOverrides(raw_profile, options);
    Rig rig = buildRig(config_, profile, options);

    rig.advance(options.warmupInstructions, options.quantum);

    CaptureResult out;
    out.trace.benchmark = profile.name;
    out.trace.machine = config_.name;
    out.trace.ghz = config_.maxGhz;
    out.trace.seed = options.seed;
    const std::uint64_t chunk = topts.chunkInstructions > 0
        ? topts.chunkInstructions
        : std::max<std::uint64_t>(500, options.quantum / 16);
    out.trace.chunkInstructions = chunk;
    out.trace.events =
        trace::TraceBuffer<trace::TraceEvent>(topts.bufferEvents);
    out.trace.samples =
        trace::TraceBuffer<trace::CounterRecord>(topts.bufferSamples);

    // Attach after warmup: the trace covers the measured window only.
    trace::TraceRecorder recorder(&out.trace.events,
                                  rig.machine.get());
    if (rig.clr)
        rig.clr->trace().setRecorder(&recorder);
    rig.machine->attachTrace(&recorder, &out.trace.samples);

    const auto snap_counters = rig.machine->totalCounters();
    const auto snap_slots = rig.machine->totalSlots();
    const auto snap_events = rig.clr
        ? rig.clr->trace().counts()
        : rt::RuntimeEventCounts{};
    const double snap_seconds = rig.machine->seconds();

    // S0: the post-warmup baseline record every re-slice starts from.
    rig.machine->emitCounterSample();

    if (topts.measuredCycles > 0.0) {
        // Fixed-cycle span on the exact chunk grid live cycle
        // sampling advances on, so re-slices reproduce sampleCycles
        // boundaries bit-for-bit.
        const double target =
            snap_counters.cycles + topts.measuredCycles;
        while (rig.machine->totalCounters().cycles < target) {
            rig.advance(chunk, chunk);
            rig.machine->emitCounterSample();
        }
    } else {
        const std::uint64_t measured = options.measuredInstructions > 0
            ? options.measuredInstructions
            : profile.instructions;
        std::uint64_t done = 0;
        while (done < measured) {
            const std::uint64_t step =
                std::min<std::uint64_t>(chunk, measured - done);
            rig.advance(step, step);
            done += step;
            rig.machine->emitCounterSample();
        }
    }

    if (rig.clr)
        rig.clr->trace().setRecorder(nullptr);
    rig.machine->attachTrace(nullptr, nullptr);

    RunResult &result = out.result;
    result.counters =
        rig.machine->totalCounters().delta(snap_counters);
    result.slots = rig.machine->totalSlots().delta(snap_slots);
    result.events = rig.clr
        ? rig.clr->trace().counts().delta(snap_events)
        : rt::RuntimeEventCounts{};
    result.seconds = rig.machine->seconds() - snap_seconds;
    result.metrics = computeMetrics(result.counters, result.events,
                                    profile.cpuUtil, result.seconds);
    result.instructionsPerSecond = result.seconds > 0.0
        ? static_cast<double>(result.counters.instructions) /
              result.seconds
        : 0.0;
    return out;
}

std::vector<CaptureResult>
Characterizer::captureAll(
    const std::vector<wl::WorkloadProfile> &profiles,
    const RunOptions &options, const TraceOptions &topts,
    const Parallelism &par, SuiteRunStats *stats) const
{
    // Host wall time feeds only the run ledger (SuiteRunStats),
    // never simulated results.
    // netchar-lint: allow(no-wallclock) -- wall-time run ledger site
    using Clock = std::chrono::steady_clock;
    const std::size_t n = profiles.size();
    unsigned jobs = par.jobs != 0
        ? par.jobs
        : std::max(1u, std::thread::hardware_concurrency());

    SweepState state;
    state.attempts = std::max(1u, par.maxAttempts);
    state.resilience = par.resilience;
    std::optional<FaultInjector> injector;
    if (par.resilience.chaos && par.resilience.chaos->enabled()) {
        injector.emplace(*par.resilience.chaos, config_.name);
        state.inject = &*injector;
    }

    // Each capture owns a private rig and private rings, so traces
    // are independent of scheduling, like runAll() results.
    std::vector<CaptureResult> out(n);
    std::vector<RunLedgerEntry> ledger(n);
    const auto run_one = [&](std::size_t i) {
        const auto t0 = Clock::now();
        RunLedgerEntry entry;
        attemptResiliently(
            i, profiles[i].name, options, state, entry,
            [&](RunOptions &opt, const FaultDecision &fault) {
                if (fault.kind == FaultKind::Throw)
                    throw FaultInjectedError(
                        FaultKind::Throw,
                        "injected fault: benchmark crashed before "
                        "producing a trace");
                if (fault.kind == FaultKind::Stall) {
                    if (opt.runBudgetCycles == 0)
                        throw FaultInjectedError(
                            FaultKind::Stall,
                            "injected stall with no cycle budget: "
                            "the capture would hang (set "
                            "RunOptions::runBudgetCycles / "
                            "--run-budget)");
                    const std::uint64_t measured =
                        opt.measuredInstructions > 0
                            ? opt.measuredInstructions
                            : profiles[i].instructions;
                    opt.measuredInstructions = measured * 1024;
                }
                TraceOptions t = topts;
                if (fault.kind == FaultKind::TraceExhaust) {
                    // Graceful degradation, not failure: the rings
                    // shrink, the capture succeeds, drops recorded.
                    t.bufferEvents = fault.traceCapacity;
                    t.bufferSamples = fault.traceCapacity;
                }
                CaptureResult c = capture(profiles[i], opt, t);
                if (fault.kind == FaultKind::CorruptCounter)
                    c.result.metrics[fault.selector % kNumMetrics] =
                        fault.badValue;
                const std::string screen =
                    screenRunResult(c.result);
                if (!screen.empty()) {
                    if (fault.kind == FaultKind::CorruptCounter)
                        throw FaultInjectedError(
                            FaultKind::CorruptCounter,
                            "injected fault: " + screen);
                    throw ScreenFailure(screen);
                }
                out[i] = std::move(c);
            });
        entry.worker = Executor::workerId();
        entry.wallSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        ledger[i] = std::move(entry);
    };

    const auto sweep_start = Clock::now();
    std::uint64_t steals = 0;
    if (jobs <= 1 || n <= 1) {
        jobs = 1;
        for (std::size_t i = 0; i < n; ++i)
            run_one(i);
    } else {
        Executor executor(jobs);
        executor.forEach(n, run_one);
        steals = executor.stealCount();
    }

    if (stats) {
        SuiteRunStats s;
        s.jobs = jobs;
        s.wallSeconds = std::chrono::duration<double>(
                            Clock::now() - sweep_start)
                            .count();
        for (const auto &e : ledger)
            s.busySeconds += e.wallSeconds;
        s.steals = steals;
        s.runs = std::move(ledger);
        publishFailures(state, s.runs, s);
        *stats = std::move(s);
    }
    return out;
}

std::vector<RunResult>
Characterizer::runAll(const std::vector<wl::WorkloadProfile> &profiles,
                      const RunOptions &options) const
{
    std::vector<RunResult> out;
    out.reserve(profiles.size());
    for (const auto &p : profiles)
        out.push_back(run(p, options));
    return out;
}

double
SuiteRunStats::utilization() const
{
    const double capacity = static_cast<double>(jobs) * wallSeconds;
    return capacity > 0.0 ? busySeconds / capacity : 0.0;
}

unsigned
SuiteRunStats::retriedRuns() const
{
    unsigned n = 0;
    for (const auto &r : runs)
        n += r.attempts > 1 ? 1 : 0;
    return n;
}

unsigned
SuiteRunStats::failedRuns() const
{
    unsigned n = 0;
    for (const auto &r : runs)
        n += r.succeeded ? 0 : 1;
    return n;
}

unsigned
SuiteRunStats::skippedRuns() const
{
    unsigned n = 0;
    for (const auto &r : runs)
        n += r.skipped ? 1 : 0;
    return n;
}

std::string
screenRunResult(const RunResult &result)
{
    const auto &table = metricTable();
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
        if (!std::isfinite(result.metrics[m])) {
            std::ostringstream os;
            os << "non-finite metric '" << table[m].name
               << "' = " << result.metrics[m];
            return os.str();
        }
    }
    if (!std::isfinite(result.counters.cycles))
        return "non-finite counter 'cycles'";
    if (!std::isfinite(result.seconds))
        return "non-finite run seconds";
    if (!std::isfinite(result.instructionsPerSecond))
        return "non-finite instructions/second";
    return {};
}

std::vector<RunResult>
Characterizer::runAll(const std::vector<wl::WorkloadProfile> &profiles,
                      const RunOptions &options, const Parallelism &par,
                      SuiteRunStats *stats) const
{
    // Host wall time feeds only the run ledger (SuiteRunStats),
    // never simulated results.
    // netchar-lint: allow(no-wallclock) -- wall-time run ledger site
    using Clock = std::chrono::steady_clock;
    const std::size_t n = profiles.size();
    unsigned jobs = par.jobs != 0
        ? par.jobs
        : std::max(1u, std::thread::hardware_concurrency());
    const unsigned attempts = std::max(1u, par.maxAttempts);

    std::vector<RunResult> out(n);
    std::vector<RunLedgerEntry> ledger(n);

    SweepState state;
    state.attempts = attempts;
    state.resilience = par.resilience;
    std::optional<FaultInjector> injector;
    if (par.resilience.chaos && par.resilience.chaos->enabled()) {
        injector.emplace(*par.resilience.chaos, config_.name);
        state.inject = &*injector;
    }

    // Results land at their input index, so ordering (and output
    // bytes) are independent of scheduling; see the header contract.
    const auto run_one = [&](std::size_t i) {
        const auto t0 = Clock::now();
        RunLedgerEntry entry;
        attemptResiliently(
            i, profiles[i].name, options, state, entry,
            [&](RunOptions &opt, const FaultDecision &fault) {
                if (fault.kind == FaultKind::Throw)
                    throw FaultInjectedError(
                        FaultKind::Throw,
                        "injected fault: benchmark crashed before "
                        "producing results");
                if (fault.kind == FaultKind::Stall) {
                    if (opt.runBudgetCycles == 0)
                        throw FaultInjectedError(
                            FaultKind::Stall,
                            "injected stall with no cycle budget: "
                            "the run would hang (set "
                            "RunOptions::runBudgetCycles / "
                            "--run-budget)");
                    // Inflate the run so the watchdog must trip;
                    // cost is bounded by the budget, not by this.
                    const std::uint64_t measured =
                        opt.measuredInstructions > 0
                            ? opt.measuredInstructions
                            : profiles[i].instructions;
                    opt.measuredInstructions = measured * 1024;
                }
                RunResult r = run(profiles[i], opt);
                if (fault.kind == FaultKind::CorruptCounter)
                    r.metrics[fault.selector % kNumMetrics] =
                        fault.badValue;
                const std::string screen = screenRunResult(r);
                if (!screen.empty()) {
                    if (fault.kind == FaultKind::CorruptCounter)
                        throw FaultInjectedError(
                            FaultKind::CorruptCounter,
                            "injected fault: " + screen);
                    throw ScreenFailure(screen);
                }
                out[i] = std::move(r);
            });
        entry.worker = Executor::workerId();
        entry.wallSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        ledger[i] = std::move(entry);
    };

    const auto sweep_start = Clock::now();
    std::uint64_t steals = 0;
    if (jobs <= 1 || n <= 1) {
        jobs = 1;
        for (std::size_t i = 0; i < n; ++i)
            run_one(i);
    } else {
        Executor executor(jobs);
        executor.forEach(n, run_one);
        steals = executor.stealCount();
    }

    if (stats) {
        SuiteRunStats s;
        s.jobs = jobs;
        s.wallSeconds = std::chrono::duration<double>(
                            Clock::now() - sweep_start)
                            .count();
        for (const auto &e : ledger)
            s.busySeconds += e.wallSeconds;
        s.steals = steals;
        s.runs = std::move(ledger);
        publishFailures(state, s.runs, s);
        *stats = std::move(s);
    }
    return out;
}

} // namespace netchar
