#include "core/characterize.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "core/executor.hh"
#include "sim/machine.hh"
#include "trace/recorder.hh"
#include "workloads/synth.hh"

namespace netchar
{

Characterizer::Characterizer(sim::MachineConfig config)
    : config_(std::move(config))
{
}

wl::WorkloadProfile
Characterizer::applyOverrides(const wl::WorkloadProfile &p,
                              const RunOptions &o) const
{
    wl::WorkloadProfile out = p;
    if (o.gcMode)
        out.gcMode = *o.gcMode;
    if (o.gcAssist)
        out.gcAssist = *o.gcAssist;
    if (o.maxHeapBytes)
        out.maxHeapBytes = *o.maxHeapBytes;
    out.allocBytesPerInst *= o.allocScale;
    if (out.managed && out.maxHeapBytes < out.dataFootprint)
        out.dataFootprint = out.maxHeapBytes;
    out.validate();
    return out;
}

namespace
{

/** Machine + workload instances for one run. */
struct Rig
{
    std::unique_ptr<sim::Machine> machine;
    std::vector<std::unique_ptr<wl::SynthWorkload>> workloads;
    std::shared_ptr<rt::Clr> clr; // null for native

    /** Run `count` instructions on every core, interleaved. */
    void
    advance(std::uint64_t count, std::uint64_t quantum)
    {
        const unsigned n = machine->coreCount();
        std::uint64_t done = 0;
        while (done < count) {
            const std::uint64_t step =
                std::min<std::uint64_t>(quantum, count - done);
            for (unsigned c = 0; c < n; ++c)
                workloads[c]->run(machine->core(c), step);
            done += step;
        }
    }
};

Rig
buildRig(const sim::MachineConfig &config,
         const wl::WorkloadProfile &profile, const RunOptions &options)
{
    Rig rig;
    rig.machine = std::make_unique<sim::Machine>(
        config, options.cores, options.seed, options.noc);
    rig.machine->setJitHintEnabled(options.jitHint);

    const wl::SpreadFactors spread{config.codeSpreadFactor,
                                   config.dataSpreadFactor};
    if (profile.managed) {
        rig.clr = wl::SynthWorkload::makeClr(
            profile, profile.seed ^ options.seed, spread);
    }
    for (unsigned c = 0; c < rig.machine->coreCount(); ++c) {
        rig.workloads.push_back(std::make_unique<wl::SynthWorkload>(
            profile, options.seed * 1000003ULL + c, rig.clr, spread));
    }
    return rig;
}

} // namespace

RunResult
Characterizer::run(const wl::WorkloadProfile &raw_profile,
                   const RunOptions &options) const
{
    const auto profile = applyOverrides(raw_profile, options);
    Rig rig = buildRig(config_, profile, options);

    rig.advance(options.warmupInstructions, options.quantum);

    const auto snap_counters = rig.machine->totalCounters();
    const auto snap_slots = rig.machine->totalSlots();
    const auto snap_events = rig.clr
        ? rig.clr->trace().counts()
        : rt::RuntimeEventCounts{};
    const double snap_seconds = rig.machine->seconds();

    const std::uint64_t measured = options.measuredInstructions > 0
        ? options.measuredInstructions
        : profile.instructions;
    rig.advance(measured, options.quantum);

    RunResult result;
    result.counters = rig.machine->totalCounters().delta(snap_counters);
    result.slots = rig.machine->totalSlots().delta(snap_slots);
    result.events = rig.clr
        ? rig.clr->trace().counts().delta(snap_events)
        : rt::RuntimeEventCounts{};
    result.seconds = rig.machine->seconds() - snap_seconds;
    result.metrics = computeMetrics(result.counters, result.events,
                                    profile.cpuUtil, result.seconds);
    result.instructionsPerSecond = result.seconds > 0.0
        ? static_cast<double>(result.counters.instructions) /
              result.seconds
        : 0.0;
    return result;
}

std::vector<IntervalSample>
Characterizer::sample(const wl::WorkloadProfile &raw_profile,
                      const RunOptions &options,
                      std::uint64_t interval_instructions,
                      std::size_t samples) const
{
    const auto profile = applyOverrides(raw_profile, options);
    Rig rig = buildRig(config_, profile, options);

    rig.advance(options.warmupInstructions, options.quantum);

    std::vector<IntervalSample> out;
    out.reserve(samples);
    auto prev_counters = rig.machine->totalCounters();
    auto prev_slots = rig.machine->totalSlots();
    auto prev_events = rig.clr
        ? rig.clr->trace().counts()
        : rt::RuntimeEventCounts{};

    for (std::size_t i = 0; i < samples; ++i) {
        rig.advance(interval_instructions, options.quantum);
        IntervalSample s;
        const auto counters = rig.machine->totalCounters();
        const auto slots = rig.machine->totalSlots();
        const auto events = rig.clr
            ? rig.clr->trace().counts()
            : rt::RuntimeEventCounts{};
        s.counters = counters.delta(prev_counters);
        s.slots = slots.delta(prev_slots);
        s.events = events.delta(prev_events);
        prev_counters = counters;
        prev_slots = slots;
        prev_events = events;
        out.push_back(s);
    }
    return out;
}

std::vector<IntervalSample>
Characterizer::sampleCycles(const wl::WorkloadProfile &raw_profile,
                            const RunOptions &options,
                            double interval_cycles,
                            std::size_t samples) const
{
    const auto profile = applyOverrides(raw_profile, options);
    Rig rig = buildRig(config_, profile, options);

    rig.advance(options.warmupInstructions, options.quantum);

    std::vector<IntervalSample> out;
    out.reserve(samples);
    auto prev_counters = rig.machine->totalCounters();
    auto prev_slots = rig.machine->totalSlots();
    auto prev_events = rig.clr
        ? rig.clr->trace().counts()
        : rt::RuntimeEventCounts{};

    // Advance in small instruction chunks until each cycle window
    // fills; granularity error is one chunk.
    const std::uint64_t chunk =
        std::max<std::uint64_t>(500, options.quantum / 16);
    for (std::size_t i = 0; i < samples; ++i) {
        const double target =
            prev_counters.cycles + interval_cycles;
        while (rig.machine->totalCounters().cycles < target)
            rig.advance(chunk, chunk);
        IntervalSample s;
        const auto counters = rig.machine->totalCounters();
        const auto slots = rig.machine->totalSlots();
        const auto events = rig.clr
            ? rig.clr->trace().counts()
            : rt::RuntimeEventCounts{};
        s.counters = counters.delta(prev_counters);
        s.slots = slots.delta(prev_slots);
        s.events = events.delta(prev_events);
        prev_counters = counters;
        prev_slots = slots;
        prev_events = events;
        out.push_back(s);
    }
    return out;
}

CaptureResult
Characterizer::capture(const wl::WorkloadProfile &raw_profile,
                       const RunOptions &options,
                       const TraceOptions &topts) const
{
    const auto profile = applyOverrides(raw_profile, options);
    Rig rig = buildRig(config_, profile, options);

    rig.advance(options.warmupInstructions, options.quantum);

    CaptureResult out;
    out.trace.benchmark = profile.name;
    out.trace.machine = config_.name;
    out.trace.ghz = config_.maxGhz;
    out.trace.seed = options.seed;
    const std::uint64_t chunk = topts.chunkInstructions > 0
        ? topts.chunkInstructions
        : std::max<std::uint64_t>(500, options.quantum / 16);
    out.trace.chunkInstructions = chunk;
    out.trace.events =
        trace::TraceBuffer<trace::TraceEvent>(topts.bufferEvents);
    out.trace.samples =
        trace::TraceBuffer<trace::CounterRecord>(topts.bufferSamples);

    // Attach after warmup: the trace covers the measured window only.
    trace::TraceRecorder recorder(&out.trace.events,
                                  rig.machine.get());
    if (rig.clr)
        rig.clr->trace().setRecorder(&recorder);
    rig.machine->attachTrace(&recorder, &out.trace.samples);

    const auto snap_counters = rig.machine->totalCounters();
    const auto snap_slots = rig.machine->totalSlots();
    const auto snap_events = rig.clr
        ? rig.clr->trace().counts()
        : rt::RuntimeEventCounts{};
    const double snap_seconds = rig.machine->seconds();

    // S0: the post-warmup baseline record every re-slice starts from.
    rig.machine->emitCounterSample();

    if (topts.measuredCycles > 0.0) {
        // Fixed-cycle span on the exact chunk grid live cycle
        // sampling advances on, so re-slices reproduce sampleCycles
        // boundaries bit-for-bit.
        const double target =
            snap_counters.cycles + topts.measuredCycles;
        while (rig.machine->totalCounters().cycles < target) {
            rig.advance(chunk, chunk);
            rig.machine->emitCounterSample();
        }
    } else {
        const std::uint64_t measured = options.measuredInstructions > 0
            ? options.measuredInstructions
            : profile.instructions;
        std::uint64_t done = 0;
        while (done < measured) {
            const std::uint64_t step =
                std::min<std::uint64_t>(chunk, measured - done);
            rig.advance(step, step);
            done += step;
            rig.machine->emitCounterSample();
        }
    }

    if (rig.clr)
        rig.clr->trace().setRecorder(nullptr);
    rig.machine->attachTrace(nullptr, nullptr);

    RunResult &result = out.result;
    result.counters =
        rig.machine->totalCounters().delta(snap_counters);
    result.slots = rig.machine->totalSlots().delta(snap_slots);
    result.events = rig.clr
        ? rig.clr->trace().counts().delta(snap_events)
        : rt::RuntimeEventCounts{};
    result.seconds = rig.machine->seconds() - snap_seconds;
    result.metrics = computeMetrics(result.counters, result.events,
                                    profile.cpuUtil, result.seconds);
    result.instructionsPerSecond = result.seconds > 0.0
        ? static_cast<double>(result.counters.instructions) /
              result.seconds
        : 0.0;
    return out;
}

std::vector<CaptureResult>
Characterizer::captureAll(
    const std::vector<wl::WorkloadProfile> &profiles,
    const RunOptions &options, const TraceOptions &topts,
    const Parallelism &par) const
{
    const std::size_t n = profiles.size();
    const unsigned jobs = par.jobs != 0
        ? par.jobs
        : std::max(1u, std::thread::hardware_concurrency());

    // Each capture owns a private rig and private rings, so traces
    // are independent of scheduling, like runAll() results.
    std::vector<CaptureResult> out(n);
    const auto run_one = [&](std::size_t i) {
        out[i] = capture(profiles[i], options, topts);
    };
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            run_one(i);
    } else {
        Executor executor(jobs);
        executor.forEach(n, run_one);
    }
    return out;
}

std::vector<RunResult>
Characterizer::runAll(const std::vector<wl::WorkloadProfile> &profiles,
                      const RunOptions &options) const
{
    std::vector<RunResult> out;
    out.reserve(profiles.size());
    for (const auto &p : profiles)
        out.push_back(run(p, options));
    return out;
}

double
SuiteRunStats::utilization() const
{
    const double capacity = static_cast<double>(jobs) * wallSeconds;
    return capacity > 0.0 ? busySeconds / capacity : 0.0;
}

unsigned
SuiteRunStats::retriedRuns() const
{
    unsigned n = 0;
    for (const auto &r : runs)
        n += r.attempts > 1 ? 1 : 0;
    return n;
}

unsigned
SuiteRunStats::failedRuns() const
{
    unsigned n = 0;
    for (const auto &r : runs)
        n += r.succeeded ? 0 : 1;
    return n;
}

std::vector<RunResult>
Characterizer::runAll(const std::vector<wl::WorkloadProfile> &profiles,
                      const RunOptions &options, const Parallelism &par,
                      SuiteRunStats *stats) const
{
    using Clock = std::chrono::steady_clock;
    const std::size_t n = profiles.size();
    unsigned jobs = par.jobs != 0
        ? par.jobs
        : std::max(1u, std::thread::hardware_concurrency());
    const unsigned attempts = std::max(1u, par.maxAttempts);

    std::vector<RunResult> out(n);
    std::vector<RunLedgerEntry> ledger(n);

    // Results land at their input index, so ordering (and output
    // bytes) are independent of scheduling; see the header contract.
    const auto run_one = [&](std::size_t i) {
        const auto t0 = Clock::now();
        RunLedgerEntry entry;
        entry.benchmark = profiles[i].name;
        entry.index = i;
        for (unsigned a = 1; a <= attempts; ++a) {
            entry.attempts = a;
            try {
                out[i] = run(profiles[i], options);
                entry.succeeded = true;
                entry.error.clear();
                break;
            } catch (const std::exception &ex) {
                entry.succeeded = false;
                entry.error = ex.what();
            } catch (...) {
                entry.succeeded = false;
                entry.error = "unknown exception";
            }
        }
        entry.worker = Executor::workerId();
        entry.wallSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        ledger[i] = std::move(entry);
    };

    const auto sweep_start = Clock::now();
    std::uint64_t steals = 0;
    if (jobs <= 1 || n <= 1) {
        jobs = 1;
        for (std::size_t i = 0; i < n; ++i)
            run_one(i);
    } else {
        Executor executor(jobs);
        executor.forEach(n, run_one);
        steals = executor.stealCount();
    }

    if (stats) {
        SuiteRunStats s;
        s.jobs = jobs;
        s.wallSeconds = std::chrono::duration<double>(
                            Clock::now() - sweep_start)
                            .count();
        for (const auto &e : ledger)
            s.busySeconds += e.wallSeconds;
        s.steals = steals;
        s.runs = std::move(ledger);
        *stats = std::move(s);
    }
    return out;
}

} // namespace netchar
