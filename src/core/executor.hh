/**
 * @file
 * Work-stealing thread pool for suite-scale fan-out.
 *
 * The paper's experiments sweep thousands of (profile x machine x
 * seed) runs; every run builds a fresh sim::Machine and workload
 * state, so runs are embarrassingly parallel (see
 * docs/ARCHITECTURE.md, "Parallel execution & run ledger"). The
 * Executor turns that invariant into wall-clock speedup: indices are
 * sharded in contiguous blocks across per-executor deques, each
 * executor pops its own block LIFO and steals FIFO from neighbours
 * when it runs dry.
 */

#ifndef NETCHAR_CORE_EXECUTOR_HH
#define NETCHAR_CORE_EXECUTOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace netchar
{

/** One task that threw during a forEach batch. */
struct TaskFailure
{
    /** Index the task ran as. */
    std::size_t index = 0;
    /** what() of the thrown exception ("unknown exception" for a
     *  non-std throw). */
    std::string what;
    /** The exception itself, for callers that want to rethrow. */
    std::exception_ptr error;
};

/**
 * Fixed-concurrency work-stealing pool. The thread calling forEach()
 * is one of the executors (it owns the last queue), so a pool of
 * concurrency N spawns N-1 worker threads and runs at most N tasks
 * at once. Construction spawns the workers; destruction joins them.
 * forEach() calls are serialized: the pool runs one index batch at a
 * time (concurrent submitters queue behind the running batch).
 */
class Executor
{
  public:
    /**
     * @param concurrency Maximum tasks in flight, counting the
     *        submitting thread; 0 picks one per hardware thread
     *        (minimum 1). concurrency == 1 degenerates to a serial
     *        loop on the calling thread.
     */
    explicit Executor(unsigned concurrency = 0);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Maximum tasks in flight (worker threads + caller). */
    unsigned concurrency() const
    {
        return static_cast<unsigned>(queues_.size());
    }

    /**
     * Run fn(i) for every i in [0, n), distributed over the pool; the
     * calling thread participates. Blocks until every index has
     * finished. Every index runs exactly once even when some throw;
     * after the batch drains, the exception thrown by the *lowest*
     * index (deterministic under any interleaving) is rethrown —
     * the other failures are dropped. Use forEachCollect() when
     * every failure must be attributed.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * As forEach(), but never rethrows: every task that threw is
     * returned as a TaskFailure, sorted by index (deterministic
     * under any interleaving). Empty = every index succeeded.
     */
    std::vector<TaskFailure>
    forEachCollect(std::size_t n,
                   const std::function<void(std::size_t)> &fn);

    /** Tasks executed by a thread other than their home queue's. */
    std::uint64_t stealCount() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /**
     * Executor index of the current thread: 0..concurrency-2 inside
     * a worker, concurrency-1 on the thread inside forEach(), -1
     * elsewhere. For run-ledger attribution.
     */
    static int workerId();

  private:
    struct Queue
    {
        std::mutex mutex;
        std::deque<std::size_t> items;
    };

    /** State of one forEach() batch. */
    struct Batch
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::atomic<std::size_t> remaining{0};
        std::mutex errorMutex;
        /** (index, exception) pairs; lowest index wins the rethrow. */
        std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
    };

    void workerLoop(unsigned self);

    /**
     * Pop one index (own queue first, then steal) and execute it.
     * @param self Home queue of the calling thread.
     * @return false when every queue was empty.
     */
    bool runOne(unsigned self);

    void execute(std::size_t index);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex wakeMutex_;
    std::condition_variable wake_;
    std::mutex doneMutex_;
    std::condition_variable done_;
    std::mutex submitMutex_; // serializes forEach() batches

    Batch *batch_ = nullptr; // valid while a batch is in flight
    std::atomic<std::size_t> queued_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<bool> stop_{false};
};

} // namespace netchar

#endif // NETCHAR_CORE_EXECUTOR_HH
