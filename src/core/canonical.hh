/**
 * @file
 * Canonical text renderings of the structs that define one
 * characterization run: WorkloadProfile, sim::MachineConfig and
 * RunOptions.
 *
 * The serve layer's content-addressed result cache keys on a hash of
 * these renderings, so they must be *canonical*: every field emitted,
 * always in the same order, with a bit-exact number format — two
 * semantically identical runs must render identical bytes no matter
 * how their structs were populated (explicit defaults vs. omitted
 * fields, request-option order, host, build). The renderings live in
 * core rather than serve so a new field added to any of these structs
 * is added to its canonical form in the same layer that owns the
 * struct; a version tag guards against silent drift (bump it whenever
 * a field is added/removed so stale persisted caches self-invalidate).
 */

#ifndef NETCHAR_CORE_CANONICAL_HH
#define NETCHAR_CORE_CANONICAL_HH

#include <string>

#include "core/characterize.hh"
#include "sim/config.hh"
#include "workloads/profile.hh"

namespace netchar
{

/**
 * Canonical-form schema version. Embedded in cacheKeyText(): any
 * change to the rendered field set bumps this, so caches persisted
 * under the old schema miss cleanly instead of serving stale bodies.
 */
inline constexpr int kCanonicalVersion = 1;

/** Canonical `key=value;` rendering of every profile field. */
std::string canonicalProfile(const wl::WorkloadProfile &profile);

/** Canonical rendering of every machine-config field (geometries,
 *  pipeline parameters, spread factors — the complete model). */
std::string canonicalMachine(const sim::MachineConfig &config);

/** Canonical rendering of every run option; disengaged optionals
 *  render as `unset`, identical to a default-constructed field. */
std::string canonicalRunOptions(const RunOptions &options);

/**
 * The full cache-key text of one (profile, machine, options) run:
 * version tag plus the three canonical renderings. Hash this (see
 * serve::ResultCache) to address a cached result; compare it to
 * attribute a collision.
 */
std::string cacheKeyText(const wl::WorkloadProfile &profile,
                         const sim::MachineConfig &config,
                         const RunOptions &options);

} // namespace netchar

#endif // NETCHAR_CORE_CANONICAL_HH
