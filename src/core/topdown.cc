#include "core/topdown.hh"

namespace netchar
{

TopDownProfile
TopDownProfile::fromSlots(const sim::SlotAccount &slots)
{
    using sim::SlotCategory;
    using sim::SlotNode;
    TopDownProfile p;
    p.level1.retiring = slots.categoryFraction(SlotCategory::Retiring);
    p.level1.badSpeculation =
        slots.categoryFraction(SlotCategory::BadSpeculation);
    p.level1.frontendBound =
        slots.categoryFraction(SlotCategory::Frontend);
    p.level1.backendBound =
        slots.categoryFraction(SlotCategory::Backend);

    p.frontend.icacheMisses = slots.fraction(SlotNode::FeICache);
    p.frontend.itlbMisses = slots.fraction(SlotNode::FeITlb);
    p.frontend.branchResteers =
        slots.fraction(SlotNode::FeBtbResteer);
    p.frontend.msSwitches = slots.fraction(SlotNode::FeMsSwitch);
    p.frontend.dsbBandwidth = slots.fraction(SlotNode::FeDsb);
    p.frontend.miteBandwidth = slots.fraction(SlotNode::FeMite);

    p.backend.l1Bound = slots.fraction(SlotNode::BeL1Bound);
    p.backend.l2Bound = slots.fraction(SlotNode::BeL2Bound);
    p.backend.l3Bound = slots.fraction(SlotNode::BeL3Bound);
    p.backend.dramBound = slots.fraction(SlotNode::BeDramBound);
    p.backend.storeBound = slots.fraction(SlotNode::BeStoreBound);
    p.backend.portsUtilization =
        slots.fraction(SlotNode::BePortsUtil);
    p.backend.divider = slots.fraction(SlotNode::BeDivider);
    return p;
}

FrontendBreakdown
TopDownProfile::frontendShares() const
{
    FrontendBreakdown s = frontend;
    const double total = level1.frontendBound;
    if (total <= 0.0)
        return FrontendBreakdown{};
    s.icacheMisses /= total;
    s.itlbMisses /= total;
    s.branchResteers /= total;
    s.msSwitches /= total;
    s.dsbBandwidth /= total;
    s.miteBandwidth /= total;
    return s;
}

BackendBreakdown
TopDownProfile::backendShares() const
{
    BackendBreakdown s = backend;
    const double total = level1.backendBound;
    if (total <= 0.0)
        return BackendBreakdown{};
    s.l1Bound /= total;
    s.l2Bound /= total;
    s.l3Bound /= total;
    s.dramBound /= total;
    s.storeBound /= total;
    s.portsUtilization /= total;
    s.divider /= total;
    return s;
}

std::vector<TopDownRow>
level1Rows(const TopDownProfile &p)
{
    return {
        {"Retiring", p.level1.retiring},
        {"Bad_Speculation", p.level1.badSpeculation},
        {"Frontend_Bound", p.level1.frontendBound},
        {"Backend_Bound", p.level1.backendBound},
    };
}

std::vector<TopDownRow>
frontendRows(const TopDownProfile &p)
{
    const auto s = p.frontendShares();
    return {
        {"FE.ICache_Misses", s.icacheMisses},
        {"FE.ITLB_Misses", s.itlbMisses},
        {"FE.Branch_Resteers", s.branchResteers},
        {"FE.MS_Switches", s.msSwitches},
        {"FE.DSB_Bandwidth", s.dsbBandwidth},
        {"FE.MITE_Bandwidth", s.miteBandwidth},
    };
}

std::vector<TopDownRow>
backendRows(const TopDownProfile &p)
{
    const auto s = p.backendShares();
    return {
        {"MEM.L1_Bound", s.l1Bound},
        {"MEM.L2_Bound", s.l2Bound},
        {"MEM.L3_Bound", s.l3Bound},
        {"MEM.DRAM_Bound", s.dramBound},
        {"MEM.Store_Bound", s.storeBound},
        {"CR.Ports_Utilization", s.portsUtilization},
        {"CR.Divider", s.divider},
    };
}

} // namespace netchar
