#include "core/subset.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/summary.hh"

namespace netchar
{

SubsetResult
buildSubset(const std::vector<MetricVector> &metric_rows,
            const SubsetOptions &options)
{
    return buildSubset(toMatrix(metric_rows), options);
}

SubsetResult
buildSubset(const stats::Matrix &metrics, const SubsetOptions &options)
{
    SubsetResult result;

    // Drop-and-report rows with non-finite cells (failed/corrupted
    // runs); the pipeline continues over the survivors.
    const stats::Matrix clean =
        stats::sanitizeMatrix(metrics, result.sanitize);
    result.rowMap.reserve(clean.rows());
    {
        std::size_t next_drop = 0;
        for (std::size_t r = 0; r < metrics.rows(); ++r) {
            if (next_drop < result.sanitize.droppedRows.size() &&
                result.sanitize.droppedRows[next_drop] == r) {
                ++next_drop;
                continue;
            }
            result.rowMap.push_back(r);
        }
    }

    if (clean.rows() < options.subsetSize)
        throw std::invalid_argument(
            "buildSubset: fewer benchmarks than subset size (" +
            std::to_string(clean.rows()) + " finite of " +
            std::to_string(metrics.rows()) + " rows, need " +
            std::to_string(options.subsetSize) + ")");

    stats::PcaOptions pca_opts;
    pca_opts.components = options.components;
    pca_opts.standardize = true;
    result.pca = stats::runPca(clean, pca_opts);
    result.dendrogram =
        stats::hierarchicalCluster(result.pca.scores, options.linkage);
    result.clusters = result.dendrogram.cut(options.subsetSize);
    result.representatives =
        stats::pickRepresentatives(result.pca.scores, result.clusters);

    // Map cluster members and representatives back to the caller's
    // row numbering (identity when nothing was dropped).
    for (auto &cluster : result.clusters)
        for (auto &idx : cluster)
            idx = result.rowMap[idx];
    for (auto &idx : result.representatives)
        idx = result.rowMap[idx];
    return result;
}

std::vector<double>
benchmarkScores(std::span<const double> baseline_seconds,
                std::span<const double> machine_seconds)
{
    if (baseline_seconds.size() != machine_seconds.size())
        throw std::invalid_argument("benchmarkScores: length mismatch");
    std::vector<double> scores(baseline_seconds.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
        if (baseline_seconds[i] <= 0.0 || machine_seconds[i] <= 0.0)
            throw std::invalid_argument(
                "benchmarkScores: non-positive time");
        scores[i] = baseline_seconds[i] / machine_seconds[i];
    }
    return scores;
}

double
compositeScore(std::span<const double> scores)
{
    return stats::geomean(scores);
}

double
compositeScore(std::span<const double> scores,
               std::span<const std::size_t> subset)
{
    std::vector<double> picked;
    picked.reserve(subset.size());
    for (std::size_t idx : subset) {
        if (idx >= scores.size())
            throw std::out_of_range("compositeScore: bad index");
        picked.push_back(scores[idx]);
    }
    return stats::geomean(picked);
}

double
subsetAccuracyPct(double full_composite, double subset_composite)
{
    if (full_composite <= 0.0 || subset_composite <= 0.0)
        return 0.0;
    const double ratio = subset_composite / full_composite;
    return 100.0 * std::min(ratio, 1.0 / ratio);
}

OptimumSubset
optimumSubset(std::span<const double> scores,
              const std::vector<std::vector<std::size_t>> &clusters,
              std::uint64_t max_combinations)
{
    if (clusters.empty())
        throw std::invalid_argument("optimumSubset: no clusters");
    const double full = compositeScore(scores);

    OptimumSubset best;
    best.subset.resize(clusters.size());
    std::vector<std::size_t> choice(clusters.size(), 0);

    // Initialize with the first member of each cluster.
    for (std::size_t c = 0; c < clusters.size(); ++c) {
        if (clusters[c].empty())
            throw std::invalid_argument("optimumSubset: empty cluster");
        best.subset[c] = clusters[c][0];
    }
    best.accuracyPct = subsetAccuracyPct(
        full, compositeScore(scores, best.subset));

    // Odometer walk over choose-one-per-cluster combinations.
    std::uint64_t tried = 0;
    bool exhausted_budget = false;
    while (true) {
        std::vector<std::size_t> subset(clusters.size());
        for (std::size_t c = 0; c < clusters.size(); ++c)
            subset[c] = clusters[c][choice[c]];
        const double acc =
            subsetAccuracyPct(full, compositeScore(scores, subset));
        if (acc > best.accuracyPct) {
            best.accuracyPct = acc;
            best.subset = subset;
        }
        if (++tried >= max_combinations) {
            exhausted_budget = true;
            break;
        }
        // Advance the odometer.
        std::size_t pos = 0;
        while (pos < clusters.size()) {
            if (++choice[pos] < clusters[pos].size())
                break;
            choice[pos] = 0;
            ++pos;
        }
        if (pos == clusters.size())
            break; // wrapped: all combinations seen
    }

    if (exhausted_budget) {
        // Greedy refinement: per cluster, swap in the member that
        // maximizes accuracy, repeated until a fixed point.
        bool improved = true;
        while (improved) {
            improved = false;
            for (std::size_t c = 0; c < clusters.size(); ++c) {
                for (std::size_t m : clusters[c]) {
                    auto candidate = best.subset;
                    candidate[c] = m;
                    const double acc = subsetAccuracyPct(
                        full, compositeScore(scores, candidate));
                    if (acc > best.accuracyPct) {
                        best.accuracyPct = acc;
                        best.subset = candidate;
                        improved = true;
                    }
                }
            }
        }
    }
    best.combinationsTried = tried;
    return best;
}

} // namespace netchar
