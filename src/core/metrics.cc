#include "core/metrics.hh"

#include <stdexcept>

namespace netchar
{

const std::array<MetricInfo, kNumMetrics> &
metricTable()
{
    static const std::array<MetricInfo, kNumMetrics> table = {{
        {MetricId::KernelInstructionPct, "Kernel instructions",
         "Inst Mix", "Percentage"},
        {MetricId::UserInstructionPct, "User instructions",
         "Inst Mix", "Percentage"},
        {MetricId::BranchInstructionPct, "Branch instructions",
         "Inst Mix", "Percentage"},
        {MetricId::MemoryLoadPct, "Memory loads", "Inst Mix",
         "Percentage"},
        {MetricId::MemoryStorePct, "Memory stores", "Inst Mix",
         "Percentage"},
        {MetricId::Cpi, "Cycle per instruction", "CPI",
         "Per instruction"},
        {MetricId::CpuUtilizationPct, "CPU utilization", "CPU Usage",
         "Percentage"},
        {MetricId::BranchMpki, "Branch misses", "Branch", "MPKI"},
        {MetricId::L1dMpki, "L1-dcache misses", "Cache", "MPKI"},
        {MetricId::L1iMpki, "L1-icache misses", "Cache", "MPKI"},
        {MetricId::L2Mpki, "L2 cache misses", "Cache", "MPKI"},
        {MetricId::LlcMpki, "LLC misses", "Cache", "MPKI"},
        {MetricId::ItlbMpki, "iTLB misses", "TLB", "MPKI"},
        {MetricId::DtlbLoadMpki, "dTLB load misses", "TLB", "MPKI"},
        {MetricId::DtlbStoreMpki, "dTLB store misses", "TLB", "MPKI"},
        {MetricId::MemReadBwMBps, "Memory read bandwidth", "Memory",
         "MB per sec"},
        {MetricId::MemWriteBwMBps, "Memory write bandwidth", "Memory",
         "MB per sec"},
        {MetricId::MemPageMissRatePct, "Memory page miss rate",
         "Memory", "Percentage"},
        {MetricId::PageFaultPki, "Page faults", "Memory", "PKI"},
        {MetricId::GcTriggeredPki, "GC/Triggered",
         "Garbage Collection", "PKI"},
        {MetricId::GcAllocationTickPki, "GC/AllocationTick",
         "Garbage Collection", "PKI"},
        {MetricId::JitStartedPki, "JIT Method/JittingStarted", "JIT",
         "PKI"},
        {MetricId::ExceptionStartPki, "Exception/Start", "Exception",
         "PKI"},
        {MetricId::ContentionStartPki, "Contention/Start",
         "Contention", "PKI"},
    }};
    return table;
}

std::string_view
metricName(MetricId id)
{
    return metricTable()[static_cast<std::size_t>(id)].name;
}

std::string_view
metricName(std::size_t id)
{
    if (id >= kNumMetrics)
        throw std::out_of_range("metricName");
    return metricTable()[id].name;
}

MetricVector
computeMetrics(const sim::PerfCounters &c,
               const rt::RuntimeEventCounts &events,
               double cpu_utilization, double seconds)
{
    MetricVector m{};
    const auto n = static_cast<double>(c.instructions);
    const double pct = n > 0.0 ? 100.0 / n : 0.0;
    auto set = [&m](MetricId id, double value) {
        m[static_cast<std::size_t>(id)] = value;
    };

    set(MetricId::KernelInstructionPct,
        static_cast<double>(c.kernelInstructions) * pct);
    set(MetricId::UserInstructionPct,
        static_cast<double>(c.instructions - c.kernelInstructions) *
            pct);
    set(MetricId::BranchInstructionPct,
        static_cast<double>(c.branches) * pct);
    set(MetricId::MemoryLoadPct, static_cast<double>(c.loads) * pct);
    set(MetricId::MemoryStorePct, static_cast<double>(c.stores) * pct);
    set(MetricId::Cpi, c.cpi());
    set(MetricId::CpuUtilizationPct, 100.0 * cpu_utilization);
    set(MetricId::BranchMpki, c.mpki(c.branchMisses));
    set(MetricId::L1dMpki, c.mpki(c.l1dMisses));
    set(MetricId::L1iMpki, c.mpki(c.l1iMisses));
    set(MetricId::L2Mpki, c.mpki(c.l2Misses));
    set(MetricId::LlcMpki, c.mpki(c.llcMisses));
    set(MetricId::ItlbMpki, c.mpki(c.itlbMisses));
    set(MetricId::DtlbLoadMpki, c.mpki(c.dtlbLoadMisses));
    set(MetricId::DtlbStoreMpki, c.mpki(c.dtlbStoreMisses));
    const double to_mbps =
        seconds > 0.0 ? 1.0 / (seconds * 1024.0 * 1024.0) : 0.0;
    set(MetricId::MemReadBwMBps,
        static_cast<double>(c.memReadBytes) * to_mbps);
    set(MetricId::MemWriteBwMBps,
        static_cast<double>(c.memWriteBytes) * to_mbps);
    set(MetricId::MemPageMissRatePct,
        c.dramAccesses > 0
            ? 100.0 * static_cast<double>(c.dramRowMisses) /
                  static_cast<double>(c.dramAccesses)
            : 0.0);
    set(MetricId::PageFaultPki, c.mpki(c.pageFaults));
    set(MetricId::GcTriggeredPki,
        events.pki(rt::RuntimeEventType::GcTriggered, c.instructions));
    set(MetricId::GcAllocationTickPki,
        events.pki(rt::RuntimeEventType::GcAllocationTick,
                   c.instructions));
    set(MetricId::JitStartedPki,
        events.pki(rt::RuntimeEventType::JitStarted, c.instructions));
    set(MetricId::ExceptionStartPki,
        events.pki(rt::RuntimeEventType::ExceptionStart,
                   c.instructions));
    set(MetricId::ContentionStartPki,
        events.pki(rt::RuntimeEventType::ContentionStart,
                   c.instructions));
    return m;
}

std::vector<std::size_t>
controlFlowMetricIds()
{
    return {2, 7};
}

std::vector<std::size_t>
memoryMetricIds()
{
    return {8, 9, 10, 11, 12, 13, 14};
}

std::vector<std::size_t>
runtimeMetricIds()
{
    return {19, 20, 21, 22, 23};
}

stats::Matrix
toMatrix(const std::vector<MetricVector> &rows)
{
    std::vector<std::size_t> all(kNumMetrics);
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        all[i] = i;
    return toMatrix(rows, all);
}

stats::Matrix
toMatrix(const std::vector<MetricVector> &rows,
         const std::vector<std::size_t> &metric_ids)
{
    stats::Matrix m(rows.size(), metric_ids.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < metric_ids.size(); ++c) {
            if (metric_ids[c] >= kNumMetrics)
                throw std::out_of_range("toMatrix: bad metric id");
            m(r, c) = rows[r][metric_ids[c]];
        }
    }
    return m;
}

} // namespace netchar
