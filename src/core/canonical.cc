#include "core/canonical.hh"

#include <cstdio>
#include <sstream>

namespace netchar
{

namespace
{

/**
 * Bit-exact double rendering: %.17g round-trips every IEEE-754
 * double, so two equal values always render identical bytes and two
 * different values never collide.
 */
std::string
canonNum(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

void
field(std::ostringstream &os, const char *key, const std::string &v)
{
    os << key << '=' << v << ';';
}

void
field(std::ostringstream &os, const char *key, double v)
{
    os << key << '=' << canonNum(v) << ';';
}

void
field(std::ostringstream &os, const char *key, std::uint64_t v)
{
    os << key << '=' << v << ';';
}

void
field(std::ostringstream &os, const char *key, unsigned v)
{
    os << key << '=' << v << ';';
}

void
field(std::ostringstream &os, const char *key, bool v)
{
    os << key << '=' << (v ? 1 : 0) << ';';
}

void
cacheField(std::ostringstream &os, const char *key,
           const sim::CacheGeometry &g)
{
    os << key << '=' << g.sizeBytes << '/' << g.associativity << '/'
       << g.lineBytes << ';';
}

void
tlbField(std::ostringstream &os, const char *key,
         const sim::TlbGeometry &g)
{
    os << key << '=' << g.entries << '/' << g.associativity << '/'
       << g.pageBytes << ';';
}

} // namespace

std::string
canonicalProfile(const wl::WorkloadProfile &p)
{
    std::ostringstream os;
    os << "profile{";
    field(os, "name", p.name);
    field(os, "suite", wl::suiteName(p.suite));
    field(os, "instructions", p.instructions);
    field(os, "branchFrac", p.branchFrac);
    field(os, "loadFrac", p.loadFrac);
    field(os, "storeFrac", p.storeFrac);
    field(os, "mulFrac", p.mulFrac);
    field(os, "divFrac", p.divFrac);
    field(os, "microcodedFrac", p.microcodedFrac);
    field(os, "kernelFrac", p.kernelFrac);
    field(os, "kernelBurstLen", p.kernelBurstLen);
    field(os, "ilp", p.ilp);
    field(os, "mlp", p.mlp);
    field(os, "cpuUtil", p.cpuUtil);
    field(os, "methods", p.methods);
    field(os, "meanMethodBytes", p.meanMethodBytes);
    field(os, "methodZipf", p.methodZipf);
    field(os, "callFrac", p.callFrac);
    field(os, "takenFrac", p.takenFrac);
    field(os, "branchBias", p.branchBias);
    field(os, "dataFootprint", p.dataFootprint);
    field(os, "dataZipf", p.dataZipf);
    field(os, "streamFrac", p.streamFrac);
    field(os, "stackFrac", p.stackFrac);
    field(os, "warmFrac", p.warmFrac);
    field(os, "coolFrac", p.coolFrac);
    field(os, "managed", p.managed);
    field(os, "allocBytesPerInst", p.allocBytesPerInst);
    field(os, "meanObjectBytes", p.meanObjectBytes);
    field(os, "maxHeapBytes", p.maxHeapBytes);
    field(os, "gcMode",
          static_cast<unsigned>(static_cast<int>(p.gcMode)));
    field(os, "gcAssist",
          static_cast<unsigned>(static_cast<int>(p.gcAssist)));
    field(os, "tierUpCallThreshold", p.tierUpCallThreshold);
    field(os, "exceptionPki", p.exceptionPki);
    field(os, "contentionPki", p.contentionPki);
    field(os, "seed", p.seed);
    os << '}';
    return os.str();
}

std::string
canonicalMachine(const sim::MachineConfig &m)
{
    std::ostringstream os;
    os << "machine{";
    field(os, "name", m.name);
    field(os, "isa", static_cast<unsigned>(static_cast<int>(m.isa)));
    field(os, "physicalCores", m.physicalCores);
    field(os, "logicalCores", m.logicalCores);
    cacheField(os, "l1d", m.l1d);
    cacheField(os, "l1i", m.l1i);
    cacheField(os, "l2", m.l2);
    cacheField(os, "llc", m.llc);
    field(os, "llcSlices", m.llcSlices);
    tlbField(os, "itlb", m.itlb);
    tlbField(os, "dtlb", m.dtlb);
    tlbField(os, "stlb", m.stlb);
    field(os, "btbEntries", m.btbEntries);
    field(os, "predictorBits", m.predictorBits);
    field(os, "predictorHistoryBits", m.predictorHistoryBits);
    field(os, "nominalGhz", m.nominalGhz);
    field(os, "maxGhz", m.maxGhz);
    const sim::PipelineParams &p = m.pipe;
    field(os, "slotsPerCycle", p.slotsPerCycle);
    field(os, "decodeWidth", p.decodeWidth);
    field(os, "issueWidth", p.issueWidth);
    field(os, "robEntries", p.robEntries);
    field(os, "l1Latency", p.l1Latency);
    field(os, "l2Latency", p.l2Latency);
    field(os, "llcLatency", p.llcLatency);
    field(os, "dramLatency", p.dramLatency);
    field(os, "dramRowMissExtra", p.dramRowMissExtra);
    field(os, "tlbWalkLatency", p.tlbWalkLatency);
    field(os, "stlbHitLatency", p.stlbHitLatency);
    field(os, "branchMispredictPenalty", p.branchMispredictPenalty);
    field(os, "btbResteerPenalty", p.btbResteerPenalty);
    field(os, "msSwitchPenalty", p.msSwitchPenalty);
    field(os, "pageFaultPenalty", p.pageFaultPenalty);
    field(os, "feExposure", p.feExposure);
    field(os, "memStallExposure", p.memStallExposure);
    field(os, "dsbLines", p.dsbLines);
    field(os, "loopBufferLines", p.loopBufferLines);
    field(os, "dsbBandwidthStall", p.dsbBandwidthStall);
    field(os, "miteBandwidthStall", p.miteBandwidthStall);
    field(os, "bandwidthStallCycles", p.bandwidthStallCycles);
    field(os, "l1BandwidthStall", p.l1BandwidthStall);
    field(os, "storeBufferStall", p.storeBufferStall);
    field(os, "storeStallCycles", p.storeStallCycles);
    field(os, "divLatency", p.divLatency);
    field(os, "codeSpreadFactor", m.codeSpreadFactor);
    field(os, "dataSpreadFactor", m.dataSpreadFactor);
    os << '}';
    return os.str();
}

std::string
canonicalRunOptions(const RunOptions &o)
{
    std::ostringstream os;
    os << "options{";
    field(os, "warmupInstructions", o.warmupInstructions);
    field(os, "measuredInstructions", o.measuredInstructions);
    field(os, "cores", o.cores);
    field(os, "seed", o.seed);
    field(os, "jitHint", o.jitHint);
    field(os, "nocSliceServiceRate", o.noc.sliceServiceRate);
    field(os, "nocMaxQueueCycles", o.noc.maxQueueCycles);
    field(os, "nocRateSmoothing", o.noc.rateSmoothing);
    field(os, "nocContentionEnabled", o.noc.contentionEnabled);
    if (o.gcMode)
        field(os, "gcMode",
              static_cast<unsigned>(static_cast<int>(*o.gcMode)));
    else
        os << "gcMode=unset;";
    if (o.gcAssist)
        field(os, "gcAssist",
              static_cast<unsigned>(static_cast<int>(*o.gcAssist)));
    else
        os << "gcAssist=unset;";
    if (o.maxHeapBytes)
        field(os, "maxHeapBytes", *o.maxHeapBytes);
    else
        os << "maxHeapBytes=unset;";
    field(os, "allocScale", o.allocScale);
    field(os, "quantum", o.quantum);
    field(os, "runBudgetCycles", o.runBudgetCycles);
    os << '}';
    return os.str();
}

std::string
cacheKeyText(const wl::WorkloadProfile &profile,
             const sim::MachineConfig &config,
             const RunOptions &options)
{
    std::ostringstream os;
    os << "netchar-key/v" << kCanonicalVersion << '{'
       << canonicalProfile(profile) << canonicalMachine(config)
       << canonicalRunOptions(options) << '}';
    return os.str();
}

} // namespace netchar
