#include "core/correlation.hh"

#include "stats/summary.hh"
#include "trace/analyzer.hh"

namespace netchar
{

std::string
counterSeriesName(CounterSeries series)
{
    switch (series) {
      case CounterSeries::BranchMpki: return "branch MPKI";
      case CounterSeries::L1iMpki: return "L1 I-cache MPKI";
      case CounterSeries::L1dMpki: return "L1 D-cache MPKI";
      case CounterSeries::L2Mpki: return "L2 MPKI";
      case CounterSeries::LlcMpki: return "LLC MPKI";
      case CounterSeries::ItlbMpki: return "I-TLB MPKI";
      case CounterSeries::PageFaultsPki: return "page faults PKI";
      case CounterSeries::UselessPrefetches:
        return "useless prefetch ratio";
      case CounterSeries::Instructions: return "instructions";
      case CounterSeries::Ipc: return "IPC";
      default: return "unknown";
    }
}

std::vector<double>
extractSeries(const std::vector<IntervalSample> &samples,
              CounterSeries series)
{
    std::vector<double> out;
    out.reserve(samples.size());
    for (const auto &s : samples) {
        const auto &c = s.counters;
        switch (series) {
          case CounterSeries::BranchMpki:
            out.push_back(c.mpki(c.branchMisses));
            break;
          case CounterSeries::L1iMpki:
            out.push_back(c.mpki(c.l1iMisses));
            break;
          case CounterSeries::L1dMpki:
            out.push_back(c.mpki(c.l1dMisses));
            break;
          case CounterSeries::L2Mpki:
            out.push_back(c.mpki(c.l2Misses));
            break;
          case CounterSeries::LlcMpki:
            out.push_back(c.mpki(c.llcMisses));
            break;
          case CounterSeries::ItlbMpki:
            out.push_back(c.mpki(c.itlbMisses));
            break;
          case CounterSeries::PageFaultsPki:
            out.push_back(c.mpki(c.pageFaults));
            break;
          case CounterSeries::UselessPrefetches:
            // Ratio, not count: removes the activity-level
            // confounder so the series reflects prefetch *accuracy*.
            out.push_back(
                c.prefetchesIssued > 0
                    ? static_cast<double>(c.prefetchesUseless) /
                          static_cast<double>(c.prefetchesIssued)
                    : 0.0);
            break;
          case CounterSeries::Instructions:
            out.push_back(static_cast<double>(c.instructions));
            break;
          case CounterSeries::Ipc:
            out.push_back(c.ipc());
            break;
        }
    }
    return out;
}

std::vector<double>
extractEventSeries(const std::vector<IntervalSample> &samples,
                   rt::RuntimeEventType type)
{
    std::vector<double> out;
    out.reserve(samples.size());
    for (const auto &s : samples)
        out.push_back(static_cast<double>(s.events.count(type)));
    return out;
}

std::vector<CorrelationRow>
correlateEvents(const std::vector<IntervalSample> &samples,
                rt::RuntimeEventType type)
{
    const auto event_series = extractEventSeries(samples, type);
    const CounterSeries selections[] = {
        CounterSeries::BranchMpki,    CounterSeries::L1iMpki,
        CounterSeries::L2Mpki,        CounterSeries::LlcMpki,
        CounterSeries::PageFaultsPki,
        CounterSeries::UselessPrefetches,
        CounterSeries::Instructions,  CounterSeries::Ipc,
    };
    std::vector<CorrelationRow> rows;
    rows.reserve(std::size(selections));
    for (const auto series : selections) {
        CorrelationRow row;
        row.series = series;
        row.name = counterSeriesName(series);
        const auto counter_series = extractSeries(samples, series);
        row.r = stats::pearson(event_series, counter_series);
        row.rho = stats::spearman(event_series, counter_series);
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<CorrelationRow>
correlateTrace(const trace::Trace &trace, rt::RuntimeEventType type,
               double interval_cycles, std::size_t max_samples)
{
    const trace::TraceAnalyzer analyzer(trace);
    return correlateEvents(
        analyzer.reslice(interval_cycles, max_samples), type);
}

} // namespace netchar
