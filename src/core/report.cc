#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace netchar
{

std::string
fmtFixed(double value, int places)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(places);
    os << value;
    return os.str();
}

std::string
fmtPercent(double fraction, int places)
{
    return fmtFixed(100.0 * fraction, places) + "%";
}

TextTable::TextTable(std::vector<std::string> header)
{
    if (header.empty())
        throw std::invalid_argument("TextTable: empty header");
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != rows_.front().size())
        throw std::invalid_argument("TextTable: column count mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(rows_.front().size(), 0);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        for (std::size_t c = 0; c < rows_[r].size(); ++c) {
            if (c > 0)
                os << "  ";
            os << rows_[r][c];
            os << std::string(widths[c] - rows_[r][c].size(), ' ');
        }
        os << '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c > 0 ? 2 : 0);
            os << std::string(total, '-') << '\n';
        }
    }
    return os.str();
}

std::string
barChart(const std::string &title, const std::vector<Bar> &bars,
         int width, double max_value)
{
    double max = max_value;
    if (max <= 0.0)
        for (const auto &b : bars)
            max = std::max(max, b.value);
    if (max <= 0.0)
        max = 1.0;

    std::size_t label_width = 0;
    for (const auto &b : bars)
        label_width = std::max(label_width, b.label.size());

    std::ostringstream os;
    if (!title.empty())
        os << title << '\n';
    for (const auto &b : bars) {
        const int len = static_cast<int>(
            std::round(width * std::clamp(b.value / max, 0.0, 1.0)));
        os << b.label
           << std::string(label_width - b.label.size(), ' ') << " |"
           << std::string(static_cast<std::size_t>(len), '#')
           << std::string(static_cast<std::size_t>(width - len), ' ')
           << "| " << fmtFixed(b.value, 3) << '\n';
    }
    return os.str();
}

std::string
stackedBars(const std::string &title,
            const std::vector<std::string> &row_labels,
            const std::vector<std::string> &segment_labels,
            const std::vector<std::vector<double>> &values, int width)
{
    if (values.size() != row_labels.size())
        throw std::invalid_argument("stackedBars: row count mismatch");
    // Distinct fill characters per segment, cycled if needed.
    static const char fills[] = {'#', '=', '+', ':', '.', '%', '*',
                                 'o'};
    const std::size_t nfill = sizeof(fills);

    std::size_t label_width = 0;
    for (const auto &l : row_labels)
        label_width = std::max(label_width, l.size());

    std::ostringstream os;
    if (!title.empty())
        os << title << '\n';
    os << "legend:";
    for (std::size_t s = 0; s < segment_labels.size(); ++s)
        os << " [" << fills[s % nfill] << "] " << segment_labels[s];
    os << '\n';

    for (std::size_t r = 0; r < values.size(); ++r) {
        if (values[r].size() != segment_labels.size())
            throw std::invalid_argument(
                "stackedBars: segment count mismatch");
        os << row_labels[r]
           << std::string(label_width - row_labels[r].size(), ' ')
           << " |";
        int used = 0;
        for (std::size_t s = 0; s < values[r].size(); ++s) {
            const int len = static_cast<int>(std::round(
                width * std::clamp(values[r][s], 0.0, 1.0)));
            const int capped = std::min(len, width - used);
            os << std::string(static_cast<std::size_t>(capped),
                              fills[s % nfill]);
            used += capped;
        }
        os << std::string(static_cast<std::size_t>(
                              std::max(0, width - used)),
                          ' ')
           << "|\n";
    }
    return os.str();
}

} // namespace netchar
