/**
 * @file
 * Table I: the 24 characterization metrics, their normalization units
 * and IDs, plus conversion from raw counters to metric vectors.
 *
 * Metric IDs follow the paper exactly (0-23), so "Metrics 2, 7" in
 * §V-C/§V-D (control-flow behavior) and "Metrics 8-14" (memory
 * behavior) refer to the same indices here.
 */

#ifndef NETCHAR_CORE_METRICS_HH
#define NETCHAR_CORE_METRICS_HH

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "runtime/events.hh"
#include "sim/counters.hh"
#include "stats/matrix.hh"

namespace netchar
{

/** Table I metric identifiers (the paper's ID column). */
enum class MetricId : std::size_t
{
    KernelInstructionPct = 0,
    UserInstructionPct = 1,
    BranchInstructionPct = 2,
    MemoryLoadPct = 3,
    MemoryStorePct = 4,
    Cpi = 5,
    CpuUtilizationPct = 6,
    BranchMpki = 7,
    L1dMpki = 8,
    L1iMpki = 9,
    L2Mpki = 10,
    LlcMpki = 11,
    ItlbMpki = 12,
    DtlbLoadMpki = 13,
    DtlbStoreMpki = 14,
    MemReadBwMBps = 15,
    MemWriteBwMBps = 16,
    MemPageMissRatePct = 17,
    PageFaultPki = 18,
    GcTriggeredPki = 19,
    GcAllocationTickPki = 20,
    JitStartedPki = 21,
    ExceptionStartPki = 22,
    ContentionStartPki = 23,
};

/** Number of Table I metrics. */
constexpr std::size_t kNumMetrics = 24;

/** One benchmark's metric values, indexed by MetricId. */
using MetricVector = std::array<double, kNumMetrics>;

/** Static description of one metric (Table I row). */
struct MetricInfo
{
    MetricId id;
    std::string_view name;
    std::string_view category;
    std::string_view unit;
};

/** The full Table I, in ID order. */
const std::array<MetricInfo, kNumMetrics> &metricTable();

/** Short name of a metric. */
std::string_view metricName(MetricId id);
std::string_view metricName(std::size_t id);

/**
 * Compute the 24 metrics from one measured interval.
 *
 * @param counters Raw counter deltas over the interval.
 * @param events Runtime event deltas (zeros for native workloads).
 * @param cpu_utilization CPU utilization of the interval, [0, 1].
 * @param seconds Wall-clock span of the interval (for bandwidths).
 */
MetricVector computeMetrics(const sim::PerfCounters &counters,
                            const rt::RuntimeEventCounts &events,
                            double cpu_utilization, double seconds);

/** Metric IDs for §V-C control-flow comparisons (2, 7). */
std::vector<std::size_t> controlFlowMetricIds();

/** Metric IDs for §V-C memory-behavior comparisons (8-14). */
std::vector<std::size_t> memoryMetricIds();

/** Metric IDs for §V-D runtime-event comparisons (19-23). */
std::vector<std::size_t> runtimeMetricIds();

/**
 * Stack metric vectors into an observations x metrics Matrix,
 * optionally restricted to a subset of metric columns.
 */
stats::Matrix toMatrix(const std::vector<MetricVector> &rows);
stats::Matrix toMatrix(const std::vector<MetricVector> &rows,
                       const std::vector<std::size_t> &metric_ids);

} // namespace netchar

#endif // NETCHAR_CORE_METRICS_HH
