#include "core/faults.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "stats/hash.hh" // fnv1a / splitmix64 / unitInterval

namespace netchar
{

namespace
{

FaultKind
kindFromName(std::string_view name)
{
    if (name == "throw")
        return FaultKind::Throw;
    if (name == "corrupt" || name == "nan")
        return FaultKind::CorruptCounter;
    if (name == "stall")
        return FaultKind::Stall;
    if (name == "trace")
        return FaultKind::TraceExhaust;
    return FaultKind::None;
}

const std::vector<FaultKind> &
allKinds()
{
    static const std::vector<FaultKind> kinds = {
        FaultKind::Throw,
        FaultKind::CorruptCounter,
        FaultKind::Stall,
        FaultKind::TraceExhaust,
    };
    return kinds;
}

} // namespace

std::string_view
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::None:
        return "none";
    case FaultKind::Throw:
        return "throw";
    case FaultKind::CorruptCounter:
        return "corrupt";
    case FaultKind::Stall:
        return "stall";
    case FaultKind::TraceExhaust:
        return "trace";
    }
    return "none";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    plan.kinds_ = allKinds();
    bool have_rate = false;

    std::istringstream fields(spec);
    std::string field;
    while (std::getline(fields, field, ',')) {
        if (field.empty())
            continue;
        const auto eq = field.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "chaos spec: expected key=value, got '" + field +
                "' (example: rate=0.1,kinds=throw+stall,seed=7)");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "rate") {
            try {
                std::size_t used = 0;
                plan.rate_ = std::stod(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                throw std::invalid_argument(
                    "chaos spec: rate expects a number in [0,1], "
                    "got '" + value + "'");
            }
            if (!(plan.rate_ >= 0.0 && plan.rate_ <= 1.0))
                throw std::invalid_argument(
                    "chaos spec: rate must be in [0,1], got '" +
                    value + "'");
            have_rate = true;
        } else if (key == "kinds") {
            plan.kinds_.clear();
            std::istringstream names(value);
            std::string name;
            while (std::getline(names, name, '+')) {
                const FaultKind kind = kindFromName(name);
                if (kind == FaultKind::None)
                    throw std::invalid_argument(
                        "chaos spec: unknown kind '" + name +
                        "' (valid: throw, corrupt, stall, trace)");
                plan.kinds_.push_back(kind);
            }
            if (plan.kinds_.empty())
                throw std::invalid_argument(
                    "chaos spec: kinds= needs at least one of "
                    "throw, corrupt, stall, trace");
        } else if (key == "seed") {
            try {
                std::size_t used = 0;
                plan.seed_ = std::stoull(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                throw std::invalid_argument(
                    "chaos spec: seed expects an integer, got '" +
                    value + "'");
            }
        } else {
            throw std::invalid_argument(
                "chaos spec: unknown key '" + key +
                "' (valid: rate, kinds, seed)");
        }
    }
    if (!have_rate)
        throw std::invalid_argument(
            "chaos spec: rate= is required "
            "(example: rate=0.1,kinds=throw+stall,seed=7)");
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << "rate=" << rate_ << ",kinds=";
    for (std::size_t i = 0; i < kinds_.size(); ++i) {
        if (i > 0)
            os << '+';
        os << faultKindName(kinds_[i]);
    }
    os << ",seed=" << seed_;
    return os.str();
}

FaultDecision
FaultPlan::decide(std::string_view benchmark, std::string_view machine,
                  unsigned attempt) const
{
    FaultDecision decision;
    if (!enabled())
        return decision;
    const std::uint64_t h = splitmix64(
        fnv1a(benchmark) ^ splitmix64(fnv1a(machine)) ^
        splitmix64(seed_) ^
        (static_cast<std::uint64_t>(attempt) * 0xD1B54A32D192ED03ULL));
    if (unitInterval(h) >= rate_)
        return decision;

    const std::uint64_t h2 = splitmix64(h);
    decision.kind = kinds_[h2 % kinds_.size()];
    decision.selector = splitmix64(h2);
    switch (decision.selector % 3) {
    case 0:
        decision.badValue = std::numeric_limits<double>::quiet_NaN();
        break;
    case 1:
        decision.badValue = std::numeric_limits<double>::infinity();
        break;
    default:
        decision.badValue = -std::numeric_limits<double>::infinity();
        break;
    }
    // Small enough that any realistic capture overflows it: counter
    // records land once per advance chunk (~dozens per run minimum).
    decision.traceCapacity =
        8 +
        static_cast<std::size_t>(splitmix64(decision.selector) % 25);
    return decision;
}

RunBudgetExceeded::RunBudgetExceeded(double cycles, std::uint64_t budget)
    : std::runtime_error(
          "run budget exceeded: " + std::to_string(cycles) +
          " simulated cycles > budget " + std::to_string(budget) +
          " (watchdog kill)"),
      cycles_(cycles), budget_(budget)
{
}

std::uint64_t
perturbedSeed(std::uint64_t base, std::string_view benchmark,
              unsigned attempt)
{
    if (attempt <= 1)
        return base;
    return splitmix64(base ^ fnv1a(benchmark) ^
                      (static_cast<std::uint64_t>(attempt) *
                       0x9E3779B97F4A7C15ULL));
}

// ---------------------------------------------------------------
// Wire faults
// ---------------------------------------------------------------

namespace
{

WireFaultKind
wireKindFromName(std::string_view name)
{
    if (name == "split")
        return WireFaultKind::SplitWrite;
    if (name == "merge")
        return WireFaultKind::MergeFrames;
    if (name == "stall")
        return WireFaultKind::StallWrite;
    if (name == "reset")
        return WireFaultKind::ResetMidResponse;
    if (name == "journal")
        return WireFaultKind::TruncateJournal;
    return WireFaultKind::None;
}

const std::vector<WireFaultKind> &
allWireKinds()
{
    static const std::vector<WireFaultKind> kinds = {
        WireFaultKind::SplitWrite,      WireFaultKind::MergeFrames,
        WireFaultKind::StallWrite,      WireFaultKind::ResetMidResponse,
        WireFaultKind::TruncateJournal,
    };
    return kinds;
}

} // namespace

std::string_view
wireFaultKindName(WireFaultKind kind)
{
    switch (kind) {
    case WireFaultKind::None:
        return "none";
    case WireFaultKind::SplitWrite:
        return "split";
    case WireFaultKind::MergeFrames:
        return "merge";
    case WireFaultKind::StallWrite:
        return "stall";
    case WireFaultKind::ResetMidResponse:
        return "reset";
    case WireFaultKind::TruncateJournal:
        return "journal";
    }
    return "none";
}

WireFaultPlan
WireFaultPlan::parse(const std::string &spec)
{
    WireFaultPlan plan;
    plan.kinds_ = allWireKinds();
    bool have_rate = false;

    std::istringstream fields(spec);
    std::string field;
    while (std::getline(fields, field, ',')) {
        if (field.empty())
            continue;
        const auto eq = field.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "chaos-wire spec: expected key=value, got '" + field +
                "' (example: rate=0.25,kinds=split+reset,seed=9)");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "rate") {
            try {
                std::size_t used = 0;
                plan.rate_ = std::stod(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                throw std::invalid_argument(
                    "chaos-wire spec: rate expects a number in "
                    "[0,1], got '" + value + "'");
            }
            if (!(plan.rate_ >= 0.0 && plan.rate_ <= 1.0))
                throw std::invalid_argument(
                    "chaos-wire spec: rate must be in [0,1], got '" +
                    value + "'");
            have_rate = true;
        } else if (key == "kinds") {
            plan.kinds_.clear();
            std::istringstream names(value);
            std::string name;
            while (std::getline(names, name, '+')) {
                const WireFaultKind kind = wireKindFromName(name);
                if (kind == WireFaultKind::None)
                    throw std::invalid_argument(
                        "chaos-wire spec: unknown kind '" + name +
                        "' (valid: split, merge, stall, reset, "
                        "journal)");
                plan.kinds_.push_back(kind);
            }
            if (plan.kinds_.empty())
                throw std::invalid_argument(
                    "chaos-wire spec: kinds= needs at least one of "
                    "split, merge, stall, reset, journal");
        } else if (key == "seed") {
            try {
                std::size_t used = 0;
                plan.seed_ = std::stoull(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                throw std::invalid_argument(
                    "chaos-wire spec: seed expects an integer, "
                    "got '" + value + "'");
            }
        } else {
            throw std::invalid_argument(
                "chaos-wire spec: unknown key '" + key +
                "' (valid: rate, kinds, seed)");
        }
    }
    if (!have_rate)
        throw std::invalid_argument(
            "chaos-wire spec: rate= is required "
            "(example: rate=0.25,kinds=split+reset,seed=9)");
    return plan;
}

std::string
WireFaultPlan::describe() const
{
    std::ostringstream os;
    os << "rate=" << rate_ << ",kinds=";
    for (std::size_t i = 0; i < kinds_.size(); ++i) {
        if (i > 0)
            os << '+';
        os << wireFaultKindName(kinds_[i]);
    }
    os << ",seed=" << seed_;
    return os.str();
}

WireFaultDecision
WireFaultPlan::decide(std::uint64_t sequence) const
{
    WireFaultDecision decision;
    if (!enabled())
        return decision;
    const std::uint64_t h = splitmix64(
        splitmix64(seed_ ^ 0xA5A5A5A5DEADBEEFULL) ^
        (sequence * 0xD1B54A32D192ED03ULL));
    if (unitInterval(h) >= rate_)
        return decision;

    const std::uint64_t h2 = splitmix64(h);
    decision.kind = kinds_[h2 % kinds_.size()];
    const std::uint64_t h3 = splitmix64(h2);
    // All magnitudes are hash-chosen and bounded: chaos perturbs
    // delivery, never the response bytes themselves.
    decision.chunkBytes = 1 + static_cast<std::size_t>(h3 % 16);
    decision.stallMicros = 1000 + (h3 % 20) * 1000; // 1..20 ms
    decision.resetAfterBytes = static_cast<std::size_t>(h3 % 64);
    decision.truncateBytes = 1 + (h3 % 48);
    return decision;
}

} // namespace netchar
