/**
 * @file
 * Characterizer: the measurement harness. Runs a workload profile on
 * a simulated machine following the paper's methodology (§III): warm
 * up (the discarded first run), then measure a steady-state window,
 * collecting perf counters, Top-Down slots and runtime events.
 */

#ifndef NETCHAR_CORE_CHARACTERIZE_HH
#define NETCHAR_CORE_CHARACTERIZE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/faults.hh"
#include "core/metrics.hh"
#include "runtime/events.hh"
#include "runtime/gc.hh"
#include "sim/config.hh"
#include "sim/counters.hh"
#include "sim/noc.hh"
#include "trace/sample.hh"
#include "trace/trace.hh"
#include "workloads/profile.hh"

namespace netchar
{

/** Knobs for one characterization run. */
struct RunOptions
{
    /** Warmup instructions per core (discarded, §III-A). */
    std::uint64_t warmupInstructions = 600'000;
    /** Measured instructions per core (0 = profile default). */
    std::uint64_t measuredInstructions = 0;
    /** Cores the workload runs on (ASP.NET scaling sweeps). */
    unsigned cores = 1;
    /** Run seed (vary for repetitions). */
    std::uint64_t seed = 1;
    /** Enable the JIT ISA-hint ablation (§VII-A1 proposal). */
    bool jitHint = false;
    /** NoC contention knobs (ablation switch inside). */
    sim::NocParams noc{};
    /** Override the profile's GC mode (Fig 14 sweeps). */
    std::optional<rt::GcMode> gcMode;
    /** Override the profile's GC assist mode (hardware-GC ablation). */
    std::optional<rt::GcAssist> gcAssist;
    /** Override the profile's max heap bytes (Fig 14 sweeps). */
    std::optional<std::uint64_t> maxHeapBytes;
    /** Scale the profile's allocation rate (GC-pressure studies). */
    double allocScale = 1.0;
    /** Round-robin quantum for multi-core interleaving. */
    std::uint64_t quantum = 20'000;
    /**
     * Per-run cycle-budget watchdog: a run that burns more simulated
     * cycles than this throws RunBudgetExceeded — the deterministic
     * analogue of a wall-clock timeout (same budget trips on the same
     * cycle on every host). 0 = disabled.
     */
    std::uint64_t runBudgetCycles = 0;
};

/** Everything measured in one steady-state window. */
struct RunResult
{
    /** Aggregate counters over all cores, measured window only. */
    sim::PerfCounters counters;
    /** Aggregate Top-Down slots, measured window only. */
    sim::SlotAccount slots;
    /** Runtime events (zeros for native workloads). */
    rt::RuntimeEventCounts events;
    /** Table I metric vector. */
    MetricVector metrics;
    /** Wall-clock seconds of the measured window. */
    double seconds = 0.0;
    /** Benchmark throughput proxy: instructions per second. */
    double instructionsPerSecond = 0.0;
};

// IntervalSample moved to trace/sample.hh (shared with the trace
// layer's re-slicing); included above, still namespace netchar.

/** Knobs for one trace capture (see Characterizer::capture). */
struct TraceOptions
{
    /** Event ring capacity (drop-oldest beyond this). */
    std::size_t bufferEvents = 65'536;
    /** Counter-record ring capacity. */
    std::size_t bufferSamples = 65'536;
    /**
     * Instructions per core between counter records (the sampling
     * cadence); 0 = max(500, quantum / 16), the exact chunk grid
     * live cycle sampling advances on — the basis of the re-slice
     * parity guarantee.
     */
    std::uint64_t chunkInstructions = 0;
    /**
     * When > 0, measure until this many aggregate cycles elapsed
     * instead of a fixed instruction count — the trace analogue of
     * sampleCycles' fixed-cycle windows.
     */
    double measuredCycles = 0.0;
};

/** A captured trace plus the run's aggregate measurement. */
struct CaptureResult
{
    trace::Trace trace;
    RunResult result;
};

/** Failure-handling policy for suite sweeps (runAll/captureAll). */
struct ResilienceOptions
{
    /**
     * Keep sweeping after a run exhausts its attempts (default):
     * survivors are returned and failures land in the ledger. False
     * = fail-fast: the first permanent failure aborts the sweep and
     * not-yet-started runs are recorded as skipped.
     */
    bool keepGoing = true;
    /**
     * Quarantine a run after this many consecutive failed attempts:
     * remaining retries are forfeited and the benchmark name lands in
     * SuiteRunStats::quarantined (feed it back as a skip list). 0 =
     * never quarantine; effective threshold is min(maxAttempts, this).
     */
    unsigned quarantineAfter = 0;
    /**
     * Exponential retry backoff base, microseconds of host sleep:
     * before attempt k the runner sleeps base * 2^(k-2), capped at
     * 100 ms. 0 = no backoff. (Host-time only; never affects results
     * or the deterministic ledger beyond the recorded plan value.)
     */
    std::uint64_t backoffBaseMicros = 0;
    /**
     * Deterministically perturb the run seed on re-attempts so a
     * seed-dependent failure is not replayed verbatim (attempt 1
     * always uses the caller's seed unchanged).
     */
    bool perturbSeedOnRetry = true;
    /** Fault-injection plan (chaos mode); nullptr = no injection. */
    const FaultPlan *chaos = nullptr;
};

/** Fan-out policy for suite-scale sweeps (runAll). */
struct Parallelism
{
    /** Concurrent runs; 1 = serial on the calling thread, 0 = one
     *  per hardware thread. */
    unsigned jobs = 1;
    /** Total attempts per run: a run whose workload throws is
     *  retried until it succeeds or attempts are exhausted (the
     *  default retries once). Minimum 1. */
    unsigned maxAttempts = 2;
    /** Failure handling: retries, backoff, quarantine, chaos. */
    ResilienceOptions resilience;
};

/** Run-ledger entry: what happened to one (profile, seed) run. */
struct RunLedgerEntry
{
    std::string benchmark;
    /** Position in the input profile list (== result index). */
    std::size_t index = 0;
    /** Attempts consumed (1 = clean first run). */
    unsigned attempts = 1;
    bool succeeded = true;
    /** what() of the last failed attempt; empty when clean. */
    std::string error;
    /** Host wall seconds spent on this run, all attempts. */
    double wallSeconds = 0.0;
    /** Executor worker that ran it (-1 for the serial path). */
    int worker = -1;
    /** Never attempted: fail-fast aborted the sweep first. */
    bool skipped = false;
    /** Hit the consecutive-failure quarantine threshold. */
    bool quarantined = false;
};

/**
 * One failed run attempt, as recorded in the deterministic failure
 * ledger. Deliberately excludes wall times and worker ids: for a
 * fixed (profiles, options, chaos spec) the ledger of a keep-going
 * sweep is byte-identical at any Parallelism::jobs.
 */
struct RunFailure
{
    /** Position in the input profile list. */
    std::size_t index = 0;
    std::string benchmark;
    /** 1-based attempt number that failed. */
    unsigned attempt = 1;
    /** Failure class: an injected FaultKind name ("throw",
     *  "corrupt", "stall", "trace"), "budget" for a watchdog kill,
     *  "screen" for a non-finite result, "skipped" for a fail-fast
     *  skip, or "error" for an ordinary workload exception. */
    std::string kind;
    /** what() of the failure. */
    std::string error;
    /** Seed this attempt actually ran with. */
    std::uint64_t seed = 0;
    /** Backoff slept before the next attempt (plan value, us). */
    std::uint64_t backoffMicros = 0;
};

/** Observability surface of one runAll sweep. */
struct SuiteRunStats
{
    /** Jobs actually used (after resolving jobs == 0). */
    unsigned jobs = 1;
    /** Host wall seconds for the whole sweep. */
    double wallSeconds = 0.0;
    /** Sum of per-run wall seconds (work actually done). */
    double busySeconds = 0.0;
    /** Executor steal count (0 on the serial path). */
    std::uint64_t steals = 0;
    /** One entry per input profile, in input order. */
    std::vector<RunLedgerEntry> runs;
    /** Every failed attempt, sorted by (index, attempt) — the
     *  deterministic ledger (see RunFailure). */
    std::vector<RunFailure> failures;
    /** Benchmarks quarantined this sweep, in input order. */
    std::vector<std::string> quarantined;

    /** busy / (jobs x wall): 1.0 = every job busy the whole sweep. */
    double utilization() const;
    /** Runs that needed more than one attempt. */
    unsigned retriedRuns() const;
    /** Runs that failed every attempt (their RunResult is
     *  default-constructed). */
    unsigned failedRuns() const;
    /** Runs never attempted (fail-fast abort). */
    unsigned skippedRuns() const;
};

/**
 * Screen a run result for corrupted measurements: every counter-
 * derived metric and the timing fields must be finite. Returns an
 * empty string when clean, else a message naming the first offending
 * field (e.g. "non-finite metric 'cpi' = nan"). runAll applies this
 * to every attempt, so a wedged counter read is a retryable failure,
 * never a silent row of NaNs.
 */
std::string screenRunResult(const RunResult &result);

/**
 * Measurement harness bound to one machine configuration. Stateless
 * across run() calls: every run builds a fresh machine.
 */
class Characterizer
{
  public:
    explicit Characterizer(sim::MachineConfig config);

    /** Machine configuration in use. */
    const sim::MachineConfig &config() const { return config_; }

    /**
     * Run one benchmark: warmup, then measure. Multi-core runs share
     * one CLR (one server process) and interleave cores round-robin.
     */
    RunResult run(const wl::WorkloadProfile &profile,
                  const RunOptions &options = {}) const;

    /**
     * Run one benchmark and capture per-interval deltas after warmup
     * (the LTTng-style 1 ms sampling of §VII-A, scaled to
     * instructions).
     *
     * @param interval_instructions Instructions per sample.
     * @param samples Number of samples to take.
     */
    std::vector<IntervalSample>
    sample(const wl::WorkloadProfile &profile, const RunOptions &options,
           std::uint64_t interval_instructions,
           std::size_t samples) const;

    /**
     * As sample(), but intervals are fixed *cycle* windows — the
     * faithful analogue of the paper's 1 ms wall-clock sampling.
     * Instruction counts then vary per interval with IPC, which the
     * §VII correlation studies rely on.
     */
    std::vector<IntervalSample>
    sampleCycles(const wl::WorkloadProfile &profile,
                 const RunOptions &options,
                 double interval_cycles, std::size_t samples) const;

    /**
     * Run one benchmark with timeline tracing: after warmup, every
     * CLR event lands timestamped in a bounded ring and a cumulative
     * counter record is emitted at each advance chunk. The returned
     * RunResult is derived from the same snapshots run() takes, and
     * the trace re-slices (trace::TraceAnalyzer) into IntervalSample
     * series at any interval — at the legacy interval, bit-identical
     * to sampleCycles() when topts.measuredCycles spans it.
     *
     * Deterministic: the trace is byte-identical for a given
     * (profile, machine config, options) regardless of host load or
     * how many captures run concurrently (each rig's buffers are
     * private and timestamps come from simulated time).
     */
    CaptureResult capture(const wl::WorkloadProfile &profile,
                          const RunOptions &options = {},
                          const TraceOptions &topts = {}) const;

    /**
     * Capture a whole list of profiles, fanned out like runAll():
     * results are in input order and independent of par.jobs, with
     * the same retry / quarantine / keep-going machinery (a failed
     * capture leaves a default CaptureResult at its slot). An
     * injected TraceExhaust fault clamps the rings instead of
     * failing the capture — drops are graceful degradation, not an
     * error.
     *
     * @param stats Optional run ledger, overwritten on return.
     */
    std::vector<CaptureResult>
    captureAll(const std::vector<wl::WorkloadProfile> &profiles,
               const RunOptions &options, const TraceOptions &topts,
               const Parallelism &par = {},
               SuiteRunStats *stats = nullptr) const;

    /**
     * Characterize a whole list of profiles (one row per benchmark).
     */
    std::vector<RunResult>
    runAll(const std::vector<wl::WorkloadProfile> &profiles,
           const RunOptions &options = {}) const;

    /**
     * As runAll(), fanned out over a work-stealing Executor.
     *
     * Every run builds a fresh sim::Machine, workload set and CLR and
     * draws from its own seeded RNG streams; runs share no mutable
     * state (asserted by tests/core/executor_test.cc, documented in
     * docs/ARCHITECTURE.md). Results are therefore independent of
     * `par.jobs` and returned in input order — `jobs = N` output is
     * byte-identical to `jobs = 1`.
     *
     * A run whose workload throws is caught, recorded in the ledger
     * and retried (par.maxAttempts total attempts) instead of
     * aborting the sweep; a run that fails every attempt leaves a
     * default-constructed RunResult at its slot and is flagged in
     * `stats` (always check failedRuns() when passing stats).
     *
     * @param par Fan-out policy (jobs, retry budget).
     * @param stats Optional run ledger, overwritten on return.
     */
    std::vector<RunResult>
    runAll(const std::vector<wl::WorkloadProfile> &profiles,
           const RunOptions &options, const Parallelism &par,
           SuiteRunStats *stats = nullptr) const;

  private:
    wl::WorkloadProfile applyOverrides(const wl::WorkloadProfile &p,
                                       const RunOptions &o) const;

    sim::MachineConfig config_;
};

} // namespace netchar

#endif // NETCHAR_CORE_CHARACTERIZE_HH
