#include "core/executor.hh"

#include <algorithm>

namespace netchar
{

namespace
{

/** Worker index of this thread; see Executor::workerId(). */
thread_local int tls_worker_id = -1;

/** RAII worker-id assignment for helping threads. */
struct ScopedWorkerId
{
    int previous;
    explicit ScopedWorkerId(int id) : previous(tls_worker_id)
    {
        tls_worker_id = id;
    }
    ~ScopedWorkerId() { tls_worker_id = previous; }
};

} // namespace

int
Executor::workerId()
{
    return tls_worker_id;
}

Executor::Executor(unsigned concurrency)
{
    if (concurrency == 0)
        concurrency =
            std::max(1u, std::thread::hardware_concurrency());
    queues_.reserve(concurrency);
    for (unsigned i = 0; i < concurrency; ++i)
        queues_.push_back(std::make_unique<Queue>());
    // The submitting thread owns the last queue; spawn the rest.
    workers_.reserve(concurrency - 1);
    for (unsigned i = 0; i + 1 < concurrency; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

Executor::~Executor()
{
    stop_.store(true);
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
Executor::execute(std::size_t index)
{
    Batch &batch = *batch_;
    try {
        (*batch.fn)(index);
    } catch (...) {
        std::lock_guard<std::mutex> lock(batch.errorMutex);
        batch.errors.emplace_back(index, std::current_exception());
    }
    if (batch.remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(doneMutex_);
        done_.notify_all();
    }
}

bool
Executor::runOne(unsigned self)
{
    const unsigned n = static_cast<unsigned>(queues_.size());
    // Own queue first (LIFO: freshest block, best locality) ...
    if (self < n) {
        Queue &own = *queues_[self];
        std::unique_lock<std::mutex> lock(own.mutex);
        if (!own.items.empty()) {
            const std::size_t index = own.items.back();
            own.items.pop_back();
            lock.unlock();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            execute(index);
            return true;
        }
    }
    // ... then steal FIFO from the next victim with work.
    for (unsigned off = 0; off < n; ++off) {
        const unsigned victim = (self + 1 + off) % n;
        if (victim == self)
            continue;
        Queue &q = *queues_[victim];
        std::unique_lock<std::mutex> lock(q.mutex);
        if (q.items.empty())
            continue;
        const std::size_t index = q.items.front();
        q.items.pop_front();
        lock.unlock();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        steals_.fetch_add(1, std::memory_order_relaxed);
        execute(index);
        return true;
    }
    return false;
}

void
Executor::workerLoop(unsigned self)
{
    ScopedWorkerId id(static_cast<int>(self));
    while (true) {
        if (runOne(self))
            continue;
        std::unique_lock<std::mutex> lock(wakeMutex_);
        wake_.wait(lock, [this] {
            return stop_.load() ||
                   queued_.load(std::memory_order_relaxed) > 0;
        });
        if (stop_.load() &&
            queued_.load(std::memory_order_relaxed) == 0)
            return;
    }
}

std::vector<TaskFailure>
Executor::forEachCollect(std::size_t n,
                         const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return {};
    std::lock_guard<std::mutex> submit(submitMutex_);

    Batch batch;
    batch.fn = &fn;
    batch.remaining.store(n);
    batch_ = &batch;

    // Shard contiguous index blocks across the executor queues so
    // the common case is each executor draining its own block;
    // stealing only kicks in when blocks run imbalanced.
    const std::size_t q = queues_.size();
    const std::size_t block = (n + q - 1) / q;
    for (std::size_t w = 0; w < q; ++w) {
        const std::size_t lo = w * block;
        const std::size_t hi = std::min(n, lo + block);
        if (lo >= hi)
            continue;
        std::lock_guard<std::mutex> lock(queues_[w]->mutex);
        for (std::size_t i = lo; i < hi; ++i)
            queues_[w]->items.push_back(i);
    }
    queued_.fetch_add(n, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
    }
    wake_.notify_all();

    // The submitting thread works its own queue (the last one).
    {
        ScopedWorkerId id(static_cast<int>(q - 1));
        while (runOne(static_cast<unsigned>(q - 1))) {
        }
    }
    {
        std::unique_lock<std::mutex> lock(doneMutex_);
        done_.wait(lock,
                   [&batch] { return batch.remaining.load() == 0; });
    }
    batch_ = nullptr;

    // Attribute every failure, in index order (deterministic under
    // any interleaving), not just the lowest one.
    std::vector<TaskFailure> failures;
    failures.reserve(batch.errors.size());
    for (auto &[index, error] : batch.errors) {
        TaskFailure f;
        f.index = index;
        f.error = error;
        try {
            std::rethrow_exception(error);
        } catch (const std::exception &ex) {
            f.what = ex.what();
        } catch (...) {
            f.what = "unknown exception";
        }
        failures.push_back(std::move(f));
    }
    std::sort(failures.begin(), failures.end(),
              [](const TaskFailure &a, const TaskFailure &b) {
                  return a.index < b.index;
              });
    return failures;
}

void
Executor::forEach(std::size_t n,
                  const std::function<void(std::size_t)> &fn)
{
    const auto failures = forEachCollect(n, fn);
    if (!failures.empty())
        std::rethrow_exception(failures.front().error);
}

} // namespace netchar
