/**
 * @file
 * Representative-subset construction and validation (§IV): PCA over
 * the Table I metrics, hierarchical clustering over the top PRCOs,
 * one representative per cluster, and SPECspeed-style composite-score
 * validation against a baseline machine.
 */

#ifndef NETCHAR_CORE_SUBSET_HH
#define NETCHAR_CORE_SUBSET_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "stats/cluster.hh"
#include "stats/pca.hh"
#include "stats/summary.hh"

namespace netchar
{

/** Options for the subsetting pipeline. */
struct SubsetOptions
{
    /** Principal components retained for clustering (§IV-A: 4). */
    std::size_t components = 4;
    /** Representative subset size (§IV-B: 8). */
    std::size_t subsetSize = 8;
    /** Linkage criterion. */
    stats::Linkage linkage = stats::Linkage::Average;
};

/** Output of the subsetting pipeline. */
struct SubsetResult
{
    /** PCA over the (standardized) metric matrix. */
    stats::PcaResult pca;
    /** Merge tree over the PRCO scores. */
    stats::Dendrogram dendrogram;
    /** Clusters after cutting at subsetSize; indices refer to the
     *  ORIGINAL input rows (mapped back through rowMap). */
    std::vector<std::vector<std::size_t>> clusters;
    /** One representative benchmark index per cluster (original
     *  input indices). */
    std::vector<std::size_t> representatives;
    /** Non-finite rows dropped before PCA (never imputed); clean()
     *  when the input was complete. */
    stats::SanitizeReport sanitize;
    /** rowMap[i] = original input row of sanitized row i (identity
     *  for a clean input). pca.scores rows use sanitized indices. */
    std::vector<std::size_t> rowMap;
};

/**
 * Run the full §IV pipeline on a benchmark x metric matrix.
 *
 * Rows holding non-finite values (failed or corrupted runs) are
 * dropped and reported in SubsetResult::sanitize — never silently
 * imputed — and the pipeline proceeds over the survivors; cluster and
 * representative indices are mapped back to original input rows.
 * Throws when fewer than subsetSize finite rows survive.
 *
 * @param metric_rows One MetricVector per benchmark.
 * @param options Component count, subset size, linkage.
 */
SubsetResult buildSubset(const std::vector<MetricVector> &metric_rows,
                         const SubsetOptions &options = {});

/** As above but over a pre-built (possibly reduced) matrix. */
SubsetResult buildSubset(const stats::Matrix &metrics,
                         const SubsetOptions &options = {});

/**
 * Per-benchmark score: execution time on the baseline machine divided
 * by execution time on the evaluated machine (§IV-C). Throws on
 * non-positive times or length mismatch.
 */
std::vector<double>
benchmarkScores(std::span<const double> baseline_seconds,
                std::span<const double> machine_seconds);

/** Composite score: geomean over benchmark scores. */
double compositeScore(std::span<const double> scores);

/** Composite restricted to a subset of benchmark indices. */
double compositeScore(std::span<const double> scores,
                      std::span<const std::size_t> subset);

/**
 * Validation accuracy: how close the subset composite is to the full
 * composite, as a percentage (100 = identical).
 */
double subsetAccuracyPct(double full_composite,
                         double subset_composite);

/** Result of searching for the best choose-1-per-cluster subset. */
struct OptimumSubset
{
    std::vector<std::size_t> subset;
    double accuracyPct = 0.0;
    /** Combinations examined (capped search is reported honestly). */
    std::uint64_t combinationsTried = 0;
};

/**
 * The paper's Subset A(o): iterate over choose-one-per-cluster
 * combinations and keep the subset whose composite best matches the
 * full-suite composite. The search is capped; when the cap is hit, a
 * greedy refinement finishes the job.
 *
 * @param scores Per-benchmark scores.
 * @param clusters Cluster membership (from SubsetResult).
 * @param max_combinations Exhaustive-search budget.
 */
OptimumSubset
optimumSubset(std::span<const double> scores,
              const std::vector<std::vector<std::size_t>> &clusters,
              std::uint64_t max_combinations = 2'000'000);

} // namespace netchar

#endif // NETCHAR_CORE_SUBSET_HH
