/**
 * @file
 * Machine-readable export of characterization results: CSV for
 * spreadsheet/pandas pipelines and a minimal JSON serialization for
 * dashboards. Every bench prints human-readable tables; downstream
 * tooling should consume these exports instead of scraping text.
 */

#ifndef NETCHAR_CORE_EXPORT_HH
#define NETCHAR_CORE_EXPORT_HH

#include <string>
#include <vector>

#include "core/characterize.hh"
#include "core/topdown.hh"
#include "stats/textio.hh" // jsonEscape / csvField (shared helpers)

namespace netchar
{

/**
 * CSV of Table I metrics: one row per benchmark, one column per
 * metric (header uses the Table I names), preceded by a `benchmark`
 * column. Fields containing commas/quotes are quoted per RFC 4180.
 *
 * @param names One label per result row.
 * @param results Same length as names (throws otherwise).
 */
std::string metricsCsv(const std::vector<std::string> &names,
                       const std::vector<RunResult> &results);

/**
 * CSV of Top-Down level-1 + level-2 fractions, one row per benchmark.
 */
std::string topdownCsv(const std::vector<std::string> &names,
                       const std::vector<RunResult> &results);

/**
 * JSON document for one run: counters, metrics (keyed by Table I
 * name), Top-Down profile and runtime events. Self-contained; no
 * external JSON library.
 */
std::string runResultJson(const std::string &name,
                          const RunResult &result);

/**
 * JSON array of runResultJson objects.
 */
std::string suiteJson(const std::vector<std::string> &names,
                      const std::vector<RunResult> &results);

/**
 * CSV of the run ledger: one row per run
 * (index,benchmark,attempts,succeeded,wall_seconds,worker,error),
 * in input order.
 */
std::string suiteStatsCsv(const SuiteRunStats &stats);

/**
 * JSON document of one sweep's SuiteRunStats: engine aggregates
 * (jobs, wall/busy seconds, utilization, steals, retried/failed/
 * skipped run counts, quarantined benchmarks) plus the per-run
 * ledger array.
 */
std::string suiteStatsJson(const SuiteRunStats &stats);

/**
 * CSV of the deterministic failure ledger: one row per failed
 * attempt (index,benchmark,attempt,kind,seed,backoff_micros,error),
 * sorted by (index, attempt). Contains no wall times or worker ids,
 * so for a keep-going sweep the bytes are identical at any --jobs.
 */
std::string failureLedgerCsv(const SuiteRunStats &stats);

/** JSON array form of failureLedgerCsv (same fields, same order). */
std::string failureLedgerJson(const SuiteRunStats &stats);

} // namespace netchar

#endif // NETCHAR_CORE_EXPORT_HH
