/**
 * @file
 * Runtime-event / performance-counter correlation study (§VII-A):
 * Pearson correlation between per-interval runtime-event counts and
 * per-interval counter values, reproducing Figures 13a/13b.
 */

#ifndef NETCHAR_CORE_CORRELATION_HH
#define NETCHAR_CORE_CORRELATION_HH

#include <string>
#include <vector>

#include "core/characterize.hh"
#include "runtime/events.hh"
#include "trace/trace.hh"

namespace netchar
{

/** Counter series extracted from interval samples. */
enum class CounterSeries
{
    BranchMpki,
    L1iMpki,
    L1dMpki,
    L2Mpki,
    LlcMpki,
    ItlbMpki,
    PageFaultsPki,
    UselessPrefetches, ///< useless / issued ratio per interval
    Instructions,
    Ipc,
};

/** Display name of a counter series. */
std::string counterSeriesName(CounterSeries series);

/** Extract one per-interval series from samples. */
std::vector<double>
extractSeries(const std::vector<IntervalSample> &samples,
              CounterSeries series);

/** Extract an event-count series from samples. */
std::vector<double>
extractEventSeries(const std::vector<IntervalSample> &samples,
                   rt::RuntimeEventType type);

/** One row of Figure 13: counter name and correlation coefficient. */
struct CorrelationRow
{
    CounterSeries series;
    std::string name;
    /** Pearson correlation coefficient. */
    double r = 0.0;
    /** Spearman rank correlation (robustness cross-check). */
    double rho = 0.0;
};

/**
 * Pearson correlation of an event series against a standard set of
 * counters (the Figure 13 selection).
 */
std::vector<CorrelationRow>
correlateEvents(const std::vector<IntervalSample> &samples,
                rt::RuntimeEventType type);

/**
 * Figure 13 from a captured trace: re-slice the trace into
 * IntervalSample series at `interval_cycles` (trace::TraceAnalyzer)
 * and correlate. One capture serves every interval width — the 0.1 /
 * 1 / 10 ms sensitivity study no longer re-runs the benchmark.
 *
 * @param max_samples Cap on the number of intervals (all by default).
 */
std::vector<CorrelationRow>
correlateTrace(const trace::Trace &trace, rt::RuntimeEventType type,
               double interval_cycles, std::size_t max_samples = SIZE_MAX);

} // namespace netchar

#endif // NETCHAR_CORE_CORRELATION_HH
