/**
 * @file
 * Plain-text rendering for bench binaries: aligned tables, horizontal
 * bar charts (the terminal stand-in for the paper's figures), and
 * number formatting helpers.
 */

#ifndef NETCHAR_CORE_REPORT_HH
#define NETCHAR_CORE_REPORT_HH

#include <string>
#include <vector>

namespace netchar
{

/** Fixed-point formatting with the given decimal places. */
std::string fmtFixed(double value, int places = 2);

/** Percentage formatting ("12.3%"). */
std::string fmtPercent(double fraction, int places = 1);

/**
 * Aligned monospace table. Columns are sized to their widest cell;
 * the first row passed to the constructor is the header.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render with a separator line under the header. */
    std::string render() const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** One bar of a bar chart. */
struct Bar
{
    std::string label;
    double value = 0.0;
};

/**
 * Horizontal ASCII bar chart. Bars scale to the maximum value (or a
 * caller-provided maximum so multiple charts share a scale).
 *
 * @param title Chart heading.
 * @param bars Labels and values.
 * @param width Bar area width in characters.
 * @param max_value Scale maximum; <= 0 auto-scales.
 */
std::string barChart(const std::string &title,
                     const std::vector<Bar> &bars, int width = 50,
                     double max_value = 0.0);

/**
 * Stacked-bar rendering for Top-Down style breakdowns: each row is a
 * benchmark, each segment a category fraction (values should sum to
 * ~1 per row).
 *
 * @param title Chart heading.
 * @param row_labels One label per row.
 * @param segment_labels One label per segment (legend).
 * @param values values[row][segment] fractions.
 * @param width Bar width in characters.
 */
std::string
stackedBars(const std::string &title,
            const std::vector<std::string> &row_labels,
            const std::vector<std::string> &segment_labels,
            const std::vector<std::vector<double>> &values,
            int width = 60);

} // namespace netchar

#endif // NETCHAR_CORE_REPORT_HH
