/**
 * @file
 * Deterministic fault injection for the suite pipeline.
 *
 * A characterization pipeline is only trustworthy if its failure
 * handling is explicit and exercised. This module provides the chaos
 * half of that contract: a seeded FaultPlan decides — as a pure
 * function of (benchmark, machine, attempt, plan seed) — whether a
 * run attempt is hit by a fault and which kind:
 *
 *  - Throw          : the run throws before doing any work (a crashed
 *                     benchmark process);
 *  - CorruptCounter : the run completes but a counter/metric value
 *                     comes back non-finite (a wedged PMU read);
 *  - Stall          : the run never converges and must be killed by
 *                     the cycle-budget watchdog (a hung benchmark);
 *  - TraceExhaust   : trace rings are clamped to a tiny capacity so
 *                     the capture path must degrade gracefully.
 *
 * Because decisions are pure hashes, an identical (spec, seed) pair
 * injects the identical fault set at any --jobs value, on any host —
 * chaos runs are replayable and their ledgers byte-identical.
 *
 * The module is standalone (no dependency on the characterizer); the
 * resilient sweep in core/characterize.cc consumes the decisions.
 */

#ifndef NETCHAR_CORE_FAULTS_HH
#define NETCHAR_CORE_FAULTS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace netchar
{

/** Kinds of fault a FaultPlan can inject into one run attempt. */
enum class FaultKind
{
    None = 0,
    Throw,          ///< run attempt throws immediately
    CorruptCounter, ///< a counter/metric value turns non-finite
    Stall,          ///< run exceeds its cycle budget (simulated hang)
    TraceExhaust,   ///< trace rings clamped to force drop-oldest
};

/** Short spec-syntax name of a kind ("throw", "corrupt", ...). */
std::string_view faultKindName(FaultKind kind);

/** What decide() resolved for one (benchmark, machine, attempt). */
struct FaultDecision
{
    FaultKind kind = FaultKind::None;
    /**
     * CorruptCounter: the non-finite payload written into the result
     * (NaN, +inf or -inf, hash-chosen).
     */
    double badValue = 0.0;
    /**
     * Extra deterministic entropy for the applier: selects which
     * counter/metric to corrupt.
     */
    std::uint64_t selector = 0;
    /** TraceExhaust: forced ring capacity (8..32 records). */
    std::size_t traceCapacity = 0;

    explicit operator bool() const { return kind != FaultKind::None; }
};

/**
 * A seeded fault-injection plan: overall rate, enabled kinds, seed.
 *
 * Spec syntax (parse()): comma-separated key=value pairs —
 *
 *   rate=0.1                  fraction of attempts hit (required)
 *   kinds=throw+corrupt+stall+trace
 *                             enabled kinds (default: all four)
 *   seed=7                    plan seed (default 1)
 *
 * e.g. "rate=0.1,kinds=throw+stall,seed=42".
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Parse a spec string; throws std::invalid_argument with a
     *  descriptive message on any malformed field. */
    static FaultPlan parse(const std::string &spec);

    /** True when the plan can inject anything at all. */
    bool enabled() const { return rate_ > 0.0 && !kinds_.empty(); }

    double rate() const { return rate_; }
    std::uint64_t seed() const { return seed_; }
    const std::vector<FaultKind> &kinds() const { return kinds_; }

    /** Canonical one-line rendering (for logs and ledgers). */
    std::string describe() const;

    /**
     * Decide the fault (if any) for one run attempt. Pure function of
     * the arguments and the plan state: independent of scheduling,
     * host, thread or call order.
     *
     * @param benchmark Benchmark name.
     * @param machine Machine-config name.
     * @param attempt 1-based attempt number (retries re-roll).
     */
    FaultDecision decide(std::string_view benchmark,
                         std::string_view machine,
                         unsigned attempt) const;

  private:
    double rate_ = 0.0;
    std::vector<FaultKind> kinds_;
    std::uint64_t seed_ = 1;
};

/**
 * A FaultPlan bound to one machine: the per-sweep view the resilient
 * runner holds, addressable by (benchmark, attempt) only.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, std::string machine)
        : plan_(&plan), machine_(std::move(machine))
    {
    }

    FaultDecision decide(std::string_view benchmark,
                         unsigned attempt) const
    {
        return plan_->decide(benchmark, machine_, attempt);
    }

    const FaultPlan &plan() const { return *plan_; }

  private:
    const FaultPlan *plan_;
    std::string machine_;
};

/** Exception thrown by an injected Throw/Stall fault. */
class FaultInjectedError : public std::runtime_error
{
  public:
    FaultInjectedError(FaultKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {
    }

    FaultKind kind() const { return kind_; }

  private:
    FaultKind kind_;
};

/**
 * Thrown by the per-run cycle-budget watchdog when a run burns more
 * simulated cycles than RunOptions::runBudgetCycles allows — the
 * deterministic analogue of a wall-clock timeout.
 */
class RunBudgetExceeded : public std::runtime_error
{
  public:
    RunBudgetExceeded(double cycles, std::uint64_t budget);

    double cycles() const { return cycles_; }
    std::uint64_t budget() const { return budget_; }

  private:
    double cycles_ = 0.0;
    std::uint64_t budget_ = 0;
};

/**
 * Seed for retry attempt `attempt` of `benchmark`: attempt 1 returns
 * `base` unchanged; later attempts mix (base, benchmark, attempt) so
 * a seed-dependent failure is not replayed verbatim. Deterministic —
 * the retried run is still byte-reproducible.
 */
std::uint64_t perturbedSeed(std::uint64_t base,
                            std::string_view benchmark,
                            unsigned attempt);

// ---------------------------------------------------------------
// Wire faults: the serving-layer chaos family.
// ---------------------------------------------------------------

/**
 * Kinds of fault a WireFaultPlan can inject into the serve daemon's
 * transport and persistence edges (PR 3's simulator chaos extended
 * up through the wire):
 *
 *  - SplitWrite     : a response is sent in tiny partial writes, so
 *                     one NDJSON frame arrives split across many TCP
 *                     segments;
 *  - MergeFrames    : a response is withheld and coalesced with the
 *                     connection's next flush, so several frames
 *                     arrive merged in one segment;
 *  - StallWrite     : a bounded delay before the response bytes move
 *                     (a stalled read from the peer's perspective);
 *  - ResetMidResponse : only a prefix of the response is sent before
 *                     the connection is closed (torn frame — the
 *                     client must retry the idempotent request);
 *  - TruncateJournal : bytes are chopped off the cache journal's
 *                     tail after an append (a torn write the next
 *                     start's recovery path must skip and report).
 */
enum class WireFaultKind
{
    None = 0,
    SplitWrite,
    MergeFrames,
    StallWrite,
    ResetMidResponse,
    TruncateJournal,
};

/** Short spec-syntax name ("split", "merge", "stall", "reset",
 *  "journal"). */
std::string_view wireFaultKindName(WireFaultKind kind);

/** What WireFaultPlan::decide() resolved for one response. */
struct WireFaultDecision
{
    WireFaultKind kind = WireFaultKind::None;
    /** SplitWrite: bytes per partial write (1..16). */
    std::size_t chunkBytes = 0;
    /** StallWrite: delay before the bytes move (<= 20 ms). */
    std::uint64_t stallMicros = 0;
    /** ResetMidResponse: prefix bytes delivered before the close
     *  (may be 0 — the whole frame is lost). */
    std::size_t resetAfterBytes = 0;
    /** TruncateJournal: tail bytes chopped off the journal (1..48). */
    std::uint64_t truncateBytes = 0;

    explicit operator bool() const { return kind != WireFaultKind::None; }
};

/**
 * A seeded wire-fault plan: overall rate, enabled kinds, seed.
 *
 * Spec syntax (parse()) mirrors FaultPlan::parse():
 *
 *   rate=0.25                 fraction of responses hit (required)
 *   kinds=split+merge+stall+reset+journal
 *                             enabled kinds (default: all five)
 *   seed=9                    plan seed (default 1)
 *
 * Decisions are a pure hash of (seed, sequence): for a given request
 * arrival order the daemon injects the identical fault set on any
 * host, so a chaos-wire sweep is replayable.
 */
class WireFaultPlan
{
  public:
    WireFaultPlan() = default;

    /** Parse a spec string; throws std::invalid_argument with a
     *  descriptive message on any malformed field. */
    static WireFaultPlan parse(const std::string &spec);

    /** True when the plan can inject anything at all. */
    bool enabled() const { return rate_ > 0.0 && !kinds_.empty(); }

    double rate() const { return rate_; }
    std::uint64_t seed() const { return seed_; }
    const std::vector<WireFaultKind> &kinds() const { return kinds_; }

    /** Canonical one-line rendering (for logs). */
    std::string describe() const;

    /**
     * Decide the fault (if any) for the `sequence`-th response the
     * daemon sends (0-based, monotonically increasing). Pure
     * function of (plan, sequence).
     */
    WireFaultDecision decide(std::uint64_t sequence) const;

  private:
    double rate_ = 0.0;
    std::vector<WireFaultKind> kinds_;
    std::uint64_t seed_ = 1;
};

} // namespace netchar

#endif // NETCHAR_CORE_FAULTS_HH
