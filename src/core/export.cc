#include "core/export.hh"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace netchar
{

namespace
{

void
requireSameLength(const std::vector<std::string> &names,
                  const std::vector<RunResult> &results)
{
    if (names.size() != results.size())
        throw std::invalid_argument(
            "export: names/results length mismatch");
}

std::string
num(double value)
{
    std::ostringstream os;
    os.precision(10);
    os << value;
    return os.str();
}

} // namespace

std::string
metricsCsv(const std::vector<std::string> &names,
           const std::vector<RunResult> &results)
{
    requireSameLength(names, results);
    std::ostringstream os;
    os << "benchmark";
    for (const auto &info : metricTable())
        os << ',' << csvField(std::string(info.name));
    os << '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << csvField(names[i]);
        for (double v : results[i].metrics)
            os << ',' << num(v);
        os << '\n';
    }
    return os.str();
}

std::string
topdownCsv(const std::vector<std::string> &names,
           const std::vector<RunResult> &results)
{
    requireSameLength(names, results);
    std::ostringstream os;
    os << "benchmark,retiring,bad_speculation,frontend_bound,"
          "backend_bound,fe_icache,fe_itlb,fe_btb,fe_ms,fe_dsb_bw,"
          "fe_mite_bw,be_l1,be_l2,be_l3,be_dram,be_store,be_ports,"
          "be_divider\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto td = TopDownProfile::fromSlots(results[i].slots);
        os << csvField(names[i]) << ',' << num(td.level1.retiring)
           << ',' << num(td.level1.badSpeculation) << ','
           << num(td.level1.frontendBound) << ','
           << num(td.level1.backendBound) << ','
           << num(td.frontend.icacheMisses) << ','
           << num(td.frontend.itlbMisses) << ','
           << num(td.frontend.branchResteers) << ','
           << num(td.frontend.msSwitches) << ','
           << num(td.frontend.dsbBandwidth) << ','
           << num(td.frontend.miteBandwidth) << ','
           << num(td.backend.l1Bound) << ',' << num(td.backend.l2Bound)
           << ',' << num(td.backend.l3Bound) << ','
           << num(td.backend.dramBound) << ','
           << num(td.backend.storeBound) << ','
           << num(td.backend.portsUtilization) << ','
           << num(td.backend.divider) << '\n';
    }
    return os.str();
}

std::string
runResultJson(const std::string &name, const RunResult &result)
{
    const auto &c = result.counters;
    const auto td = TopDownProfile::fromSlots(result.slots);
    std::ostringstream os;
    os << "{\"benchmark\":\"" << jsonEscape(name) << "\",";
    os << "\"seconds\":" << num(result.seconds) << ',';
    os << "\"instructions\":" << c.instructions << ',';
    os << "\"cycles\":" << num(c.cycles) << ',';
    os << "\"metrics\":{";
    bool first = true;
    for (const auto &info : metricTable()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(std::string(info.name)) << "\":"
           << num(result.metrics[static_cast<std::size_t>(info.id)]);
    }
    os << "},\"topdown\":{";
    os << "\"retiring\":" << num(td.level1.retiring) << ',';
    os << "\"bad_speculation\":" << num(td.level1.badSpeculation)
       << ',';
    os << "\"frontend_bound\":" << num(td.level1.frontendBound)
       << ',';
    os << "\"backend_bound\":" << num(td.level1.backendBound);
    os << "},\"events\":{";
    os << "\"gc_triggered\":" << result.events.gcTriggered << ',';
    os << "\"gc_allocation_tick\":" << result.events.gcAllocationTick
       << ',';
    os << "\"jit_started\":" << result.events.jitStarted << ',';
    os << "\"exception_start\":" << result.events.exceptionStart
       << ',';
    os << "\"contention_start\":" << result.events.contentionStart;
    os << "}}";
    return os.str();
}

std::string
suiteStatsCsv(const SuiteRunStats &stats)
{
    std::ostringstream os;
    os << "index,benchmark,attempts,succeeded,wall_seconds,worker,"
          "error\n";
    for (const auto &r : stats.runs) {
        os << r.index << ',' << csvField(r.benchmark) << ','
           << r.attempts << ',' << (r.succeeded ? 1 : 0) << ','
           << num(r.wallSeconds) << ',' << r.worker << ','
           << csvField(r.error) << '\n';
    }
    return os.str();
}

std::string
suiteStatsJson(const SuiteRunStats &stats)
{
    std::ostringstream os;
    os << "{\"jobs\":" << stats.jobs << ',';
    os << "\"wall_seconds\":" << num(stats.wallSeconds) << ',';
    os << "\"busy_seconds\":" << num(stats.busySeconds) << ',';
    os << "\"utilization\":" << num(stats.utilization()) << ',';
    os << "\"steals\":" << stats.steals << ',';
    os << "\"retried_runs\":" << stats.retriedRuns() << ',';
    os << "\"failed_runs\":" << stats.failedRuns() << ',';
    os << "\"skipped_runs\":" << stats.skippedRuns() << ',';
    os << "\"quarantined\":[";
    for (std::size_t i = 0; i < stats.quarantined.size(); ++i) {
        if (i > 0)
            os << ',';
        os << '"' << jsonEscape(stats.quarantined[i]) << '"';
    }
    os << "],";
    os << "\"runs\":[";
    for (std::size_t i = 0; i < stats.runs.size(); ++i) {
        const auto &r = stats.runs[i];
        if (i > 0)
            os << ',';
        os << "{\"index\":" << r.index << ",\"benchmark\":\""
           << jsonEscape(r.benchmark) << "\",\"attempts\":"
           << r.attempts << ",\"succeeded\":"
           << (r.succeeded ? "true" : "false")
           << ",\"skipped\":" << (r.skipped ? "true" : "false")
           << ",\"quarantined\":"
           << (r.quarantined ? "true" : "false")
           << ",\"wall_seconds\":" << num(r.wallSeconds)
           << ",\"worker\":" << r.worker << ",\"error\":\""
           << jsonEscape(r.error) << "\"}";
    }
    os << "]}";
    return os.str();
}

std::string
failureLedgerCsv(const SuiteRunStats &stats)
{
    std::ostringstream os;
    os << "index,benchmark,attempt,kind,seed,backoff_micros,error\n";
    for (const auto &f : stats.failures) {
        os << f.index << ',' << csvField(f.benchmark) << ','
           << f.attempt << ',' << csvField(f.kind) << ',' << f.seed
           << ',' << f.backoffMicros << ',' << csvField(f.error)
           << '\n';
    }
    return os.str();
}

std::string
failureLedgerJson(const SuiteRunStats &stats)
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < stats.failures.size(); ++i) {
        const auto &f = stats.failures[i];
        if (i > 0)
            os << ',';
        os << "{\"index\":" << f.index << ",\"benchmark\":\""
           << jsonEscape(f.benchmark) << "\",\"attempt\":"
           << f.attempt << ",\"kind\":\"" << jsonEscape(f.kind)
           << "\",\"seed\":" << f.seed << ",\"backoff_micros\":"
           << f.backoffMicros << ",\"error\":\""
           << jsonEscape(f.error) << "\"}";
    }
    os << ']';
    return os.str();
}

std::string
suiteJson(const std::vector<std::string> &names,
          const std::vector<RunResult> &results)
{
    requireSameLength(names, results);
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i > 0)
            os << ',';
        os << runResultJson(names[i], results[i]);
    }
    os << ']';
    return os.str();
}

} // namespace netchar
