/**
 * @file
 * Top-Down analysis (§VI): hierarchical attribution of pipeline slots
 * to bottleneck categories, toplev-style, computed from the
 * simulator's SlotAccount.
 */

#ifndef NETCHAR_CORE_TOPDOWN_HH
#define NETCHAR_CORE_TOPDOWN_HH

#include <string>
#include <vector>

#include "sim/counters.hh"

namespace netchar
{

/** Level-1 Top-Down breakdown (Figure 9 bars). */
struct TopDownLevel1
{
    double retiring = 0.0;
    double badSpeculation = 0.0;
    double frontendBound = 0.0;
    double backendBound = 0.0;
};

/** Level-2 frontend breakdown (Figure 10 top). */
struct FrontendBreakdown
{
    // Latency-bound
    double icacheMisses = 0.0;
    double itlbMisses = 0.0;
    double branchResteers = 0.0;
    double msSwitches = 0.0;
    // Bandwidth-bound
    double dsbBandwidth = 0.0;
    double miteBandwidth = 0.0;
};

/** Level-2 backend breakdown (Figure 10 bottom). */
struct BackendBreakdown
{
    // Memory-bound
    double l1Bound = 0.0;
    double l2Bound = 0.0;
    double l3Bound = 0.0;
    double dramBound = 0.0;
    double storeBound = 0.0;
    // Core-bound
    double portsUtilization = 0.0;
    double divider = 0.0;
};

/** Full Top-Down profile of one run. */
struct TopDownProfile
{
    TopDownLevel1 level1;
    /** Frontend children as fractions of ALL slots. */
    FrontendBreakdown frontend;
    /** Backend children as fractions of ALL slots. */
    BackendBreakdown backend;

    /**
     * Frontend children renormalized to fractions of frontend slots
     * (how Figure 10 plots its bars); zeros when no frontend slots.
     */
    FrontendBreakdown frontendShares() const;

    /** Backend children as fractions of backend slots. */
    BackendBreakdown backendShares() const;

    /** Build from a slot account. */
    static TopDownProfile fromSlots(const sim::SlotAccount &slots);
};

/** Named (label, value) row for rendering breakdowns. */
struct TopDownRow
{
    std::string label;
    double value = 0.0;
};

/** Flatten a level-1 profile into labeled rows. */
std::vector<TopDownRow> level1Rows(const TopDownProfile &profile);

/** Flatten the frontend shares into labeled rows. */
std::vector<TopDownRow> frontendRows(const TopDownProfile &profile);

/** Flatten the backend shares into labeled rows. */
std::vector<TopDownRow> backendRows(const TopDownProfile &profile);

} // namespace netchar

#endif // NETCHAR_CORE_TOPDOWN_HH
