/**
 * @file
 * The `netchar serve` daemon: characterization-as-a-service.
 *
 * A Server listens on a Unix-domain or loopback TCP socket, reads
 * newline-delimited JSON requests (serve/protocol.hh) and answers
 * through a content-addressed result cache (serve/cache.hh). All
 * socket I/O and cache bookkeeping happen on the single thread
 * inside serve(); parallelism lives below it — each poll round's
 * complete request lines are handled as one batch, and the batch's
 * uncached `run` requests fan out together over the core::Executor
 * (sweeps parallelize internally through Characterizer::runAll).
 * That layering keeps responses a pure function of requests: no
 * locks around the cache, no cross-request ordering races.
 *
 * A daemon started with shard i/n (ServerOptions::shard/shards)
 * answers sweep requests only for its round-robin slice of the
 * suite; `netchar query --merge` reassembles the partials
 * byte-identically to a single-process sweep (serve/shard.hh).
 *
 * Robustness layer (docs/ARCHITECTURE.md, "Overload, drain &
 * recovery"):
 *
 *  - Admission control: each poll round admits a bounded number of
 *    requests and request bytes; excess lines are shed in arrival
 *    order with a structured `overloaded` error carrying a
 *    retry-after hint, never silently queued. Per-request
 *    deadlines ("deadlineMs") shed work whose budget expired while
 *    queued. Oversized request lines and idle (slowloris)
 *    connections are evicted with bounded memory.
 *  - Graceful drain: SIGTERM/SIGINT (installDrainSignalHandlers())
 *    or beginDrain() flip the daemon into draining mode — in-flight
 *    batches finish, buffered and new work is refused with
 *    `draining`, the cache is checkpointed, serve() returns 0.
 *  - Crash safety: every cache insert is appended to a checksummed
 *    journal (serve/journal.hh) before the response is sent; the
 *    journal is compacted into the snapshot checkpoint (temp-file +
 *    rename) when it outgrows ServerOptions::checkpointBytes and on
 *    clean shutdown. start() replays the journal over the snapshot,
 *    skipping any torn tail and reporting what it dropped.
 *  - Wire chaos: a seeded WireFaultPlan (core/faults.hh) perturbs
 *    response delivery (split/merged/stalled frames, mid-response
 *    resets, journal tail truncation) without ever changing
 *    response bytes — the determinism contract under fault.
 */

#ifndef NETCHAR_SERVE_SERVER_HH
#define NETCHAR_SERVE_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "core/faults.hh"
#include "serve/cache.hh"
#include "serve/journal.hh"
#include "serve/protocol.hh" // LineFramer

namespace netchar::serve
{

/** Daemon configuration. */
struct ServerOptions
{
    /**
     * Listen address: `host:port` (TCP; port 0 picks a free port,
     * reported by address()) or a filesystem path (Unix-domain
     * socket, created on start and unlinked on shutdown).
     */
    std::string listen;
    /** Executor concurrency for run batches and sweeps
     *  (0 = one per hardware thread). */
    unsigned jobs = 1;
    /** Retry budget per sweep run (Parallelism::maxAttempts). */
    unsigned maxAttempts = 2;
    /** Sweep shard this worker owns (0-based) ... */
    unsigned shard = 0;
    /** ... of this many workers (1 = unsharded). */
    unsigned shards = 1;
    /** Result-cache budgets. */
    CacheConfig cache;
    /** When non-empty: load the cache from this file on start() and
     *  persist it back on clean shutdown. The insert journal lives
     *  beside it at `persistPath + ".journal"`. */
    std::string persistPath;

    // --- Admission control ---
    /** Requests admitted per poll round; excess lines are shed with
     *  `overloaded` (0 = unlimited). */
    std::size_t maxBatchRequests = 64;
    /** Request bytes admitted per poll round before shedding with
     *  `overloaded` (0 = unlimited). */
    std::uint64_t maxBatchBytes = 4ULL * 1024 * 1024;
    /** Longest accepted request line; beyond it the connection gets
     *  an `oversized` error and is closed (0 = unlimited). */
    std::size_t maxLineBytes = 1024 * 1024;
    /** Backoff hint carried by `overloaded` errors and honored by
     *  serve::Client. */
    std::uint64_t retryAfterMs = 25;
    /** Evict a connection silent for this long (slowloris guard;
     *  0 = never). Also the send timeout on accepted sockets. */
    std::uint64_t idleTimeoutMs = 30000;

    // --- Crash safety / chaos ---
    /** Compact the journal into a snapshot checkpoint once it
     *  exceeds this size (0 = only on shutdown). */
    std::uint64_t checkpointBytes = 1024 * 1024;
    /** Seeded wire-fault plan (disabled by default). */
    WireFaultPlan chaosWire;
};

/** Request counters (the `stats` verb's serving section). */
struct ServerCounters
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t connections = 0;
    /** Lines shed by per-round admission budgets. */
    std::uint64_t overloaded = 0;
    /** Requests whose own deadline expired while queued. */
    std::uint64_t deadlineExpired = 0;
    /** Connections dropped for an over-budget request line. */
    std::uint64_t oversized = 0;
    /** Lines refused while draining. */
    std::uint64_t drained = 0;
    /** Connections evicted by the idle timeout. */
    std::uint64_t idleEvicted = 0;
    /** Wire faults injected by the chaos plan. */
    std::uint64_t wireFaults = 0;
    /** Journal-compaction checkpoints written. */
    std::uint64_t checkpoints = 0;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind and listen (and when persistence is configured: load the
     * snapshot, replay the insert journal over it — skipping a torn
     * tail, see recovery() — write a fresh checkpoint, and reopen
     * the journal). Returns false with a message in `error` on any
     * failure; the daemon must not half-start.
     */
    bool start(std::string &error);

    /** Resolved listen address (TCP port 0 filled in). Valid after
     *  start(). */
    const std::string &address() const { return address_; }

    /**
     * Accept and answer requests until a `shutdown` request arrives
     * or a drain is requested. Returns 0 on clean shutdown or drain
     * (cache checkpointed when configured), 1 on an unrecoverable
     * I/O failure.
     */
    int serve();

    /**
     * Answer one request line (no socket involved): the unit-test
     * and in-process entry point. Exactly the computation serve()
     * performs per line, including cache effects.
     */
    std::string handleLine(const std::string &line);

    /**
     * Answer a batch of request lines in order: uncached `run`
     * requests across the whole batch execute as one Executor
     * fan-out. serve() feeds every admitted line of a poll round
     * through here. `enqueuedAtMs` (parallel to `lines`, monotonic
     * milliseconds; nullptr = no queue timing) lets requests with a
     * "deadlineMs" budget be shed with a `deadline` error once
     * their time in queue exceeds it.
     */
    std::vector<std::string>
    handleBatch(const std::vector<std::string> &lines,
                const std::vector<std::uint64_t> *enqueuedAtMs =
                    nullptr);

    /**
     * Flip into draining mode: stop accepting connections, answer
     * all further requests with a `draining` error. serve() then
     * flushes, checkpoints and returns 0. Idempotent; callable
     * before serve() for tests.
     */
    void beginDrain();

    /**
     * Install SIGTERM/SIGINT handlers that request a graceful drain
     * of every Server in the process (the handler only sets an
     * async-signal-safe flag; serve() loops notice it within one
     * poll tick). Call once from the daemon entry point.
     */
    static void installDrainSignalHandlers();

    /** True once a shutdown request has been answered. */
    bool stopping() const { return stopping_; }

    /** True once draining has begun. */
    bool draining() const { return draining_; }

    const ServerCounters &counters() const { return counters_; }
    const CacheCounters &cacheCounters() const
    {
        return cache_.counters();
    }

    /** What start()'s journal replay recovered and dropped. */
    const JournalRecoveryReport &recovery() const
    {
        return recovery_;
    }

  private:
    struct Connection
    {
        int fd = -1;
        LineFramer framer;
        /** Response bytes withheld by a MergeFrames wire fault,
         *  flushed at the next send or poll tick. */
        std::string held;
        /** monotonicMillis() of the last received byte. */
        std::uint64_t lastActivityMs = 0;
        bool open = true;
    };

    std::string handleParsed(const struct Request &request);
    std::string statsBody() const;
    void closeListener();
    std::string journalPath() const;
    /** Insert into the cache, journal the insert, and checkpoint
     *  when the journal is over budget. */
    void recordInsert(const std::string &key, const std::string &body);
    /** Snapshot the cache (temp+rename) and reset the journal. */
    bool checkpoint(std::string &error);
    /** Send one response frame, applying any wire fault the chaos
     *  plan assigns to this response sequence number. */
    void deliverResponse(Connection &conn, const std::string &frame);
    /** Flush a connection's merge-held bytes. */
    void flushHeld(Connection &conn);

    ServerOptions options_;
    std::string address_;
    ResultCache cache_;
    Executor executor_;
    ServerCounters counters_;
    CacheJournal journal_;
    JournalRecoveryReport recovery_;
    std::uint64_t responseSequence_ = 0;
    int listenFd_ = -1;
    bool unixSocket_ = false;
    std::string unixPath_;
    bool stopping_ = false;
    bool draining_ = false;
};

} // namespace netchar::serve

#endif // NETCHAR_SERVE_SERVER_HH
