/**
 * @file
 * The `netchar serve` daemon: characterization-as-a-service.
 *
 * A Server listens on a Unix-domain or loopback TCP socket, reads
 * newline-delimited JSON requests (serve/protocol.hh) and answers
 * through a content-addressed result cache (serve/cache.hh). All
 * socket I/O and cache bookkeeping happen on the single thread
 * inside serve(); parallelism lives below it — each poll round's
 * complete request lines are handled as one batch, and the batch's
 * uncached `run` requests fan out together over the core::Executor
 * (sweeps parallelize internally through Characterizer::runAll).
 * That layering keeps responses a pure function of requests: no
 * locks around the cache, no cross-request ordering races.
 *
 * A daemon started with shard i/n (ServerOptions::shard/shards)
 * answers sweep requests only for its round-robin slice of the
 * suite; `netchar query --merge` reassembles the partials
 * byte-identically to a single-process sweep (serve/shard.hh).
 */

#ifndef NETCHAR_SERVE_SERVER_HH
#define NETCHAR_SERVE_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "serve/cache.hh"

namespace netchar::serve
{

/** Daemon configuration. */
struct ServerOptions
{
    /**
     * Listen address: `host:port` (TCP; port 0 picks a free port,
     * reported by address()) or a filesystem path (Unix-domain
     * socket, created on start and unlinked on shutdown).
     */
    std::string listen;
    /** Executor concurrency for run batches and sweeps
     *  (0 = one per hardware thread). */
    unsigned jobs = 1;
    /** Retry budget per sweep run (Parallelism::maxAttempts). */
    unsigned maxAttempts = 2;
    /** Sweep shard this worker owns (0-based) ... */
    unsigned shard = 0;
    /** ... of this many workers (1 = unsharded). */
    unsigned shards = 1;
    /** Result-cache budgets. */
    CacheConfig cache;
    /** When non-empty: load the cache from this file on start() and
     *  persist it back on clean shutdown. */
    std::string persistPath;
};

/** Request counters (the `stats` verb's serving section). */
struct ServerCounters
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t connections = 0;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind and listen (and load the persisted cache, when
     * configured). Returns false with a message in `error` on any
     * failure; the daemon must not half-start.
     */
    bool start(std::string &error);

    /** Resolved listen address (TCP port 0 filled in). Valid after
     *  start(). */
    const std::string &address() const { return address_; }

    /**
     * Accept and answer requests until a `shutdown` request arrives.
     * Returns 0 on clean shutdown (cache persisted when configured),
     * 1 on an unrecoverable I/O failure.
     */
    int serve();

    /**
     * Answer one request line (no socket involved): the unit-test
     * and in-process entry point. Exactly the computation serve()
     * performs per line, including cache effects.
     */
    std::string handleLine(const std::string &line);

    /**
     * Answer a batch of request lines in order: uncached `run`
     * requests across the whole batch execute as one Executor
     * fan-out. serve() feeds every complete line of a poll round
     * through here.
     */
    std::vector<std::string>
    handleBatch(const std::vector<std::string> &lines);

    /** True once a shutdown request has been answered. */
    bool stopping() const { return stopping_; }

    const ServerCounters &counters() const { return counters_; }
    const CacheCounters &cacheCounters() const
    {
        return cache_.counters();
    }

  private:
    struct Connection
    {
        int fd = -1;
        std::string in;  ///< bytes read, not yet split into lines
        bool open = true;
    };

    std::string handleParsed(const struct Request &request);
    std::string statsBody() const;
    void closeListener();

    ServerOptions options_;
    std::string address_;
    ResultCache cache_;
    Executor executor_;
    ServerCounters counters_;
    int listenFd_ = -1;
    bool unixSocket_ = false;
    std::string unixPath_;
    bool stopping_ = false;
};

} // namespace netchar::serve

#endif // NETCHAR_SERVE_SERVER_HH
