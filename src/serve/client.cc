#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.hh" // parseJson (structured refusals)

namespace netchar::serve
{

namespace
{

/** Backoff before attempt k (2-based): base * 2^(k-2), capped at
 *  100 ms — the sweep runner's schedule. */
std::uint64_t
backoffMicros(std::uint64_t base, unsigned attempt)
{
    if (base == 0 || attempt < 2)
        return 0;
    constexpr std::uint64_t kCap = 100'000;
    std::uint64_t delay = base;
    for (unsigned k = 2; k < attempt && delay < kCap; ++k)
        delay *= 2;
    return delay < kCap ? delay : kCap;
}

/** Monotonic milliseconds for the overall request deadline. Host
 *  time steers retry policy only; it never reaches a result. */
std::uint64_t
monotonicMillis()
{
    // netchar-lint: allow(no-wallclock) -- client retry budget only
    using Clock = std::chrono::steady_clock;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now().time_since_epoch())
            .count());
}

/** A structured refusal the client reacts to (rather than treating
 *  the response as final). */
enum class Refusal { None, Overloaded, Draining };

Refusal
classifyRefusal(const std::string &response,
                std::uint64_t &retryAfterMs)
{
    JsonValue root;
    std::string parseError;
    if (!parseJson(response, root, parseError) || !root.isObject())
        return Refusal::None;
    const JsonValue *ok = root.find("ok");
    if (ok == nullptr || ok->kind != JsonValue::Kind::Bool ||
        ok->boolean)
        return Refusal::None;
    const JsonValue *code = root.find("code");
    if (code == nullptr || !code->isString())
        return Refusal::None;
    if (code->string == "overloaded") {
        const JsonValue *hint = root.find("retryAfterMs");
        if (hint != nullptr && hint->isNumber() && hint->number > 0)
            retryAfterMs =
                static_cast<std::uint64_t>(hint->number);
        return Refusal::Overloaded;
    }
    if (code->string == "draining")
        return Refusal::Draining;
    return Refusal::None;
}

} // namespace

Client::Client(ClientOptions options) : options_(std::move(options))
{
}

Client::~Client() { disconnect(); }

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
Client::connectOnce(std::string &error)
{
    if (fd_ >= 0)
        return true;
    const std::string &address = options_.address;
    const auto colon = address.rfind(':');
    const bool tcp = colon != std::string::npos &&
                     address.find('/') == std::string::npos;
    if (tcp) {
        std::string host = address.substr(0, colon);
        if (host.empty())
            host = "127.0.0.1";
        unsigned long port = 0;
        try {
            std::size_t used = 0;
            const std::string text = address.substr(colon + 1);
            port = std::stoul(text, &used);
            if (used != text.size() || port > 65535)
                throw std::invalid_argument(text);
        } catch (const std::exception &) {
            error = "bad port in address '" + address + "'";
            return false;
        }
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
            error = "bad host in address '" + address + "'";
            disconnect();
            return false;
        }
        if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            error = "connect " + address + ": " +
                    std::strerror(errno);
            disconnect();
            return false;
        }
    } else {
        sockaddr_un addr{};
        if (address.size() >= sizeof(addr.sun_path)) {
            error = "socket path '" + address + "' too long";
            return false;
        }
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, address.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            error = "connect " + address + ": " +
                    std::strerror(errno);
            disconnect();
            return false;
        }
    }
    if (options_.ioTimeoutMs != 0) {
        // A stalled peer surfaces as a retryable timeout instead of
        // blocking the client forever.
        timeval tv{};
        tv.tv_sec =
            static_cast<time_t>(options_.ioTimeoutMs / 1000);
        tv.tv_usec = static_cast<suseconds_t>(
            (options_.ioTimeoutMs % 1000) * 1000);
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    return true;
}

bool
Client::roundTrip(const std::string &line, std::string &response,
                  std::string &error)
{
    std::string out = line;
    out.push_back('\n');
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n =
            ::send(fd_, out.data() + sent, out.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                error = "timeout: send stalled past " +
                        std::to_string(options_.ioTimeoutMs) + "ms";
                return false;
            }
            error = std::string("send: ") + std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    while (true) {
        const auto nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            response = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (!response.empty() && response.back() == '\r')
                response.pop_back();
            return true;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) {
            error = "connection closed before response";
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                error = "timeout: no response within " +
                        std::to_string(options_.ioTimeoutMs) + "ms";
                return false;
            }
            error = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        buffer_.append(buf, static_cast<std::size_t>(n));
    }
}

bool
Client::request(const std::string &line, std::string &response,
                std::string &error)
{
    const unsigned attempts =
        options_.maxAttempts < 1 ? 1 : options_.maxAttempts;
    const std::uint64_t startMs =
        options_.deadlineMs != 0 ? monotonicMillis() : 0;
    const auto deadlineExpired = [&]() {
        return options_.deadlineMs != 0 &&
               monotonicMillis() - startMs > options_.deadlineMs;
    };
    std::uint64_t overloadedHintMs = 0;
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        // An `overloaded` refusal's own hint replaces the default
        // backoff before this attempt.
        std::uint64_t delayMicros =
            backoffMicros(options_.backoffBaseMicros, attempt);
        if (overloadedHintMs != 0) {
            delayMicros = overloadedHintMs * 1000;
            overloadedHintMs = 0;
        }
        if (delayMicros > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(delayMicros));
        if (deadlineExpired()) {
            error = "deadline: request budget of " +
                    std::to_string(options_.deadlineMs) +
                    "ms exhausted" +
                    (error.empty() ? "" : " (last: " + error + ")");
            return false;
        }
        if (!connectOnce(error))
            continue;
        if (!roundTrip(line, response, error)) {
            disconnect(); // a torn connection cannot carry a retry
            continue;
        }
        if (attempt < attempts) {
            // Honor structured refusals instead of surfacing them:
            // the request is idempotent, the server told us when
            // (overloaded) or where not (draining) to retry.
            const Refusal refusal =
                classifyRefusal(response, overloadedHintMs);
            if (refusal == Refusal::Overloaded) {
                if (overloadedHintMs == 0)
                    overloadedHintMs = 1;
                error = "server overloaded";
                continue;
            }
            if (refusal == Refusal::Draining) {
                disconnect();
                error = "server draining";
                continue;
            }
        }
        return true;
    }
    return false;
}

} // namespace netchar::serve
