#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/canonical.hh"
#include "core/export.hh"
#include "core/subset.hh"
#include "serve/protocol.hh"
#include "serve/shard.hh"
#include "stats/hash.hh"
#include "workloads/registry.hh"

namespace netchar::serve
{

namespace
{

sim::MachineConfig
machineConfigFor(const std::string &name)
{
    if (name == "xeon")
        return sim::MachineConfig::intelXeonE52620V4();
    if (name == "arm")
        return sim::MachineConfig::armServer();
    return sim::MachineConfig::intelCoreI99980Xe();
}

wl::Suite
suiteFor(const std::string &name)
{
    if (name == "aspnet")
        return wl::Suite::AspNet;
    if (name == "spec")
        return wl::Suite::SpecCpu17;
    return wl::Suite::DotNet;
}

/** Deterministic number rendering for stats/subset bodies (same
 *  precision the exporters use). */
std::string
num(double value)
{
    std::ostringstream os;
    os.precision(10);
    os << value;
    return os.str();
}

/** Split exporter CSV (header + one line per row, each '\n'-
 *  terminated) into its lines, without the newlines. */
std::vector<std::string>
csvLines(const std::string &csv)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < csv.size()) {
        const auto nl = csv.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(csv.substr(start));
            break;
        }
        lines.push_back(csv.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + sent, bytes.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Monotonic milliseconds for queue-age and idle-timeout decisions.
 * These values steer *whether* a request is answered (shed, evict),
 * never *what* the answer is — they must not flow into a response or
 * the journal (netchar-lint's taint pass enforces that).
 */
std::uint64_t
monotonicMillis()
{
    // netchar-lint: allow(no-wallclock) -- admission/idle timers only
    using Clock = std::chrono::steady_clock;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now().time_since_epoch())
            .count());
}

/** Structured shed response for an expired per-request deadline. The
 *  rendered value is the request's own budget, never a clock. */
std::string
deadlineError(std::uint64_t deadlineMs)
{
    return errorCodeResponse(
        "deadline", "deadline of " + std::to_string(deadlineMs) +
                        "ms expired before the request was served");
}

/** Async-signal-safe drain request flag: the only thing the
 *  SIGTERM/SIGINT handler touches. Polled by every serve() loop
 *  within one tick. */
volatile std::sig_atomic_t gDrainRequested = 0;

void
onDrainSignal(int)
{
    gDrainRequested = 1;
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache),
      executor_(options_.jobs)
{
}

Server::~Server() { closeListener(); }

void
Server::closeListener()
{
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (unixSocket_ && !unixPath_.empty()) {
        ::unlink(unixPath_.c_str());
        unixPath_.clear();
    }
}

bool
Server::start(std::string &error)
{
    if (options_.shards == 0 || options_.shard >= options_.shards) {
        error = "shard " + std::to_string(options_.shard) + "/" +
                std::to_string(options_.shards) +
                " needs 0 <= shard < shards";
        return false;
    }
    if (!options_.persistPath.empty()) {
        // Recovery order: snapshot checkpoint first (always written
        // atomically, so a readable file is a trustworthy base),
        // then replay the insert journal over it. replay() stops at
        // the first torn or corrupt record — after a crash the
        // recovered cache is exactly a prefix of the pre-crash
        // insert sequence, never a corrupt entry, never a refused
        // start (the kill-at-every-offset sweep in tests/serve/
        // asserts this).
        if (!cache_.load(options_.persistPath, error))
            return false;
        std::vector<std::pair<std::string, std::string>> replayed;
        if (!CacheJournal::replay(journalPath(), replayed, recovery_,
                                  error))
            return false;
        for (auto &[key, body] : replayed)
            cache_.restore(key, std::move(body));
        if (recovery_.recordsDropped != 0 ||
            recovery_.bytesDropped != 0)
            std::fprintf(stderr,
                         "serve: journal recovery dropped %llu "
                         "record(s), %llu byte(s): %s\n",
                         static_cast<unsigned long long>(
                             recovery_.recordsDropped),
                         static_cast<unsigned long long>(
                             recovery_.bytesDropped),
                         recovery_.note.c_str());
        // Fold the replayed inserts into a fresh checkpoint and
        // start with an empty journal.
        if (!cache_.save(options_.persistPath, error))
            return false;
        if (!journal_.open(journalPath(), error) ||
            !journal_.reset(error))
            return false;
    }

    // `host:port` (no '/') is TCP; anything else is a socket path.
    const auto colon = options_.listen.rfind(':');
    const bool tcp = colon != std::string::npos &&
                     options_.listen.find('/') == std::string::npos;
    if (tcp) {
        std::string host = options_.listen.substr(0, colon);
        if (host.empty())
            host = "127.0.0.1";
        const std::string port_text = options_.listen.substr(colon + 1);
        unsigned long port = 0;
        try {
            std::size_t used = 0;
            port = std::stoul(port_text, &used);
            if (used != port_text.size() || port > 65535)
                throw std::invalid_argument(port_text);
        } catch (const std::exception &) {
            error = "bad port in listen address '" + options_.listen +
                    "'";
            return false;
        }
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<std::uint16_t>(port));
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
            error = "bad host in listen address '" + options_.listen +
                    "'";
            closeListener();
            return false;
        }
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            error = "bind " + options_.listen + ": " +
                    std::strerror(errno);
            closeListener();
            return false;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0) {
            error = std::string("getsockname: ") +
                    std::strerror(errno);
            closeListener();
            return false;
        }
        address_ = host + ":" + std::to_string(ntohs(bound.sin_port));
    } else {
        sockaddr_un addr{};
        if (options_.listen.size() >= sizeof(addr.sun_path)) {
            error = "socket path '" + options_.listen + "' too long";
            return false;
        }
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        ::unlink(options_.listen.c_str()); // stale socket from a
                                           // crashed daemon
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, options_.listen.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            error = "bind " + options_.listen + ": " +
                    std::strerror(errno);
            closeListener();
            return false;
        }
        unixSocket_ = true;
        unixPath_ = options_.listen;
        address_ = options_.listen;
    }
    if (::listen(listenFd_, 64) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        closeListener();
        return false;
    }
    return true;
}

std::string
Server::statsBody() const
{
    const CacheCounters &c = cache_.counters();
    std::ostringstream os;
    os << "{\"serving\":{\"requests\":" << counters_.requests
       << ",\"errors\":" << counters_.errors
       << ",\"connections\":" << counters_.connections
       << ",\"shard\":" << options_.shard
       << ",\"shards\":" << options_.shards
       << ",\"jobs\":" << options_.jobs
       << "},\"admission\":{\"overloaded\":" << counters_.overloaded
       << ",\"deadlineExpired\":" << counters_.deadlineExpired
       << ",\"oversized\":" << counters_.oversized
       << ",\"drained\":" << counters_.drained
       << ",\"idleEvicted\":" << counters_.idleEvicted
       << ",\"wireFaults\":" << counters_.wireFaults
       << "},\"journal\":{\"recovered\":"
       << recovery_.recordsRecovered
       << ",\"dropped\":" << recovery_.recordsDropped
       << ",\"bytesDropped\":" << recovery_.bytesDropped
       << ",\"checkpoints\":" << counters_.checkpoints
       << ",\"bytes\":" << journal_.bytes()
       << "},\"cache\":{\"hits\":" << c.hits
       << ",\"misses\":" << c.misses
       << ",\"evictions\":" << c.evictions
       << ",\"inserts\":" << c.inserts
       << ",\"entries\":" << c.entries << ",\"bytes\":" << c.bytes
       << "}}";
    return os.str();
}

std::string
Server::journalPath() const
{
    return options_.persistPath + ".journal";
}

void
Server::recordInsert(const std::string &key, const std::string &body)
{
    cache_.insert(key, body);
    if (!journal_.isOpen())
        return;
    // Journal before the response leaves the daemon: an acknowledged
    // result is never less durable than its acknowledgment.
    std::string error;
    if (!journal_.append(key, body, error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return;
    }
    if (options_.checkpointBytes != 0 &&
        journal_.bytes() > options_.checkpointBytes) {
        if (!checkpoint(error))
            std::fprintf(stderr, "serve: %s\n", error.c_str());
    }
}

bool
Server::checkpoint(std::string &error)
{
    if (options_.persistPath.empty())
        return true;
    if (!cache_.save(options_.persistPath, error))
        return false;
    if (journal_.isOpen() && !journal_.reset(error))
        return false;
    ++counters_.checkpoints;
    return true;
}

std::string
Server::handleParsed(const Request &request)
{
    switch (request.verb) {
    case Verb::Ping:
        return okResponse("ping", "\"pong\"");
    case Verb::Stats:
        return okResponse("stats", statsBody());
    case Verb::Shutdown:
        stopping_ = true;
        return okResponse("shutdown", "\"bye\"");
    case Verb::Run:
        // Handled by the batch path; reaching here is a logic error
        // worth a structured answer rather than an assert.
        return errorResponse("internal: run outside batch");
    case Verb::Sweep:
    case Verb::Subset:
        break;
    }

    const sim::MachineConfig config = machineConfigFor(request.machine);
    const auto profiles = wl::suiteProfiles(suiteFor(request.suite));

    if (request.verb == Verb::Sweep) {
        const auto indices = shardIndices(
            profiles.size(), options_.shard, options_.shards);
        std::ostringstream key_text;
        key_text << "netchar-key/v" << kCanonicalVersion
                 << "/sweep{suite=" << request.suite
                 << ";format=" << request.format
                 << ";shard=" << options_.shard << '/'
                 << options_.shards
                 << ";maxAttempts=" << options_.maxAttempts
                 << ";machine{" << canonicalMachine(config)
                 << "}options{" << canonicalRunOptions(request.options)
                 << '}';
        std::vector<wl::WorkloadProfile> slice;
        for (const std::size_t idx : indices) {
            slice.push_back(profiles[idx]);
            key_text << "profile{" << canonicalProfile(profiles[idx])
                     << '}';
        }
        const std::string key = contentHashHex(key_text.str());
        if (const std::string *body = cache_.lookup(key))
            return okCachedResponse("sweep", true, key, *body);

        Characterizer ch(config);
        Parallelism par;
        par.jobs = options_.jobs;
        par.maxAttempts = options_.maxAttempts;
        SuiteRunStats stats;
        std::vector<RunResult> results;
        try {
            results = ch.runAll(slice, request.options, par, &stats);
        } catch (const std::exception &ex) {
            ++counters_.errors;
            return errorResponse(std::string("sweep: ") + ex.what());
        }

        SweepPartial partial;
        partial.suite = request.suite;
        partial.format = request.format;
        partial.shard = options_.shard;
        partial.shards = options_.shards;
        partial.suiteSize = profiles.size();
        std::vector<std::string> names;
        for (const auto &p : slice)
            names.push_back(p.name);
        if (request.format == "json") {
            for (std::size_t j = 0; j < slice.size(); ++j)
                partial.rows.push_back(
                    {indices[j], names[j],
                     runResultJson(names[j], results[j])});
        } else {
            const auto lines = csvLines(metricsCsv(names, results));
            partial.header = lines.empty() ? "" : lines.front();
            for (std::size_t j = 0; j < slice.size(); ++j)
                partial.rows.push_back(
                    {indices[j], names[j], lines[j + 1]});
        }
        partial.failures = stats.failures;
        for (RunFailure &f : partial.failures)
            f.index = indices[f.index]; // slice pos -> suite index

        std::string body = sweepBodyJson(partial);
        recordInsert(key, body);
        return okCachedResponse("sweep", false, key, body);
    }

    // Subset: always over the full suite (PCA + clustering need the
    // whole metric matrix), so sharded daemons answer it identically.
    std::ostringstream key_text;
    key_text << "netchar-key/v" << kCanonicalVersion
             << "/subset{suite=" << request.suite
             << ";size=" << request.subsetSize
             << ";maxAttempts=" << options_.maxAttempts
             << ";machine{" << canonicalMachine(config) << "}options{"
             << canonicalRunOptions(request.options) << '}';
    for (const auto &p : profiles)
        key_text << "profile{" << canonicalProfile(p) << '}';
    const std::string key = contentHashHex(key_text.str());
    if (const std::string *body = cache_.lookup(key))
        return okCachedResponse("subset", true, key, *body);

    Characterizer ch(config);
    Parallelism par;
    par.jobs = options_.jobs;
    par.maxAttempts = options_.maxAttempts;
    SuiteRunStats stats;
    std::vector<RunResult> results;
    try {
        results = ch.runAll(profiles, request.options, par, &stats);
    } catch (const std::exception &ex) {
        ++counters_.errors;
        return errorResponse(std::string("subset: ") + ex.what());
    }

    std::vector<MetricVector> rows;
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (stats.runs[i].succeeded) {
            rows.push_back(results[i].metrics);
            survivors.push_back(i);
        }
    }
    SubsetOptions sopts;
    sopts.subsetSize = request.subsetSize;
    SubsetResult subset;
    try {
        subset = buildSubset(rows, sopts);
    } catch (const std::exception &ex) {
        ++counters_.errors;
        return errorResponse(std::string("subset: ") + ex.what());
    }

    std::ostringstream body;
    body << "{\"suite\":" << jsonString(request.suite)
         << ",\"size\":" << request.subsetSize
         << ",\"total\":" << profiles.size()
         << ",\"surviving\":" << rows.size() << ",\"prcoVariance\":"
         << num(subset.pca.cumulativeExplained())
         << ",\"representatives\":[";
    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        const std::size_t rep = survivors[subset.representatives[c]];
        if (c > 0)
            body << ',';
        body << "{\"benchmark\":" << jsonString(profiles[rep].name)
             << ",\"clusterSize\":" << subset.clusters[c].size()
             << '}';
    }
    body << "]}";
    recordInsert(key, body.str());
    return okCachedResponse("subset", false, key, body.str());
}

std::vector<std::string>
Server::handleBatch(const std::vector<std::string> &lines,
                    const std::vector<std::uint64_t> *enqueuedAtMs)
{
    counters_.requests += lines.size();
    if (draining_) {
        // Drain contract: in-flight batches finished before this
        // one was formed; everything newer is refused with a
        // structured error so the client fails over.
        counters_.drained += lines.size();
        return std::vector<std::string>(
            lines.size(),
            errorCodeResponse("draining",
                              "server is draining; retry against "
                              "another replica"));
    }
    std::vector<std::string> responses(lines.size());

    struct Parsed
    {
        bool ok = false;
        Request request;
    };
    std::vector<Parsed> parsed(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
            parsed[i].request = parseRequest(lines[i]);
            parsed[i].ok = true;
        } catch (const ProtocolError &ex) {
            ++counters_.errors;
            responses[i] = errorResponse(ex.what());
        }
    }

    // The batch's uncached run requests execute as one Executor
    // fan-out; in-batch duplicates compute once and share the body.
    struct RunJob
    {
        std::string key;
        wl::WorkloadProfile profile;
        sim::MachineConfig config;
        RunOptions options;
        std::vector<std::size_t> lines;
        std::string body;
        std::string error;
    };
    std::vector<RunJob> jobs;
    std::map<std::string, std::size_t> jobByKey;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!parsed[i].ok || parsed[i].request.verb != Verb::Run)
            continue;
        const Request &r = parsed[i].request;
        if (enqueuedAtMs != nullptr && r.deadlineMs != 0 &&
            monotonicMillis() - (*enqueuedAtMs)[i] > r.deadlineMs) {
            ++counters_.deadlineExpired;
            responses[i] = deadlineError(r.deadlineMs);
            continue;
        }
        const auto profile = wl::findProfile(r.benchmark);
        if (!profile) {
            ++counters_.errors;
            responses[i] = errorResponse("unknown benchmark '" +
                                         r.benchmark + "'");
            continue;
        }
        const sim::MachineConfig config =
            machineConfigFor(r.machine);
        const std::string key = contentHashHex(
            "run/" + cacheKeyText(*profile, config, r.options));
        if (const std::string *body = cache_.lookup(key)) {
            responses[i] = okCachedResponse("run", true, key, *body);
            continue;
        }
        const auto it = jobByKey.find(key);
        if (it != jobByKey.end()) {
            jobs[it->second].lines.push_back(i);
            continue;
        }
        jobByKey[key] = jobs.size();
        jobs.push_back(
            {key, *profile, config, r.options, {i}, "", ""});
    }

    if (!jobs.empty()) {
        const auto failures = executor_.forEachCollect(
            jobs.size(), [&](std::size_t j) {
                Characterizer ch(jobs[j].config);
                const RunResult result =
                    ch.run(jobs[j].profile, jobs[j].options);
                jobs[j].body =
                    runResultJson(jobs[j].profile.name, result);
            });
        for (const TaskFailure &f : failures)
            jobs[f.index].error = f.what;
        for (const RunJob &job : jobs) {
            if (!job.error.empty()) {
                counters_.errors += job.lines.size();
                for (const std::size_t i : job.lines)
                    responses[i] = errorResponse("run: " + job.error);
                continue;
            }
            recordInsert(job.key, job.body);
            for (const std::size_t i : job.lines)
                responses[i] =
                    okCachedResponse("run", false, job.key, job.body);
        }
    }

    // Everything else answers inline, in request order (sweeps and
    // subsets parallelize internally through runAll). Each inline
    // request re-checks its deadline here: the run fan-out and the
    // inline requests ahead of it may have consumed its budget.
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!responses[i].empty() || !parsed[i].ok)
            continue;
        const Request &r = parsed[i].request;
        if (enqueuedAtMs != nullptr && r.deadlineMs != 0 &&
            monotonicMillis() - (*enqueuedAtMs)[i] > r.deadlineMs) {
            ++counters_.deadlineExpired;
            responses[i] = deadlineError(r.deadlineMs);
            continue;
        }
        responses[i] = handleParsed(r);
    }
    return responses;
}

std::string
Server::handleLine(const std::string &line)
{
    return handleBatch({line}).front();
}

void
Server::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    closeListener(); // stop accepting; connect attempts fail over
}

void
Server::installDrainSignalHandlers()
{
    struct sigaction action = {};
    action.sa_handler = onDrainSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: poll() wakes promptly
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
}

void
Server::flushHeld(Connection &conn)
{
    if (!conn.open || conn.held.empty())
        return;
    std::string held = std::move(conn.held);
    conn.held.clear();
    if (!sendAll(conn.fd, held))
        conn.open = false;
}

void
Server::deliverResponse(Connection &conn, const std::string &frame)
{
    WireFaultDecision fault;
    if (options_.chaosWire.enabled()) {
        fault = options_.chaosWire.decide(responseSequence_);
        if (fault)
            ++counters_.wireFaults;
    }
    ++responseSequence_;

    if (fault.kind == WireFaultKind::TruncateJournal &&
        journal_.isOpen()) {
        // Torn-write chaos: chop bytes off the journal tail. The
        // next start's replay drops the torn record and recomputes
        // on demand — chaos costs cache warmth, never correctness.
        std::string error;
        if (!CacheJournal::truncateTail(journal_.path(),
                                        fault.truncateBytes, error))
            std::fprintf(stderr, "serve: %s\n", error.c_str());
    }

    if (!conn.open)
        return;

    // Bytes withheld by an earlier MergeFrames fault always travel
    // in front of this frame — order on the wire never changes.
    std::string outbound = std::move(conn.held);
    conn.held.clear();

    if (fault.kind == WireFaultKind::MergeFrames) {
        // Withhold the frame: it coalesces with this connection's
        // next frame into one segment, or goes out at the next
        // poll-tick flush.
        conn.held = frame;
        if (!outbound.empty() && !sendAll(conn.fd, outbound))
            conn.open = false;
        return;
    }

    if (fault.kind == WireFaultKind::StallWrite)
        std::this_thread::sleep_for(
            std::chrono::microseconds(fault.stallMicros));

    if (fault.kind == WireFaultKind::ResetMidResponse) {
        outbound += frame.substr(
            0, std::min<std::size_t>(fault.resetAfterBytes,
                                     frame.size()));
        // netchar-lint: allow(flow-unchecked-error) -- the fault tears the frame on purpose; the socket closes either way
        sendAll(conn.fd, outbound);
        conn.open = false; // torn frame: the peer must retry
        return;
    }

    outbound += frame;
    if (fault.kind == WireFaultKind::SplitWrite) {
        for (std::size_t off = 0; off < outbound.size();
             off += fault.chunkBytes) {
            if (!sendAll(conn.fd,
                         outbound.substr(off, fault.chunkBytes))) {
                conn.open = false;
                return;
            }
        }
        return;
    }
    if (!outbound.empty() && !sendAll(conn.fd, outbound))
        conn.open = false;
}

int
Server::serve()
{
    // Finite poll tick: the loop must wake to notice a drain
    // request, flush merge-held bytes and evict idle peers even
    // when no traffic arrives.
    constexpr int kTickMs = 50;
    std::vector<Connection> conns;
    while (true) {
        if (!draining_ && gDrainRequested != 0) {
            gDrainRequested = 0; // consume: one signal, one drain
            beginDrain();
        }

        const bool listening = listenFd_ >= 0;
        std::vector<pollfd> fds;
        if (listening)
            fds.push_back({listenFd_, POLLIN, 0});
        for (const Connection &conn : conns)
            fds.push_back({conn.fd, POLLIN, 0});
        if (::poll(fds.data(), fds.size(), kTickMs) < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "serve: poll: %s\n",
                         std::strerror(errno));
            return 1;
        }
        const std::uint64_t nowMs = monotonicMillis();
        const std::size_t base = listening ? 1 : 0;

        // Merge-held bytes from the previous round go out first:
        // a withheld frame is delayed at most one tick.
        for (Connection &conn : conns)
            flushHeld(conn);

        if (listening && (fds[0].revents & POLLIN) != 0) {
            const int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd >= 0) {
                if (options_.idleTimeoutMs != 0) {
                    // Bound writes too: a peer that stops reading
                    // is evicted by the send timeout.
                    timeval tv{};
                    tv.tv_sec = static_cast<time_t>(
                        options_.idleTimeoutMs / 1000);
                    tv.tv_usec = static_cast<suseconds_t>(
                        (options_.idleTimeoutMs % 1000) * 1000);
                    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                                 sizeof(tv));
                }
                Connection conn;
                conn.fd = fd;
                conn.framer = LineFramer(options_.maxLineBytes);
                conn.lastActivityMs = nowMs;
                conns.push_back(std::move(conn));
                ++counters_.connections;
            }
        }

        // Gather this round's complete lines across every readable
        // connection, applying admission control in arrival order:
        // lines beyond the per-round request/byte budgets are shed
        // immediately with `overloaded` instead of queueing.
        struct PendingLine
        {
            std::size_t conn = 0;
            std::string text;
            std::string shed; ///< pre-resolved response ("" = admit)
        };
        std::vector<PendingLine> pending;
        std::size_t admitted = 0;
        std::uint64_t admittedBytes = 0;
        for (std::size_t c = 0; base + c < fds.size(); ++c) {
            Connection &conn = conns[c];
            const short events = fds[base + c].revents;
            if ((events & (POLLIN | POLLHUP | POLLERR)) != 0) {
                char buf[4096];
                const ssize_t n =
                    ::recv(conn.fd, buf, sizeof(buf), 0);
                if (n == 0) {
                    conn.open = false;
                } else if (n < 0) {
                    if (errno != EINTR && errno != EAGAIN)
                        conn.open = false;
                } else {
                    conn.lastActivityMs = nowMs;
                    conn.framer.feed(
                        {buf, static_cast<std::size_t>(n)});
                }
            }
            if (!conn.open)
                continue;
            std::string line;
            while (conn.framer.next(line)) {
                PendingLine p;
                p.conn = c;
                p.text = std::move(line);
                const bool overRequests =
                    options_.maxBatchRequests != 0 &&
                    admitted >= options_.maxBatchRequests;
                const bool overBytes =
                    options_.maxBatchBytes != 0 &&
                    admittedBytes + p.text.size() >
                        options_.maxBatchBytes;
                if (!draining_ && (overRequests || overBytes)) {
                    ++counters_.requests;
                    ++counters_.overloaded;
                    p.shed = errorCodeResponse(
                        "overloaded",
                        "server at capacity; retry after the hint",
                        options_.retryAfterMs);
                } else {
                    ++admitted;
                    admittedBytes += p.text.size();
                }
                pending.push_back(std::move(p));
            }
            if (conn.framer.overflowed()) {
                ++counters_.requests;
                ++counters_.oversized;
                ++counters_.errors;
                deliverResponse(
                    conn,
                    errorCodeResponse(
                        "oversized",
                        "request line exceeds " +
                            std::to_string(options_.maxLineBytes) +
                            " bytes") +
                        "\n");
                conn.open = false;
            }
        }

        if (!pending.empty()) {
            std::vector<std::string> lines;
            std::vector<std::uint64_t> enqueuedAt;
            constexpr std::size_t kShed = SIZE_MAX;
            std::vector<std::size_t> slot(pending.size(), kShed);
            for (std::size_t i = 0; i < pending.size(); ++i) {
                if (!pending[i].shed.empty())
                    continue;
                slot[i] = lines.size();
                lines.push_back(pending[i].text);
                enqueuedAt.push_back(nowMs);
            }
            std::vector<std::string> responses;
            if (!lines.empty())
                responses = handleBatch(lines, &enqueuedAt);
            // Answer in arrival order per connection: shed and
            // computed responses interleave exactly as requested.
            for (std::size_t i = 0; i < pending.size(); ++i) {
                const std::string &response =
                    slot[i] == kShed ? pending[i].shed
                                     : responses[slot[i]];
                deliverResponse(conns[pending[i].conn],
                                response + "\n");
            }
        }

        if (options_.idleTimeoutMs != 0) {
            for (Connection &conn : conns) {
                if (conn.open &&
                    nowMs - conn.lastActivityMs >
                        options_.idleTimeoutMs) {
                    ++counters_.idleEvicted;
                    conn.open = false;
                }
            }
        }

        for (auto it = conns.begin(); it != conns.end();) {
            if (!it->open) {
                ::close(it->fd);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }

        if (stopping_ || draining_)
            break;
    }

    for (Connection &conn : conns) {
        flushHeld(conn);
        ::close(conn.fd);
    }
    closeListener();
    if (!options_.persistPath.empty()) {
        std::string error;
        if (!checkpoint(error)) {
            std::fprintf(stderr, "serve: %s\n", error.c_str());
            return 1;
        }
        journal_.close();
    }
    return 0;
}

} // namespace netchar::serve
