#include "serve/cache.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/canonical.hh" // kCanonicalVersion (persist header)

namespace netchar::serve
{

ResultCache::ResultCache(CacheConfig config) : config_(config) {}

const std::string *
ResultCache::lookup(const std::string &key)
{
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++counters_.misses;
        return nullptr;
    }
    ++counters_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->body;
}

void
ResultCache::insert(const std::string &key, std::string body)
{
    const auto it = index_.find(key);
    if (it != index_.end()) {
        counters_.bytes -= it->second->body.size();
        counters_.bytes += body.size();
        it->second->body = std::move(body);
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front(Entry{key, std::move(body)});
        index_[key] = lru_.begin();
        counters_.bytes += lru_.front().body.size();
        ++counters_.entries;
    }
    ++counters_.inserts;
    evictOverBudget();
}

void
ResultCache::restore(const std::string &key, std::string body)
{
    insert(key, std::move(body));
    // Replayed persistence, not a fresh result.
    --counters_.inserts;
}

void
ResultCache::evictOverBudget()
{
    while (!lru_.empty() &&
           ((config_.maxEntries != 0 &&
             counters_.entries > config_.maxEntries) ||
            (config_.maxBytes != 0 &&
             counters_.bytes > config_.maxBytes))) {
        // Never evict down to zero on an over-large single body: a
        // cache that cannot hold its own latest answer is useless.
        if (lru_.size() == 1)
            break;
        const Entry &victim = lru_.back();
        counters_.bytes -= victim.body.size();
        --counters_.entries;
        ++counters_.evictions;
        index_.erase(victim.key);
        lru_.pop_back();
    }
}

std::vector<std::string>
ResultCache::keysByRecency() const
{
    std::vector<std::string> keys;
    keys.reserve(lru_.size());
    for (const Entry &entry : lru_)
        keys.push_back(entry.key);
    return keys;
}

bool
ResultCache::save(const std::string &path, std::string &error) const
{
    // Temp file + rename(): the old snapshot stays valid until the
    // new one is complete, so a crash mid-persist loses at most the
    // work since the previous checkpoint, never the file itself.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            error = "cannot write cache file '" + tmp + "'";
            return false;
        }
        out << "netchar-cache/v" << kCanonicalVersion << '\n'
            << lru_.size() << '\n';
        // LRU-first: sequential re-insertion on load() leaves the
        // same entry at MRU that was MRU when saved.
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)
            out << it->key << ' ' << it->body.size() << '\n'
                << it->body << '\n';
        out.flush();
        if (!out) {
            error = "short write to cache file '" + tmp + "'";
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        error = "cannot move cache file '" + tmp + "' into place: " +
                ec.message();
        std::error_code ignored;
        std::filesystem::remove(tmp, ignored);
        return false;
    }
    return true;
}

bool
ResultCache::load(const std::string &path, std::string &error)
{
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return true; // fresh daemon: nothing persisted yet
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read cache file '" + path + "'";
        return false;
    }
    std::string header;
    if (!std::getline(in, header)) {
        error = "cache file '" + path + "': missing header";
        return false;
    }
    std::ostringstream want;
    want << "netchar-cache/v" << kCanonicalVersion;
    if (header != want.str()) {
        error = "cache file '" + path + "': schema '" + header +
                "' does not match '" + want.str() +
                "' (stale persistence; delete the file)";
        return false;
    }
    std::size_t count = 0;
    if (!(in >> count)) {
        error = "cache file '" + path + "': missing entry count";
        return false;
    }
    in.ignore(1); // the newline after the count
    for (std::size_t i = 0; i < count; ++i) {
        std::string key;
        std::size_t length = 0;
        if (!(in >> key >> length)) {
            error = "cache file '" + path + "': truncated entry " +
                    std::to_string(i);
            return false;
        }
        in.ignore(1);
        std::string body(length, '\0');
        in.read(body.data(), static_cast<std::streamsize>(length));
        if (in.gcount() != static_cast<std::streamsize>(length)) {
            error = "cache file '" + path + "': truncated body " +
                    std::to_string(i);
            return false;
        }
        in.ignore(1);
        insert(key, std::move(body));
    }
    // Replayed inserts are bookkeeping, not fresh results.
    counters_.inserts -= count;
    return true;
}

} // namespace netchar::serve
