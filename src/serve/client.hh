/**
 * @file
 * Client side of the serve protocol: one-line-out, one-line-back
 * requests with reconnect and bounded exponential backoff.
 *
 * Retrying a request is always safe: every verb is idempotent (run/
 * sweep/subset answers are pure functions of the request, served
 * through the content-addressed cache; ping/stats are reads), so a
 * request whose response was lost to a connection failure can simply
 * be sent again. The backoff schedule matches the sweep runner's:
 * before attempt k the client sleeps base * 2^(k-2) microseconds,
 * capped at 100 ms — host time only, never visible in results.
 *
 * Three failure shapes are handled beyond a torn connection:
 *
 *  - a structured `overloaded` refusal is retried after the
 *    response's own retryAfterMs hint (same connection);
 *  - a structured `draining` refusal reconnects before retrying
 *    (the daemon is going away);
 *  - an overall deadline (ClientOptions::deadlineMs) bounds total
 *    elapsed time across all attempts, so a dead server fails with
 *    a named `deadline:` error instead of sleeping through the
 *    whole backoff ladder. Per-I/O read/write timeouts
 *    (ioTimeoutMs) turn a stalled peer into a retryable `timeout:`
 *    error.
 */

#ifndef NETCHAR_SERVE_CLIENT_HH
#define NETCHAR_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

namespace netchar::serve
{

/** Connection and retry policy of a Client. */
struct ClientOptions
{
    /** Daemon address: `host:port` or a Unix socket path. */
    std::string address;
    /** Total attempts per request() (connect + round-trip). */
    unsigned maxAttempts = 5;
    /** Backoff base, microseconds (0 = retry immediately). */
    std::uint64_t backoffBaseMicros = 1000;
    /** Overall budget across all attempts, milliseconds (0 = none).
     *  On exhaustion request() fails with a `deadline:` error. */
    std::uint64_t deadlineMs = 0;
    /** Per-send/recv timeout, milliseconds (0 = block forever). A
     *  stalled peer yields a retryable `timeout:` error. */
    std::uint64_t ioTimeoutMs = 0;
};

/** Blocking NDJSON client for one daemon. */
class Client
{
  public:
    explicit Client(ClientOptions options);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Send one request line and wait for its one-line response
     * (returned without the newline). Reconnects and retries with
     * backoff up to maxAttempts; returns false with the last failure
     * in `error` once attempts are exhausted.
     */
    bool request(const std::string &line, std::string &response,
                 std::string &error);

    const std::string &address() const { return options_.address; }

  private:
    bool connectOnce(std::string &error);
    bool roundTrip(const std::string &line, std::string &response,
                   std::string &error);
    void disconnect();

    ClientOptions options_;
    int fd_ = -1;
    std::string buffer_; ///< bytes received past the last response
};

} // namespace netchar::serve

#endif // NETCHAR_SERVE_CLIENT_HH
