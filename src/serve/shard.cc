#include "serve/shard.hh"

#include <algorithm>
#include <sstream>

#include "stats/textio.hh"

namespace netchar::serve
{

std::vector<std::size_t>
shardIndices(std::size_t n, unsigned shard, unsigned shards)
{
    std::vector<std::size_t> indices;
    if (shards == 0)
        return indices;
    for (std::size_t k = shard; k < n; k += shards)
        indices.push_back(k);
    return indices;
}

bool
parseShardSpec(const std::string &spec, unsigned &shard,
               unsigned &shards, std::string &error)
{
    const auto slash = spec.find('/');
    if (slash == std::string::npos) {
        error = "shard spec '" + spec + "' must look like i/n";
        return false;
    }
    try {
        std::size_t used_i = 0, used_n = 0;
        const std::string left = spec.substr(0, slash);
        const std::string right = spec.substr(slash + 1);
        const unsigned long i = std::stoul(left, &used_i);
        const unsigned long n = std::stoul(right, &used_n);
        if (used_i != left.size() || used_n != right.size())
            throw std::invalid_argument(spec);
        if (n == 0 || i >= n) {
            error = "shard spec '" + spec +
                    "' needs 0 <= i < n (n >= 1)";
            return false;
        }
        shard = static_cast<unsigned>(i);
        shards = static_cast<unsigned>(n);
        return true;
    } catch (const std::exception &) {
        error = "shard spec '" + spec + "' must look like i/n";
        return false;
    }
}

std::string
sweepBodyJson(const SweepPartial &partial)
{
    std::ostringstream os;
    os << "{\"suite\":" << jsonString(partial.suite)
       << ",\"format\":" << jsonString(partial.format)
       << ",\"shard\":" << partial.shard
       << ",\"shards\":" << partial.shards
       << ",\"suiteSize\":" << partial.suiteSize
       << ",\"header\":" << jsonString(partial.header)
       << ",\"rows\":[";
    for (std::size_t i = 0; i < partial.rows.size(); ++i) {
        const SweepRow &row = partial.rows[i];
        if (i > 0)
            os << ',';
        os << "{\"index\":" << row.index
           << ",\"benchmark\":" << jsonString(row.benchmark)
           << ",\"text\":" << jsonString(row.text) << '}';
    }
    os << "],\"failures\":[";
    for (std::size_t i = 0; i < partial.failures.size(); ++i) {
        const RunFailure &f = partial.failures[i];
        if (i > 0)
            os << ',';
        os << "{\"index\":" << f.index
           << ",\"benchmark\":" << jsonString(f.benchmark)
           << ",\"attempt\":" << f.attempt
           << ",\"kind\":" << jsonString(f.kind)
           << ",\"seed\":" << f.seed
           << ",\"backoff_micros\":" << f.backoffMicros
           << ",\"error\":" << jsonString(f.error) << '}';
    }
    os << "]}";
    return os.str();
}

namespace
{

bool
wantString(const JsonValue &obj, const char *key, std::string &out,
           std::string &error)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isString()) {
        error = std::string("sweep body: missing string '") + key +
                "'";
        return false;
    }
    out = v->string;
    return true;
}

bool
wantCount(const JsonValue &obj, const char *key, std::uint64_t &out,
          std::string &error)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber() || v->number < 0.0) {
        error = std::string("sweep body: missing count '") + key +
                "'";
        return false;
    }
    out = static_cast<std::uint64_t>(v->number);
    return true;
}

} // namespace

bool
parseSweepBody(const JsonValue &body, SweepPartial &out,
               std::string &error)
{
    if (!body.isObject()) {
        error = "sweep body is not an object";
        return false;
    }
    std::uint64_t shard = 0, shards = 0, suite_size = 0;
    if (!wantString(body, "suite", out.suite, error) ||
        !wantString(body, "format", out.format, error) ||
        !wantCount(body, "shard", shard, error) ||
        !wantCount(body, "shards", shards, error) ||
        !wantCount(body, "suiteSize", suite_size, error) ||
        !wantString(body, "header", out.header, error))
        return false;
    out.shard = static_cast<unsigned>(shard);
    out.shards = static_cast<unsigned>(shards);
    out.suiteSize = static_cast<std::size_t>(suite_size);

    const JsonValue *rows = body.find("rows");
    if (rows == nullptr || rows->kind != JsonValue::Kind::Array) {
        error = "sweep body: missing 'rows' array";
        return false;
    }
    for (const JsonValue &row : rows->array) {
        SweepRow parsed;
        std::uint64_t index = 0;
        if (!wantCount(row, "index", index, error) ||
            !wantString(row, "benchmark", parsed.benchmark, error) ||
            !wantString(row, "text", parsed.text, error))
            return false;
        parsed.index = static_cast<std::size_t>(index);
        out.rows.push_back(std::move(parsed));
    }

    const JsonValue *failures = body.find("failures");
    if (failures == nullptr ||
        failures->kind != JsonValue::Kind::Array) {
        error = "sweep body: missing 'failures' array";
        return false;
    }
    for (const JsonValue &fail : failures->array) {
        RunFailure parsed;
        std::uint64_t index = 0, attempt = 0, seed = 0, backoff = 0;
        if (!wantCount(fail, "index", index, error) ||
            !wantString(fail, "benchmark", parsed.benchmark,
                        error) ||
            !wantCount(fail, "attempt", attempt, error) ||
            !wantString(fail, "kind", parsed.kind, error) ||
            !wantCount(fail, "seed", seed, error) ||
            !wantCount(fail, "backoff_micros", backoff, error) ||
            !wantString(fail, "error", parsed.error, error))
            return false;
        parsed.index = static_cast<std::size_t>(index);
        parsed.attempt = static_cast<unsigned>(attempt);
        parsed.seed = seed;
        parsed.backoffMicros = backoff;
        out.failures.push_back(std::move(parsed));
    }
    return true;
}

bool
mergeSweep(const std::vector<SweepPartial> &partials,
           std::string &merged, std::string &error)
{
    if (partials.empty()) {
        error = "merge: no partials";
        return false;
    }
    const SweepPartial &first = partials.front();
    if (partials.size() != first.shards) {
        error = "merge: have " + std::to_string(partials.size()) +
                " partial(s) for " + std::to_string(first.shards) +
                " shard(s)";
        return false;
    }
    std::vector<bool> seen_shard(first.shards, false);
    for (const SweepPartial &p : partials) {
        if (p.suite != first.suite || p.format != first.format ||
            p.shards != first.shards ||
            p.suiteSize != first.suiteSize ||
            p.header != first.header) {
            error = "merge: partials disagree on suite/format/"
                    "shards/suiteSize/header (responses from "
                    "different sweeps?)";
            return false;
        }
        if (p.shard >= first.shards || seen_shard[p.shard]) {
            error = "merge: shard " + std::to_string(p.shard) +
                    " missing or duplicated";
            return false;
        }
        seen_shard[p.shard] = true;
    }

    std::vector<const SweepRow *> by_index(first.suiteSize, nullptr);
    for (const SweepPartial &p : partials) {
        for (const SweepRow &row : p.rows) {
            if (row.index >= first.suiteSize ||
                by_index[row.index] != nullptr) {
                error = "merge: row index " +
                        std::to_string(row.index) +
                        " out of range or duplicated";
                return false;
            }
            by_index[row.index] = &row;
        }
    }
    for (std::size_t i = 0; i < by_index.size(); ++i) {
        if (by_index[i] == nullptr) {
            error = "merge: suite index " + std::to_string(i) +
                    " missing from every partial";
            return false;
        }
    }

    std::ostringstream os;
    if (first.format == "csv") {
        os << first.header << '\n';
        for (const SweepRow *row : by_index)
            os << row->text << '\n';
    } else {
        os << '[';
        for (std::size_t i = 0; i < by_index.size(); ++i) {
            if (i > 0)
                os << ',';
            os << by_index[i]->text;
        }
        os << ']';
    }
    merged = os.str();
    return true;
}

SuiteRunStats
mergeLedgers(const std::vector<SweepPartial> &partials)
{
    SuiteRunStats stats;
    for (const SweepPartial &p : partials)
        stats.failures.insert(stats.failures.end(),
                              p.failures.begin(), p.failures.end());
    std::sort(stats.failures.begin(), stats.failures.end(),
              [](const RunFailure &a, const RunFailure &b) {
                  if (a.index != b.index)
                      return a.index < b.index;
                  return a.attempt < b.attempt;
              });
    return stats;
}

} // namespace netchar::serve
