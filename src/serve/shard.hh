/**
 * @file
 * Deterministic sweep sharding and byte-identical merge.
 *
 * A daemon started with `--shard i/n` answers sweep requests only
 * for its slice of the suite: the round-robin indices {k : k mod n
 * == i} of the registry's profile list. Every shard renders its rows
 * with the same export code the single-process `netchar suite` path
 * uses and tags them with their *original* suite indices, so a
 * client holding all n partial responses can reassemble the full
 * CSV/JSON output — and the deterministic failure ledger — byte-
 * identically to the single-process run. The guarantee rests on
 * PR 1/PR 3 invariants: per-run results depend only on (profile,
 * machine, options, seed), and seed perturbation / fault decisions
 * key on benchmark *names*, never sweep positions.
 */

#ifndef NETCHAR_SERVE_SHARD_HH
#define NETCHAR_SERVE_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/characterize.hh"
#include "serve/protocol.hh"

namespace netchar::serve
{

/** Round-robin slice {k : k % shards == shard} of [0, n). */
std::vector<std::size_t> shardIndices(std::size_t n, unsigned shard,
                                      unsigned shards);

/**
 * Parse a `--shard i/n` spec. Returns false with a message in
 * `error` unless 0 <= i < n and n >= 1.
 */
bool parseShardSpec(const std::string &spec, unsigned &shard,
                    unsigned &shards, std::string &error);

/** One benchmark's rendered output inside a sweep partial. */
struct SweepRow
{
    /** Original index in the full suite profile list. */
    std::size_t index = 0;
    std::string benchmark;
    /** metricsCsv data row (csv) or runResultJson object (json),
     *  without any trailing newline. */
    std::string text;
};

/** One shard's sweep response body, parsed back from the wire. */
struct SweepPartial
{
    std::string suite;
    std::string format; ///< "csv" | "json"
    unsigned shard = 0;
    unsigned shards = 1;
    /** Total benchmarks in the full suite (merge coverage check). */
    std::size_t suiteSize = 0;
    /** metricsCsv header line (csv format only, no newline). */
    std::string header;
    std::vector<SweepRow> rows;
    /** Failed attempts with original suite indices. */
    std::vector<RunFailure> failures;
};

/**
 * Render one shard's sweep body (the `"body"` object of a sweep
 * response). Rows must already carry original suite indices.
 */
std::string sweepBodyJson(const SweepPartial &partial);

/**
 * Parse a sweep response body. Returns false with a message in
 * `error` on a malformed document.
 */
bool parseSweepBody(const JsonValue &body, SweepPartial &out,
                    std::string &error);

/**
 * Merge n shard partials into the full sweep output: exactly what
 * the single-process `netchar suite <suite> --format <f>` writes to
 * stdout (metricsCsv bytes for csv, suiteJson bytes for json).
 * Requires one partial per shard 0..n-1 (any order), identical
 * (suite, format, shards, suiteSize, header) across partials, and
 * rows covering every suite index exactly once. Returns false with
 * a message in `error` otherwise.
 */
bool mergeSweep(const std::vector<SweepPartial> &partials,
                std::string &merged, std::string &error);

/**
 * Merge the partials' failure ledgers into a SuiteRunStats whose
 * failureLedgerCsv/Json bytes equal the single-process sweep's
 * (failures sorted by (index, attempt); the ledger format contains
 * no wall times or worker ids, so shard boundaries leave no trace).
 */
SuiteRunStats mergeLedgers(const std::vector<SweepPartial> &partials);

} // namespace netchar::serve

#endif // NETCHAR_SERVE_SHARD_HH
