/**
 * @file
 * Content-addressed result cache for the serve daemon.
 *
 * Keys are the 128-bit content hash (stats/hash.hh) of the canonical
 * key text (core/canonical.hh) of everything that determines a
 * result: profile, machine config, seed and run options, plus the
 * request shape (verb, suite, format, shard slice) for multi-run
 * verbs. Because every run is deterministic, a repeated identical
 * query can be answered from the cache with a byte-identical body —
 * the "repeat queries are free" half of characterization-as-a-
 * service.
 *
 * Eviction is LRU over both an entry-count and a byte budget, with
 * hit/miss/eviction counters exposed through the `stats` verb.
 * Optional persistence writes entries LRU-first so a reload restores
 * both contents and recency order; the format carries the canonical
 * schema version, so a cache persisted before a canonicalization
 * change misses cleanly rather than serving stale bodies.
 *
 * Not thread-safe: the daemon's event loop is single-threaded and
 * owns the cache; parallelism lives below it, in the executor the
 * run batches fan out on.
 */

#ifndef NETCHAR_SERVE_CACHE_HH
#define NETCHAR_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

namespace netchar::serve
{

/** Capacity budgets of a ResultCache. */
struct CacheConfig
{
    /** Maximum resident entries (0 = unlimited). */
    std::size_t maxEntries = 256;
    /** Maximum resident body bytes (0 = unlimited). */
    std::uint64_t maxBytes = 64ULL * 1024 * 1024;
};

/** Observability counters (the `stats` verb's cache section). */
struct CacheCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
};

/** LRU map from content-hash key to cached response body. */
class ResultCache
{
  public:
    explicit ResultCache(CacheConfig config = {});

    /**
     * Body cached under `key`, or nullptr on a miss. A hit bumps the
     * entry to most-recently-used and counts as a hit; a miss counts
     * as a miss. The pointer is invalidated by the next insert() —
     * copy before mutating the cache.
     */
    const std::string *lookup(const std::string &key);

    /**
     * Insert (or refresh) `key` -> `body`, then evict least-recently-
     * used entries until both budgets hold again. Inserting an
     * existing key replaces its body and bumps it to MRU.
     */
    void insert(const std::string &key, std::string body);

    /**
     * Replay an entry recovered from persistence (checkpoint or
     * journal): same placement and eviction as insert(), but not
     * counted as a fresh insert — counters after a restart reflect
     * only work done since.
     */
    void restore(const std::string &key, std::string body);

    const CacheCounters &counters() const { return counters_; }

    /** Keys most-recently-used first (eviction order is the
     *  reverse); for tests and the stats verb. */
    std::vector<std::string> keysByRecency() const;

    /**
     * Write every entry to `path` (LRU-first, so a load() replays
     * recency). The snapshot is written to `path + ".tmp"` and moved
     * into place with rename(), so a crash mid-persist can never
     * leave a half-written file where a valid one was. Returns false
     * with a message in `error` on I/O failure.
     */
    bool save(const std::string &path, std::string &error) const;

    /**
     * Load entries persisted by save() on top of the current
     * contents. A missing file is not an error (fresh daemon); a
     * malformed or version-mismatched file is (the daemon should
     * refuse to serve from a cache it cannot trust).
     */
    bool load(const std::string &path, std::string &error);

  private:
    void evictOverBudget();

    struct Entry
    {
        std::string key;
        std::string body;
    };

    CacheConfig config_;
    CacheCounters counters_;
    std::list<Entry> lru_; ///< MRU at front.
    std::map<std::string, std::list<Entry>::iterator> index_;
};

} // namespace netchar::serve

#endif // NETCHAR_SERVE_CACHE_HH
