/**
 * @file
 * Wire protocol of the `netchar serve` daemon.
 *
 * The protocol is newline-delimited JSON: every request is one JSON
 * object on one line, every response is one JSON object on one line.
 * A malformed request yields a structured error response, never a
 * dropped connection or a crash.
 *
 * Request grammar (docs/ARCHITECTURE.md, "Serving & caching"):
 *
 *   {"verb":"ping"}
 *   {"verb":"run","benchmark":NAME,
 *    "machine":"i9|xeon|arm","options":{...}}
 *   {"verb":"sweep","suite":"dotnet|aspnet|spec",
 *    "format":"csv|json","machine":...,"options":{...}}
 *   {"verb":"subset","suite":...,"size":K,"machine":...,
 *    "options":{...}}
 *   {"verb":"stats"}
 *   {"verb":"shutdown"}
 *
 * The "options" object accepts: warmup, measure, cores, seed,
 * jitHint, gcMode ("workstation"|"server"), gcAssist
 * ("software"|"hardware"), maxHeap, allocScale, quantum, runBudget.
 * Unknown top-level or option keys are a protocol error naming the
 * key — a typoed option must never silently fall back to a default
 * and poison the content-addressed cache with a mislabeled entry.
 *
 * Any request may also carry "deadlineMs": a per-request time budget
 * the server sheds against (0 / absent = none). The deadline is
 * operational metadata, not part of the result's identity, so it is
 * excluded from the cache key.
 *
 * Responses:
 *
 *   {"ok":true,"verb":V,...payload...}
 *   {"ok":true,"verb":V,"cache":"hit|miss","key":HEX,"body":...}
 *   {"ok":false,"error":MESSAGE}
 *   {"ok":false,"error":MESSAGE,"code":CODE[,"retryAfterMs":N]}
 *
 * where CODE names a machine-actionable refusal: "overloaded" (shed
 * by admission control; retry after the hint), "draining" (server is
 * shutting down; go elsewhere), "deadline" (the request's own budget
 * expired in queue), "oversized" (request line exceeded the framing
 * budget).
 *
 * Everything in a response is a pure function of the request and the
 * registry (no wall times, hostnames or pids), which is what makes
 * cached responses byte-identical to freshly computed ones.
 */

#ifndef NETCHAR_SERVE_PROTOCOL_HH
#define NETCHAR_SERVE_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/characterize.hh"

namespace netchar::serve
{

// ---------------------------------------------------------------
// Minimal JSON document model (requests are tiny; no external lib).
// ---------------------------------------------------------------

/** One parsed JSON value. Object members keep source order. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isObject() const { return kind == Kind::Object; }
};

/**
 * Parse one JSON document. Returns false with a descriptive message
 * in `error` on malformed input (trailing bytes after the document
 * are an error too — a request line is exactly one object).
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string &error);

// ---------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------

/** Thrown by parseRequest on any malformed request. The message is
 *  safe to send back verbatim in an error response. */
class ProtocolError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Verbs the daemon answers. */
enum class Verb { Ping, Run, Sweep, Subset, Stats, Shutdown };

/** Wire name of a verb ("ping", "run", ...). */
std::string_view verbName(Verb verb);

/** One parsed request. */
struct Request
{
    Verb verb = Verb::Ping;
    std::string benchmark; ///< run
    std::string suite;     ///< sweep / subset
    std::string machine = "i9";
    std::string format = "csv"; ///< sweep: csv | json
    std::size_t subsetSize = 8; ///< subset
    /** Per-request time budget in milliseconds (0 = none). Not part
     *  of the cache key — a deadline changes whether a result is
     *  delivered, never what the result is. */
    std::uint64_t deadlineMs = 0;
    RunOptions options;
};

/**
 * Parse one request line. Throws ProtocolError on anything
 * malformed: bad JSON, missing/unknown verb, missing benchmark or
 * suite, unknown machine/format/option key, out-of-range values.
 * Field order inside the JSON is irrelevant and omitted option
 * fields equal their explicit defaults — the two invariances the
 * cache-key canonicalization tests pin down.
 */
Request parseRequest(const std::string &line);

/** Serialize a request (the client side of the wire). */
std::string requestLine(const Request &request);

// ---------------------------------------------------------------
// Responses. These four are the serve-layer serialization surface —
// netchar-lint's taint pass treats them as sinks, so nothing
// nondeterministic can flow into a transmitted or cached response.
// ---------------------------------------------------------------

/** `{"ok":true,"verb":V,"body":BODY}` — BODY is pre-rendered JSON. */
std::string okResponse(const std::string &verb,
                       const std::string &body);

/** As okResponse with cache attribution: `"cache":"hit|miss"` and
 *  the content-address `"key":HEX` of the body. */
std::string okCachedResponse(const std::string &verb, bool hit,
                             const std::string &key,
                             const std::string &body);

/** `{"ok":false,"error":MESSAGE}`. */
std::string errorResponse(const std::string &message);

/**
 * `{"ok":false,"error":MESSAGE,"code":CODE[,"retryAfterMs":N]}` — a
 * machine-actionable refusal. `retryAfterMs` is emitted only when
 * nonzero (the `overloaded` shed path's backoff hint, honored by
 * serve::Client).
 */
std::string errorCodeResponse(const std::string &code,
                              const std::string &message,
                              std::uint64_t retryAfterMs = 0);

/** A JSON string literal: quoted + escaped. */
std::string jsonString(const std::string &raw);

// ---------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------

/**
 * Incremental NDJSON line framer with a per-line byte budget.
 *
 * The daemon feeds raw socket chunks in whatever sizes the transport
 * delivers them — one byte at a time, several requests merged into
 * one segment, a frame split across many reads — and next() yields
 * exactly the complete lines, in order, independent of the chunking
 * (the adversarial-framing fuzz tests in tests/serve/ sweep every
 * split point). A '\r' before the delimiter is stripped.
 *
 * When a single line grows past `maxLineBytes` (0 = unlimited) the
 * framer latches overflowed(): no further lines are delivered and
 * buffered input is discarded, so a peer streaming an unbounded
 * "line" cannot balloon daemon memory. The caller answers with a
 * structured `oversized` error and drops the connection.
 */
class LineFramer
{
  public:
    explicit LineFramer(std::size_t maxLineBytes = 0)
        : maxLineBytes_(maxLineBytes)
    {
    }

    /** Accept more raw bytes from the transport. */
    void feed(std::string_view bytes);

    /** Pop the next complete line into `line` (delimiter and any
     *  trailing '\r' stripped). False when no complete line is
     *  buffered or the framer has overflowed. */
    bool next(std::string &line);

    /** True once any line exceeded the byte budget (sticky). */
    bool overflowed() const { return overflowed_; }

    /** Bytes buffered awaiting a delimiter. */
    std::size_t buffered() const { return buffer_.size(); }

    /** Forget buffered input and clear the overflow latch. */
    void reset();

  private:
    std::string buffer_;
    std::size_t maxLineBytes_ = 0;
    bool overflowed_ = false;
};

} // namespace netchar::serve

#endif // NETCHAR_SERVE_PROTOCOL_HH
