#include "serve/protocol.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "runtime/gc.hh"
#include "stats/textio.hh"

namespace netchar::serve
{

// ---------------------------------------------------------------
// JSON parsing.
// ---------------------------------------------------------------

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : object)
        if (name == key)
            return &value;
    return nullptr;
}

namespace
{

/** Recursive-descent JSON parser over one request line. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool parse(JsonValue &out, std::string &error)
    {
        if (!value(out, error))
            return false;
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing bytes after JSON document at offset " +
                    std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\r' || text_[pos_] == '\n'))
            ++pos_;
    }

    bool fail(std::string &error, const std::string &what)
    {
        error = what + " at offset " + std::to_string(pos_);
        return false;
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool value(JsonValue &out, std::string &error)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail(error, "unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return objectValue(out, error);
        if (c == '[')
            return arrayValue(out, error);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return stringValue(out.string, error);
        }
        if (literal("true")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (literal("null")) {
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return numberValue(out, error);
    }

    bool objectValue(JsonValue &out, std::string &error)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail(error, "expected object key string");
            std::string key;
            if (!stringValue(key, error))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail(error, "expected ':' after object key");
            ++pos_;
            JsonValue member;
            if (!value(member, error))
                return false;
            out.object.emplace_back(std::move(key),
                                    std::move(member));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail(error, "expected ',' or '}' in object");
        }
    }

    bool arrayValue(JsonValue &out, std::string &error)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue element;
            if (!value(element, error))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail(error, "expected ',' or ']' in array");
        }
    }

    bool stringValue(std::string &out, std::string &error)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail(error, "dangling escape");
                const char esc = text_[pos_ + 1];
                pos_ += 2;
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail(error, "truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |=
                                static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |=
                                static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail(error,
                                        "bad \\u escape digit");
                    }
                    pos_ += 4;
                    // UTF-8 encode the BMP code point (requests
                    // never need surrogate pairs; reject them).
                    if (code >= 0xD800 && code <= 0xDFFF)
                        return fail(error,
                                    "surrogate \\u escapes are not "
                                    "supported");
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default:
                    return fail(error, "unknown escape");
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail(error, "unterminated string");
    }

    bool numberValue(JsonValue &out, std::string &error)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail(error, "unexpected character");
        // Reject leading zeros ("01"): JSON numbers are canonical,
        // and a sloppy literal must not alias a distinct cache key.
        std::size_t digits = start;
        if (digits < pos_ && text_[digits] == '-')
            ++digits;
        if (digits + 1 < pos_ && text_[digits] == '0' &&
            text_[digits + 1] >= '0' && text_[digits + 1] <= '9')
            return fail(error, "number with leading zero");
        const std::string token(text_.substr(start, pos_ - start));
        try {
            std::size_t used = 0;
            out.number = std::stod(token, &used);
            if (used != token.size())
                throw std::invalid_argument(token);
        } catch (const std::exception &) {
            pos_ = start;
            return fail(error, "malformed number '" + token + "'");
        }
        if (!std::isfinite(out.number)) {
            pos_ = start;
            return fail(error, "non-finite number '" + token + "'");
        }
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    // Reused out-params must not leak members from a previous parse.
    out = JsonValue{};
    return Parser(text).parse(out, error);
}

// ---------------------------------------------------------------
// Request parsing.
// ---------------------------------------------------------------

std::string_view
verbName(Verb verb)
{
    switch (verb) {
    case Verb::Ping: return "ping";
    case Verb::Run: return "run";
    case Verb::Sweep: return "sweep";
    case Verb::Subset: return "subset";
    case Verb::Stats: return "stats";
    case Verb::Shutdown: return "shutdown";
    }
    return "ping";
}

namespace
{

[[noreturn]] void
protocolError(const std::string &message)
{
    throw ProtocolError(message);
}

std::uint64_t
wholeNumber(const JsonValue &v, const std::string &key)
{
    if (!v.isNumber() || v.number < 0.0 ||
        v.number != std::floor(v.number) || v.number > 1e18)
        protocolError("option '" + key +
                      "' expects a non-negative integer");
    return static_cast<std::uint64_t>(v.number);
}

double
finiteNumber(const JsonValue &v, const std::string &key)
{
    if (!v.isNumber())
        protocolError("option '" + key + "' expects a number");
    return v.number;
}

void
applyOption(RunOptions &options, const std::string &key,
            const JsonValue &v)
{
    if (key == "warmup") {
        options.warmupInstructions = wholeNumber(v, key);
    } else if (key == "measure") {
        options.measuredInstructions = wholeNumber(v, key);
    } else if (key == "cores") {
        const std::uint64_t cores = wholeNumber(v, key);
        if (cores == 0 || cores > 1024)
            protocolError("option 'cores' must be in [1,1024]");
        options.cores = static_cast<unsigned>(cores);
    } else if (key == "seed") {
        options.seed = wholeNumber(v, key);
    } else if (key == "jitHint") {
        if (v.kind != JsonValue::Kind::Bool)
            protocolError("option 'jitHint' expects true/false");
        options.jitHint = v.boolean;
    } else if (key == "gcMode") {
        if (v.string == "workstation")
            options.gcMode = rt::GcMode::Workstation;
        else if (v.string == "server")
            options.gcMode = rt::GcMode::Server;
        else
            protocolError("option 'gcMode' expects \"workstation\" "
                          "or \"server\"");
    } else if (key == "gcAssist") {
        if (v.string == "software")
            options.gcAssist = rt::GcAssist::Software;
        else if (v.string == "hardware")
            options.gcAssist = rt::GcAssist::Hardware;
        else
            protocolError("option 'gcAssist' expects \"software\" "
                          "or \"hardware\"");
    } else if (key == "maxHeap") {
        options.maxHeapBytes = wholeNumber(v, key);
    } else if (key == "allocScale") {
        const double scale = finiteNumber(v, key);
        if (scale < 0.0)
            protocolError("option 'allocScale' must be >= 0");
        options.allocScale = scale;
    } else if (key == "quantum") {
        options.quantum = wholeNumber(v, key);
    } else if (key == "runBudget") {
        options.runBudgetCycles = wholeNumber(v, key);
    } else {
        protocolError("unknown option '" + key + "'");
    }
}

} // namespace

Request
parseRequest(const std::string &line)
{
    JsonValue root;
    std::string error;
    if (!parseJson(line, root, error))
        protocolError("bad JSON: " + error);
    if (!root.isObject())
        protocolError("request must be a JSON object");

    Request request;
    const JsonValue *verb = root.find("verb");
    if (verb == nullptr || !verb->isString())
        protocolError("request needs a string 'verb'");
    if (verb->string == "ping")
        request.verb = Verb::Ping;
    else if (verb->string == "run")
        request.verb = Verb::Run;
    else if (verb->string == "sweep")
        request.verb = Verb::Sweep;
    else if (verb->string == "subset")
        request.verb = Verb::Subset;
    else if (verb->string == "stats")
        request.verb = Verb::Stats;
    else if (verb->string == "shutdown")
        request.verb = Verb::Shutdown;
    else
        protocolError("unknown verb '" + verb->string +
                      "' (valid: ping, run, sweep, subset, stats, "
                      "shutdown)");

    for (const auto &[key, value] : root.object) {
        if (key == "verb")
            continue;
        if (key == "benchmark") {
            if (!value.isString())
                protocolError("'benchmark' expects a string");
            request.benchmark = value.string;
        } else if (key == "suite") {
            if (!value.isString())
                protocolError("'suite' expects a string");
            request.suite = value.string;
        } else if (key == "machine") {
            if (!value.isString())
                protocolError("'machine' expects a string");
            request.machine = value.string;
        } else if (key == "format") {
            if (!value.isString())
                protocolError("'format' expects a string");
            request.format = value.string;
        } else if (key == "size") {
            const std::uint64_t size = wholeNumber(value, key);
            if (size == 0)
                protocolError("'size' must be >= 1");
            request.subsetSize = static_cast<std::size_t>(size);
        } else if (key == "deadlineMs") {
            request.deadlineMs = wholeNumber(value, key);
        } else if (key == "options") {
            if (!value.isObject())
                protocolError("'options' expects an object");
            for (const auto &[okey, ovalue] : value.object)
                applyOption(request.options, okey, ovalue);
        } else {
            protocolError("unknown request field '" + key + "'");
        }
    }

    if (request.machine != "i9" && request.machine != "xeon" &&
        request.machine != "arm")
        protocolError("unknown machine '" + request.machine +
                      "' (valid: i9, xeon, arm)");
    if (request.format != "csv" && request.format != "json")
        protocolError("unknown format '" + request.format +
                      "' (valid: csv, json)");
    if (request.verb == Verb::Run && request.benchmark.empty())
        protocolError("run needs a 'benchmark'");
    if ((request.verb == Verb::Sweep ||
         request.verb == Verb::Subset) &&
        request.suite.empty())
        protocolError(std::string(verbName(request.verb)) +
                      " needs a 'suite'");
    if (!request.suite.empty() && request.suite != "dotnet" &&
        request.suite != "aspnet" && request.suite != "spec")
        protocolError("unknown suite '" + request.suite +
                      "' (valid: dotnet, aspnet, spec)");
    return request;
}

std::string
requestLine(const Request &request)
{
    std::ostringstream os;
    os << "{\"verb\":" << jsonString(std::string(
                              verbName(request.verb)));
    if (!request.benchmark.empty())
        os << ",\"benchmark\":" << jsonString(request.benchmark);
    if (!request.suite.empty())
        os << ",\"suite\":" << jsonString(request.suite);
    os << ",\"machine\":" << jsonString(request.machine);
    os << ",\"format\":" << jsonString(request.format);
    if (request.verb == Verb::Subset)
        os << ",\"size\":" << request.subsetSize;
    if (request.deadlineMs != 0)
        os << ",\"deadlineMs\":" << request.deadlineMs;
    const RunOptions &o = request.options;
    os << ",\"options\":{";
    os << "\"warmup\":" << o.warmupInstructions;
    os << ",\"measure\":" << o.measuredInstructions;
    os << ",\"cores\":" << o.cores;
    os << ",\"seed\":" << o.seed;
    if (o.jitHint)
        os << ",\"jitHint\":true";
    if (o.gcMode)
        os << ",\"gcMode\":"
           << (*o.gcMode == rt::GcMode::Server
                   ? "\"server\""
                   : "\"workstation\"");
    if (o.gcAssist)
        os << ",\"gcAssist\":"
           << (*o.gcAssist == rt::GcAssist::Hardware
                   ? "\"hardware\""
                   : "\"software\"");
    if (o.maxHeapBytes)
        os << ",\"maxHeap\":" << *o.maxHeapBytes;
    if (o.allocScale != 1.0) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", o.allocScale);
        os << ",\"allocScale\":" << buf;
    }
    if (o.quantum != RunOptions{}.quantum)
        os << ",\"quantum\":" << o.quantum;
    if (o.runBudgetCycles)
        os << ",\"runBudget\":" << o.runBudgetCycles;
    os << "}}";
    return os.str();
}

// ---------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------

std::string
jsonString(const std::string &raw)
{
    std::string quoted;
    quoted.reserve(raw.size() + 2);
    quoted.push_back('"');
    quoted += jsonEscape(raw);
    quoted.push_back('"');
    return quoted;
}

std::string
okResponse(const std::string &verb, const std::string &body)
{
    return "{\"ok\":true,\"verb\":" + jsonString(verb) +
           ",\"body\":" + body + "}";
}

std::string
okCachedResponse(const std::string &verb, bool hit,
                 const std::string &key, const std::string &body)
{
    return "{\"ok\":true,\"verb\":" + jsonString(verb) +
           ",\"cache\":" + (hit ? "\"hit\"" : "\"miss\"") +
           ",\"key\":" + jsonString(key) + ",\"body\":" + body + "}";
}

std::string
errorResponse(const std::string &message)
{
    return "{\"ok\":false,\"error\":" + jsonString(message) + "}";
}

std::string
errorCodeResponse(const std::string &code, const std::string &message,
                  std::uint64_t retryAfterMs)
{
    std::string response = "{\"ok\":false,\"error\":" +
                           jsonString(message) +
                           ",\"code\":" + jsonString(code);
    if (retryAfterMs != 0)
        response +=
            ",\"retryAfterMs\":" + std::to_string(retryAfterMs);
    response += "}";
    return response;
}

// ---------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------

void
LineFramer::feed(std::string_view bytes)
{
    if (overflowed_)
        return; // connection is being torn down; don't buffer more
    buffer_.append(bytes.data(), bytes.size());
    if (maxLineBytes_ != 0 && buffer_.find('\n') == std::string::npos &&
        buffer_.size() > maxLineBytes_) {
        overflowed_ = true;
        buffer_.clear();
    }
}

bool
LineFramer::next(std::string &line)
{
    if (overflowed_)
        return false;
    const std::size_t eol = buffer_.find('\n');
    if (eol == std::string::npos)
        return false;
    if (maxLineBytes_ != 0 && eol > maxLineBytes_) {
        overflowed_ = true;
        buffer_.clear();
        return false;
    }
    line.assign(buffer_, 0, eol);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    buffer_.erase(0, eol + 1);
    // An over-budget partial tail may have arrived in the same chunk
    // as this line; latch now rather than waiting for the next feed.
    if (maxLineBytes_ != 0 && buffer_.find('\n') == std::string::npos &&
        buffer_.size() > maxLineBytes_) {
        overflowed_ = true;
        buffer_.clear();
    }
    return true;
}

void
LineFramer::reset()
{
    buffer_.clear();
    overflowed_ = false;
}

} // namespace netchar::serve
