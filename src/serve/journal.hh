/**
 * @file
 * Append-only, crash-safe journal for the serve daemon's result
 * cache.
 *
 * The PR 7 cache persisted only on clean shutdown: a crash lost every
 * result computed since start, and a torn write could poison the next
 * start. The journal closes both holes. Every cache insert is
 * appended as one checksummed, length-prefixed record and flushed;
 * periodically (and on clean shutdown) the cache is checkpointed to
 * the snapshot file via temp-file + rename() and the journal is
 * reset — classic write-ahead compaction.
 *
 * On-disk layout (all ASCII framing, bodies raw):
 *
 *   netchar-journal/v1\n                      header
 *   R <keylen> <bodylen> <checksum32hex>\n    record header
 *   <key bytes><body bytes>\n                 record payload
 *   ...                                       more records
 *
 * where checksum32hex = contentHashHex(key + body) (stats/hash.hh).
 * Recovery (replay()) walks records front-to-back and stops at the
 * first torn or corrupt one — everything after a torn tail is
 * untrusted by construction — reporting exactly what it kept and
 * dropped. A truncated journal is therefore always recovered to a
 * prefix of the pre-crash insert sequence: never a corrupt entry,
 * never a failed start. The kill-at-every-offset sweep in
 * tests/serve/robust_test.cc proves that property byte-by-byte.
 *
 * Not thread-safe: owned by the daemon's single-threaded event loop,
 * like the cache it protects.
 */

#ifndef NETCHAR_SERVE_JOURNAL_HH
#define NETCHAR_SERVE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace netchar::serve
{

/**
 * One record's serialized bytes: header line, key, body, trailing
 * newline. Pure function of (key, body) — this is the only place
 * journal bytes are produced, and it is a netchar-lint taint sink so
 * clock/RNG nondeterminism cannot reach the persisted format.
 */
std::string journalRecord(const std::string &key,
                          const std::string &body);

/** What replay() recovered and what it had to drop. */
struct JournalRecoveryReport
{
    /** Intact records replayed into the cache. */
    std::uint64_t recordsRecovered = 0;
    /** Records lost to the torn/corrupt tail (1 at most — replay
     *  stops at the first bad record). */
    std::uint64_t recordsDropped = 0;
    /** Bytes of journal discarded with the torn tail. */
    std::uint64_t bytesDropped = 0;
    /** Human-readable note on why replay stopped ("" = clean end). */
    std::string note;
};

/**
 * The daemon's append-side handle plus the static recovery path.
 *
 * Lifecycle: open() (append mode, creates the file with its header
 * if absent or empty), append() per cache insert (flushed before
 * returning, so an accepted response is never less durable than the
 * socket write that acknowledged it), reset() after each checkpoint
 * compaction, close() on shutdown.
 */
class CacheJournal
{
  public:
    CacheJournal() = default;
    ~CacheJournal();

    CacheJournal(const CacheJournal &) = delete;
    CacheJournal &operator=(const CacheJournal &) = delete;

    /** Open `path` for appending (writing the header when the file
     *  is new or empty). False with a message in `error` on I/O
     *  failure. */
    bool open(const std::string &path, std::string &error);

    /** Append one insert record and flush it to the OS. */
    bool append(const std::string &key, const std::string &body,
                std::string &error);

    /** Truncate back to a bare header (after a checkpoint has made
     *  the journaled inserts redundant). */
    bool reset(std::string &error);

    /** Current journal size in bytes (0 when closed). */
    std::uint64_t bytes() const { return bytes_; }

    bool isOpen() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

    void close();

    /**
     * Replay `path` into `entries` (append order preserved; later
     * records for the same key supersede earlier ones only by
     * arriving later — the caller re-inserts in order). Stops at the
     * first torn/corrupt record and describes the damage in
     * `report`. A missing file recovers zero entries cleanly; so
     * does a file with a foreign header (the whole file is treated
     * as an untrusted tail). Returns false only on an I/O error
     * reading an existing file.
     */
    static bool
    replay(const std::string &path,
           std::vector<std::pair<std::string, std::string>> &entries,
           JournalRecoveryReport &report, std::string &error);

    /**
     * Chop `tailBytes` off the end of `path` — the deterministic
     * torn-write injector used by the kill-at-every-offset tests and
     * the `journal` wire-fault kind. Truncating past the start
     * leaves an empty file.
     */
    static bool truncateTail(const std::string &path,
                             std::uint64_t tailBytes,
                             std::string &error);

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t bytes_ = 0;
};

} // namespace netchar::serve

#endif // NETCHAR_SERVE_JOURNAL_HH
