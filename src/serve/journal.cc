#include "serve/journal.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "stats/hash.hh" // contentHashHex (record checksums)

namespace netchar::serve
{

namespace
{

constexpr std::string_view kJournalHeader = "netchar-journal/v1\n";

} // namespace

std::string
journalRecord(const std::string &key, const std::string &body)
{
    std::ostringstream os;
    os << "R " << key.size() << ' ' << body.size() << ' '
       << contentHashHex(key + body) << '\n'
       << key << body << '\n';
    return os.str();
}

CacheJournal::~CacheJournal() { close(); }

void
CacheJournal::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
    path_.clear();
    bytes_ = 0;
}

bool
CacheJournal::open(const std::string &path, std::string &error)
{
    close();
    std::FILE *file = std::fopen(path.c_str(), "ab");
    if (file == nullptr) {
        error = "cannot open journal '" + path + "' for append";
        return false;
    }
    file_ = file;
    path_ = path;
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    bytes_ = ec ? 0 : size;
    if (bytes_ == 0) {
        if (std::fwrite(kJournalHeader.data(), 1,
                        kJournalHeader.size(),
                        file_) != kJournalHeader.size() ||
            std::fflush(file_) != 0) {
            error = "cannot write journal header to '" + path + "'";
            close();
            return false;
        }
        bytes_ = kJournalHeader.size();
    }
    return true;
}

bool
CacheJournal::append(const std::string &key, const std::string &body,
                     std::string &error)
{
    if (file_ == nullptr) {
        error = "journal is not open";
        return false;
    }
    const std::string record = journalRecord(key, body);
    if (std::fwrite(record.data(), 1, record.size(), file_) !=
            record.size() ||
        std::fflush(file_) != 0) {
        error = "short write to journal '" + path_ + "'";
        return false;
    }
    bytes_ += record.size();
    return true;
}

bool
CacheJournal::reset(std::string &error)
{
    if (file_ == nullptr) {
        error = "journal is not open";
        return false;
    }
    // Truncate back to a bare header: the checkpoint the caller just
    // wrote already holds every journaled insert.
    std::FILE *fresh = std::freopen(path_.c_str(), "wb", file_);
    if (fresh == nullptr) {
        file_ = nullptr; // freopen failure closes the old stream
        error = "cannot truncate journal '" + path_ + "'";
        return false;
    }
    file_ = fresh;
    if (std::fwrite(kJournalHeader.data(), 1, kJournalHeader.size(),
                    file_) != kJournalHeader.size() ||
        std::fflush(file_) != 0) {
        error = "cannot rewrite journal header in '" + path_ + "'";
        return false;
    }
    bytes_ = kJournalHeader.size();
    return true;
}

bool
CacheJournal::replay(
    const std::string &path,
    std::vector<std::pair<std::string, std::string>> &entries,
    JournalRecoveryReport &report, std::string &error)
{
    report = {};
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return true; // fresh daemon: nothing journaled yet
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read journal '" + path + "'";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string data = buffer.str();
    if (data.empty())
        return true; // created but never written: clean empty state

    if (data.size() < kJournalHeader.size() ||
        data.compare(0, kJournalHeader.size(), kJournalHeader) != 0) {
        // A foreign or torn header means nothing in the file can be
        // trusted — recover an empty cache rather than failing the
        // start (the snapshot checkpoint is the authoritative base).
        report.bytesDropped = data.size();
        report.note = "unrecognized journal header; dropped file";
        return true;
    }

    std::size_t pos = kJournalHeader.size();
    while (pos < data.size()) {
        const std::size_t recordStart = pos;
        const auto stop = [&](const char *why) {
            ++report.recordsDropped;
            report.bytesDropped = data.size() - recordStart;
            report.note = why;
        };
        const std::size_t eol = data.find('\n', pos);
        if (eol == std::string::npos) {
            stop("torn record header at tail");
            break;
        }
        const std::string header = data.substr(pos, eol - pos);
        std::istringstream fields(header);
        char tag = '\0';
        std::size_t keyLen = 0;
        std::size_t bodyLen = 0;
        std::string checksum;
        if (!(fields >> tag >> keyLen >> bodyLen >> checksum) ||
            tag != 'R' || checksum.size() != 32) {
            stop("corrupt record header");
            break;
        }
        const std::size_t payloadStart = eol + 1;
        // +1 for the record's trailing newline.
        if (payloadStart + keyLen + bodyLen + 1 > data.size()) {
            stop("torn record payload at tail");
            break;
        }
        const std::string key = data.substr(payloadStart, keyLen);
        const std::string body =
            data.substr(payloadStart + keyLen, bodyLen);
        if (data[payloadStart + keyLen + bodyLen] != '\n' ||
            contentHashHex(key + body) != checksum) {
            stop("record checksum mismatch");
            break;
        }
        entries.emplace_back(key, body);
        ++report.recordsRecovered;
        pos = payloadStart + keyLen + bodyLen + 1;
    }
    return true;
}

bool
CacheJournal::truncateTail(const std::string &path,
                           std::uint64_t tailBytes, std::string &error)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
        error = "cannot stat journal '" + path +
                "': " + ec.message();
        return false;
    }
    const std::uint64_t keep = size > tailBytes ? size - tailBytes : 0;
    std::filesystem::resize_file(path, keep, ec);
    if (ec) {
        error = "cannot truncate journal '" + path +
                "': " + ec.message();
        return false;
    }
    return true;
}

} // namespace netchar::serve
