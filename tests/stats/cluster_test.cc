#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "stats/cluster.hh"
#include "stats/matrix.hh"
#include "stats/rng.hh"

namespace ns = netchar::stats;

namespace
{

/** Two tight groups far apart plus shapes for cut tests. */
ns::Matrix
twoBlobs()
{
    return ns::Matrix{
        {0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1},     // blob A
        {10.0, 10.0}, {10.1, 10.0}, {10.0, 10.1} // blob B
    };
}

} // namespace

TEST(EuclideanTest, KnownDistance)
{
    EXPECT_DOUBLE_EQ(ns::euclidean({0.0, 0.0}, {3.0, 4.0}), 5.0);
    EXPECT_THROW(ns::euclidean({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ClusterTest, SingleObservation)
{
    ns::Matrix one{{1.0, 2.0}};
    auto dg = ns::hierarchicalCluster(one);
    EXPECT_EQ(dg.leafCount, 1u);
    EXPECT_EQ(dg.nodes.size(), 1u);
    auto clusters = dg.cut(1);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0], (std::vector<std::size_t>{0}));
}

TEST(ClusterTest, EmptyInputThrows)
{
    EXPECT_THROW(ns::hierarchicalCluster(ns::Matrix(0, 2)),
                 std::invalid_argument);
}

TEST(ClusterTest, NodeCountIs2NMinus1)
{
    auto dg = ns::hierarchicalCluster(twoBlobs());
    EXPECT_EQ(dg.leafCount, 6u);
    EXPECT_EQ(dg.nodes.size(), 11u);
}

TEST(ClusterTest, RootCoversAllLeaves)
{
    auto dg = ns::hierarchicalCluster(twoBlobs());
    auto leaves = dg.leavesUnder(dg.root());
    std::sort(leaves.begin(), leaves.end());
    EXPECT_EQ(leaves, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ClusterTest, CutAtTwoSeparatesBlobs)
{
    auto dg = ns::hierarchicalCluster(twoBlobs());
    auto clusters = dg.cut(2);
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_EQ(clusters[0], (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(clusters[1], (std::vector<std::size_t>{3, 4, 5}));
}

TEST(ClusterTest, CutAtLeafCountGivesSingletons)
{
    auto dg = ns::hierarchicalCluster(twoBlobs());
    auto clusters = dg.cut(6);
    ASSERT_EQ(clusters.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(clusters[i], (std::vector<std::size_t>{i}));
}

TEST(ClusterTest, CutBoundsChecked)
{
    auto dg = ns::hierarchicalCluster(twoBlobs());
    EXPECT_THROW(dg.cut(0), std::invalid_argument);
    EXPECT_THROW(dg.cut(7), std::invalid_argument);
}

TEST(ClusterTest, MergeHeightsMonotonicTowardRoot)
{
    // Under the Lance-Williams family used here, parents should not be
    // lower than both children for well-separated data.
    auto dg = ns::hierarchicalCluster(twoBlobs());
    const auto &root = dg.nodes[static_cast<std::size_t>(dg.root())];
    const auto &left = dg.nodes[static_cast<std::size_t>(root.left)];
    const auto &right = dg.nodes[static_cast<std::size_t>(root.right)];
    EXPECT_GE(root.height, left.height);
    EXPECT_GE(root.height, right.height);
}

TEST(ClusterTest, LinkageCriteriaOrdering)
{
    // Complete linkage roots at the max pairwise distance, single at
    // the min inter-blob distance; average falls in between.
    const auto data = twoBlobs();
    const double single_h = ns::hierarchicalCluster(
        data, ns::Linkage::Single).nodes.back().height;
    const double avg_h = ns::hierarchicalCluster(
        data, ns::Linkage::Average).nodes.back().height;
    const double complete_h = ns::hierarchicalCluster(
        data, ns::Linkage::Complete).nodes.back().height;
    EXPECT_LE(single_h, avg_h + 1e-12);
    EXPECT_LE(avg_h, complete_h + 1e-12);
}

TEST(ClusterTest, RenderAsciiContainsAllLabels)
{
    auto dg = ns::hierarchicalCluster(twoBlobs());
    std::vector<std::string> labels{"a", "b", "c", "d", "e", "f"};
    const auto text = dg.renderAscii(labels);
    for (const auto &l : labels)
        EXPECT_NE(text.find("- " + l), std::string::npos) << l;
    EXPECT_THROW(dg.renderAscii({"x"}), std::invalid_argument);
}

TEST(RepresentativeTest, PicksCentroidClosestMember)
{
    const auto data = twoBlobs();
    auto dg = ns::hierarchicalCluster(data);
    auto clusters = dg.cut(2);
    auto reps = ns::pickRepresentatives(data, clusters);
    ASSERT_EQ(reps.size(), 2u);
    // Representative of each blob must belong to that blob.
    EXPECT_LT(reps[0], 3u);
    EXPECT_GE(reps[1], 3u);
}

TEST(RepresentativeTest, EmptyClusterThrows)
{
    EXPECT_THROW(
        ns::pickRepresentatives(twoBlobs(), {{0, 1}, {}}),
        std::invalid_argument);
}

/**
 * Property sweep: clustering random data at every k partitions the
 * observation set (disjoint, complete), and representatives are
 * members of their clusters.
 */
class ClusterPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ClusterPropertyTest, CutIsAPartitionForAllK)
{
    ns::Rng rng(GetParam());
    const std::size_t n = 5 + rng.below(20);
    ns::Matrix data(n, 3);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            data(r, c) = rng.uniform(-4.0, 4.0);

    auto dg = ns::hierarchicalCluster(data);
    for (std::size_t k = 1; k <= n; ++k) {
        auto clusters = dg.cut(k);
        EXPECT_EQ(clusters.size(), k);
        std::set<std::size_t> seen;
        for (const auto &cluster : clusters) {
            EXPECT_FALSE(cluster.empty());
            for (std::size_t m : cluster) {
                EXPECT_TRUE(seen.insert(m).second)
                    << "observation in two clusters";
            }
        }
        EXPECT_EQ(seen.size(), n);

        auto reps = ns::pickRepresentatives(data, clusters);
        ASSERT_EQ(reps.size(), k);
        for (std::size_t i = 0; i < k; ++i) {
            EXPECT_TRUE(std::find(clusters[i].begin(), clusters[i].end(),
                                  reps[i]) != clusters[i].end());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomData, ClusterPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));
